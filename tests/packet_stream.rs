//! Raw packets to alarms: the §2.1 per-packet input path composed with the
//! §6 streaming front end. Ethernet frames are built, parsed (checksum
//! verified), projected to updates, and pushed through the threaded
//! detector — the full "sit directly on a packet feed" deployment.

use sketch_change::core::{spawn_streaming, OverloadPolicy, StreamingConfig};
use sketch_change::prelude::*;
use sketch_change::traffic::packet::{build_frame, parse_ethernet};
use sketch_change::traffic::routes::RouteTable;

#[test]
fn frames_to_alarms_through_streaming_detector() {
    let handle = spawn_streaming(StreamingConfig {
        detector: DetectorConfig {
            sketch: SketchConfig { h: 3, k: 2048, seed: 4 },
            model: ModelSpec::Ewma { alpha: 0.5 },
            threshold: 0.3,
            key_strategy: KeyStrategy::TwoPass,
        },
        interval_ms: 1_000,
        key: KeySpec::DstIp,
        value: ValueSpec::Bytes,
        channel_capacity: 1024,
        overload: OverloadPolicy::Block,
        checkpoint: None,
        metrics: None,
    });

    // Four event-time seconds of packets to two services; second 2 floods
    // a third destination.
    for t in 0..4u64 {
        for i in 0..30u64 {
            for (dst, payload) in [(0x0A00_0001u32, 400usize), (0x0A00_0002, 200)] {
                let frame = build_frame(0xC0A8_0000 + i as u32, dst, 5000, 443, 6, payload);
                let pkt = parse_ethernet(&frame).expect("well-formed frame");
                // Packet summaries carry no timestamp; the capture layer
                // supplies arrival time. Reconstruct a FlowRecord the
                // streaming API accepts.
                let record = FlowRecord {
                    timestamp_ms: t * 1000 + i * 30,
                    src_ip: pkt.src_ip,
                    dst_ip: pkt.dst_ip,
                    src_port: pkt.src_port,
                    dst_port: pkt.dst_port,
                    protocol: pkt.protocol,
                    bytes: pkt.total_length as u64,
                    packets: 1,
                };
                assert!(handle.send(record));
            }
        }
        if t == 2 {
            for i in 0..40u64 {
                let frame = build_frame(0x3000_0000 + i as u32, 0x0A00_00FF, 1024, 80, 6, 1400);
                let pkt = parse_ethernet(&frame).unwrap();
                handle.send(FlowRecord {
                    timestamp_ms: t * 1000 + 900,
                    src_ip: pkt.src_ip,
                    dst_ip: pkt.dst_ip,
                    src_port: pkt.src_port,
                    dst_port: pkt.dst_port,
                    protocol: pkt.protocol,
                    bytes: pkt.total_length as u64,
                    packets: 1,
                });
            }
        }
    }
    let (reports, processed) = handle.shutdown().expect("clean shutdown");
    assert_eq!(processed, 4 * 60 + 40);
    assert_eq!(reports.len(), 4);
    assert!(
        reports[2].alarms.iter().any(|a| a.key == 0x0A00_00FF),
        "packet flood not flagged at second 2: {:?}",
        reports[2].alarms
    );
    assert!(reports[1].alarms.iter().all(|a| a.key != 0x0A00_00FF), "no alarm before the flood");
}

#[test]
fn as_level_keys_through_route_table() {
    // AS aggregation: records keyed by the LPM table instead of raw IPs.
    let table = RouteTable::synthetic(8);
    let mut det = SketchChangeDetector::new(DetectorConfig {
        sketch: SketchConfig { h: 3, k: 1024, seed: 6 },
        model: ModelSpec::Ewma { alpha: 0.5 },
        threshold: 0.3,
        key_strategy: KeyStrategy::TwoPass,
    });
    let record = |dst_ip: u32, bytes: u64| FlowRecord {
        timestamp_ms: 0,
        src_ip: 1,
        dst_ip,
        src_port: 1,
        dst_port: 80,
        protocol: 6,
        bytes,
        packets: 1,
    };
    // Steady per-AS traffic, then AS 5's region surges across many hosts.
    let mut steady: Vec<(u64, f64)> = Vec::new();
    for asn in 0..8u32 {
        for h in 0..10u32 {
            steady.push(table.as_update(&record((asn << 29) | h, 10_000), ValueSpec::Bytes));
        }
    }
    det.process_interval(&steady);
    det.process_interval(&steady);
    let mut surged = steady.clone();
    for h in 0..30u32 {
        surged.push(table.as_update(&record((4u32 << 29) | (h << 8), 50_000), ValueSpec::Bytes));
    }
    let report = det.process_interval(&surged);
    // (4 << 29) is the top half of block index 4 -> AS 5 under the /3 grid.
    let as_key = table.lookup(4u32 << 29).unwrap() as u64;
    assert!(
        report.alarms.iter().any(|a| a.key == as_key),
        "AS-level surge not flagged: {:?}",
        report.alarms
    );
}
