//! Workspace-level integration tests: exercise the public `sketch-change`
//! API exactly as a downstream user would, across all five crates.

use sketch_change::core::{gridsearch, metrics, segment_records};
use sketch_change::prelude::*;
use sketch_change::traffic::io;

/// Full user journey: generate a trace, persist it, read it back, segment
/// it into intervals, grid-search model parameters, detect an injected
/// anomaly.
#[test]
fn trace_to_alarms_full_journey() {
    // 1. Generate + inject.
    let mut cfg = RouterProfile::Small.config(11);
    cfg.records_per_sec = 10.0;
    cfg.interval_secs = 60;
    cfg.n_flows = 600;
    let mut generator = TrafficGenerator::new(cfg);
    let victim_rank = 15;
    let baseline = generator.expected_rank_bytes(victim_rank, 12);
    let injector = AnomalyInjector::new(
        vec![AnomalyEvent {
            kind: AnomalyKind::DosAttack { byte_rate: baseline * 20.0, flows: 40 },
            victim_rank,
            start_interval: 12,
            duration: 2,
        }],
        1,
    );
    let (trace, truth) = injector.labeled_trace(&mut generator, 16);
    let victim = generator.dst_ip_of_rank(victim_rank) as u64;
    assert!(truth.is_anomalous(12, victim));

    // 2. Persist and reload through the binary trace format.
    let flat: Vec<FlowRecord> = trace.iter().flatten().copied().collect();
    let mut buf = Vec::new();
    io::write_binary(&mut buf, &flat).unwrap();
    let reloaded = io::read_binary(&buf[..]).unwrap();
    assert_eq!(flat.len(), reloaded.len());

    // 3. Segment by timestamp (recovering the interval structure).
    let intervals = segment_records(&reloaded, 60, KeySpec::DstIp, ValueSpec::Bytes);
    assert_eq!(intervals.len(), 16);

    // 4. Grid-search EWMA's alpha on the quiet prefix.
    let gs_cfg = gridsearch::GridSearchConfig {
        sketch: SketchConfig { h: 1, k: 4096, seed: 9 },
        passes: 2,
        subdivisions: 6,
        arima_subdivisions: 3,
        max_window: 6,
        warm_up_intervals: 2,
        seasonal_period: 4,
    };
    let found = gridsearch::search_model(ModelKind::Ewma, &gs_cfg, &intervals[..10]);
    found.spec.validate().unwrap();

    // 5. Detect with the tuned model.
    let mut detector = SketchChangeDetector::new(DetectorConfig {
        sketch: SketchConfig { h: 5, k: 16_384, seed: 3 },
        model: found.spec,
        threshold: 0.2,
        key_strategy: KeyStrategy::TwoPass,
    });
    let mut victim_alarm_intervals = Vec::new();
    for (t, items) in intervals.iter().enumerate() {
        let report = detector.process_interval(items);
        if report.alarms.iter().any(|a| a.key == victim) {
            victim_alarm_intervals.push(t);
        }
    }
    assert!(
        victim_alarm_intervals.contains(&12),
        "attack onset not detected; alarms at {victim_alarm_intervals:?}"
    );
}

/// The linearity showcase: per-router sketches sum to the union sketch, so
/// detection over the aggregate equals detection over merged traffic.
#[test]
fn combine_across_routers_equals_merged_traffic() {
    let sketch_cfg = SketchConfig { h: 3, k: 4096, seed: 1234 };
    let mut gens: Vec<TrafficGenerator> = (0..3)
        .map(|i| {
            let mut c = RouterProfile::Small.config(50 + i);
            c.records_per_sec = 5.0;
            c.interval_secs = 60;
            c.n_flows = 300;
            TrafficGenerator::new(c)
        })
        .collect();

    for t in 0..3 {
        let mut merged_updates = Vec::new();
        let mut summed = KarySketch::new(sketch_cfg);
        for g in &mut gens {
            let records = g.interval_records(t);
            let updates = to_updates(&records, KeySpec::DstIp, ValueSpec::Bytes);
            let mut local = KarySketch::new(sketch_cfg);
            for &(k, v) in &updates {
                local.update(k, v);
            }
            summed.add_scaled(&local, 1.0).unwrap();
            merged_updates.extend(updates);
        }
        let mut direct = KarySketch::new(sketch_cfg);
        for (k, v) in merged_updates {
            direct.update(k, v);
        }
        for (a, b) in summed.table().iter().zip(direct.table()) {
            assert!((a - b).abs() < 1e-6, "cell mismatch: {a} vs {b}");
        }
    }
}

/// Aggregation levels (§2.1): the same records keyed by /16 prefix produce
/// detection at a coarser granularity — an attack on one host is visible
/// under its prefix key.
#[test]
fn prefix_aggregation_detects_host_attack() {
    let mut cfg = RouterProfile::Small.config(88);
    cfg.records_per_sec = 10.0;
    cfg.interval_secs = 60;
    cfg.n_flows = 500;
    let mut generator = TrafficGenerator::new(cfg);
    let victim_rank = 10;
    let baseline = generator.expected_rank_bytes(victim_rank, 6);
    let injector = AnomalyInjector::new(
        vec![AnomalyEvent {
            kind: AnomalyKind::DosAttack { byte_rate: baseline * 25.0, flows: 40 },
            victim_rank,
            start_interval: 6,
            duration: 1,
        }],
        2,
    );
    let (trace, _) = injector.labeled_trace(&mut generator, 8);
    let victim_prefix = (generator.dst_ip_of_rank(victim_rank) >> 16) as u64;

    let mut detector = SketchChangeDetector::new(DetectorConfig {
        sketch: SketchConfig { h: 5, k: 8192, seed: 77 },
        model: ModelSpec::Ewma { alpha: 0.5 },
        threshold: 0.2,
        key_strategy: KeyStrategy::TwoPass,
    });
    let mut hit = false;
    for (t, records) in trace.iter().enumerate() {
        let items = to_updates(records, KeySpec::DstPrefix(16), ValueSpec::Count);
        // Count-valued updates: a DoS adds many flows, so connection counts
        // spike under the /16 even though each flow is small.
        let report = detector.process_interval(&items);
        if t == 6 && report.alarms.iter().any(|a| a.key == victim_prefix) {
            hit = true;
        }
    }
    assert!(hit, "prefix-level detection missed the attack");
}

/// Sketch-vs-per-flow agreement through the public API, all six models.
#[test]
fn all_models_agree_with_perflow_reference() {
    let mut cfg = RouterProfile::Small.config(4242);
    cfg.records_per_sec = 20.0;
    cfg.interval_secs = 60;
    cfg.n_flows = 300;
    let mut g = TrafficGenerator::new(cfg);
    let trace: Vec<Vec<(u64, f64)>> = (0..12)
        .map(|t| to_updates(&g.interval_records(t), KeySpec::DstIp, ValueSpec::Bytes))
        .collect();

    let specs = [
        ModelSpec::Ma { window: 4 },
        ModelSpec::Sma { window: 4 },
        ModelSpec::Ewma { alpha: 0.5 },
        ModelSpec::Nshw { alpha: 0.5, beta: 0.2 },
        ModelSpec::Arima(ArimaSpec::new(0, &[0.8], &[0.2]).unwrap()),
        ModelSpec::Arima(ArimaSpec::new(1, &[0.3], &[0.3]).unwrap()),
    ];
    for spec in specs {
        let mut sk = SketchChangeDetector::new(DetectorConfig {
            sketch: SketchConfig { h: 5, k: 32_768, seed: 5 },
            model: spec.clone(),
            threshold: 0.05,
            key_strategy: KeyStrategy::TwoPass,
        });
        let mut pf = PerFlowDetector::new(spec.clone());
        let mut sims = Vec::new();
        for (t, items) in trace.iter().enumerate() {
            let a = sk.process_interval(items);
            let b = pf.process_interval(items);
            if t >= 5 && a.warmed_up && b.warmed_up {
                sims.push(metrics::topn_similarity(&b.errors, &a.errors, 30));
            }
        }
        let m = metrics::mean(&sims);
        assert!(m > 0.85, "{}: similarity {m} too low ({sims:?})", spec.describe());
    }
}
