//! # sketch-change
//!
//! A Rust implementation of **sketch-based change detection** for massive
//! network data streams, reproducing Krishnamurthy, Sen, Zhang & Chen,
//! *Sketch-based Change Detection: Methods, Evaluation, and Applications*
//! (ACM IMC 2003).
//!
//! Network operators need to spot significant traffic changes — DoS
//! attacks, flash crowds, outages, scans — across millions of concurrent
//! flows, where keeping per-flow state is too expensive. This library
//! summarizes the traffic into a **k-ary sketch**: a constant-size, linear
//! summary supporting unbiased reconstruction of any flow's value. Because
//! the sketch is linear, classical time-series forecasting (moving
//! averages, EWMA, Holt-Winters, ARIMA) runs directly *in sketch space*,
//! and flows whose forecast error exceeds an energy-derived threshold are
//! flagged — all in `O(H)` work per packet/flow record and `O(H·K)` memory
//! total.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`hash`] | `scd-hash` | 4-universal hashing (Thorup–Zhang tabulation, Carter–Wegman polynomials) |
//! | [`sketch`] | `scd-sketch` | k-ary sketch (UPDATE / ESTIMATE / ESTIMATEF2 / COMBINE), count-min & count sketch baselines, median networks |
//! | [`forecast`] | `scd-forecast` | the six forecast models, generic over scalars and sketches |
//! | [`core`] | `scd-core` | the change-detection pipeline, per-flow reference, grid search, metrics, sharded ingest engine |
//! | [`archive`] | `scd-archive` | multi-resolution sketch archive with historical change queries |
//! | [`traffic`] | `scd-traffic` | synthetic netflow substrate, packet parsing, LPM routes, anomaly injection, trace sharding |
//! | [`obs`] | `scd-obs` | pipeline observability: metric registry, snapshots, scrape endpoint |
//! | [`net`] | `scd-net` | distributed ingest plane: CRC-guarded sketch frames, spooling, parity recovery |
//! | [`serve`] | `scd-serve` | read-optimized serving plane: slim sketches, interval snapshots, TCP query service |
//!
//! ## Quickstart
//!
//! ```
//! use sketch_change::prelude::*;
//!
//! // Configure: H x K sketch, EWMA forecasting, alarm at 5% of the error
//! // L2 norm, offline two-pass key replay.
//! let mut detector = SketchChangeDetector::new(DetectorConfig {
//!     sketch: SketchConfig { h: 5, k: 32_768, seed: 42 },
//!     model: ModelSpec::Ewma { alpha: 0.5 },
//!     threshold: 0.05,
//!     key_strategy: KeyStrategy::TwoPass,
//! });
//!
//! // Feed (key, value) updates per interval; keys are e.g. destination
//! // IPs, values byte counts.
//! detector.process_interval(&[(0xC0A80101, 1_000.0), (0xC0A80102, 2_000.0)]);
//! detector.process_interval(&[(0xC0A80101, 1_000.0), (0xC0A80102, 2_000.0)]);
//! let report = detector.process_interval(&[(0xC0A80101, 90_000.0), (0xC0A80102, 2_000.0)]);
//! assert_eq!(report.alarms[0].key, 0xC0A80101);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios (quickstart, DoS
//! detection, flash-crowd monitoring, multi-router aggregation) and
//! `DESIGN.md` / `EXPERIMENTS.md` for the paper-reproduction inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use scd_archive as archive;
pub use scd_core as core;
pub use scd_forecast as forecast;
pub use scd_hash as hash;
pub use scd_net as net;
pub use scd_obs as obs;
pub use scd_serve as serve;
pub use scd_sketch as sketch;
pub use scd_traffic as traffic;

/// One-stop imports for typical use.
pub mod prelude {
    pub use scd_archive::{ArchiveConfig, SketchArchive};
    pub use scd_core::{
        Alarm, DetectorConfig, EngineConfig, IntervalReport, KeyStrategy, PerFlowDetector,
        ShardedEngine, SketchChangeDetector,
    };
    pub use scd_forecast::{ArimaSpec, Forecaster, ModelKind, ModelSpec, Summary};
    pub use scd_serve::{QueryClient, QueryServer, Request, Response, ServingPlane, SlimSketch};
    pub use scd_sketch::{KarySketch, SketchConfig};
    pub use scd_traffic::{
        to_updates, AnomalyEvent, AnomalyInjector, AnomalyKind, FlowRecord, KeySpec, RouterProfile,
        TrafficGenerator, ValueSpec,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compose() {
        use crate::prelude::*;
        let cfg = SketchConfig { h: 1, k: 64, seed: 0 };
        let mut s = KarySketch::new(cfg);
        s.update(1, 2.0);
        assert!(s.estimate(1) > 0.0);
    }
}
