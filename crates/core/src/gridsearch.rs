//! Multi-pass grid search for forecast-model parameters (paper §3.4.2).
//!
//! "A commonly used simple heuristic for configuring model parameters is
//! choosing parameters that minimize the total residual energy … We extend
//! the heuristic to the sketch context and look for parameters that
//! minimize the estimated total energy of forecast errors
//! `Σ_t F2est(Se(t))`" — crucially using the *estimated* second moment, so
//! that parameter search itself never needs per-flow state.
//!
//! Search procedure, as in §4.2:
//!
//! * MA/SMA: the window is an integer — evaluate every `W` from 1 to the
//!   configured maximum (10 for 300 s intervals, 12 for 60 s).
//! * EWMA / NSHW: multi-pass grid. Pass 1 scans `{0.1, 0.2, …, 1.0}` per
//!   parameter; each further pass subdivides the ±1-step neighborhood of
//!   the incumbent into `subdivisions` equal parts (the paper uses 10).
//! * ARIMA: every structure `(p ≤ 2, q ≤ 2)` is scanned with each
//!   coefficient gridded into `arima_subdivisions` points of `[−2, 2]`
//!   (the paper uses 7 "to limit the search space"), then refined around
//!   the incumbent in a second pass.
//!
//! During search the paper fixes `H = 1, K = 8192` — the estimated energy
//! at that size already tracks the true energy closely (its Figure 1–3
//! result), which is what makes the cheap search sound.

use crate::detector::{DetectorConfig, KeyStrategy, SketchChangeDetector};
use scd_forecast::{ArimaSpec, ModelKind, ModelSpec};
use scd_sketch::SketchConfig;
use scd_traffic::Rng;

/// Grid-search configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSearchConfig {
    /// Sketch used for energy estimation (paper: `H = 1, K = 8192`).
    pub sketch: SketchConfig,
    /// Number of grid passes (paper: 2).
    pub passes: usize,
    /// Subdivisions per pass for smoothing parameters (paper: 10).
    pub subdivisions: usize,
    /// Subdivisions per pass for ARIMA coefficients (paper: 7).
    pub arima_subdivisions: usize,
    /// Maximum MA/SMA window (paper: 10 for 300 s intervals, 12 for 60 s).
    pub max_window: usize,
    /// Leading intervals excluded from the energy objective (model
    /// warm-up; the paper discards the first hour).
    pub warm_up_intervals: usize,
    /// Season length used when searching the seasonal Holt-Winters
    /// extension (`ModelKind::Shw`): the period is structural (one diurnal
    /// cycle), not searched.
    pub seasonal_period: usize,
}

impl GridSearchConfig {
    /// The paper's search settings for a given interval length.
    pub fn paper_default(interval_secs: u32) -> Self {
        GridSearchConfig {
            sketch: SketchConfig { h: 1, k: 8192, seed: 0x6121D },
            passes: 2,
            subdivisions: 10,
            arima_subdivisions: 7,
            max_window: if interval_secs >= 300 { 10 } else { 12 },
            warm_up_intervals: (3600 / interval_secs.max(1)) as usize,
            // One day's worth of intervals: the diurnal cycle.
            seasonal_period: (86_400 / interval_secs.max(1) as usize).max(2),
        }
    }
}

/// Outcome of a parameter search.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSearchResult {
    /// The best specification found.
    pub spec: ModelSpec,
    /// Its estimated total energy `Σ_t F2est(Se(t))`.
    pub energy: f64,
    /// Number of candidate evaluations performed.
    pub evaluated: usize,
}

/// Runs the sketch pipeline with `spec` over `intervals` and returns the
/// estimated total error energy `Σ_t F2est(Se(t))` for `t` past warm-up.
/// Non-finite energies (explosive ARIMA candidates) map to `+∞` so they
/// lose every comparison without poisoning NaN orderings.
pub fn estimated_total_energy(
    spec: &ModelSpec,
    sketch: SketchConfig,
    intervals: &[Vec<(u64, f64)>],
    warm_up_intervals: usize,
) -> f64 {
    let mut det = SketchChangeDetector::new(DetectorConfig {
        sketch,
        model: spec.clone(),
        threshold: 1.0, // irrelevant: we only read error_f2
        // Sampling rate 0 disables the per-key error scan entirely: the
        // search objective only needs ESTIMATEF2, and skipping the scan
        // makes each candidate evaluation O(records + H·K) instead of
        // O(records + distinct keys · H).
        key_strategy: KeyStrategy::Sampled { rate: 0.0, seed: 0 },
    });
    let mut energy = 0.0;
    for (t, items) in intervals.iter().enumerate() {
        let report = det.process_interval(items);
        if report.warmed_up && t >= warm_up_intervals {
            if !report.error_f2.is_finite() {
                return f64::INFINITY;
            }
            energy += report.error_f2.max(0.0);
        }
    }
    energy
}

/// Searches the parameter space of `kind` and returns the best spec.
///
/// # Panics
/// Panics if `config` has zero passes/subdivisions or `intervals` is empty.
pub fn search_model(
    kind: ModelKind,
    config: &GridSearchConfig,
    intervals: &[Vec<(u64, f64)>],
) -> GridSearchResult {
    assert!(config.passes >= 1 && config.subdivisions >= 2 && config.arima_subdivisions >= 2);
    assert!(!intervals.is_empty(), "grid search needs at least one interval");
    let mut evaluated = 0usize;
    let mut eval = |spec: &ModelSpec| -> f64 {
        evaluated += 1;
        estimated_total_energy(spec, config.sketch, intervals, config.warm_up_intervals)
    };

    let (spec, energy) = match kind {
        ModelKind::Ma => {
            search_window(config.max_window, &mut eval, |w| ModelSpec::Ma { window: w })
        }
        ModelKind::Sma => {
            search_window(config.max_window, &mut eval, |w| ModelSpec::Sma { window: w })
        }
        ModelKind::Ewma => {
            let (best, energy) =
                search_smoothing(config, &mut eval, 1, |p| ModelSpec::Ewma { alpha: p[0] });
            (best, energy)
        }
        ModelKind::Nshw => {
            search_smoothing(config, &mut eval, 2, |p| ModelSpec::Nshw { alpha: p[0], beta: p[1] })
        }
        ModelKind::Arima0 => search_arima(config, &mut eval, 0),
        ModelKind::Arima1 => search_arima(config, &mut eval, 1),
        ModelKind::Shw => {
            let period = config.seasonal_period;
            search_smoothing(config, &mut eval, 3, |p| ModelSpec::Shw {
                alpha: p[0],
                beta: p[1],
                gamma: p[2],
                period,
            })
        }
    };
    GridSearchResult { spec, energy, evaluated }
}

/// Integer window search for MA/SMA.
fn search_window(
    max_window: usize,
    eval: &mut dyn FnMut(&ModelSpec) -> f64,
    make: impl Fn(usize) -> ModelSpec,
) -> (ModelSpec, f64) {
    let mut best: Option<(ModelSpec, f64)> = None;
    for w in 1..=max_window.max(1) {
        let spec = make(w);
        let e = eval(&spec);
        if best.as_ref().map_or(true, |(_, be)| e < *be) {
            best = Some((spec, e));
        }
    }
    best.expect("at least one window evaluated")
}

/// Multi-pass grid over `dims` smoothing parameters in `[0, 1]`.
fn search_smoothing(
    config: &GridSearchConfig,
    eval: &mut dyn FnMut(&ModelSpec) -> f64,
    dims: usize,
    make: impl Fn(&[f64]) -> ModelSpec,
) -> (ModelSpec, f64) {
    // Pass 1 grid: {0.1, 0.2, ..., 1.0} per the paper.
    let mut centers = vec![0.55f64; dims];
    let mut half_range = 0.45f64; // covers [0.1, 1.0]
    let mut best: Option<(Vec<f64>, f64)> = None;
    for _pass in 0..config.passes {
        let n = config.subdivisions;
        // Candidate axes: n points per dimension, clamped to [0, 1].
        let axes: Vec<Vec<f64>> = centers
            .iter()
            .map(|&c| {
                (0..n)
                    .map(|i| {
                        let frac = if n == 1 { 0.5 } else { i as f64 / (n - 1) as f64 };
                        (c - half_range + 2.0 * half_range * frac).clamp(0.0, 1.0)
                    })
                    .collect()
            })
            .collect();
        // Cartesian scan (dims ≤ 2 so this is at most n²).
        let mut index = vec![0usize; dims];
        loop {
            let point: Vec<f64> = index.iter().zip(&axes).map(|(&i, ax)| ax[i]).collect();
            let spec = make(&point);
            let e = eval(&spec);
            if best.as_ref().map_or(true, |(_, be)| e < *be) {
                best = Some((point, e));
            }
            // Advance the mixed-radix counter.
            let mut d = 0;
            loop {
                if d == dims {
                    break;
                }
                index[d] += 1;
                if index[d] < axes[d].len() {
                    break;
                }
                index[d] = 0;
                d += 1;
            }
            if d == dims {
                break;
            }
        }
        // Refine around the incumbent: the paper subdivides
        // [best − step, best + step] on the next pass.
        let (incumbent, _) = best.as_ref().expect("grid evaluated");
        centers = incumbent.clone();
        half_range /= (config.subdivisions - 1) as f64 / 2.0;
    }
    let (point, energy) = best.expect("grid evaluated");
    (make(&point), energy)
}

/// Structure + coefficient search for ARIMA with the given `d`.
fn search_arima(
    config: &GridSearchConfig,
    eval: &mut dyn FnMut(&ModelSpec) -> f64,
    d: usize,
) -> (ModelSpec, f64) {
    let mut best: Option<(ModelSpec, f64)> = None;
    for p in 0..=2usize {
        for q in 0..=2usize {
            let n_coef = p + q;
            // Coefficient grid for this structure, multi-pass.
            let mut centers = vec![0.0f64; n_coef];
            let mut half_range = 2.0f64; // coefficients in [−2, 2]
            for _pass in 0..config.passes {
                let n = config.arima_subdivisions;
                let axes: Vec<Vec<f64>> = centers
                    .iter()
                    .map(|&c| {
                        (0..n)
                            .map(|i| {
                                let frac = if n == 1 { 0.5 } else { i as f64 / (n - 1) as f64 };
                                (c - half_range + 2.0 * half_range * frac).clamp(-2.0, 2.0)
                            })
                            .collect()
                    })
                    .collect();
                let mut structure_best: Option<(Vec<f64>, f64)> = None;
                let mut index = vec![0usize; n_coef];
                loop {
                    let coefs: Vec<f64> = index.iter().zip(&axes).map(|(&i, ax)| ax[i]).collect();
                    let spec = ModelSpec::Arima(
                        ArimaSpec::new(d, &coefs[..p], &coefs[p..])
                            .expect("grid points are in range"),
                    );
                    let e = eval(&spec);
                    if structure_best.as_ref().map_or(true, |(_, be)| e < *be) {
                        structure_best = Some((coefs, e));
                    }
                    if n_coef == 0 {
                        break;
                    }
                    let mut dd = 0;
                    loop {
                        if dd == n_coef {
                            break;
                        }
                        index[dd] += 1;
                        if index[dd] < axes[dd].len() {
                            break;
                        }
                        index[dd] = 0;
                        dd += 1;
                    }
                    if dd == n_coef {
                        break;
                    }
                }
                let (inc, inc_e) = structure_best.expect("structure evaluated");
                centers = inc.clone();
                half_range /= (config.arima_subdivisions - 1) as f64 / 2.0;
                let spec = ModelSpec::Arima(
                    ArimaSpec::new(d, &centers[..p], &centers[p..]).expect("in range"),
                );
                if best.as_ref().map_or(true, |(_, be)| inc_e < *be) {
                    best = Some((spec, inc_e));
                }
                if n_coef == 0 {
                    break; // nothing to refine
                }
            }
        }
    }
    best.expect("at least one ARIMA structure evaluated")
}

/// Draws a random parameterization of `kind` — the comparator the paper's
/// §5.1.1 "random" experiments use. ARIMA coefficients are drawn from the
/// stationarity/invertibility region (the triangle `|φ2| < 1`,
/// `φ2 ± φ1 < 1` for order 2, `|φ| < 1` for order 1) so that random models
/// are *valid* forecasters rather than numerically explosive ones.
pub fn random_spec(kind: ModelKind, max_window: usize, rng: &mut Rng) -> ModelSpec {
    match kind {
        ModelKind::Ma => ModelSpec::Ma { window: 1 + rng.below(max_window as u64) as usize },
        ModelKind::Sma => ModelSpec::Sma { window: 1 + rng.below(max_window as u64) as usize },
        ModelKind::Ewma => ModelSpec::Ewma { alpha: rng.uniform_in(0.05, 1.0) },
        ModelKind::Nshw => {
            ModelSpec::Nshw { alpha: rng.uniform_in(0.05, 1.0), beta: rng.uniform_in(0.0, 1.0) }
        }
        ModelKind::Arima0 => ModelSpec::Arima(random_arima(0, rng)),
        ModelKind::Arima1 => ModelSpec::Arima(random_arima(1, rng)),
        ModelKind::Shw => ModelSpec::Shw {
            alpha: rng.uniform_in(0.05, 1.0),
            beta: rng.uniform_in(0.0, 1.0),
            gamma: rng.uniform_in(0.05, 1.0),
            // A small plausible period; callers tuning real diurnal data
            // should use `search_model`, where the period is structural.
            period: 2 + rng.below(23) as usize,
        },
    }
}

fn random_stable_coeffs(order: usize, rng: &mut Rng) -> Vec<f64> {
    match order {
        0 => vec![],
        1 => vec![rng.uniform_in(-0.95, 0.95)],
        _ => loop {
            let c1 = rng.uniform_in(-1.9, 1.9);
            let c2 = rng.uniform_in(-0.95, 0.95);
            if c1 + c2 < 0.999 && c2 - c1 < 0.999 {
                break vec![c1, c2];
            }
        },
    }
}

fn random_arima(d: usize, rng: &mut Rng) -> ArimaSpec {
    // Avoid the degenerate (p, q) = (0, 0) structure for d = 0 (a constant-
    // zero forecaster) — always keep at least one term.
    let (p, q) = loop {
        let p = rng.below(3) as usize;
        let q = rng.below(3) as usize;
        if p + q > 0 || d == 1 {
            break (p, q);
        }
    };
    let ar = random_stable_coeffs(p, rng);
    let ma = random_stable_coeffs(q, rng);
    ArimaSpec::new(d, &ar, &ma).expect("sampled coefficients are in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy trace: two flows with EWMA-friendly dynamics. Flow A is an
    /// AR-ish process around 1000, flow B around 100.
    fn toy_trace(intervals: usize) -> Vec<Vec<(u64, f64)>> {
        let mut rng = Rng::new(42);
        let mut a = 1000.0;
        let mut b = 100.0;
        (0..intervals)
            .map(|_| {
                a = 0.8 * a + 0.2 * 1000.0 + rng.normal(0.0, 30.0);
                b = 0.8 * b + 0.2 * 100.0 + rng.normal(0.0, 5.0);
                vec![(1u64, a), (2u64, b)]
            })
            .collect()
    }

    fn tiny_config() -> GridSearchConfig {
        GridSearchConfig {
            sketch: SketchConfig { h: 1, k: 256, seed: 5 },
            passes: 2,
            subdivisions: 5,
            arima_subdivisions: 3,
            max_window: 5,
            warm_up_intervals: 3,
            seasonal_period: 4,
        }
    }

    #[test]
    fn energy_objective_prefers_better_parameters() {
        let trace = toy_trace(30);
        let cfg = tiny_config();
        // For a mean-reverting process, alpha near 1 chases noise less well
        // than a moderate alpha... at minimum, energies must differ and be
        // finite, and a absurd model (alpha=0, frozen first value) must be
        // worse than the best found.
        let e_frozen = estimated_total_energy(
            &ModelSpec::Ewma { alpha: 0.0 },
            cfg.sketch,
            &trace,
            cfg.warm_up_intervals,
        );
        let found = search_model(ModelKind::Ewma, &cfg, &trace);
        assert!(found.energy.is_finite());
        assert!(found.energy <= e_frozen, "search must beat alpha=0");
    }

    #[test]
    fn search_never_worse_than_random_candidates() {
        // The paper's §5.1.1 claim, in miniature: grid search is never
        // worse than random parameter picks under the same objective.
        let trace = toy_trace(25);
        let cfg = tiny_config();
        let mut rng = Rng::new(7);
        for kind in [ModelKind::Ewma, ModelKind::Ma, ModelKind::Nshw] {
            let found = search_model(kind, &cfg, &trace);
            for _ in 0..5 {
                let spec = random_spec(kind, cfg.max_window, &mut rng);
                let e = estimated_total_energy(&spec, cfg.sketch, &trace, cfg.warm_up_intervals);
                assert!(
                    found.energy <= e + 1e-9,
                    "{kind}: search energy {} beaten by random {} ({})",
                    found.energy,
                    e,
                    spec.describe()
                );
            }
        }
    }

    #[test]
    fn window_search_covers_range() {
        let trace = toy_trace(20);
        let cfg = tiny_config();
        let r = search_model(ModelKind::Ma, &cfg, &trace);
        assert_eq!(r.evaluated, cfg.max_window);
        match r.spec {
            ModelSpec::Ma { window } => assert!((1..=cfg.max_window).contains(&window)),
            other => panic!("wrong spec family: {other:?}"),
        }
    }

    #[test]
    fn arima_search_returns_valid_spec() {
        let trace = toy_trace(20);
        let mut cfg = tiny_config();
        cfg.passes = 1; // keep the test fast
        for kind in [ModelKind::Arima0, ModelKind::Arima1] {
            let r = search_model(kind, &cfg, &trace);
            assert!(r.energy.is_finite());
            match &r.spec {
                ModelSpec::Arima(s) => {
                    s.validate().unwrap();
                    assert_eq!(s.d == 0, kind == ModelKind::Arima0);
                }
                other => panic!("wrong family {other:?}"),
            }
        }
    }

    #[test]
    fn refinement_does_not_regress() {
        // More passes can only improve (or tie) the objective.
        let trace = toy_trace(25);
        let mut one = tiny_config();
        one.passes = 1;
        let mut two = tiny_config();
        two.passes = 2;
        let e1 = search_model(ModelKind::Ewma, &one, &trace).energy;
        let e2 = search_model(ModelKind::Ewma, &two, &trace).energy;
        assert!(e2 <= e1 + 1e-9, "pass 2 regressed: {e2} > {e1}");
    }

    #[test]
    fn random_specs_are_valid() {
        let mut rng = Rng::new(3);
        for kind in ModelKind::ALL {
            for _ in 0..20 {
                let spec = random_spec(kind, 10, &mut rng);
                spec.validate().expect("random spec must validate");
                assert_eq!(spec.kind(), kind);
            }
        }
    }

    #[test]
    fn explosive_candidates_score_infinite_not_nan() {
        // AR coefficient 2.0 with d=1 doubles the series every step: the
        // energy must come back as +inf, not NaN.
        let trace = toy_trace(40);
        let spec = ModelSpec::Arima(ArimaSpec::new(1, &[2.0, 2.0], &[]).unwrap());
        let e = estimated_total_energy(&spec, SketchConfig { h: 1, k: 64, seed: 1 }, &trace, 0);
        assert!(e == f64::INFINITY || e.is_finite());
        assert!(!e.is_nan());
    }
}
