//! Sketch-based change detection — the paper's primary contribution,
//! assembled from the substrate crates.
//!
//! The pipeline (paper §2.2) has three modules per time interval `t`:
//!
//! 1. **Sketch module** — summarize the interval's `(key, update)` stream
//!    into the observed sketch `So(t)`.
//! 2. **Forecasting module** — produce the forecast sketch `Sf(t)` from
//!    past observed sketches via one of six linear models, and the error
//!    sketch `Se(t) = So(t) − Sf(t)`.
//! 3. **Change detection module** — choose the alarm threshold
//!    `TA = T · √(ESTIMATEF2(Se(t)))`, reconstruct per-key forecast errors
//!    from `Se(t)`, and raise an alarm for every key whose estimated error
//!    exceeds `TA` in absolute value.
//!
//! This crate provides:
//!
//! * [`SketchChangeDetector`] — the full pipeline, with the paper's three
//!   key-stream strategies (§3.3): offline two-pass, online next-interval,
//!   and sampled.
//! * [`PerFlowDetector`] — the exact per-flow reference (one scalar
//!   forecaster per flow), "the ideal environment with infinite resources"
//!   every accuracy experiment compares against.
//! * [`gridsearch`] — the multi-pass grid search of §3.4.2 for choosing
//!   model parameters by minimizing estimated total error energy.
//! * [`metrics`] — the paper's evaluation metrics: top-N similarity,
//!   top-N vs top-X·N, thresholded false positives/negatives, relative
//!   difference of total energy, empirical CDFs.
//! * [`stream`] — interval segmentation of timestamped flow records.
//! * The paper's §6 "ongoing work", implemented as extensions:
//!   [`adaptive`] (periodic online re-tuning of model parameters),
//!   [`staggered`] (phase-shifted interval lanes against boundary effects,
//!   sharing slot sketches through linearity), and [`sampling`]
//!   (Horvitz–Thompson record thinning in front of the sketch),
//!   [`reversible`] (group-testing sketches that recover heavy-change keys
//!   directly, with no key stream at all), and [`hierarchy`]
//!   (simultaneous detection at multiple prefix lengths with drill-down
//!   localization — §2.1's aggregation levels), and [`glr`] (sub-interval
//!   GLR sequential detection: provisional alarms raised seconds after
//!   onset, confirmed or retracted at interval close).
//! * [`engine`] — sharded parallel ingest: worker threads each fold a
//!   key-partition of the update stream into a private sketch over the
//!   shared hash family, COMBINEd per interval into exactly the
//!   single-threaded observed sketch, optionally feeding an
//!   `scd-archive` multi-resolution history of error sketches.
//! * A fault-tolerance layer for the §6 online deployment: [`checkpoint`]
//!   (CRC-guarded atomic snapshots of the full detector state),
//!   [`supervisor`] (panic recovery with checkpoint restarts and a
//!   lifecycle event stream), and [`streaming`]'s overload policies
//!   (block / drop / sample, with per-interval shed accounting).
//!
//! # Example
//!
//! ```
//! use scd_core::{DetectorConfig, KeyStrategy, SketchChangeDetector};
//! use scd_forecast::ModelSpec;
//! use scd_sketch::SketchConfig;
//!
//! let mut det = SketchChangeDetector::new(DetectorConfig {
//!     sketch: SketchConfig { h: 5, k: 4096, seed: 1 },
//!     model: ModelSpec::Ewma { alpha: 0.6 },
//!     threshold: 0.05,
//!     key_strategy: KeyStrategy::TwoPass,
//! });
//!
//! // Two quiet intervals teach the model the baseline...
//! det.process_interval(&[(7, 1000.0), (9, 500.0)]);
//! det.process_interval(&[(7, 1000.0), (9, 500.0)]);
//! // ...then flow 7 surges 20x.
//! let report = det.process_interval(&[(7, 20_000.0), (9, 500.0)]);
//! assert!(report.alarms.iter().any(|a| a.key == 7));
//! assert!(!report.alarms.iter().any(|a| a.key == 9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod channel;
pub mod checkpoint;
pub mod detector;
pub mod engine;
pub mod glr;
pub mod gridsearch;
pub mod hierarchy;
pub mod metrics;
pub mod perflow;
pub mod reversible;
pub mod sampling;
pub mod staggered;
pub mod stream;
pub mod streaming;
pub mod supervisor;
pub mod telemetry;

pub use adaptive::{AdaptiveConfig, AdaptiveDetector};
pub use checkpoint::{Checkpoint, CheckpointError};
pub use detector::{
    Alarm, DetectorConfig, DetectorSnapshot, DropStats, IntervalReport, KeyStrategy, RestoreError,
    SketchChangeDetector,
};
pub use engine::{
    notable_keys, EngineConfig, EngineError, GlrEngineSnapshot, IntervalObserver, ShardedEngine,
};
pub use glr::{GlrConfig, GlrDetector, GlrEvent, GlrRestoreError, GlrSnapshot, ProvisionalAlarm};
pub use gridsearch::{search_model, GridSearchConfig, GridSearchResult};
pub use hierarchy::{HierarchicalDetector, HierarchyConfig, LocalizedAlarm};
pub use metrics::{
    empirical_cdf, relative_difference, threshold_report, topn_similarity, topn_vs_xn,
    ThresholdReport,
};
pub use perflow::{PerFlowDetector, PerFlowReport};
pub use reversible::{ReversibleChangeDetector, ReversibleConfig, ReversibleReport};
pub use sampling::UpdateSampler;
pub use staggered::{StaggeredAlarm, StaggeredDetector, StaggeredSnapshot};
pub use stream::{segment_records, StreamSegmenter};
pub use streaming::{
    spawn as spawn_streaming, CheckpointPolicy, OverloadPolicy, RecordSender, StreamFault,
    StreamingConfig, StreamingHandle,
};
pub use supervisor::{
    spawn_supervised, LifecycleEvent, RestartPolicy, SupervisedHandle, SupervisorConfig,
};
pub use telemetry::{
    DetectorMetrics, EngineMetrics, GlrMetrics, PipelineMetrics, StreamMetrics, SupervisorMetrics,
};
