//! Online model-parameter adaptation — the first item of the paper's
//! "ongoing work" (§6): *"One possible way is periodically recomputing the
//! forecast model parameters using history data to keep up with changes in
//! overall traffic behavior."*
//!
//! [`AdaptiveDetector`] wraps [`SketchChangeDetector`] and re-runs the §3.4
//! grid search every `retune_every` intervals over a sliding window of
//! recent intervals. Retuning preserves detection continuity by replaying
//! the retained history into the freshly parameterized model, so the next
//! interval's forecast is warm immediately.
//!
//! The window stores `(key, value)` update batches, not per-flow state —
//! bounded by `window × records-per-interval`, the same data a two-pass
//! deployment already buffers for key replay.

use crate::detector::{DetectorConfig, IntervalReport, SketchChangeDetector};
use crate::gridsearch::{search_model, GridSearchConfig};
use scd_forecast::ModelKind;
use std::collections::VecDeque;

/// Configuration for the adaptive wrapper.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Base detector configuration; its `model` field provides the initial
    /// parameters and the model *family* to re-tune within.
    pub detector: DetectorConfig,
    /// Re-run grid search after this many intervals (e.g. daily: 288 at
    /// 300 s intervals).
    pub retune_every: usize,
    /// How many recent intervals of updates to keep and tune on.
    pub window: usize,
    /// Grid-search settings (the paper's: `H = 1, K = 8192`, 2 passes).
    pub search: GridSearchConfig,
}

/// A change detector that periodically re-fits its forecast parameters.
pub struct AdaptiveDetector {
    config: AdaptiveConfig,
    kind: ModelKind,
    inner: SketchChangeDetector,
    history: VecDeque<Vec<(u64, f64)>>,
    since_retune: usize,
    retunes: usize,
}

impl std::fmt::Debug for AdaptiveDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveDetector")
            .field("kind", &self.kind)
            .field("retunes", &self.retunes)
            .field("window_filled", &self.history.len())
            .finish()
    }
}

impl AdaptiveDetector {
    /// Builds the adaptive detector.
    ///
    /// # Panics
    /// Panics if `retune_every == 0` or `window == 0`, or on an invalid
    /// base configuration.
    pub fn new(config: AdaptiveConfig) -> Self {
        assert!(config.retune_every > 0, "retune_every must be positive");
        assert!(config.window > 0, "window must be positive");
        let kind = config.detector.model.kind();
        let inner = SketchChangeDetector::new(config.detector.clone());
        AdaptiveDetector {
            kind,
            inner,
            history: VecDeque::with_capacity(config.window),
            since_retune: 0,
            config,
            retunes: 0,
        }
    }

    /// The currently active model parameters.
    pub fn current_model(&self) -> &scd_forecast::ModelSpec {
        &self.inner.config().model
    }

    /// How many times the parameters have been re-fitted.
    pub fn retunes(&self) -> usize {
        self.retunes
    }

    /// Processes one interval, re-tuning first when the schedule says so.
    pub fn process_interval(&mut self, items: &[(u64, f64)]) -> IntervalReport {
        if self.since_retune >= self.config.retune_every && self.history.len() >= 2 {
            self.retune();
            self.since_retune = 0;
        }
        // Record history for future tuning and (post-retune) replay.
        if self.history.len() == self.config.window {
            self.history.pop_front();
        }
        self.history.push_back(items.to_vec());
        self.since_retune += 1;
        self.inner.process_interval(items)
    }

    /// Re-fits parameters on the retained window and swaps in a fresh
    /// detector, replayed over the window so its model is warm.
    fn retune(&mut self) {
        let window: Vec<Vec<(u64, f64)>> = self.history.iter().cloned().collect();
        // Tune with no warm-up skip: the window *is* the recent history.
        let mut search = self.config.search;
        search.warm_up_intervals = 0;
        let result = search_model(self.kind, &search, &window);
        let mut cfg = self.config.detector.clone();
        cfg.model = result.spec;
        let mut fresh = SketchChangeDetector::new(cfg);
        for items in &window {
            let _ = fresh.process_interval(items);
        }
        self.inner = fresh;
        self.retunes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::KeyStrategy;
    use scd_forecast::ModelSpec;
    use scd_sketch::SketchConfig;

    fn config(retune_every: usize, window: usize) -> AdaptiveConfig {
        AdaptiveConfig {
            detector: DetectorConfig {
                sketch: SketchConfig { h: 3, k: 1024, seed: 4 },
                model: ModelSpec::Ewma { alpha: 0.9 },
                threshold: 0.1,
                key_strategy: KeyStrategy::TwoPass,
            },
            retune_every,
            window,
            search: GridSearchConfig {
                sketch: SketchConfig { h: 1, k: 512, seed: 1 },
                passes: 2,
                subdivisions: 5,
                arima_subdivisions: 3,
                max_window: 4,
                warm_up_intervals: 0,
                seasonal_period: 4,
            },
        }
    }

    /// A smooth mean-reverting flow pair.
    fn interval(t: usize) -> Vec<(u64, f64)> {
        let base = 1_000.0 + 100.0 * ((t as f64) * 0.7).sin();
        vec![(1, base), (2, base / 10.0)]
    }

    #[test]
    fn retunes_on_schedule() {
        let mut det = AdaptiveDetector::new(config(5, 8));
        for t in 0..16 {
            det.process_interval(&interval(t));
        }
        assert!(det.retunes() >= 2, "expected ≥2 retunes, got {}", det.retunes());
    }

    #[test]
    fn stays_within_model_family() {
        let mut det = AdaptiveDetector::new(config(4, 6));
        for t in 0..10 {
            det.process_interval(&interval(t));
        }
        assert!(matches!(det.current_model(), ModelSpec::Ewma { .. }));
    }

    #[test]
    fn detection_survives_retuning() {
        // A spike right after a retune boundary must still alarm: the
        // replayed window keeps the model warm.
        let mut det = AdaptiveDetector::new(config(4, 6));
        for t in 0..12 {
            det.process_interval(&interval(t));
        }
        let mut spiked = interval(12);
        spiked[0].1 *= 30.0;
        let report = det.process_interval(&spiked);
        assert!(report.warmed_up, "model must be warm right after retune");
        assert!(
            report.alarms.iter().any(|a| a.key == 1),
            "spike missed after retune: {:?}",
            report.alarms
        );
    }

    #[test]
    fn no_retune_before_schedule() {
        let mut det = AdaptiveDetector::new(config(100, 8));
        for t in 0..20 {
            det.process_interval(&interval(t));
        }
        assert_eq!(det.retunes(), 0);
    }

    #[test]
    #[should_panic(expected = "retune_every")]
    fn zero_schedule_rejected() {
        let _ = AdaptiveDetector::new(config(0, 4));
    }
}
