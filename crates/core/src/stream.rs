//! Interval segmentation of timestamped flow records (paper §4.2).
//!
//! The detector consumes discrete intervals `I1, I2, …`. Given a flat
//! stream of records — e.g. one read back from a trace file, where interval
//! boundaries are not materialized — this module bins records by timestamp
//! and projects them to `(key, value)` updates. The paper's interval sizes
//! are 300 s ("a reasonable tradeoff between responsiveness and
//! computational overhead") and 60 s.

use scd_traffic::{FlowRecord, KeySpec, ValueSpec};

/// Bins `records` into consecutive intervals of `interval_secs`, starting
/// at time 0, and projects each to the `(key, value)` update stream.
///
/// Records need not be sorted. The returned vector covers every interval
/// from 0 through the last non-empty one; intervening empty intervals are
/// present (empty), because the forecasting models must still advance
/// through silent periods.
pub fn segment_records(
    records: &[FlowRecord],
    interval_secs: u32,
    key: KeySpec,
    value: ValueSpec,
) -> Vec<Vec<(u64, f64)>> {
    assert!(interval_secs > 0, "interval length must be positive");
    let interval_ms = interval_secs as u64 * 1000;
    let n_intervals =
        records.iter().map(|r| (r.timestamp_ms / interval_ms) as usize + 1).max().unwrap_or(0);
    let mut out: Vec<Vec<(u64, f64)>> = vec![Vec::new(); n_intervals];
    for r in records {
        let idx = (r.timestamp_ms / interval_ms) as usize;
        out[idx].push((key.key_of(r), value.value_of(r)));
    }
    out
}

/// Streaming counterpart of [`segment_records`]: push record chunks as
/// they decode — e.g. straight from `scd_traffic::ChunkedTraceReader` —
/// and take the binned intervals at the end, without ever materializing
/// the flat record stream. For any chunking of the same records,
/// [`finish`](Self::finish) returns exactly what `segment_records` would
/// (same bins, same within-bin order), so downstream reports are
/// bit-identical.
#[derive(Debug)]
pub struct StreamSegmenter {
    interval_ms: u64,
    key: KeySpec,
    value: ValueSpec,
    bins: Vec<Vec<(u64, f64)>>,
}

impl StreamSegmenter {
    /// Starts an empty segmentation.
    ///
    /// # Panics
    /// Panics if `interval_secs` is zero.
    pub fn new(interval_secs: u32, key: KeySpec, value: ValueSpec) -> Self {
        assert!(interval_secs > 0, "interval length must be positive");
        StreamSegmenter { interval_ms: interval_secs as u64 * 1000, key, value, bins: Vec::new() }
    }

    /// Bins one chunk of records (any order, any chunking).
    pub fn push(&mut self, records: &[FlowRecord]) {
        for r in records {
            let idx = (r.timestamp_ms / self.interval_ms) as usize;
            if idx >= self.bins.len() {
                self.bins.resize_with(idx + 1, Vec::new);
            }
            self.bins[idx].push((self.key.key_of(r), self.value.value_of(r)));
        }
    }

    /// The binned intervals, 0 through the last non-empty one (silent
    /// intervals present but empty, as in [`segment_records`]).
    pub fn finish(self) -> Vec<Vec<(u64, f64)>> {
        self.bins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(ts_ms: u64, dst_ip: u32, bytes: u64) -> FlowRecord {
        FlowRecord {
            timestamp_ms: ts_ms,
            src_ip: 1,
            dst_ip,
            src_port: 1234,
            dst_port: 80,
            protocol: 6,
            bytes,
            packets: 1,
        }
    }

    #[test]
    fn bins_by_timestamp() {
        let records = vec![
            record(0, 10, 100),
            record(59_999, 11, 200),
            record(60_000, 12, 300),
            record(185_000, 13, 400),
        ];
        let intervals = segment_records(&records, 60, KeySpec::DstIp, ValueSpec::Bytes);
        assert_eq!(intervals.len(), 4);
        assert_eq!(intervals[0], vec![(10, 100.0), (11, 200.0)]);
        assert_eq!(intervals[1], vec![(12, 300.0)]);
        assert!(intervals[2].is_empty(), "silent interval must exist");
        assert_eq!(intervals[3], vec![(13, 400.0)]);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let records = vec![record(70_000, 2, 20), record(5_000, 1, 10)];
        let intervals = segment_records(&records, 60, KeySpec::DstIp, ValueSpec::Bytes);
        assert_eq!(intervals[0], vec![(1, 10.0)]);
        assert_eq!(intervals[1], vec![(2, 20.0)]);
    }

    #[test]
    fn empty_input_gives_empty_trace() {
        let intervals = segment_records(&[], 300, KeySpec::DstIp, ValueSpec::Bytes);
        assert!(intervals.is_empty());
    }

    #[test]
    fn respects_key_and_value_specs() {
        let records = vec![record(0, 0xC0A80101, 1500)];
        let by_count = segment_records(&records, 60, KeySpec::DstPrefix(24), ValueSpec::Count);
        assert_eq!(by_count[0], vec![(0xC0A801, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = segment_records(&[], 0, KeySpec::DstIp, ValueSpec::Bytes);
    }

    #[test]
    fn stream_segmenter_matches_segment_records_for_any_chunking() {
        let records: Vec<FlowRecord> =
            (0..137u64).map(|i| record((i * 7919) % 400_000, (i % 23) as u32, 100 + i)).collect();
        let expect = segment_records(&records, 60, KeySpec::DstIp, ValueSpec::Bytes);
        for chunk in [1usize, 5, 64, 137, 1000] {
            let mut seg = StreamSegmenter::new(60, KeySpec::DstIp, ValueSpec::Bytes);
            for c in records.chunks(chunk) {
                seg.push(c);
            }
            assert_eq!(seg.finish(), expect, "chunk size {chunk}");
        }
        let empty = StreamSegmenter::new(300, KeySpec::DstIp, ValueSpec::Bytes);
        assert!(empty.finish().is_empty());
    }
}
