//! Sharded parallel ingest: N worker threads, one merged sketch, exactly
//! the single-threaded answer.
//!
//! The paper's sketch module is embarrassingly parallel *because the
//! sketch is linear* (§3.1): partition the interval's update stream by
//! key across `N` workers, let each fold its share into a private k-ary
//! sketch over the shared hash family, and COMBINE the per-shard
//! sketches with coefficient 1 at the interval boundary. Per-cell,
//! COMBINE is a sum, and sums don't care how the stream was partitioned
//! — the merged sketch equals the one a single thread would have built.
//! With integer update values (packet and byte counts) every cell is an
//! exact integer sum below 2⁵³, so the equality is **bit for bit**, and
//! the detector's reports — estimates, `ESTIMATEF2`, alarms — are
//! *identical* to the single-threaded pipeline's, not merely close.
//! `tests/engine.rs` asserts exactly that, strategy by strategy.
//!
//! Design notes:
//!
//! * Workers are long-lived `std::thread`s fed update batches over the
//!   bounded channels of [`crate::channel`] — one queue per shard, so a
//!   slow shard back-pressures only its own feeder, and batching keeps
//!   the channel's mutex off the per-update hot path. Workers fold each
//!   batch with `KarySketch::update_batch` (hash the block row-major,
//!   then scatter one `K`-sized row at a time) and return the spent
//!   `Vec` on a recycle channel, so steady-state ingest allocates
//!   nothing per batch.
//! * Keys are partitioned by the SplitMix64 finalizer
//!   ([`scd_hash::mix64`]) — not `key % N`, which stripes sequential IP
//!   keys — followed by Lemire multiply-shift range reduction
//!   ([`scd_hash::range_reduce`]): no division anywhere on the per-update
//!   path. `scd_traffic::shard::shard_of_key` mirrors this exact mix so
//!   externally pre-partitioned traces land as the engine would route
//!   them.
//! * The main thread keeps the key log for error reconstruction; workers
//!   only ever see `(key, value)` pairs, so the merge point is the
//!   *only* synchronization per interval. The log's shape is gated by
//!   the key strategy: `TwoPass` keeps the §3.3 arrival-order replay
//!   list, while `Sampled`/`NextInterval` — whose detection pass dedups
//!   before querying — keep only first-seen-order *distinct* keys
//!   (bounded by the key population, not the record count, and
//!   bit-identical because deduplication is idempotent).
//! * When an [`ArchiveConfig`] is supplied, every interval's forecast
//!   error sketch `Se(t)` — handed back by
//!   [`SketchChangeDetector::process_observed_archiving`] — is pushed
//!   into a [`SketchArchive`] keyed by detector interval, with the
//!   report's top error keys as the epoch's directory entries. Warm-up
//!   intervals (no error sketch yet) are back-filled with zero sketches
//!   so archive interval indices always equal detector intervals.

use crate::channel::{bounded, Receiver, Sender};
use crate::detector::{
    DetectorConfig, DetectorSnapshot, IntervalReport, KeyStrategy, SketchChangeDetector,
};
use crate::glr::{
    GlrConfig, GlrDetector, GlrEvent, GlrRestoreError, GlrSnapshot, ProvisionalAlarm,
};
use crate::telemetry::{PipelineMetrics, ShardStats};
use scd_archive::{ArchiveConfig, ArchiveError, SketchArchive};
use scd_hash::{mix64, range_reduce, MixBuildHasher};
use scd_obs::Stopwatch;
use scd_sketch::{BatchScratch, KarySketch};
use std::collections::HashSet;
use std::sync::Arc;
use std::thread::JoinHandle;

/// How many of a report's top error keys are offered to the archive's
/// per-epoch directory (the archive truncates further to its own
/// `keys_per_epoch`).
const NOTABLE_KEYS_OFFERED: usize = 256;

/// The notable-key directory entries the engine offers an archive for one
/// interval: the report's top error keys (already sorted by the detector),
/// truncated to the engine-internal offer cap (256), with errors folded to
/// magnitude.
/// Exposed so out-of-engine archive replicas (e.g. a serving plane fed by
/// an [`IntervalObserver`]) file exactly the entries the engine would.
pub fn notable_keys(report: &IntervalReport) -> Vec<(u64, f64)> {
    report.errors.iter().take(NOTABLE_KEYS_OFFERED).map(|&(key, err)| (key, err.abs())).collect()
}

/// Observer of interval boundaries on a [`ShardedEngine`].
///
/// Called synchronously on the thread that ran detection — the caller's
/// thread in sequential mode, the detect thread in pipeline mode — once
/// per closed interval, *after* the detector produced the report and
/// *before* the engine's own archive consumes the error sketch.
/// Implementations must therefore be cheap-or-offloaded: a slow observer
/// stalls the turnover (in pipeline mode, the whole detect stage).
///
/// `error` is the interval's forecast-error sketch `Se(t)` labeled with
/// the detector interval `t` it covers; `None` while the model is warming
/// up (no error sketch exists yet). Observing never mutates detection:
/// reports are bit-identical with an observer attached or not.
pub trait IntervalObserver: Send + Sync + std::fmt::Debug {
    /// One interval closed with `report`; `error` is `(t, Se(t))` when an
    /// error sketch exists for a (possibly lagged) interval `t`.
    fn interval_closed(&self, report: &IntervalReport, error: Option<(usize, &KarySketch)>);

    /// Blocks until every interval handed to
    /// [`interval_closed`](Self::interval_closed) so far is fully
    /// reflected in the observer's published state. The default is a
    /// no-op — right for observers that do all their work inside the
    /// hook. Observers that offload (e.g. a serving plane's background
    /// snapshot rebuild) override it; [`ShardedEngine::drain`] calls it
    /// after the last in-flight interval so callers that drain see a
    /// view as fresh as the reports they received.
    fn flush(&self) {}
}

/// Configuration for a [`ShardedEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker thread count `N ≥ 1`. `1` degenerates to the
    /// single-threaded pipeline plus one handoff (the bench baseline).
    pub shards: usize,
    /// Updates per batch message. Larger batches amortize channel
    /// locking; smaller ones bound worker lag at interval boundaries.
    pub batch: usize,
    /// Per-shard queue capacity in batches. A full queue back-pressures
    /// [`ShardedEngine::push`] (blocking send), never drops.
    pub queue_capacity: usize,
    /// The detection pipeline the merged sketches feed.
    pub detector: DetectorConfig,
    /// When set, archive every interval's error sketch for historical
    /// change queries.
    pub archive: Option<ArchiveConfig>,
    /// When true, detection runs on a dedicated thread so shard workers
    /// ingest interval `t + 1` while forecast/threshold/key-scoring runs
    /// for interval `t`. Reports are bit-identical to the sequential
    /// engine's; [`ShardedEngine::end_interval_overlapped`] delivers them
    /// with a one-interval lag.
    pub pipeline: bool,
    /// When set, the engine records per-stage timings, queue depths and
    /// throughput counters into these metrics (and hands the detector its
    /// share). Telemetry never changes a report: ingestion and detection
    /// are bit-identical with metrics on or off.
    pub metrics: Option<Arc<PipelineMetrics>>,
    /// When set, the observer is invoked at every interval close with the
    /// report and the interval's error sketch — the hook a serving plane
    /// uses to publish read-optimized snapshots. Observing never changes
    /// a report.
    pub observer: Option<Arc<dyn IntervalObserver>>,
    /// When set, a [`GlrDetector`] rides the ingest path: every pushed
    /// update also feeds the sequential statistic, and
    /// [`ShardedEngine::end_glr_slot`] closes base slots mid-interval.
    /// Provisional alarms surface through
    /// [`ShardedEngine::take_glr_events`] only — `IntervalReport`s are
    /// bit-identical with this layer on or off.
    pub glr: Option<GlrConfig>,
}

impl EngineConfig {
    /// A config with the default batching parameters (512-update
    /// batches, 8 batches in flight per shard), no archive, and
    /// sequential (non-pipelined) detection.
    pub fn new(detector: DetectorConfig, shards: usize) -> Self {
        EngineConfig {
            shards,
            batch: 512,
            queue_capacity: 8,
            detector,
            archive: None,
            pipeline: false,
            metrics: None,
            observer: None,
            glr: None,
        }
    }

    /// Enables the multi-resolution error-sketch archive.
    pub fn with_archive(mut self, archive: ArchiveConfig) -> Self {
        self.archive = Some(archive);
        self
    }

    /// Runs detection on a dedicated thread, overlapped with ingest.
    pub fn with_pipeline(mut self) -> Self {
        self.pipeline = true;
        self
    }

    /// Enables pipeline telemetry.
    pub fn with_metrics(mut self, metrics: Arc<PipelineMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches an interval observer (e.g. a serving plane's snapshot
    /// publisher).
    pub fn with_observer(mut self, observer: Arc<dyn IntervalObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Enables the sub-interval GLR sequential-detection layer.
    pub fn with_glr(mut self, glr: GlrConfig) -> Self {
        self.glr = Some(glr);
        self
    }
}

/// Errors from the sharded engine.
#[derive(Debug)]
pub enum EngineError {
    /// A structurally invalid [`EngineConfig`].
    BadConfig(String),
    /// A worker thread died (panicked) — its queue is disconnected. The
    /// engine cannot guarantee the interval's sketch is complete.
    WorkerLost {
        /// Index of the dead shard.
        shard: usize,
    },
    /// The pipelined detect thread died (panicked); in-flight intervals
    /// and their reports are lost.
    DetectorLost,
    /// The archive rejected a push or was misconfigured.
    Archive(ArchiveError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::BadConfig(why) => write!(f, "invalid engine config: {why}"),
            EngineError::WorkerLost { shard } => write!(f, "shard {shard} worker died"),
            EngineError::DetectorLost => write!(f, "pipelined detect thread died"),
            EngineError::Archive(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ArchiveError> for EngineError {
    fn from(e: ArchiveError) -> Self {
        EngineError::Archive(e)
    }
}

enum WorkerMsg {
    Batch(Vec<(u64, f64)>),
    /// Interval boundary: ship the accumulated sketch and start fresh.
    Flush,
}

struct Worker {
    /// `Option` so `Drop` can hang up (dropping the sender ends the
    /// worker's receive loop) before joining.
    tx: Option<Sender<WorkerMsg>>,
    results: Receiver<KarySketch>,
    /// Per-interval shard statistics, shipped just before the sketch
    /// (present only when telemetry is enabled).
    stats: Option<Receiver<ShardStats>>,
    thread: Option<JoinHandle<()>>,
}

/// Mixes the key so that structured key spaces (sequential IPs, aligned
/// prefixes) still spread evenly across shards, then range-reduces with
/// Lemire's multiply-shift — the `%` it replaces was the only integer
/// division on the per-update path. Any deterministic partition is
/// *correct* (linearity); balance is purely a throughput concern.
/// `scd_traffic::shard::shard_of_key` must stay in lockstep with this.
#[inline]
fn shard_of(key: u64, shards: usize) -> usize {
    range_reduce(mix64(key), shards)
}

/// Key log for the detection pass, gated by [`KeyStrategy`].
///
/// `TwoPass` replays the interval's key stream as it arrived (§3.3), so
/// it needs the full arrival-order list. `Sampled` and `NextInterval`
/// dedup before querying — their reports are a pure function of the
/// *distinct keys in first-seen order* — so logging anything more is
/// wasted memory and a wasted end-of-interval take: a repeated key costs
/// one hash-set probe instead of growing the log.
enum KeyLog {
    /// Arrival-order replay list (grows with the record count).
    Full(Vec<u64>),
    /// First-seen-order distinct keys (grows with the key population).
    Distinct { seen: HashSet<u64, MixBuildHasher>, order: Vec<u64> },
}

impl KeyLog {
    fn for_strategy(strategy: &KeyStrategy) -> KeyLog {
        match strategy {
            KeyStrategy::TwoPass => KeyLog::Full(Vec::new()),
            KeyStrategy::Sampled { .. } | KeyStrategy::NextInterval => {
                KeyLog::Distinct { seen: HashSet::with_hasher(MixBuildHasher), order: Vec::new() }
            }
        }
    }

    #[inline]
    fn record(&mut self, key: u64) {
        match self {
            KeyLog::Full(log) => log.push(key),
            KeyLog::Distinct { seen, order } => {
                if seen.insert(key) {
                    order.push(key);
                }
            }
        }
    }

    /// Takes the interval's key list and resets the log.
    fn take(&mut self) -> Vec<u64> {
        match self {
            KeyLog::Full(log) => std::mem::take(log),
            KeyLog::Distinct { seen, order } => {
                seen.clear();
                std::mem::take(order)
            }
        }
    }

    /// An empty log of the same variant — what a parallel producer builds
    /// for its chunk before the engine absorbs it.
    fn fresh_like(&self) -> KeyLog {
        match self {
            KeyLog::Full(_) => KeyLog::Full(Vec::new()),
            KeyLog::Distinct { .. } => {
                KeyLog::Distinct { seen: HashSet::with_hasher(MixBuildHasher), order: Vec::new() }
            }
        }
    }

    /// Merges a producer-chunk log into this one. Chunks are contiguous
    /// stream ranges absorbed in stream order, so `Full` concatenation
    /// reproduces arrival order exactly, and replaying each chunk's
    /// first-seen list through the global set reproduces global first-seen
    /// order exactly (a key's first global occurrence lies in the earliest
    /// chunk that contains it).
    fn absorb(&mut self, other: KeyLog) {
        match other {
            KeyLog::Full(mut chunk) => match self {
                KeyLog::Full(log) => log.append(&mut chunk),
                KeyLog::Distinct { .. } => unreachable!("mixed key log variants"),
            },
            KeyLog::Distinct { order, .. } => {
                assert!(matches!(self, KeyLog::Distinct { .. }), "mixed key log variants");
                for key in order {
                    self.record(key);
                }
            }
        }
    }
}

/// One producer's output for [`ShardedEngine::push_slice_parallel`]:
/// per-shard update buffers plus the chunk's key log.
type RoutedChunk = (Vec<Vec<(u64, f64)>>, KeyLog);

/// Producer-side routing for [`ShardedEngine::push_slice_parallel`]: walks
/// one contiguous chunk of the update stream, logging keys and
/// partitioning updates into per-shard buffers. Pure function of the
/// chunk — safe to run on any thread.
fn route_chunk(chunk: &[(u64, f64)], shards: usize, mut log: KeyLog) -> RoutedChunk {
    let mut bufs: Vec<Vec<(u64, f64)>> =
        (0..shards).map(|_| Vec::with_capacity(chunk.len() / shards + 1)).collect();
    for &(key, value) in chunk {
        log.record(key);
        bufs[shard_of(key, shards)].push((key, value));
    }
    (bufs, log)
}

/// Messages for the pipelined detect thread. Processed strictly in send
/// order, which is what makes mid-pipeline snapshots well-defined: a
/// `Snapshot` request reflects every interval handed off before it, even
/// ones still being processed when the request was sent.
enum DetectMsg {
    /// A closed interval: the per-shard sketches (in shard order) and the
    /// interval's key log.
    Interval { sketches: Vec<KarySketch>, keys: Vec<u64> },
    /// Checkpoint request: reply with the detector's snapshot.
    Snapshot(Sender<DetectorSnapshot>),
    /// Hand the archive back (end of run). Subsequent intervals are no
    /// longer archived.
    TakeArchive(Sender<Option<SketchArchive<KarySketch>>>),
}

/// Where detection runs: inline on the caller's thread (sequential, the
/// default) or on a dedicated thread overlapped with ingest.
enum DetectBackend {
    Inline {
        /// Boxed: the detector carries its recycled forecast/error/scratch
        /// workspaces inline, dwarfing the `Pipelined` variant otherwise.
        detector: Box<SketchChangeDetector>,
        archive: Option<SketchArchive<KarySketch>>,
        /// Recycled merge destination — the "observed" sketch. `None`
        /// only before the first interval.
        merged: Option<KarySketch>,
        /// Reused container for the per-interval shard sketches.
        shard_bufs: Vec<KarySketch>,
        /// Return paths handing cleared shard sketches back to workers.
        spare_txs: Vec<Sender<KarySketch>>,
    },
    Pipelined {
        /// `Option` so `Drop` can hang up before joining.
        detect_tx: Option<Sender<DetectMsg>>,
        report_rx: Receiver<Result<IntervalReport, EngineError>>,
        /// Emptied shard-sketch containers coming back for reuse.
        vec_return: Receiver<Vec<KarySketch>>,
        /// Intervals handed off whose reports have not been received.
        in_flight: usize,
        thread: Option<JoinHandle<()>>,
    },
}

/// Merges per-shard sketches in fixed shard order. f64 addition is not
/// associative in general, so a deterministic order keeps reruns (and
/// the sequential-vs-pipelined comparison) reproducible — both backends
/// call this exact routine, which is what makes their reports
/// bit-identical.
fn merge_shards(merged: &mut KarySketch, shard_sketches: &[KarySketch]) {
    merged
        .assign_from(&shard_sketches[0])
        .expect("shard sketches share one hash family by construction");
    for sketch in &shard_sketches[1..] {
        merged
            .add_scaled(sketch, 1.0)
            .expect("shard sketches share one hash family by construction");
    }
}

/// Clears the spent shard sketches and hands each back to its worker's
/// spare queue (dropped, not blocked on, if the queue is full).
fn recycle_shards(shard_sketches: &mut Vec<KarySketch>, spare_txs: &[Sender<KarySketch>]) {
    for (shard, mut sketch) in shard_sketches.drain(..).enumerate() {
        sketch.clear();
        let _ = spare_txs[shard].try_send(sketch);
    }
}

/// Pushes an interval's error sketch into the archive, back-filling
/// warm-up (and NextInterval-lag) gaps with zero sketches so archive
/// intervals track detector intervals.
fn archive_error(
    archive: &mut SketchArchive<KarySketch>,
    report: &IntervalReport,
    archived: Option<(usize, KarySketch)>,
) -> Result<(), ArchiveError> {
    if let Some((t, error)) = archived {
        let zero = error.zero_like();
        while archive.next_interval() < t as u64 {
            archive.push(zero.clone(), &[])?;
        }
        let notable = notable_keys(report);
        archive.push(error, &notable)?;
    }
    Ok(())
}

/// Runs detection for one merged interval, archiving the error sketch
/// when an archive is configured. Shared by both backends. The detect
/// and archive stages get separate timings; archive footprint gauges
/// refresh after every push.
fn detect_interval(
    detector: &mut SketchChangeDetector,
    archive: Option<&mut SketchArchive<KarySketch>>,
    observer: Option<&dyn IntervalObserver>,
    observed: &KarySketch,
    keys: Vec<u64>,
    metrics: Option<&PipelineMetrics>,
) -> Result<IntervalReport, EngineError> {
    if let Some(m) = metrics {
        m.engine.intervals_total.inc();
    }
    if archive.is_some() || observer.is_some() {
        // The error sketch is wanted — by the archive, the observer, or
        // both. Both entry points run the same turnover, so the report is
        // bit-identical to the plain path's.
        let sw = Stopwatch::start();
        let (report, archived) = detector.process_observed_archiving(observed, keys);
        if let Some(m) = metrics {
            m.engine.detect_ns.record(sw.elapsed_ns());
        }
        // Observer first: it borrows the error sketch the archive is about
        // to consume.
        if let Some(observer) = observer {
            observer.interval_closed(&report, archived.as_ref().map(|&(t, ref e)| (t, e)));
        }
        if let Some(archive) = archive {
            let sw = Stopwatch::start();
            archive_error(archive, &report, archived)?;
            if let Some(m) = metrics {
                m.engine.archive_ns.record(sw.elapsed_ns());
                m.engine.archive_sketches.set(archive.sketch_count() as f64);
                m.engine.archive_bytes.set(archive.memory_bytes() as f64);
                m.engine.archive_merges.set(archive.merges_total() as f64);
            }
        }
        Ok(report)
    } else {
        // No archive, no observer: the recycling (non-archiving) turnover
        // path.
        let sw = Stopwatch::start();
        let report = detector.process_observed(observed, keys);
        if let Some(m) = metrics {
            m.engine.detect_ns.record(sw.elapsed_ns());
        }
        Ok(report)
    }
}

/// Everything the pipelined detect thread owns: the detector plus its
/// optional attachments (archive, observer, telemetry).
struct DetectSide {
    detector: SketchChangeDetector,
    archive: Option<SketchArchive<KarySketch>>,
    observer: Option<Arc<dyn IntervalObserver>>,
    metrics: Option<Arc<PipelineMetrics>>,
}

/// The pipelined detect thread: owns the detector (and archive), merges
/// shard sketches into a recycled buffer, runs the turnover, returns
/// cleared sketches to the workers, and ships one report per interval.
fn detect_loop(
    side: DetectSide,
    spare_txs: Vec<Sender<KarySketch>>,
    detect_rx: Receiver<DetectMsg>,
    report_tx: Sender<Result<IntervalReport, EngineError>>,
    vec_return: Sender<Vec<KarySketch>>,
) {
    let DetectSide { mut detector, mut archive, observer, metrics } = side;
    let mut merged = KarySketch::with_rows(Arc::clone(detector.rows()));
    while let Ok(msg) = detect_rx.recv() {
        match msg {
            DetectMsg::Interval { mut sketches, keys } => {
                let sw = Stopwatch::start();
                merge_shards(&mut merged, &sketches);
                if let Some(m) = &metrics {
                    m.engine.combine_ns.record(sw.elapsed_ns());
                }
                recycle_shards(&mut sketches, &spare_txs);
                let _ = vec_return.try_send(sketches);
                let result = detect_interval(
                    &mut detector,
                    archive.as_mut(),
                    observer.as_deref(),
                    &merged,
                    keys,
                    metrics.as_deref(),
                );
                if report_tx.send(result).is_err() {
                    break; // engine gone
                }
            }
            DetectMsg::Snapshot(reply) => {
                let _ = reply.send(detector.snapshot());
            }
            DetectMsg::TakeArchive(reply) => {
                let _ = reply.send(archive.take());
            }
        }
    }
}

/// Serializable state of the engine's GLR runtime: the sequential
/// detector plus the engine-side confirm/retract bookkeeping (pending
/// provisionals, interval-close slot markers, the ingest-interval
/// counter). Undrained [`GlrEvent`]s are *not* part of the snapshot —
/// drain them before checkpointing; a restored engine re-emits nothing.
#[derive(Debug, Clone)]
pub struct GlrEngineSnapshot {
    /// The sequential detector's complete state (mid-slot included).
    pub detector: GlrSnapshot,
    /// Provisionals awaiting their interval's report: `(interval, alarm)`.
    pub pending: Vec<(u64, ProvisionalAlarm)>,
    /// Slot counter at each recorded interval close: `(interval, slot)`.
    pub closes: Vec<(u64, u64)>,
    /// Ingest intervals closed so far.
    pub ingest_interval: u64,
}

/// The GLR layer riding the engine's ingest path: the sequential detector
/// plus confirm/retract bookkeeping against interval-close reports.
struct GlrRuntime {
    det: GlrDetector,
    /// Provisionals awaiting their interval's close-time report, oldest
    /// first, tagged with the ingest interval they fired in.
    pending: std::collections::VecDeque<(u64, ProvisionalAlarm)>,
    /// `(interval, slots_closed at its close)` markers, for lead-time
    /// accounting when a provisional is confirmed.
    closes: std::collections::VecDeque<(u64, u64)>,
    /// Event log drained by [`ShardedEngine::take_glr_events`].
    events: Vec<GlrEvent>,
    /// Ingest intervals closed so far — the tag for new provisionals.
    ingest_interval: u64,
}

/// The sharded parallel ingest engine: feed updates with
/// [`push`](Self::push), close each interval with
/// [`end_interval`](Self::end_interval) (or, in pipeline mode,
/// [`end_interval_overlapped`](Self::end_interval_overlapped) +
/// [`drain`](Self::drain)), read reports identical to the
/// single-threaded detector's.
pub struct ShardedEngine {
    shards: usize,
    batch: usize,
    detect: DetectBackend,
    workers: Vec<Worker>,
    /// Per-shard batch under construction.
    pending: Vec<Vec<(u64, f64)>>,
    /// Spent batch `Vec`s coming back from workers for reuse.
    recycle: Receiver<Vec<(u64, f64)>>,
    /// Key log for error reconstruction, shaped by the key strategy.
    keys: KeyLog,
    records_total: u64,
    /// Telemetry sink; `None` keeps every metric branch off the hot path.
    metrics: Option<Arc<PipelineMetrics>>,
    /// Interval-close observer, invoked on the detecting thread. Held
    /// here for the inline backend; the pipelined backend's copy lives on
    /// the detect thread.
    observer: Option<Arc<dyn IntervalObserver>>,
    /// Sub-interval GLR sequential detection, fed on the ingest thread.
    glr: Option<GlrRuntime>,
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("ShardedEngine");
        d.field("shards", &self.shards).field("records_total", &self.records_total);
        match &self.detect {
            DetectBackend::Inline { detector, .. } => {
                d.field("intervals_processed", &detector.intervals_processed());
            }
            DetectBackend::Pipelined { in_flight, .. } => {
                d.field("pipeline", &true).field("in_flight", in_flight);
            }
        }
        d.finish()
    }
}

impl ShardedEngine {
    /// Spawns the worker pool. Workers live for the engine's lifetime —
    /// interval boundaries reuse them; nothing is spawned per interval.
    ///
    /// # Errors
    /// [`EngineError::BadConfig`] for zero shards/batch/queue, or an
    /// archive config that cannot sustain compaction.
    pub fn new(config: EngineConfig) -> Result<Self, EngineError> {
        if config.shards == 0 {
            return Err(EngineError::BadConfig("shards must be at least 1".into()));
        }
        if config.batch == 0 || config.queue_capacity == 0 {
            return Err(EngineError::BadConfig("batch and queue_capacity must be positive".into()));
        }
        let archive = match &config.archive {
            Some(cfg) => Some(SketchArchive::new(*cfg)?),
            None => None,
        };
        let mut detector = SketchChangeDetector::new(config.detector.clone());
        if let Some(m) = &config.metrics {
            detector.set_metrics(Arc::clone(&m.detector));
        }
        // Recycle pool: big enough to hold every batch that can be in
        // flight at once (per shard: the queue plus the one the worker is
        // folding), so a worker's `try_send` only ever drops a Vec in
        // degenerate races, never in steady state.
        let (recycle_tx, recycle_rx) =
            bounded::<Vec<(u64, f64)>>(config.shards * (config.queue_capacity + 1));
        let mut workers = Vec::with_capacity(config.shards);
        let mut spare_txs = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = bounded::<WorkerMsg>(config.queue_capacity);
            let (result_tx, result_rx) = bounded::<KarySketch>(1);
            // Cleared sketches coming back from the merge point; capacity
            // 2 covers the double buffer (one accumulating, one in the
            // detect path).
            let (spare_tx, spare_rx) = bounded::<KarySketch>(2);
            spare_txs.push(spare_tx);
            // Shard statistics ride a side channel, shipped just before
            // the sketch: the engine's blocking sketch recv at the barrier
            // therefore guarantees the stats message is already queued.
            // Capacity 2 covers the flush in progress plus the next one.
            let (stats_tx, stats_rx) = match &config.metrics {
                Some(_) => {
                    let (tx, rx) = bounded::<ShardStats>(2);
                    (Some(tx), Some(rx))
                }
                None => (None, None),
            };
            let rows = Arc::clone(detector.rows());
            let recycle = recycle_tx.clone();
            let thread = std::thread::Builder::new()
                .name(format!("scd-shard-{shard}"))
                .spawn(move || {
                    let mut sketch = KarySketch::with_rows(rows);
                    let mut scratch = BatchScratch::new();
                    // Private accumulator: no atomics, no sharing until
                    // the interval flush.
                    let mut stats = stats_tx.as_ref().map(|_| ShardStats::default());
                    loop {
                        match rx.recv() {
                            Ok(WorkerMsg::Batch(mut batch)) => {
                                match stats.as_mut() {
                                    Some(st) => {
                                        let sw = Stopwatch::start();
                                        sketch.update_batch(&batch, &mut scratch);
                                        st.fold_ns.record(sw.elapsed_ns());
                                        st.batches += 1;
                                        st.records += batch.len() as u64;
                                    }
                                    None => sketch.update_batch(&batch, &mut scratch),
                                }
                                batch.clear();
                                // Pool full (or engine gone): drop the Vec.
                                let _ = recycle.try_send(batch);
                            }
                            Ok(WorkerMsg::Flush) => {
                                if let (Some(st), Some(tx)) = (stats.as_mut(), stats_tx.as_ref()) {
                                    // Dropped (never blocked on) only if
                                    // the engine stopped consuming.
                                    let _ = tx.try_send(std::mem::take(st));
                                }
                                // Start the next interval on a recycled
                                // (already cleared) sketch when one has
                                // come back from the merge point.
                                let fresh = match spare_rx.try_recv() {
                                    Some(spare) => spare,
                                    None => sketch.zero_like(),
                                };
                                let full = std::mem::replace(&mut sketch, fresh);
                                if result_tx.send(full).is_err() {
                                    break;
                                }
                            }
                            // Engine hung up: drain complete, exit.
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawn shard worker");
            workers.push(Worker {
                tx: Some(tx),
                results: result_rx,
                stats: stats_rx,
                thread: Some(thread),
            });
        }
        // The engine holds only the Receiver; worker clones keep the pool
        // alive, and it drains with them on shutdown.
        drop(recycle_tx);
        let keys = KeyLog::for_strategy(&config.detector.key_strategy);
        let detect = if config.pipeline {
            // Depth-1 interval queue: ingest can run at most one interval
            // ahead of detection (the double buffer), and a full queue
            // back-pressures the handoff instead of growing memory.
            let (detect_tx, detect_rx) = bounded::<DetectMsg>(1);
            // Reports outstanding never exceed intervals in flight
            // (queue + processing + handoff), so the detect thread never
            // blocks here during shutdown.
            let (report_tx, report_rx) = bounded::<Result<IntervalReport, EngineError>>(4);
            let (vec_tx, vec_rx) = bounded::<Vec<KarySketch>>(2);
            let metrics = config.metrics.clone();
            let observer = config.observer.clone();
            let thread = std::thread::Builder::new()
                .name("scd-detect".into())
                .spawn(move || {
                    detect_loop(
                        DetectSide { detector, archive, observer, metrics },
                        spare_txs,
                        detect_rx,
                        report_tx,
                        vec_tx,
                    );
                })
                .expect("spawn detect thread");
            DetectBackend::Pipelined {
                detect_tx: Some(detect_tx),
                report_rx,
                vec_return: vec_rx,
                in_flight: 0,
                thread: Some(thread),
            }
        } else {
            DetectBackend::Inline {
                detector: Box::new(detector),
                archive,
                merged: None,
                shard_bufs: Vec::with_capacity(config.shards),
                spare_txs,
            }
        };
        let glr = config.glr.map(|cfg| GlrRuntime {
            det: GlrDetector::new(cfg),
            pending: std::collections::VecDeque::new(),
            closes: std::collections::VecDeque::new(),
            events: Vec::new(),
            ingest_interval: 0,
        });
        Ok(ShardedEngine {
            shards: config.shards,
            batch: config.batch,
            detect,
            workers,
            pending: (0..config.shards).map(|_| Vec::new()).collect(),
            recycle: recycle_rx,
            keys,
            records_total: 0,
            metrics: config.metrics,
            observer: config.observer,
            glr,
        })
    }

    /// Worker count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Whether detection runs on its own thread, overlapped with ingest.
    pub fn is_pipelined(&self) -> bool {
        matches!(self.detect, DetectBackend::Pipelined { .. })
    }

    /// The detection pipeline fed by the merged sketches. `None` in
    /// pipeline mode, where the detector lives on the detect thread —
    /// use [`detector_snapshot`](Self::detector_snapshot) there.
    pub fn detector(&self) -> Option<&SketchChangeDetector> {
        match &self.detect {
            DetectBackend::Inline { detector, .. } => Some(detector),
            DetectBackend::Pipelined { .. } => None,
        }
    }

    /// A checkpointable snapshot of the detector, in either mode. In
    /// pipeline mode this round-trips through the detect thread's
    /// message queue, so it reflects every interval handed off so far —
    /// including one still in flight — making mid-pipeline checkpoints
    /// well-defined.
    ///
    /// # Errors
    /// [`EngineError::DetectorLost`] if the detect thread has died.
    pub fn detector_snapshot(&mut self) -> Result<DetectorSnapshot, EngineError> {
        match &mut self.detect {
            DetectBackend::Inline { detector, .. } => Ok(detector.snapshot()),
            DetectBackend::Pipelined { detect_tx, .. } => {
                let (reply_tx, reply_rx) = bounded(1);
                detect_tx
                    .as_ref()
                    .expect("sender live until drop")
                    .send(DetectMsg::Snapshot(reply_tx))
                    .map_err(|_| EngineError::DetectorLost)?;
                reply_rx.recv().map_err(|_| EngineError::DetectorLost)
            }
        }
    }

    /// The error-sketch archive, if configured. `None` in pipeline mode
    /// (the archive lives on the detect thread — use
    /// [`take_archive`](Self::take_archive) after draining).
    pub fn archive(&self) -> Option<&SketchArchive<KarySketch>> {
        match &self.detect {
            DetectBackend::Inline { archive, .. } => archive.as_ref(),
            DetectBackend::Pipelined { .. } => None,
        }
    }

    /// Takes ownership of the archive (e.g. to persist it via
    /// `scd_archive::wire::write_atomic` after a run). Subsequent
    /// intervals are no longer archived. In pipeline mode this waits for
    /// every interval already handed off (call
    /// [`drain`](Self::drain) first to collect their reports).
    pub fn take_archive(&mut self) -> Option<SketchArchive<KarySketch>> {
        match &mut self.detect {
            DetectBackend::Inline { archive, .. } => archive.take(),
            DetectBackend::Pipelined { detect_tx, .. } => {
                let (reply_tx, reply_rx) = bounded(1);
                detect_tx.as_ref()?.send(DetectMsg::TakeArchive(reply_tx)).ok()?;
                reply_rx.recv().ok().flatten()
            }
        }
    }

    /// Total updates pushed over the engine's lifetime.
    pub fn records_total(&self) -> u64 {
        self.records_total
    }

    fn send(&mut self, shard: usize, msg: WorkerMsg) -> Result<(), EngineError> {
        let tx = self.workers[shard].tx.as_ref().expect("sender live until drop");
        tx.send(msg).map_err(|_| EngineError::WorkerLost { shard })
    }

    /// A batch `Vec` to build into: recycled from a worker when one is
    /// waiting, freshly allocated otherwise (start-up and after drops).
    fn fresh_batch(&self) -> Vec<(u64, f64)> {
        match self.recycle.try_recv() {
            // Cleared by the worker; len 0, capacity already ≈ batch.
            Some(spent) => {
                if let Some(m) = &self.metrics {
                    m.engine.recycle_hits_total.inc();
                }
                spent
            }
            None => {
                if let Some(m) = &self.metrics {
                    m.engine.recycle_misses_total.inc();
                }
                Vec::with_capacity(self.batch)
            }
        }
    }

    /// Ships `pending[shard]` to its worker, replacing it with a recycled
    /// (or fresh) buffer.
    fn flush_shard(&mut self, shard: usize) -> Result<(), EngineError> {
        let replacement = self.fresh_batch();
        let batch = std::mem::replace(&mut self.pending[shard], replacement);
        self.send(shard, WorkerMsg::Batch(batch))
    }

    /// Routes one update to its shard. Blocks (backpressure) if that
    /// shard's queue is full — the engine never silently drops.
    ///
    /// # Errors
    /// [`EngineError::WorkerLost`] if the shard's worker has died.
    #[inline]
    pub fn push(&mut self, key: u64, value: f64) -> Result<(), EngineError> {
        self.keys.record(key);
        if let Some(glr) = &mut self.glr {
            glr.det.observe(key, value);
        }
        self.records_total += 1;
        let shard = shard_of(key, self.shards);
        self.pending[shard].push((key, value));
        if self.pending[shard].len() >= self.batch {
            self.flush_shard(shard)?;
        }
        Ok(())
    }

    /// Routes a whole slice of updates — the bulk form of
    /// [`push`](Self::push), and the API the CLI and trace replay feed.
    /// Equivalent to pushing each item in order (same batches, same key
    /// log, bit-identical reports), but the loop stays inside one call:
    /// no per-update function boundary, and the single-shard case
    /// degenerates to `extend_from_slice` memcpys with no routing at all.
    ///
    /// # Errors
    /// [`EngineError::WorkerLost`] if a shard's worker has died.
    pub fn push_slice(&mut self, items: &[(u64, f64)]) -> Result<(), EngineError> {
        self.records_total += items.len() as u64;
        for &(key, _) in items {
            self.keys.record(key);
        }
        if let Some(glr) = &mut self.glr {
            glr.det.observe_slice(items);
        }
        if self.shards == 1 {
            let mut rest = items;
            while !rest.is_empty() {
                let room = self.batch - self.pending[0].len();
                let (head, tail) = rest.split_at(room.min(rest.len()));
                self.pending[0].extend_from_slice(head);
                rest = tail;
                if self.pending[0].len() >= self.batch {
                    self.flush_shard(0)?;
                }
            }
            return Ok(());
        }
        for &(key, value) in items {
            let shard = shard_of(key, self.shards);
            self.pending[shard].push((key, value));
            if self.pending[shard].len() >= self.batch {
                self.flush_shard(shard)?;
            }
        }
        Ok(())
    }

    /// Multi-producer bulk push: `producers` threads route contiguous
    /// chunks of `items` into private per-shard buffers in parallel, then
    /// the buffers are shipped through the existing worker channels in
    /// producer order. This parallelizes the hash-and-route hop that
    /// [`push_slice`](Self::push_slice) runs single-threaded — the side
    /// `BENCH_ingest.json` showed eating all shard-scaling gains.
    ///
    /// Reports are **bit-identical** to `push_slice` for any `f64` values,
    /// not merely for integer-valued cells: chunks are contiguous and
    /// shipped in chunk order, so every shard worker folds exactly the
    /// per-shard subsequence it would have seen from the sequential call,
    /// and the key log is absorbed in the same stream order (see
    /// `KeyLog::absorb`). Falls back to `push_slice` when the slice is
    /// too small to amortize thread spawns.
    ///
    /// # Errors
    /// [`EngineError::WorkerLost`] if a shard's worker has died.
    pub fn push_slice_parallel(
        &mut self,
        items: &[(u64, f64)],
        producers: usize,
    ) -> Result<(), EngineError> {
        let producers = producers.max(1);
        if producers == 1 || items.len() < producers * self.batch.max(256) {
            return self.push_slice(items);
        }
        // Anything still pending is earlier in the stream than `items`:
        // flush it first so per-shard fold order stays the sequential one.
        for shard in 0..self.shards {
            if !self.pending[shard].is_empty() {
                self.flush_shard(shard)?;
            }
        }
        self.records_total += items.len() as u64;
        // The GLR layer always observes in stream order, regardless of how
        // the routing hop is parallelized (the fallback path above feeds it
        // through `push_slice`).
        if let Some(glr) = &mut self.glr {
            glr.det.observe_slice(items);
        }
        let shards = self.shards;
        let chunk = items.len().div_ceil(producers);
        let routed: Vec<RoutedChunk> = std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|c| {
                    let log = self.keys.fresh_like();
                    scope.spawn(move || route_chunk(c, shards, log))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("producer thread panicked")).collect()
        });
        for (bufs, log) in routed {
            self.keys.absorb(log);
            for (shard, buf) in bufs.into_iter().enumerate() {
                if !buf.is_empty() {
                    self.send(shard, WorkerMsg::Batch(buf))?;
                }
            }
        }
        Ok(())
    }

    /// Flushes every shard's pending batch and requests the interval
    /// sketches.
    fn flush_all(&mut self) -> Result<(), EngineError> {
        let mut deepest = 0usize;
        for shard in 0..self.shards {
            if !self.pending[shard].is_empty() {
                self.flush_shard(shard)?;
            }
            if self.metrics.is_some() {
                // Sampled right before Flush lands: how far the slowest
                // shard is lagging the interval boundary.
                let tx = self.workers[shard].tx.as_ref().expect("sender live until drop");
                deepest = deepest.max(tx.len());
            }
            self.send(shard, WorkerMsg::Flush)?;
        }
        if let Some(m) = &self.metrics {
            m.engine.queue_depth.set(deepest as f64);
        }
        Ok(())
    }

    /// Collects the per-shard interval sketches in shard order. This is
    /// the COMBINE barrier, so it doubles as the telemetry aggregation
    /// point: each worker shipped its [`ShardStats`] before its sketch,
    /// so after the blocking sketch recv the stats are guaranteed queued.
    fn collect_shards(&self, out: &mut Vec<KarySketch>) -> Result<(), EngineError> {
        out.clear();
        for (shard, worker) in self.workers.iter().enumerate() {
            out.push(worker.results.recv().map_err(|_| EngineError::WorkerLost { shard })?);
            if let (Some(stats_rx), Some(m)) = (&worker.stats, &self.metrics) {
                if let Some(st) = stats_rx.try_recv() {
                    st.merge_into(&m.engine);
                }
            }
        }
        Ok(())
    }

    /// Sequential-mode interval close: merge and detect on this thread,
    /// reusing the merge buffer and returning cleared shard sketches to
    /// the workers — steady state allocates nothing on the turnover path.
    fn end_interval_inline(&mut self) -> Result<IntervalReport, EngineError> {
        self.glr_note_interval_close();
        let sw = Stopwatch::start();
        self.flush_all()?;
        let mut bufs = match &mut self.detect {
            DetectBackend::Inline { shard_bufs, .. } => std::mem::take(shard_bufs),
            DetectBackend::Pipelined { .. } => unreachable!("inline close on pipelined backend"),
        };
        self.collect_shards(&mut bufs)?;
        if let Some(m) = &self.metrics {
            m.engine.barrier_ns.record(sw.elapsed_ns());
        }
        let keys = self.keys.take();
        let metrics = self.metrics.clone();
        let observer = self.observer.clone();
        let DetectBackend::Inline { detector, archive, merged, shard_bufs, spare_txs } =
            &mut self.detect
        else {
            unreachable!("inline close on pipelined backend")
        };
        let observed =
            merged.get_or_insert_with(|| KarySketch::with_rows(Arc::clone(detector.rows())));
        let sw = Stopwatch::start();
        merge_shards(observed, &bufs);
        if let Some(m) = &metrics {
            m.engine.combine_ns.record(sw.elapsed_ns());
        }
        recycle_shards(&mut bufs, spare_txs);
        *shard_bufs = bufs;
        let result = detect_interval(
            detector,
            archive.as_mut(),
            observer.as_deref(),
            observed,
            keys,
            metrics.as_deref(),
        );
        if let Ok(report) = &result {
            self.glr_on_report(report);
        }
        result
    }

    /// Pipeline-mode handoff: flush the shards, ship the interval's
    /// sketches and key log to the detect thread, and return immediately
    /// so ingest of the next interval overlaps detection of this one.
    fn ship_interval(&mut self) -> Result<(), EngineError> {
        self.glr_note_interval_close();
        let sw = Stopwatch::start();
        self.flush_all()?;
        let mut bufs = match &mut self.detect {
            DetectBackend::Pipelined { vec_return, .. } => {
                vec_return.try_recv().unwrap_or_default()
            }
            DetectBackend::Inline { .. } => unreachable!("handoff on inline backend"),
        };
        self.collect_shards(&mut bufs)?;
        if let Some(m) = &self.metrics {
            m.engine.barrier_ns.record(sw.elapsed_ns());
        }
        let keys = self.keys.take();
        let DetectBackend::Pipelined { detect_tx, in_flight, .. } = &mut self.detect else {
            unreachable!("handoff on inline backend")
        };
        detect_tx
            .as_ref()
            .expect("sender live until drop")
            .send(DetectMsg::Interval { sketches: bufs, keys })
            .map_err(|_| EngineError::DetectorLost)?;
        *in_flight += 1;
        Ok(())
    }

    /// Receives one outstanding report from the detect thread (blocking).
    fn recv_report(&mut self) -> Result<IntervalReport, EngineError> {
        let report = {
            let DetectBackend::Pipelined { report_rx, in_flight, .. } = &mut self.detect else {
                unreachable!("no reports outstanding on inline backend")
            };
            let report = report_rx.recv().map_err(|_| EngineError::DetectorLost)?;
            *in_flight -= 1;
            report
        };
        if let Ok(r) = &report {
            self.glr_on_report(r);
        }
        report
    }

    /// Whether a GLR sequential-detection layer is running
    /// ([`EngineConfig::with_glr`]).
    pub fn glr_enabled(&self) -> bool {
        self.glr.is_some()
    }

    /// Closes the current GLR base slot and runs the sequential statistic
    /// over the slot window. Call once per sub-interval boundary (e.g.
    /// every `interval / slots` seconds of trace time). A provisional
    /// alarm, if raised, is queued both for event pickup
    /// ([`take_glr_events`](Self::take_glr_events)) and for
    /// confirm/retract matching against the covering interval's report.
    /// No-op without a GLR layer.
    pub fn end_glr_slot(&mut self) {
        if let Some(glr) = &mut self.glr {
            Self::glr_close_slot(glr, self.metrics.as_deref());
        }
    }

    /// Seals the detector's open slot and records any provisional alarm
    /// against the interval currently being ingested.
    fn glr_close_slot(glr: &mut GlrRuntime, metrics: Option<&PipelineMetrics>) {
        if let Some(alarm) = glr.det.end_slot() {
            if let Some(m) = metrics {
                m.glr.provisional_total.inc();
            }
            glr.pending.push_back((glr.ingest_interval, alarm.clone()));
            glr.events.push(GlrEvent::Provisional { interval: glr.ingest_interval, alarm });
        }
    }

    /// Interval-boundary bookkeeping for the GLR layer: force-close a
    /// dirty open slot (updates never bleed across interval boundaries),
    /// remember which slot count the closing interval ended at (for the
    /// lead-time histogram), and advance the ingest interval counter.
    fn glr_note_interval_close(&mut self) {
        if let Some(glr) = &mut self.glr {
            if glr.det.slot_dirty() {
                Self::glr_close_slot(glr, self.metrics.as_deref());
            }
            glr.closes.push_back((glr.ingest_interval, glr.det.slots_closed()));
            glr.ingest_interval += 1;
        }
    }

    /// Resolves pending provisional alarms against a freshly delivered
    /// interval report: a provisional from interval `t` is **confirmed**
    /// when `t`'s warmed-up report alarms on the provisional's hinted
    /// key, and **retracted** otherwise. Reports are matched on
    /// [`IntervalReport::interval`], which is the *covered* interval —
    /// under `NextInterval` the report closing interval `t` covers
    /// `t − 1`, and this matching handles that lag uniformly.
    fn glr_on_report(&mut self, report: &IntervalReport) {
        let Some(glr) = &mut self.glr else { return };
        let rint = report.interval as u64;
        while let Some(&(iv, _)) = glr.pending.front() {
            if iv > rint {
                break;
            }
            if iv == rint && !report.warmed_up {
                // The covering report has not arrived yet (warm-up, or
                // NextInterval's one-close lag). Keep waiting.
                break;
            }
            let (_, alarm) = glr.pending.pop_front().expect("front checked above");
            let confirmed = iv == rint
                && alarm.key_hint.is_some_and(|k| report.alarms.iter().any(|a| a.key == k));
            if confirmed {
                while glr.closes.front().is_some_and(|&(i, _)| i < iv) {
                    glr.closes.pop_front();
                }
                let close_slot = glr.closes.front().filter(|&&(i, _)| i == iv).map(|&(_, s)| s);
                let lead = close_slot.map_or(0, |c| c.saturating_sub(alarm.raised_slot));
                if let Some(m) = &self.metrics {
                    m.glr.confirmed_total.inc();
                    m.glr.lead_slots.record(lead);
                }
                glr.events.push(GlrEvent::Confirmed { interval: iv, lead_slots: lead, alarm });
            } else {
                if let Some(m) = &self.metrics {
                    m.glr.retracted_total.inc();
                }
                glr.events.push(GlrEvent::Retracted { interval: iv, alarm });
            }
        }
        while glr.closes.front().is_some_and(|&(i, _)| i < rint) {
            glr.closes.pop_front();
        }
    }

    /// Drains the GLR event log accumulated since the last call:
    /// provisional alarms in slot order, interleaved with the
    /// confirmations and retractions resolved by delivered interval
    /// reports. Empty without a GLR layer.
    pub fn take_glr_events(&mut self) -> Vec<GlrEvent> {
        self.glr.as_mut().map(|g| std::mem::take(&mut g.events)).unwrap_or_default()
    }

    /// Snapshots the GLR layer — detector state plus the unresolved
    /// provisional queue and interval bookkeeping — for
    /// checkpoint/restore. Undrained events are *not* part of the
    /// snapshot. `None` without a GLR layer.
    pub fn glr_snapshot(&self) -> Option<GlrEngineSnapshot> {
        self.glr.as_ref().map(|g| GlrEngineSnapshot {
            detector: g.det.snapshot(),
            pending: g.pending.iter().cloned().collect(),
            closes: g.closes.iter().copied().collect(),
            ingest_interval: g.ingest_interval,
        })
    }

    /// Restores the GLR layer from a snapshot taken by
    /// [`glr_snapshot`](Self::glr_snapshot). The engine must have been
    /// built with the same [`GlrConfig`]; resumed processing is bit-exact
    /// with the uninterrupted run, including mid-window and mid-slot
    /// interruption points.
    ///
    /// # Errors
    /// [`GlrRestoreError::Config`] when no GLR layer is enabled or the
    /// snapshot shape disagrees with the config;
    /// [`GlrRestoreError::FamilyMismatch`] when the snapshot's sketches
    /// were built over a different hash family.
    pub fn restore_glr(&mut self, snap: GlrEngineSnapshot) -> Result<(), GlrRestoreError> {
        let Some(glr) = &mut self.glr else {
            return Err(GlrRestoreError::Config("engine has no GLR layer enabled".into()));
        };
        glr.det = GlrDetector::restore(glr.det.config().clone(), snap.detector)?;
        glr.pending = snap.pending.into();
        glr.closes = snap.closes.into();
        glr.ingest_interval = snap.ingest_interval;
        glr.events.clear();
        Ok(())
    }

    /// Closes the interval: flushes every shard, merges the per-shard
    /// sketches in shard order, and runs the detection pipeline on the
    /// merged observed sketch — then archives the resulting error sketch
    /// when an archive is configured.
    ///
    /// In pipeline mode this waits for the interval's own report (no
    /// overlap); use
    /// [`end_interval_overlapped`](Self::end_interval_overlapped) to keep
    /// ingest and detection concurrent. When mixing the two styles, call
    /// [`drain`](Self::drain) before this method — a report still pending
    /// from an earlier overlapped close is otherwise discarded here.
    ///
    /// # Errors
    /// [`EngineError::WorkerLost`] if any worker died mid-interval;
    /// [`EngineError::DetectorLost`] if the detect thread died;
    /// [`EngineError::Archive`] if the archive rejects the error sketch.
    pub fn end_interval(&mut self) -> Result<IntervalReport, EngineError> {
        match &self.detect {
            DetectBackend::Inline { .. } => self.end_interval_inline(),
            DetectBackend::Pipelined { .. } => {
                self.ship_interval()?;
                let report = self.drain()?;
                Ok(report.expect("interval just shipped yields a report"))
            }
        }
    }

    /// Closes the interval without waiting for its report: ships interval
    /// `t` to the detect thread and returns interval `t − 1`'s report
    /// (`None` on the first call, when nothing is finished yet). The
    /// final interval's report is delivered by [`drain`](Self::drain).
    ///
    /// In sequential mode there is nothing to overlap with, so this
    /// degenerates to [`end_interval`](Self::end_interval) with the
    /// report wrapped in `Some` — no lag.
    ///
    /// # Errors
    /// As [`end_interval`](Self::end_interval).
    pub fn end_interval_overlapped(&mut self) -> Result<Option<IntervalReport>, EngineError> {
        match &self.detect {
            DetectBackend::Inline { .. } => self.end_interval_inline().map(Some),
            DetectBackend::Pipelined { .. } => {
                self.ship_interval()?;
                let outstanding = match &self.detect {
                    DetectBackend::Pipelined { in_flight, .. } => *in_flight,
                    DetectBackend::Inline { .. } => unreachable!(),
                };
                // Keep exactly one interval in flight: ship t, then wait
                // for t − 1 (already overlapped with t's ingest).
                if outstanding > 1 {
                    self.recv_report().map(Some)
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// Waits for the last in-flight interval and returns its report
    /// (`None` when nothing is outstanding — always in sequential mode).
    ///
    /// # Errors
    /// [`EngineError::DetectorLost`] if the detect thread died, plus any
    /// detection/archive error from the drained interval.
    pub fn drain(&mut self) -> Result<Option<IntervalReport>, EngineError> {
        let mut last = None;
        while matches!(&self.detect, DetectBackend::Pipelined { in_flight, .. } if *in_flight > 0) {
            last = Some(self.recv_report()?);
        }
        if let Some(observer) = &self.observer {
            observer.flush();
        }
        Ok(last)
    }

    /// Convenience: push a whole interval's updates and close it — the
    /// sharded drop-in for `SketchChangeDetector::process_interval`.
    ///
    /// # Errors
    /// As [`push`](Self::push) and [`end_interval`](Self::end_interval).
    pub fn process_interval(
        &mut self,
        items: &[(u64, f64)],
    ) -> Result<IntervalReport, EngineError> {
        self.push_slice(items)?;
        self.end_interval()
    }

    /// [`process_interval`](Self::process_interval) with the
    /// multi-producer source plane: routes via
    /// [`push_slice_parallel`](Self::push_slice_parallel), then closes the
    /// interval. Bit-identical reports; the whole source side runs on
    /// `producers` threads.
    ///
    /// # Errors
    /// As [`push_slice_parallel`](Self::push_slice_parallel) and
    /// [`end_interval`](Self::end_interval).
    pub fn process_interval_parallel(
        &mut self,
        items: &[(u64, f64)],
        producers: usize,
    ) -> Result<IntervalReport, EngineError> {
        self.push_slice_parallel(items, producers)?;
        self.end_interval()
    }

    /// Closes the interval **without running detection**: flushes every
    /// shard, merges the per-shard sketches in shard order, and hands back
    /// the merged observed sketch plus the interval's key log. This is
    /// the ingest-node half of the distributed plane (`scd-net`): each
    /// vantage point runs a `ShardedEngine` for parallel ingest but ships
    /// its interval sketch to an aggregator that COMBINEs all nodes and
    /// runs the one global detector. The embedded detector is not
    /// advanced, so a harvested engine never emits reports of its own.
    ///
    /// Only sequential (non-pipelined) engines support harvesting — in
    /// pipeline mode the interval state lives on the detect thread, which
    /// exists precisely to run the detection this method skips.
    ///
    /// # Errors
    /// [`EngineError::BadConfig`] on a pipelined engine;
    /// [`EngineError::WorkerLost`] if a shard worker died mid-interval.
    pub fn end_interval_sketch(&mut self) -> Result<(KarySketch, Vec<u64>), EngineError> {
        if matches!(self.detect, DetectBackend::Pipelined { .. }) {
            return Err(EngineError::BadConfig(
                "end_interval_sketch requires a non-pipelined engine".into(),
            ));
        }
        let sw = Stopwatch::start();
        self.flush_all()?;
        let mut bufs = match &mut self.detect {
            DetectBackend::Inline { shard_bufs, .. } => std::mem::take(shard_bufs),
            DetectBackend::Pipelined { .. } => unreachable!("checked above"),
        };
        self.collect_shards(&mut bufs)?;
        if let Some(m) = &self.metrics {
            m.engine.barrier_ns.record(sw.elapsed_ns());
        }
        let keys = self.keys.take();
        let metrics = self.metrics.clone();
        let DetectBackend::Inline { detector, shard_bufs, spare_txs, .. } = &mut self.detect else {
            unreachable!("checked above")
        };
        // The caller keeps the merged sketch (it crosses the wire), so it
        // cannot come from the recycled merge buffer.
        let mut observed = KarySketch::with_rows(Arc::clone(detector.rows()));
        let sw = Stopwatch::start();
        merge_shards(&mut observed, &bufs);
        if let Some(m) = &metrics {
            m.engine.combine_ns.record(sw.elapsed_ns());
        }
        recycle_shards(&mut bufs, spare_txs);
        *shard_bufs = bufs;
        Ok((observed, keys))
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        // Hang up every queue first (lets all workers start draining),
        // then join.
        for worker in &mut self.workers {
            worker.tx.take();
        }
        for worker in &mut self.workers {
            if let Some(thread) = worker.thread.take() {
                let _ = thread.join();
            }
        }
        // Then the detect thread: dropping its sender ends its receive
        // loop. Its report queue can absorb every in-flight interval, so
        // it never blocks on the way out.
        if let DetectBackend::Pipelined { detect_tx, thread, .. } = &mut self.detect {
            detect_tx.take();
            if let Some(thread) = thread.take() {
                let _ = thread.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::KeyStrategy;
    use scd_forecast::ModelSpec;
    use scd_sketch::SketchConfig;

    fn config(shards: usize) -> EngineConfig {
        EngineConfig::new(
            DetectorConfig {
                sketch: SketchConfig { h: 3, k: 512, seed: 4 },
                model: ModelSpec::Ewma { alpha: 0.5 },
                threshold: 0.05,
                key_strategy: KeyStrategy::TwoPass,
            },
            shards,
        )
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(matches!(
            ShardedEngine::new(EngineConfig { shards: 0, ..config(1) }),
            Err(EngineError::BadConfig(_))
        ));
        assert!(matches!(
            ShardedEngine::new(EngineConfig { batch: 0, ..config(2) }),
            Err(EngineError::BadConfig(_))
        ));
        let bad_archive = config(2).with_archive(ArchiveConfig {
            max_sketches: 2,
            full_resolution: 4,
            keys_per_epoch: 4,
        });
        assert!(matches!(ShardedEngine::new(bad_archive), Err(EngineError::Archive(_))));
    }

    #[test]
    fn shard_routing_is_balanced() {
        for shards in [2usize, 4, 8] {
            let mut counts = vec![0u64; shards];
            // Sequential keys — the adversarial case for `key % N`.
            for key in 0..8_000u64 {
                counts[shard_of(key, shards)] += 1;
            }
            let expect = 8_000 / shards as u64;
            for (shard, &n) in counts.iter().enumerate() {
                assert!(
                    n > expect / 2 && n < expect * 2,
                    "shard {shard}/{shards}: {n} keys (expected ≈{expect})"
                );
            }
        }
    }

    #[test]
    fn shard_routing_spreads_sequential_ip_streams() {
        // Lemire range reduction maps the TOP bits of the hash to the
        // shard: structured key spaces must still spread after the mix.
        // Model a /16 scan (sequential IPv4 hosts) and a stride-aligned
        // /24 sweep — both adversarial for `key % N` and for any routing
        // that reads low bits directly.
        let scan: Vec<u64> = (0..8_000u64).map(|i| 0x0A00_0000 + i).collect();
        let sweep: Vec<u64> = (0..8_000u64).map(|i| 0xC0A8_0000 + (i << 8)).collect();
        for keys in [&scan, &sweep] {
            for shards in [3usize, 4, 7, 8] {
                let mut counts = vec![0u64; shards];
                for &key in keys {
                    counts[shard_of(key, shards)] += 1;
                }
                let expect = keys.len() as u64 / shards as u64;
                for (shard, &n) in counts.iter().enumerate() {
                    assert!(
                        n > expect / 2 && n < expect * 2,
                        "shard {shard}/{shards}: {n} keys (expected ≈{expect})"
                    );
                }
            }
        }
    }

    #[test]
    fn push_slice_matches_per_update_push() {
        // Same stream through push_slice (in uneven chunks) and through
        // per-update push must produce identical reports — the bulk path
        // is a pure restructuring, for every key strategy.
        for strategy in [
            KeyStrategy::TwoPass,
            KeyStrategy::NextInterval,
            KeyStrategy::Sampled { rate: 0.5, seed: 11 },
        ] {
            for shards in [1usize, 4] {
                let mut cfg = config(shards);
                cfg.detector.key_strategy = strategy;
                cfg.batch = 64; // force mid-slice flushes
                let mut bulk = ShardedEngine::new(cfg.clone()).unwrap();
                let mut scalar = ShardedEngine::new(cfg).unwrap();
                for t in 0..6u64 {
                    let items: Vec<(u64, f64)> =
                        (0..500u64).map(|i| (i % 170, ((i * 31 + t * 13) % 400) as f64)).collect();
                    for chunk in items.chunks(93) {
                        bulk.push_slice(chunk).unwrap();
                    }
                    for &(key, value) in &items {
                        scalar.push(key, value).unwrap();
                    }
                    let a = bulk.end_interval().unwrap();
                    let b = scalar.end_interval().unwrap();
                    assert_eq!(a, b, "{strategy:?} shards={shards} interval {t}");
                }
                assert_eq!(bulk.records_total(), scalar.records_total());
            }
        }
    }

    #[test]
    fn push_slice_parallel_matches_push_slice() {
        // The multi-producer source plane is a pure restructuring: for
        // every key strategy, shard count, and producer count — including
        // fractional values, where bit-identity relies on per-shard fold
        // order, not on integer-exact addition — reports must be
        // identical to the sequential bulk path.
        for strategy in [
            KeyStrategy::TwoPass,
            KeyStrategy::NextInterval,
            KeyStrategy::Sampled { rate: 0.5, seed: 11 },
        ] {
            for shards in [1usize, 4] {
                for producers in [2usize, 3, 8] {
                    let mut cfg = config(shards);
                    cfg.detector.key_strategy = strategy;
                    cfg.batch = 64;
                    let mut par = ShardedEngine::new(cfg.clone()).unwrap();
                    let mut seq = ShardedEngine::new(cfg).unwrap();
                    for t in 0..4u64 {
                        let items: Vec<(u64, f64)> = (0..700u64)
                            .map(|i| (i % 170, ((i * 31 + t * 13) % 400) as f64 + 0.25))
                            .collect();
                        // Mix a partial push first so the parallel path has
                        // to preserve order across pending flushes.
                        par.push_slice(&items[..37]).unwrap();
                        par.push_slice_parallel(&items[37..], producers).unwrap();
                        seq.push_slice(&items).unwrap();
                        let a = par.end_interval().unwrap();
                        let b = seq.end_interval().unwrap();
                        assert_eq!(
                            a, b,
                            "{strategy:?} shards={shards} producers={producers} interval {t}"
                        );
                    }
                    assert_eq!(par.records_total(), seq.records_total());
                }
            }
        }
    }

    #[test]
    fn process_interval_parallel_matches_pipelined_and_sequential() {
        // Parallel source on/off × pipeline on/off: all four engines must
        // emit the same reports.
        let mut cfg = config(4);
        cfg.batch = 64;
        let mut seq = ShardedEngine::new(cfg.clone()).unwrap();
        let mut par = ShardedEngine::new(cfg.clone()).unwrap();
        let mut pipe = ShardedEngine::new(cfg.clone().with_pipeline()).unwrap();
        let mut pipe_par = ShardedEngine::new(cfg.with_pipeline()).unwrap();
        let mut reports: Vec<Vec<IntervalReport>> = vec![Vec::new(); 4];
        for t in 0..6u64 {
            let items: Vec<(u64, f64)> =
                (0..900u64).map(|i| (i % 240, ((i * 7 + t * 29) % 500) as f64)).collect();
            reports[0].push(seq.process_interval(&items).unwrap());
            reports[1].push(par.process_interval_parallel(&items, 3).unwrap());
            pipe.push_slice(&items).unwrap();
            if let Some(r) = pipe.end_interval_overlapped().unwrap() {
                reports[2].push(r);
            }
            pipe_par.push_slice_parallel(&items, 3).unwrap();
            if let Some(r) = pipe_par.end_interval_overlapped().unwrap() {
                reports[3].push(r);
            }
        }
        while let Some(r) = pipe.drain().unwrap() {
            reports[2].push(r);
        }
        while let Some(r) = pipe_par.drain().unwrap() {
            reports[3].push(r);
        }
        assert_eq!(reports[0], reports[1], "parallel source changed sequential reports");
        assert_eq!(reports[0], reports[2], "pipeline changed reports");
        assert_eq!(reports[0], reports[3], "parallel source changed pipelined reports");
    }

    #[test]
    fn single_shard_engine_matches_detector_exactly() {
        let mut engine = ShardedEngine::new(config(1)).unwrap();
        let mut reference = SketchChangeDetector::new(config(1).detector);
        for t in 0..8u64 {
            let items: Vec<(u64, f64)> =
                (0..200u64).map(|k| (k, ((k * 13 + t * 7) % 100) as f64)).collect();
            let sharded = engine.process_interval(&items).unwrap();
            let single = reference.process_interval(&items);
            assert_eq!(sharded, single, "interval {t}");
        }
    }

    #[test]
    fn harvested_sketch_feeds_external_detector_identically() {
        // Harvest-without-detect (the ingest-node path) must hand back
        // exactly the sketch and key log the embedded detector would have
        // consumed: feeding them to an external detector reproduces the
        // in-engine reports bit for bit.
        let mut engine = ShardedEngine::new(config(4)).unwrap();
        let mut reference = ShardedEngine::new(config(4)).unwrap();
        let mut external = SketchChangeDetector::new(config(1).detector);
        for t in 0..6u64 {
            let items: Vec<(u64, f64)> =
                (0..300u64).map(|i| (i % 120, ((i * 17 + t * 5) % 300) as f64)).collect();
            engine.push_slice(&items).unwrap();
            let (sketch, keys) = engine.end_interval_sketch().unwrap();
            let harvested = external.process_observed(&sketch, keys);
            let direct = reference.process_interval(&items).unwrap();
            assert_eq!(harvested, direct, "interval {t}");
        }
        // The embedded detector never advanced.
        assert_eq!(engine.detector().unwrap().intervals_processed(), 0);
    }

    #[test]
    fn harvest_rejects_pipelined_engines() {
        let mut engine = ShardedEngine::new(config(2).with_pipeline()).unwrap();
        engine.push(1, 1.0).unwrap();
        assert!(matches!(engine.end_interval_sketch(), Err(EngineError::BadConfig(_))));
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let mut engine = ShardedEngine::new(config(4)).unwrap();
        engine.push(1, 1.0).unwrap();
        // Dropping with a batch in flight and no flush must not hang.
        drop(engine);
    }

    use crate::glr::{GlrConfig, GlrEvent};
    use scd_hash::SplitMix64;

    fn glr_cfg() -> GlrConfig {
        GlrConfig {
            sketch: SketchConfig { h: 3, k: 1024, seed: 0x5CD },
            projections: 8,
            max_window: 4,
            threshold: 16.0,
            min_baseline: 4,
            hint_keys: 4096,
            cooldown: 8,
        }
    }

    /// Deterministic slot traffic keyed by (interval, slot): ~40 steady
    /// keys with jitter, plus an optional burst update.
    fn glr_slot_items(t: u64, s: u64, burst: Option<(u64, f64)>) -> Vec<(u64, f64)> {
        let mut rng = SplitMix64::new(0x00FE_ED00 ^ (t << 8) ^ s);
        let mut items: Vec<(u64, f64)> =
            (0..40u64).map(|k| (k, 1_000.0 + rng.next_below(101) as f64 - 50.0)).collect();
        if let Some(b) = burst {
            items.push(b);
        }
        items
    }

    #[test]
    fn glr_confirms_a_real_change_ahead_of_interval_close() {
        const SLOTS: u64 = 4;
        let burst_iv = 4u64;
        let burst_slot = 1u64;
        let mut engine = ShardedEngine::new(config(2).with_glr(glr_cfg())).unwrap();
        let mut plain = ShardedEngine::new(config(2)).unwrap();
        let mut events = Vec::new();
        for t in 0..6u64 {
            for s in 0..SLOTS {
                let bursting = (t, s) >= (burst_iv, burst_slot);
                let items = glr_slot_items(t, s, bursting.then_some((777, 40_000.0)));
                engine.push_slice(&items).unwrap();
                plain.push_slice(&items).unwrap();
                engine.end_glr_slot();
            }
            let a = engine.end_interval().unwrap();
            let b = plain.end_interval().unwrap();
            assert_eq!(a, b, "GLR layer changed interval {t}'s report");
            events.extend(engine.take_glr_events());
        }
        let provisional = events
            .iter()
            .find_map(|e| match e {
                GlrEvent::Provisional { interval, alarm } => Some((*interval, alarm.clone())),
                _ => None,
            })
            .expect("burst never raised a provisional");
        assert_eq!(provisional.0, burst_iv, "provisional tagged to the wrong interval");
        assert_eq!(provisional.1.key_hint, Some(777));
        let confirmed = events
            .iter()
            .find_map(|e| match e {
                GlrEvent::Confirmed { interval, lead_slots, alarm } => {
                    Some((*interval, *lead_slots, alarm.clone()))
                }
                _ => None,
            })
            .expect("provisional never confirmed");
        assert_eq!(confirmed.0, burst_iv);
        assert_eq!(confirmed.2, provisional.1, "confirmation carries a different alarm");
        // Fired at least two slots before the interval's closing slot.
        assert!(
            confirmed.1 >= 2,
            "lead of {} slots — provisional barely beat interval close",
            confirmed.1
        );
        // Nothing fired before the burst.
        for e in &events {
            let iv = match e {
                GlrEvent::Provisional { interval, .. }
                | GlrEvent::Confirmed { interval, .. }
                | GlrEvent::Retracted { interval, .. } => *interval,
            };
            assert!(iv >= burst_iv, "event before the burst: {e:?}");
        }
    }

    #[test]
    fn glr_retracts_a_provisional_the_close_detector_cannot_confirm() {
        // Fire during interval 0, whose close-time report is still warming
        // up: the provisional must be retracted once a later warmed-up
        // report proves no confirmation is coming.
        const SLOTS: u64 = 10;
        let mut cfg = glr_cfg();
        cfg.max_window = 2;
        cfg.min_baseline = 2;
        let mut engine = ShardedEngine::new(config(2).with_glr(cfg)).unwrap();
        let mut events = Vec::new();
        for t in 0..2u64 {
            for s in 0..SLOTS {
                let bursting = t == 0 && s >= 6;
                let items = glr_slot_items(t, s, bursting.then_some((777, 40_000.0)));
                engine.push_slice(&items).unwrap();
                engine.end_glr_slot();
            }
            engine.end_interval().unwrap();
            events.extend(engine.take_glr_events());
        }
        assert!(
            events.iter().any(|e| matches!(e, GlrEvent::Provisional { interval: 0, .. })),
            "burst in interval 0 never raised a provisional: {events:?}"
        );
        assert!(
            events.iter().any(|e| matches!(e, GlrEvent::Retracted { interval: 0, .. })),
            "interval 0's provisional was never retracted: {events:?}"
        );
        assert!(
            !events.iter().any(|e| matches!(e, GlrEvent::Confirmed { interval: 0, .. })),
            "a warm-up interval cannot confirm: {events:?}"
        );
    }

    #[test]
    fn glr_events_identical_between_inline_and_pipelined() {
        const SLOTS: u64 = 4;
        let mut inline = ShardedEngine::new(config(2).with_glr(glr_cfg())).unwrap();
        let mut piped = ShardedEngine::new(config(2).with_glr(glr_cfg()).with_pipeline()).unwrap();
        for t in 0..7u64 {
            for s in 0..SLOTS {
                let bursting = t >= 4 && (t, s) >= (4, 1);
                let items = glr_slot_items(t, s, bursting.then_some((42, 40_000.0)));
                inline.push_slice(&items).unwrap();
                piped.push_slice(&items).unwrap();
                inline.end_glr_slot();
                piped.end_glr_slot();
            }
            let a = inline.end_interval().unwrap();
            let b = piped.end_interval().unwrap();
            assert_eq!(a, b, "pipeline changed interval {t}'s report under GLR");
            assert_eq!(
                inline.take_glr_events(),
                piped.take_glr_events(),
                "pipeline changed interval {t}'s GLR events"
            );
        }
    }

    #[test]
    fn glr_engine_snapshot_resumes_bit_exactly_with_pending_provisionals() {
        const SLOTS: u64 = 4;
        let burst = |t: u64, s: u64| ((t, s) >= (4, 1)).then_some((777u64, 40_000.0));
        // Reference: uninterrupted run.
        let mut reference = ShardedEngine::new(config(2).with_glr(glr_cfg())).unwrap();
        let mut want = Vec::new();
        for t in 0..6u64 {
            for s in 0..SLOTS {
                reference.push_slice(&glr_slot_items(t, s, burst(t, s))).unwrap();
                reference.end_glr_slot();
            }
            want.push((reference.end_interval().unwrap(), reference.take_glr_events()));
        }
        // Interrupted run: both engines ingest identically until
        // mid-interval 4, just after the burst slot closed — a provisional
        // is pending, unconfirmed. Engine `b`'s GLR state is then
        // overwritten wholesale from `a`'s snapshot; the remainder must
        // replay bit-exactly, including the pending alarm's confirmation.
        let mut a = ShardedEngine::new(config(2).with_glr(glr_cfg())).unwrap();
        let mut b = ShardedEngine::new(config(2).with_glr(glr_cfg())).unwrap();
        let mut prefix_events = Vec::new();
        let mut resumed = false;
        for t in 0..6u64 {
            for s in 0..SLOTS {
                let items = glr_slot_items(t, s, burst(t, s));
                a.push_slice(&items).unwrap();
                a.end_glr_slot();
                b.push_slice(&items).unwrap();
                b.end_glr_slot();
                if (t, s) == (4, 1) {
                    let snap = a.glr_snapshot().expect("GLR enabled");
                    assert!(!snap.pending.is_empty(), "expected a pending provisional");
                    // Restore discards undrained events, but the snapshot's
                    // pending queue still carries the provisional awaiting
                    // confirmation at interval close — drain first.
                    prefix_events = b.take_glr_events();
                    b.restore_glr(snap).expect("restore");
                    resumed = true;
                }
            }
            let report = b.end_interval().unwrap();
            let mut events = b.take_glr_events();
            a.end_interval().unwrap();
            a.take_glr_events();
            let (ref_report, ref_events) = &want[t as usize];
            assert_eq!(&report, ref_report, "interval {t} report diverged after restore");
            if t == 4 {
                // The provisional event itself was drained just before the
                // restore; re-attach it so the comparison covers the whole
                // interval's event stream.
                let mut all = std::mem::take(&mut prefix_events);
                all.append(&mut events);
                events = all;
            }
            assert_eq!(&events, ref_events, "interval {t} GLR events diverged after restore");
        }
        assert!(resumed);
    }
}
