//! Sharded parallel ingest: N worker threads, one merged sketch, exactly
//! the single-threaded answer.
//!
//! The paper's sketch module is embarrassingly parallel *because the
//! sketch is linear* (§3.1): partition the interval's update stream by
//! key across `N` workers, let each fold its share into a private k-ary
//! sketch over the shared hash family, and COMBINE the per-shard
//! sketches with coefficient 1 at the interval boundary. Per-cell,
//! COMBINE is a sum, and sums don't care how the stream was partitioned
//! — the merged sketch equals the one a single thread would have built.
//! With integer update values (packet and byte counts) every cell is an
//! exact integer sum below 2⁵³, so the equality is **bit for bit**, and
//! the detector's reports — estimates, `ESTIMATEF2`, alarms — are
//! *identical* to the single-threaded pipeline's, not merely close.
//! `tests/engine.rs` asserts exactly that, strategy by strategy.
//!
//! Design notes:
//!
//! * Workers are long-lived `std::thread`s fed update batches over the
//!   bounded channels of [`crate::channel`] — one queue per shard, so a
//!   slow shard back-pressures only its own feeder, and batching keeps
//!   the channel's mutex off the per-update hot path.
//! * Keys are partitioned by a SplitMix64-style bit mix of the key, not
//!   `key % N` — sequential IP keys would otherwise stripe unevenly.
//! * The main thread keeps the arrival-order key log (the §3.3 two-pass
//!   replay list); workers only ever see `(key, value)` pairs, so the
//!   merge point is the *only* synchronization per interval.
//! * When an [`ArchiveConfig`] is supplied, every interval's forecast
//!   error sketch `Se(t)` — handed back by
//!   [`SketchChangeDetector::process_observed_archiving`] — is pushed
//!   into a [`SketchArchive`] keyed by detector interval, with the
//!   report's top error keys as the epoch's directory entries. Warm-up
//!   intervals (no error sketch yet) are back-filled with zero sketches
//!   so archive interval indices always equal detector intervals.

use crate::channel::{bounded, Receiver, Sender};
use crate::detector::{DetectorConfig, IntervalReport, SketchChangeDetector};
use scd_archive::{ArchiveConfig, ArchiveError, SketchArchive};
use scd_sketch::KarySketch;
use std::sync::Arc;
use std::thread::JoinHandle;

/// How many of a report's top error keys are offered to the archive's
/// per-epoch directory (the archive truncates further to its own
/// `keys_per_epoch`).
const NOTABLE_KEYS_OFFERED: usize = 256;

/// Configuration for a [`ShardedEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker thread count `N ≥ 1`. `1` degenerates to the
    /// single-threaded pipeline plus one handoff (the bench baseline).
    pub shards: usize,
    /// Updates per batch message. Larger batches amortize channel
    /// locking; smaller ones bound worker lag at interval boundaries.
    pub batch: usize,
    /// Per-shard queue capacity in batches. A full queue back-pressures
    /// [`ShardedEngine::push`] (blocking send), never drops.
    pub queue_capacity: usize,
    /// The detection pipeline the merged sketches feed.
    pub detector: DetectorConfig,
    /// When set, archive every interval's error sketch for historical
    /// change queries.
    pub archive: Option<ArchiveConfig>,
}

impl EngineConfig {
    /// A config with the default batching parameters (512-update
    /// batches, 8 batches in flight per shard) and no archive.
    pub fn new(detector: DetectorConfig, shards: usize) -> Self {
        EngineConfig { shards, batch: 512, queue_capacity: 8, detector, archive: None }
    }

    /// Enables the multi-resolution error-sketch archive.
    pub fn with_archive(mut self, archive: ArchiveConfig) -> Self {
        self.archive = Some(archive);
        self
    }
}

/// Errors from the sharded engine.
#[derive(Debug)]
pub enum EngineError {
    /// A structurally invalid [`EngineConfig`].
    BadConfig(String),
    /// A worker thread died (panicked) — its queue is disconnected. The
    /// engine cannot guarantee the interval's sketch is complete.
    WorkerLost {
        /// Index of the dead shard.
        shard: usize,
    },
    /// The archive rejected a push or was misconfigured.
    Archive(ArchiveError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::BadConfig(why) => write!(f, "invalid engine config: {why}"),
            EngineError::WorkerLost { shard } => write!(f, "shard {shard} worker died"),
            EngineError::Archive(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ArchiveError> for EngineError {
    fn from(e: ArchiveError) -> Self {
        EngineError::Archive(e)
    }
}

enum WorkerMsg {
    Batch(Vec<(u64, f64)>),
    /// Interval boundary: ship the accumulated sketch and start fresh.
    Flush,
}

struct Worker {
    /// `Option` so `Drop` can hang up (dropping the sender ends the
    /// worker's receive loop) before joining.
    tx: Option<Sender<WorkerMsg>>,
    results: Receiver<KarySketch>,
    thread: Option<JoinHandle<()>>,
}

/// Mixes the key so that structured key spaces (sequential IPs, aligned
/// prefixes) still spread evenly across shards. Any deterministic
/// partition is *correct* (linearity); balance is purely a throughput
/// concern.
#[inline]
fn shard_of(key: u64, shards: usize) -> usize {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % shards as u64) as usize
}

/// The sharded parallel ingest engine: feed updates with
/// [`push`](Self::push), close each interval with
/// [`end_interval`](Self::end_interval), read reports identical to the
/// single-threaded detector's.
pub struct ShardedEngine {
    shards: usize,
    batch: usize,
    detector: SketchChangeDetector,
    archive: Option<SketchArchive<KarySketch>>,
    workers: Vec<Worker>,
    /// Per-shard batch under construction.
    pending: Vec<Vec<(u64, f64)>>,
    /// Arrival-order key log for two-pass error reconstruction.
    keys: Vec<u64>,
    records_total: u64,
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.shards)
            .field("intervals_processed", &self.detector.intervals_processed())
            .finish()
    }
}

impl ShardedEngine {
    /// Spawns the worker pool. Workers live for the engine's lifetime —
    /// interval boundaries reuse them; nothing is spawned per interval.
    ///
    /// # Errors
    /// [`EngineError::BadConfig`] for zero shards/batch/queue, or an
    /// archive config that cannot sustain compaction.
    pub fn new(config: EngineConfig) -> Result<Self, EngineError> {
        if config.shards == 0 {
            return Err(EngineError::BadConfig("shards must be at least 1".into()));
        }
        if config.batch == 0 || config.queue_capacity == 0 {
            return Err(EngineError::BadConfig("batch and queue_capacity must be positive".into()));
        }
        let archive = match &config.archive {
            Some(cfg) => Some(SketchArchive::new(*cfg)?),
            None => None,
        };
        let detector = SketchChangeDetector::new(config.detector.clone());
        let mut workers = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = bounded::<WorkerMsg>(config.queue_capacity);
            let (result_tx, result_rx) = bounded::<KarySketch>(1);
            let rows = Arc::clone(detector.rows());
            let thread = std::thread::Builder::new()
                .name(format!("scd-shard-{shard}"))
                .spawn(move || {
                    let mut sketch = KarySketch::with_rows(rows);
                    loop {
                        match rx.recv() {
                            Ok(WorkerMsg::Batch(batch)) => {
                                for (key, value) in batch {
                                    sketch.update(key, value);
                                }
                            }
                            Ok(WorkerMsg::Flush) => {
                                let fresh = sketch.zero_like();
                                let full = std::mem::replace(&mut sketch, fresh);
                                if result_tx.send(full).is_err() {
                                    break;
                                }
                            }
                            // Engine hung up: drain complete, exit.
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawn shard worker");
            workers.push(Worker { tx: Some(tx), results: result_rx, thread: Some(thread) });
        }
        Ok(ShardedEngine {
            shards: config.shards,
            batch: config.batch,
            detector,
            archive,
            workers,
            pending: (0..config.shards).map(|_| Vec::new()).collect(),
            keys: Vec::new(),
            records_total: 0,
        })
    }

    /// Worker count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The detection pipeline fed by the merged sketches.
    pub fn detector(&self) -> &SketchChangeDetector {
        &self.detector
    }

    /// The error-sketch archive, if configured.
    pub fn archive(&self) -> Option<&SketchArchive<KarySketch>> {
        self.archive.as_ref()
    }

    /// Takes ownership of the archive (e.g. to persist it via
    /// `scd_archive::wire::write_atomic` after a run). Subsequent
    /// intervals are no longer archived.
    pub fn take_archive(&mut self) -> Option<SketchArchive<KarySketch>> {
        self.archive.take()
    }

    /// Total updates pushed over the engine's lifetime.
    pub fn records_total(&self) -> u64 {
        self.records_total
    }

    fn send(&mut self, shard: usize, msg: WorkerMsg) -> Result<(), EngineError> {
        let tx = self.workers[shard].tx.as_ref().expect("sender live until drop");
        tx.send(msg).map_err(|_| EngineError::WorkerLost { shard })
    }

    /// Routes one update to its shard. Blocks (backpressure) if that
    /// shard's queue is full — the engine never silently drops.
    ///
    /// # Errors
    /// [`EngineError::WorkerLost`] if the shard's worker has died.
    pub fn push(&mut self, key: u64, value: f64) -> Result<(), EngineError> {
        self.keys.push(key);
        self.records_total += 1;
        let shard = shard_of(key, self.shards);
        self.pending[shard].push((key, value));
        if self.pending[shard].len() >= self.batch {
            let batch = std::mem::replace(&mut self.pending[shard], Vec::with_capacity(self.batch));
            self.send(shard, WorkerMsg::Batch(batch))?;
        }
        Ok(())
    }

    /// Closes the interval: flushes every shard, COMBINEs the per-shard
    /// sketches in shard order, and runs the detection pipeline on the
    /// merged observed sketch — then archives the resulting error sketch
    /// when an archive is configured.
    ///
    /// # Errors
    /// [`EngineError::WorkerLost`] if any worker died mid-interval;
    /// [`EngineError::Archive`] if the archive rejects the error sketch.
    pub fn end_interval(&mut self) -> Result<IntervalReport, EngineError> {
        for shard in 0..self.shards {
            if !self.pending[shard].is_empty() {
                let batch = std::mem::take(&mut self.pending[shard]);
                self.send(shard, WorkerMsg::Batch(batch))?;
            }
            self.send(shard, WorkerMsg::Flush)?;
        }
        let mut shard_sketches = Vec::with_capacity(self.shards);
        for (shard, worker) in self.workers.iter().enumerate() {
            shard_sketches
                .push(worker.results.recv().map_err(|_| EngineError::WorkerLost { shard })?);
        }
        // COMBINE in fixed shard order: f64 addition is not associative
        // in general, so a deterministic merge order keeps reruns (and
        // the single-vs-sharded comparison) reproducible.
        let terms: Vec<(f64, &KarySketch)> = shard_sketches.iter().map(|s| (1.0, s)).collect();
        let observed = shard_sketches[0]
            .combine(&terms)
            .expect("shard sketches share one hash family by construction");
        let keys = std::mem::take(&mut self.keys);
        let (report, archived) = self.detector.process_observed_archiving(&observed, keys);
        if let (Some(archive), Some((t, error))) = (self.archive.as_mut(), archived) {
            // Back-fill warm-up (and NextInterval-lag) gaps with zero
            // sketches so archive intervals track detector intervals.
            let zero = error.zero_like();
            while archive.next_interval() < t as u64 {
                archive.push(zero.clone(), &[])?;
            }
            let notable: Vec<(u64, f64)> = report
                .errors
                .iter()
                .take(NOTABLE_KEYS_OFFERED)
                .map(|&(key, err)| (key, err.abs()))
                .collect();
            archive.push(error, &notable)?;
        }
        Ok(report)
    }

    /// Convenience: push a whole interval's updates and close it — the
    /// sharded drop-in for `SketchChangeDetector::process_interval`.
    ///
    /// # Errors
    /// As [`push`](Self::push) and [`end_interval`](Self::end_interval).
    pub fn process_interval(
        &mut self,
        items: &[(u64, f64)],
    ) -> Result<IntervalReport, EngineError> {
        for &(key, value) in items {
            self.push(key, value)?;
        }
        self.end_interval()
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        // Hang up every queue first (lets all workers start draining),
        // then join.
        for worker in &mut self.workers {
            worker.tx.take();
        }
        for worker in &mut self.workers {
            if let Some(thread) = worker.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::KeyStrategy;
    use scd_forecast::ModelSpec;
    use scd_sketch::SketchConfig;

    fn config(shards: usize) -> EngineConfig {
        EngineConfig::new(
            DetectorConfig {
                sketch: SketchConfig { h: 3, k: 512, seed: 4 },
                model: ModelSpec::Ewma { alpha: 0.5 },
                threshold: 0.05,
                key_strategy: KeyStrategy::TwoPass,
            },
            shards,
        )
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(matches!(
            ShardedEngine::new(EngineConfig { shards: 0, ..config(1) }),
            Err(EngineError::BadConfig(_))
        ));
        assert!(matches!(
            ShardedEngine::new(EngineConfig { batch: 0, ..config(2) }),
            Err(EngineError::BadConfig(_))
        ));
        let bad_archive = config(2).with_archive(ArchiveConfig {
            max_sketches: 2,
            full_resolution: 4,
            keys_per_epoch: 4,
        });
        assert!(matches!(ShardedEngine::new(bad_archive), Err(EngineError::Archive(_))));
    }

    #[test]
    fn shard_routing_is_balanced() {
        for shards in [2usize, 4, 8] {
            let mut counts = vec![0u64; shards];
            // Sequential keys — the adversarial case for `key % N`.
            for key in 0..8_000u64 {
                counts[shard_of(key, shards)] += 1;
            }
            let expect = 8_000 / shards as u64;
            for (shard, &n) in counts.iter().enumerate() {
                assert!(
                    n > expect / 2 && n < expect * 2,
                    "shard {shard}/{shards}: {n} keys (expected ≈{expect})"
                );
            }
        }
    }

    #[test]
    fn single_shard_engine_matches_detector_exactly() {
        let mut engine = ShardedEngine::new(config(1)).unwrap();
        let mut reference = SketchChangeDetector::new(config(1).detector);
        for t in 0..8u64 {
            let items: Vec<(u64, f64)> =
                (0..200u64).map(|k| (k, ((k * 13 + t * 7) % 100) as f64)).collect();
            let sharded = engine.process_interval(&items).unwrap();
            let single = reference.process_interval(&items);
            assert_eq!(sharded, single, "interval {t}");
        }
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let mut engine = ShardedEngine::new(config(4)).unwrap();
        engine.push(1, 1.0).unwrap();
        // Dropping with a batch in flight and no flush must not hang.
        drop(engine);
    }
}
