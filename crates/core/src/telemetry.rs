//! The pipeline's metric inventory — every counter, gauge and histogram
//! the engine, detector, supervisor and streaming front end report
//! through, registered against one [`scd_obs::Registry`].
//!
//! Design contract (mirrored in DESIGN.md §Observability):
//!
//! * **Aggregation point.** Shard workers never touch shared metrics on
//!   the per-record path. Each worker accumulates a private
//!   `ShardStats` (plain integers + a [`scd_obs::LocalHistogram`]) and
//!   ships it with its interval sketch; the engine folds all of them into
//!   the shared atomics at the existing COMBINE barrier — one merge per
//!   shard per interval, on the thread already waiting there.
//! * **Zero steady-state allocation.** Recording is atomic adds into
//!   fixed-size structures; `ShardStats` is a flat value type recycled
//!   with `mem::take`. The turnover bench asserts the instrumented fused
//!   path still performs zero allocations per interval.
//! * **Invisible to detection.** Telemetry reads timings and counts; it
//!   never touches a sketch, an RNG, or a sort — `IntervalReport`s are
//!   bit-identical with metrics on or off (`tests/telemetry.rs`).

use scd_obs::{Counter, Gauge, Histogram, LocalHistogram, Registry};
use std::sync::Arc;

/// Metrics of the sharded ingest engine: per-stage interval timings,
/// queue depth, buffer-recycling effectiveness, archive footprint.
#[derive(Debug)]
pub struct EngineMetrics {
    /// Intervals closed by the engine.
    pub intervals_total: Arc<Counter>,
    /// Updates folded by shard workers (from merged `ShardStats`).
    pub records_total: Arc<Counter>,
    /// Batches folded by shard workers.
    pub batches_total: Arc<Counter>,
    /// Per-batch sketch fold time on the shard workers (ns).
    pub ingest_batch_ns: Arc<Histogram>,
    /// Interval-close barrier: flushing every shard and collecting the
    /// per-shard sketches (ns).
    pub barrier_ns: Arc<Histogram>,
    /// COMBINE of the per-shard sketches in shard order (ns).
    pub combine_ns: Arc<Histogram>,
    /// Detector turnover — forecast, fused error/F2 sweep, key scan (ns).
    pub detect_ns: Arc<Histogram>,
    /// Archive push + compaction (ns); empty when no archive runs.
    pub archive_ns: Arc<Histogram>,
    /// Deepest per-shard ingest queue observed at the interval close.
    pub queue_depth: Arc<Gauge>,
    /// Batch buffers reused from the recycle channel.
    pub recycle_hits_total: Arc<Counter>,
    /// Batch buffers freshly allocated (start-up, or recycle pool empty).
    pub recycle_misses_total: Arc<Counter>,
    /// Epochs resident in the archive.
    pub archive_sketches: Arc<Gauge>,
    /// Approximate archive memory footprint in bytes.
    pub archive_bytes: Arc<Gauge>,
    /// Buddy merges the archive has performed since birth.
    pub archive_merges: Arc<Gauge>,
}

/// Metrics of the change detector proper.
#[derive(Debug)]
pub struct DetectorMetrics {
    /// Warmed-up intervals scanned (warm-up intervals do not count).
    pub intervals_total: Arc<Counter>,
    /// Keys scored against the error sketch.
    pub keys_scanned_total: Arc<Counter>,
    /// Alarms raised.
    pub alarms_total: Arc<Counter>,
    /// Scanned keys whose estimated error was non-finite (excluded from
    /// alarm eligibility — see `IntervalReport::non_finite_errors`).
    pub non_finite_errors_total: Arc<Counter>,
    /// `ESTIMATEF2(Se(t))` of the most recent interval.
    pub error_f2: Arc<Gauge>,
    /// Alarm threshold `TA` of the most recent interval.
    pub alarm_threshold: Arc<Gauge>,
}

/// Metrics of the sub-interval GLR sequential-detection layer
/// ([`crate::glr`]): provisional alarm lifecycle counts and the
/// detection-latency win measured in base slots.
#[derive(Debug)]
pub struct GlrMetrics {
    /// Provisional alarms raised by the sequential statistic.
    pub provisional_total: Arc<Counter>,
    /// Provisionals confirmed by the interval-close detector.
    pub confirmed_total: Arc<Counter>,
    /// Provisionals retracted (interval closed without a matching alarm).
    pub retracted_total: Arc<Counter>,
    /// Base slots between the provisional firing and its interval's
    /// closing slot — how far ahead of interval close the alarm landed.
    pub lead_slots: Arc<Histogram>,
}

/// Metrics of the supervisor and checkpoint machinery.
#[derive(Debug)]
pub struct SupervisorMetrics {
    /// Supervised detector threads started (fresh or resumed).
    pub started_total: Arc<Counter>,
    /// Panic-triggered restarts absorbed.
    pub restarts_total: Arc<Counter>,
    /// Total milliseconds slept in restart backoff.
    pub backoff_ms_total: Arc<Counter>,
    /// Checkpoints written successfully.
    pub checkpoints_total: Arc<Counter>,
    /// Degraded events (checkpoint unwritable/unusable).
    pub degraded_total: Arc<Counter>,
    /// Restart budgets exhausted (detector down for good).
    pub gave_up_total: Arc<Counter>,
}

/// Metrics of the streaming front end's overload accounting (PR-1's
/// per-report [`crate::detector::DropStats`], accumulated for the run).
#[derive(Debug)]
pub struct StreamMetrics {
    /// Records processed by the streaming detector loop.
    pub records_total: Arc<Counter>,
    /// Records discarded because the input queue was full (`DropNewest`).
    pub dropped_total: Arc<Counter>,
    /// Records admitted by the `Sample` policy (at weight `1/rate`).
    pub sampled_in_total: Arc<Counter>,
    /// Records shed by the `Sample` policy.
    pub shed_total: Arc<Counter>,
}

/// One handle wiring the whole pipeline to a [`Registry`] — pass it to
/// [`crate::engine::EngineConfig::with_metrics`] /
/// [`crate::streaming::StreamingConfig`] and render the registry once
/// per interval.
#[derive(Debug)]
pub struct PipelineMetrics {
    /// Sharded-engine stage metrics.
    pub engine: EngineMetrics,
    /// Detector metrics (shared with the detector via
    /// [`crate::detector::SketchChangeDetector::set_metrics`]).
    pub detector: Arc<DetectorMetrics>,
    /// Supervisor lifecycle metrics.
    pub supervisor: SupervisorMetrics,
    /// Streaming overload metrics.
    pub stream: StreamMetrics,
    /// Sequential GLR layer metrics.
    pub glr: GlrMetrics,
}

impl PipelineMetrics {
    /// Registers the full metric inventory against `registry` and returns
    /// the recording handle. Call once per pipeline; metric names are
    /// globally unique within a registry.
    pub fn register(registry: &Registry) -> Arc<Self> {
        let engine = EngineMetrics {
            intervals_total: registry
                .counter("scd_engine_intervals_total", "intervals closed by the engine"),
            records_total: registry
                .counter("scd_engine_records_total", "updates folded by shard workers"),
            batches_total: registry
                .counter("scd_engine_batches_total", "batches folded by shard workers"),
            ingest_batch_ns: registry
                .histogram("scd_engine_ingest_batch_ns", "per-batch sketch fold time (ns)"),
            barrier_ns: registry
                .histogram("scd_engine_barrier_ns", "interval-close flush+collect barrier (ns)"),
            combine_ns: registry
                .histogram("scd_engine_combine_ns", "per-interval shard COMBINE (ns)"),
            detect_ns: registry
                .histogram("scd_engine_detect_ns", "per-interval detector turnover (ns)"),
            archive_ns: registry
                .histogram("scd_engine_archive_ns", "per-interval archive push (ns)"),
            queue_depth: registry
                .gauge("scd_engine_queue_depth", "deepest shard queue at interval close"),
            recycle_hits_total: registry
                .counter("scd_engine_recycle_hits_total", "batch buffers reused"),
            recycle_misses_total: registry
                .counter("scd_engine_recycle_misses_total", "batch buffers freshly allocated"),
            archive_sketches: registry
                .gauge("scd_archive_sketches", "epochs resident in the archive"),
            archive_bytes: registry
                .gauge("scd_archive_bytes", "approximate archive memory footprint"),
            archive_merges: registry
                .gauge("scd_archive_merges", "buddy merges performed by the archive"),
        };
        let detector = Arc::new(DetectorMetrics {
            intervals_total: registry
                .counter("scd_detector_intervals_total", "warmed-up intervals scanned"),
            keys_scanned_total: registry
                .counter("scd_detector_keys_scanned_total", "keys scored against error sketches"),
            alarms_total: registry.counter("scd_detector_alarms_total", "alarms raised"),
            non_finite_errors_total: registry.counter(
                "scd_detector_non_finite_errors_total",
                "scanned keys with non-finite estimated error",
            ),
            error_f2: registry
                .gauge("scd_detector_error_f2", "ESTIMATEF2 of the latest error sketch"),
            alarm_threshold: registry
                .gauge("scd_detector_alarm_threshold", "latest alarm threshold TA"),
        });
        let supervisor = SupervisorMetrics {
            started_total: registry
                .counter("scd_supervisor_started_total", "supervised detector starts"),
            restarts_total: registry
                .counter("scd_supervisor_restarts_total", "panic-triggered restarts"),
            backoff_ms_total: registry
                .counter("scd_supervisor_backoff_ms_total", "milliseconds slept in backoff"),
            checkpoints_total: registry
                .counter("scd_supervisor_checkpoints_total", "checkpoints written"),
            degraded_total: registry
                .counter("scd_supervisor_degraded_total", "degraded lifecycle events"),
            gave_up_total: registry
                .counter("scd_supervisor_gave_up_total", "restart budgets exhausted"),
        };
        let stream = StreamMetrics {
            records_total: registry
                .counter("scd_stream_records_total", "records processed by the streaming loop"),
            dropped_total: registry
                .counter("scd_stream_dropped_total", "records dropped on a full queue"),
            sampled_in_total: registry
                .counter("scd_stream_sampled_in_total", "records admitted by the Sample policy"),
            shed_total: registry
                .counter("scd_stream_shed_total", "records shed by the Sample policy"),
        };
        let glr = GlrMetrics {
            provisional_total: registry
                .counter("scd_glr_provisional_total", "GLR provisional alarms raised"),
            confirmed_total: registry
                .counter("scd_glr_confirmed_total", "GLR provisionals confirmed at interval close"),
            retracted_total: registry
                .counter("scd_glr_retracted_total", "GLR provisionals retracted at interval close"),
            lead_slots: registry.histogram(
                "scd_glr_lead_slots",
                "base slots between a provisional alarm and its interval close",
            ),
        };
        Arc::new(PipelineMetrics { engine, detector, supervisor, stream, glr })
    }

    /// Folds one interval's [`crate::detector::DropStats`] into the
    /// streaming overload counters.
    pub fn record_drops(&self, drops: &crate::detector::DropStats) {
        self.stream.dropped_total.add(drops.dropped);
        self.stream.sampled_in_total.add(drops.sampled_in);
        self.stream.shed_total.add(drops.shed);
    }
}

/// A shard worker's private per-interval statistics: accumulated with
/// plain (non-atomic) arithmetic on the worker thread, shipped at the
/// interval flush, and folded into the shared [`EngineMetrics`] at the
/// COMBINE barrier. `Default` + `mem::take` keeps the worker's copy
/// alive across intervals with no allocation (the histogram is a fixed
/// inline array).
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardStats {
    /// Batches folded this interval.
    pub(crate) batches: u64,
    /// Updates folded this interval.
    pub(crate) records: u64,
    /// Per-batch fold latency.
    pub(crate) fold_ns: LocalHistogram,
}

impl ShardStats {
    /// Folds this shard's interval into the shared engine metrics.
    pub(crate) fn merge_into(&self, engine: &EngineMetrics) {
        engine.batches_total.add(self.batches);
        engine.records_total.add(self.records);
        engine.ingest_batch_ns.merge_local(&self.fold_ns);
    }
}
