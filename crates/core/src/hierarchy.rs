//! Multi-level (hierarchical) change detection over IP prefixes.
//!
//! §2.1: "It is also possible to define keys with entities like network
//! prefixes or AS numbers to achieve higher levels of aggregation." This
//! module operationalizes that remark: one detector per prefix length
//! (e.g. /32, /24, /16, /8), all fed from the same record stream, with a
//! *drill-down* report that attributes coarse-level alarms to the
//! finer-level keys beneath them.
//!
//! Why run levels simultaneously rather than just the finest?
//!
//! * **Distributed changes** (a scanned /24, a DDoS'd customer block)
//!   spread over many host keys, none individually significant, yet sum to
//!   a large change at the prefix level — invisible at /32, obvious at
//!   /16.
//! * **Localization**: a /8-level alarm alone names a huge region;
//!   drill-down through the levels narrows the change to the finest
//!   prefix that still alarms.
//!
//! Each level has its own sketch and model (all sharing one configuration
//! template); update cost is `levels × H` per record.

use crate::detector::{Alarm, DetectorConfig, IntervalReport, SketchChangeDetector};
use scd_traffic::{FlowRecord, KeySpec, ValueSpec};

/// Configuration: the detector template plus the prefix lengths to watch.
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// Template applied at every level (sketch shape, model, threshold,
    /// key strategy).
    pub detector: DetectorConfig,
    /// Prefix lengths, finest first (e.g. `[32, 24, 16, 8]`). Must be
    /// non-empty, each in `1..=32`, strictly decreasing.
    pub prefix_lengths: Vec<u8>,
    /// Value projected from each record.
    pub value: ValueSpec,
}

/// One level's alarms for an interval.
#[derive(Debug, Clone)]
pub struct LevelReport {
    /// Prefix length of this level.
    pub prefix_len: u8,
    /// The underlying interval report.
    pub report: IntervalReport,
}

/// An alarm localized through the hierarchy: the finest prefix length at
/// which the change crossed its level's threshold, with the chain of
/// coarser alarms above it.
#[derive(Debug, Clone)]
pub struct LocalizedAlarm {
    /// Finest alarming prefix length.
    pub prefix_len: u8,
    /// The alarm at that level (key is the prefix value).
    pub alarm: Alarm,
    /// Prefix lengths of coarser levels that also alarmed for an enclosing
    /// prefix of this key.
    pub confirmed_at: Vec<u8>,
}

/// Simultaneous detectors over a prefix hierarchy.
pub struct HierarchicalDetector {
    levels: Vec<(u8, SketchChangeDetector)>,
    value: ValueSpec,
}

impl std::fmt::Debug for HierarchicalDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HierarchicalDetector")
            .field("levels", &self.levels.iter().map(|(p, _)| *p).collect::<Vec<_>>())
            .finish()
    }
}

impl HierarchicalDetector {
    /// Builds one detector per prefix length.
    ///
    /// # Panics
    /// Panics if the prefix list is empty, out of `1..=32`, or not strictly
    /// decreasing (finest first).
    pub fn new(config: HierarchyConfig) -> Self {
        assert!(!config.prefix_lengths.is_empty(), "need at least one level");
        for w in config.prefix_lengths.windows(2) {
            assert!(w[0] > w[1], "prefix lengths must be strictly decreasing");
        }
        for &p in &config.prefix_lengths {
            assert!((1..=32).contains(&p), "prefix length {p} out of range");
        }
        let levels = config
            .prefix_lengths
            .iter()
            .map(|&p| (p, SketchChangeDetector::new(config.detector.clone())))
            .collect();
        HierarchicalDetector { levels, value: config.value }
    }

    /// The configured prefix lengths, finest first.
    pub fn prefix_lengths(&self) -> Vec<u8> {
        self.levels.iter().map(|(p, _)| *p).collect()
    }

    /// Feeds one interval of flow records to every level and returns the
    /// per-level reports, finest first.
    pub fn process_interval(&mut self, records: &[FlowRecord]) -> Vec<LevelReport> {
        self.levels
            .iter_mut()
            .map(|(prefix_len, det)| {
                let items: Vec<(u64, f64)> = records
                    .iter()
                    .map(|r| (KeySpec::DstPrefix(*prefix_len).key_of(r), self.value.value_of(r)))
                    .collect();
                LevelReport { prefix_len: *prefix_len, report: det.process_interval(&items) }
            })
            .collect()
    }

    /// Localizes an interval's alarms: for each level's alarms whose key is
    /// not covered by a finer-level alarm, emit a [`LocalizedAlarm`] with
    /// the coarser confirmations.
    pub fn localize(reports: &[LevelReport]) -> Vec<LocalizedAlarm> {
        let mut out = Vec::new();
        for (i, level) in reports.iter().enumerate() {
            for alarm in &level.report.alarms {
                // Covered by a finer alarm? (A finer-level alarm whose key,
                // shortened to this level's length, equals this key.)
                let covered = reports[..i].iter().any(|finer| {
                    finer.report.alarms.iter().any(|fa| {
                        fa.key >> (level_shift(finer.prefix_len, level.prefix_len)) == alarm.key
                    })
                });
                if covered {
                    continue;
                }
                // Coarser confirmations.
                let confirmed_at = reports[i + 1..]
                    .iter()
                    .filter(|coarser| {
                        coarser.report.alarms.iter().any(|ca| {
                            alarm.key >> level_shift(level.prefix_len, coarser.prefix_len) == ca.key
                        })
                    })
                    .map(|c| c.prefix_len)
                    .collect();
                out.push(LocalizedAlarm {
                    prefix_len: level.prefix_len,
                    alarm: *alarm,
                    confirmed_at,
                });
            }
        }
        out
    }
}

/// Bits to drop to turn a `fine`-length prefix into a `coarse`-length one.
fn level_shift(fine: u8, coarse: u8) -> u32 {
    debug_assert!(fine >= coarse);
    (fine - coarse) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::KeyStrategy;
    use scd_forecast::ModelSpec;
    use scd_sketch::SketchConfig;

    fn config() -> HierarchyConfig {
        HierarchyConfig {
            detector: DetectorConfig {
                sketch: SketchConfig { h: 3, k: 4096, seed: 5 },
                model: ModelSpec::Ewma { alpha: 0.5 },
                threshold: 0.25,
                key_strategy: KeyStrategy::TwoPass,
            },
            prefix_lengths: vec![32, 24, 16],
            value: ValueSpec::Bytes,
        }
    }

    fn record(dst_ip: u32, bytes: u64, ts: u64) -> FlowRecord {
        FlowRecord {
            timestamp_ms: ts,
            src_ip: 1,
            dst_ip,
            src_port: 9,
            dst_port: 80,
            protocol: 6,
            bytes,
            packets: 1,
        }
    }

    /// Steady background across several /16s.
    fn background(t: usize) -> Vec<FlowRecord> {
        let mut out = Vec::new();
        for host in 0..60u32 {
            let ip = 0x0A00_0000 | ((host % 6) << 16) | ((host / 6) << 8) | 1;
            out.push(record(ip, 20_000, t as u64 * 60_000 + host as u64));
        }
        out
    }

    #[test]
    fn host_level_attack_localizes_to_slash32() {
        let mut det = HierarchicalDetector::new(config());
        for t in 0..3 {
            det.process_interval(&background(t));
        }
        let mut attacked = background(3);
        let victim = 0x0A01_0201u32;
        for i in 0..20 {
            attacked.push(record(victim, 200_000, 180_000 + i));
        }
        let reports = det.process_interval(&attacked);
        let localized = HierarchicalDetector::localize(&reports);
        let host_alarm = localized
            .iter()
            .find(|a| a.prefix_len == 32 && a.alarm.key == victim as u64)
            .expect("host-level localization");
        // The /24 and /16 above it should confirm: 4 MB through one host
        // also moves its enclosing prefixes.
        assert!(
            host_alarm.confirmed_at.contains(&24) || host_alarm.confirmed_at.contains(&16),
            "expected coarse confirmation, got {:?}",
            host_alarm.confirmed_at
        );
        // And no separate /24 alarm for the same region (it is covered).
        assert!(
            !localized.iter().any(|a| a.prefix_len == 24 && a.alarm.key == (victim >> 8) as u64),
            "covered /24 alarm should be folded into the /32 one"
        );
    }

    #[test]
    fn distributed_scan_visible_only_at_coarse_level() {
        // 200 hosts in one /16 each gain a small amount — no host key
        // changes enough to alarm, but the /16 aggregate jumps.
        let mut det = HierarchicalDetector::new(config());
        for t in 0..3 {
            det.process_interval(&background(t));
        }
        let mut scanned = background(3);
        for host in 0..200u32 {
            // 10.2.x.2 for 200 distinct x: one probe per /24, so no /24
            // aggregates enough either — only the /16 sees the full sum.
            let ip = 0x0A02_0000 | (host << 8) | 2;
            scanned.push(record(ip, 6_000, 180_500 + host as u64));
        }
        let reports = det.process_interval(&scanned);
        let localized = HierarchicalDetector::localize(&reports);
        let coarse = localized
            .iter()
            .find(|a| a.prefix_len == 16 && a.alarm.key == 0x0A02)
            .expect("distributed change should alarm at /16");
        assert!(coarse.alarm.estimated_error > 0.0);
        // No single probe host should alarm at /32.
        assert!(
            !localized.iter().any(|a| a.prefix_len == 32 && (a.alarm.key >> 16) == 0x0A02),
            "no individual host should cross the /32 threshold: {localized:?}"
        );
    }

    #[test]
    fn quiet_traffic_quiet_hierarchy() {
        let mut det = HierarchicalDetector::new(config());
        for t in 0..5 {
            let reports = det.process_interval(&background(t));
            if t >= 2 {
                let localized = HierarchicalDetector::localize(&reports);
                assert!(
                    localized.is_empty(),
                    "steady traffic must not alarm at any level: {localized:?}"
                );
            }
        }
    }

    #[test]
    fn reports_ordered_finest_first() {
        let mut det = HierarchicalDetector::new(config());
        let reports = det.process_interval(&background(0));
        let lens: Vec<u8> = reports.iter().map(|r| r.prefix_len).collect();
        assert_eq!(lens, vec![32, 24, 16]);
    }

    #[test]
    #[should_panic(expected = "strictly decreasing")]
    fn unordered_levels_rejected() {
        let mut c = config();
        c.prefix_lengths = vec![16, 24];
        let _ = HierarchicalDetector::new(c);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_levels_rejected() {
        let mut c = config();
        c.prefix_lengths = vec![];
        let _ = HierarchicalDetector::new(c);
    }
}
