//! Staggered multi-phase detection — the second item of the paper's
//! "ongoing work" (§6): *"Avoiding boundary effects due to fixed interval
//! sizes. Possible solutions include (i) simultaneously run multiple models
//! using different interval sizes, and different starting points … The
//! linearity of sketches makes this possible."*
//!
//! A change that straddles an interval boundary is split between two
//! observations, halving its apparent magnitude in each; a fixed grid can
//! therefore miss changes that a shifted grid sees whole.
//! [`StaggeredDetector`] runs `lanes` detectors whose interval boundaries
//! are offset by one *base slot* (of duration `interval / lanes`) from one
//! another.
//!
//! Linearity is what makes this cheap, exactly as the paper observes: each
//! base slot is sketched **once**, and every lane's interval sketch is the
//! COMBINE (sum) of its `lanes` most recent slot sketches — the input
//! stream is never re-scanned per lane.

use crate::detector::{
    Alarm, DetectorConfig, DetectorSnapshot, KeyStrategy, RestoreError, SketchChangeDetector,
};
use scd_hash::HashRows;
use scd_sketch::KarySketch;
use std::collections::HashSet;
use std::sync::Arc;

/// Serializable image of a [`StaggeredDetector`]: the slot counter, the
/// buffered slot sketches + key logs, and every lane's detector state.
/// Embedded in checkpoints so the slot buffer — which the GLR layer's
/// slotting piggybacks on — survives restarts bit-exactly.
#[derive(Debug, Clone)]
pub struct StaggeredSnapshot {
    /// Base slots processed so far.
    pub slot: u64,
    /// Buffered recent slots, oldest first: `(slot sketch, slot keys)`.
    pub recent_slots: Vec<(KarySketch, Vec<u64>)>,
    /// Per-lane detector snapshots, in lane order.
    pub lanes: Vec<DetectorSnapshot>,
}

/// A merged alarm from the staggered ensemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaggeredAlarm {
    /// The flagged key.
    pub key: u64,
    /// The alarm as raised by the detecting lane.
    pub alarm: Alarm,
    /// Which lane (phase offset index) raised it.
    pub lane: usize,
}

/// Runs `lanes` phase-shifted copies of the detector over one update
/// stream, sharing per-slot sketching work through sketch linearity.
///
/// Feed it *base slots*: update batches of duration `interval / lanes`.
/// Each lane fires once per `lanes` slots, at its own phase.
pub struct StaggeredDetector {
    lanes: Vec<SketchChangeDetector>,
    rows: Arc<HashRows>,
    /// Sketch + key list per buffered base slot (most recent `lanes`).
    recent_slots: Vec<(KarySketch, Vec<u64>)>,
    slot: usize,
}

impl std::fmt::Debug for StaggeredDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaggeredDetector")
            .field("lanes", &self.lanes.len())
            .field("slot", &self.slot)
            .finish()
    }
}

impl StaggeredDetector {
    /// Builds `lanes ≥ 1` phase-shifted detectors from the base config.
    /// The config's interval semantics: one detector interval = `lanes`
    /// base slots.
    ///
    /// # Panics
    /// Panics if `lanes == 0` or the config is invalid.
    pub fn new(config: DetectorConfig, lanes: usize) -> Self {
        assert!(lanes >= 1, "need at least one lane");
        assert!(
            matches!(config.key_strategy, KeyStrategy::TwoPass),
            "staggered detection currently supports the two-pass strategy"
        );
        let detectors = (0..lanes).map(|_| SketchChangeDetector::new(config.clone())).collect();
        let rows = Arc::new(HashRows::new(config.sketch.h, config.sketch.k, config.sketch.seed));
        StaggeredDetector { lanes: detectors, rows, recent_slots: Vec::new(), slot: 0 }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the slot buffer holds a full interval's worth of slots.
    /// Until this is true, every [`process_slot`](Self::process_slot) call
    /// returns no alarms: the warm-up guard refuses to COMBINE a *partial*
    /// window, which would halve a change's apparent magnitude — exactly
    /// the boundary effect staggering exists to kill.
    pub fn warmed_up(&self) -> bool {
        self.recent_slots.len() >= self.lanes.len()
    }

    /// Captures the complete mutable state: slot counter, buffered slot
    /// sketches/keys, and every lane's detector snapshot.
    pub fn snapshot(&self) -> StaggeredSnapshot {
        StaggeredSnapshot {
            slot: self.slot as u64,
            recent_slots: self.recent_slots.clone(),
            lanes: self.lanes.iter().map(|d| d.snapshot()).collect(),
        }
    }

    /// Rebuilds a staggered detector from a snapshot taken under the same
    /// config and lane count; the restored ensemble is bit-identical to
    /// the snapshotted one for every subsequent slot — including the
    /// warm-up suppression when the snapshot was taken mid-warm-up.
    ///
    /// # Errors
    /// [`RestoreError`] if the lane count or any lane's state does not
    /// match the config, or a buffered sketch is from another hash family.
    pub fn restore(
        config: DetectorConfig,
        lanes: usize,
        snap: StaggeredSnapshot,
    ) -> Result<Self, RestoreError> {
        if lanes == 0 {
            return Err(RestoreError::BadConfig("need at least one lane".into()));
        }
        if !matches!(config.key_strategy, KeyStrategy::TwoPass) {
            return Err(RestoreError::BadConfig(
                "staggered detection currently supports the two-pass strategy".into(),
            ));
        }
        if snap.lanes.len() != lanes {
            return Err(RestoreError::BadConfig(format!(
                "snapshot has {} lanes, expected {lanes}",
                snap.lanes.len()
            )));
        }
        if snap.recent_slots.len() > lanes {
            return Err(RestoreError::BadConfig(format!(
                "snapshot buffers {} slots, more than {lanes} lanes",
                snap.recent_slots.len()
            )));
        }
        let rows = Arc::new(HashRows::new(config.sketch.h, config.sketch.k, config.sketch.seed));
        for (sketch, _) in &snap.recent_slots {
            if sketch.rows().identity() != rows.identity() {
                return Err(RestoreError::BadConfig(
                    "buffered slot sketch is from a different hash family".into(),
                ));
            }
        }
        let detectors: Result<Vec<_>, _> = snap
            .lanes
            .into_iter()
            .map(|s| SketchChangeDetector::restore(config.clone(), s))
            .collect();
        Ok(StaggeredDetector {
            lanes: detectors?,
            rows,
            recent_slots: snap.recent_slots,
            slot: snap.slot as usize,
        })
    }

    /// Feeds one base slot of updates. The slot is sketched exactly once.
    /// Returns the alarms of the lane (if any) whose interval completed at
    /// this slot boundary, deduplicated by key.
    pub fn process_slot(&mut self, items: &[(u64, f64)]) -> Vec<StaggeredAlarm> {
        let lanes = self.lanes.len();
        // Sketch the slot once (shared across all lanes via linearity).
        let mut slot_sketch = KarySketch::with_rows(Arc::clone(&self.rows));
        let mut keys = Vec::with_capacity(items.len());
        for &(key, value) in items {
            slot_sketch.update(key, value);
            keys.push(key);
        }
        self.recent_slots.push((slot_sketch, keys));
        if self.recent_slots.len() > lanes {
            self.recent_slots.remove(0);
        }
        self.slot += 1;

        // Lane whose boundary falls here: lane i fires when slot ≡ i (mod
        // lanes), consuming the last `lanes` slots as one interval.
        let lane_idx = self.slot % lanes;
        if self.recent_slots.len() < lanes {
            return Vec::new(); // not enough history for a full interval yet
        }
        // Interval sketch = Σ slot sketches (COMBINE, no input re-scan).
        let mut observed = KarySketch::with_rows(Arc::clone(&self.rows));
        let mut interval_keys = Vec::new();
        for (sketch, keys) in &self.recent_slots {
            observed.add_scaled(sketch, 1.0).expect("slot sketches share the configured family");
            interval_keys.extend_from_slice(keys);
        }
        let report = self.lanes[lane_idx].process_observed(&observed, interval_keys);
        let mut seen = HashSet::new();
        report
            .alarms
            .into_iter()
            .filter(|a| seen.insert(a.key))
            .map(|alarm| StaggeredAlarm { key: alarm.key, alarm, lane: lane_idx })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_forecast::ModelSpec;
    use scd_sketch::SketchConfig;

    fn config() -> DetectorConfig {
        DetectorConfig {
            sketch: SketchConfig { h: 3, k: 2048, seed: 6 },
            model: ModelSpec::Ewma { alpha: 0.6 },
            threshold: 0.3,
            key_strategy: KeyStrategy::TwoPass,
        }
    }

    /// Base slots: steady background on keys 1..=3; a burst on key 99 that
    /// straddles an aligned boundary (half in each adjacent interval) but
    /// sits wholly inside one staggered lane's interval.
    fn slots(burst_at: usize, n: usize) -> Vec<Vec<(u64, f64)>> {
        (0..n)
            .map(|s| {
                let mut v = vec![(1u64, 1000.0), (2, 800.0), (3, 600.0)];
                if s == burst_at || s == burst_at + 1 {
                    v.push((99, 50_000.0));
                }
                v
            })
            .collect()
    }

    #[test]
    fn straddling_burst_caught_by_some_lane() {
        // 2 lanes over 2-slot intervals; the burst covers slots 9 and 10,
        // which an aligned (even-boundary) grid splits across intervals but
        // the odd-phase lane sees whole.
        let mut det = StaggeredDetector::new(config(), 2);
        let mut caught = false;
        for (s, items) in slots(9, 16).iter().enumerate() {
            for alarm in det.process_slot(items) {
                if alarm.key == 99 && s >= 9 {
                    caught = true;
                }
            }
        }
        assert!(caught, "no lane caught the straddling burst");
    }

    #[test]
    fn single_lane_matches_plain_detector() {
        let mut staggered = StaggeredDetector::new(config(), 1);
        let mut plain = SketchChangeDetector::new(config());
        for items in slots(5, 10) {
            let sa = staggered.process_slot(&items);
            let pa = plain.process_interval(&items);
            let sk: Vec<u64> = sa.iter().map(|a| a.key).collect();
            let pk: Vec<u64> = pa.alarms.iter().map(|a| a.key).collect();
            assert_eq!(sk, pk);
        }
    }

    #[test]
    fn each_slot_reports_at_most_one_lane() {
        let mut det = StaggeredDetector::new(config(), 3);
        for items in slots(7, 12) {
            let alarms = det.process_slot(&items);
            let lanes: HashSet<usize> = alarms.iter().map(|a| a.lane).collect();
            assert!(lanes.len() <= 1, "one lane per slot boundary");
        }
    }

    #[test]
    fn keys_deduplicated_within_report() {
        let mut det = StaggeredDetector::new(config(), 2);
        for s in 0..8 {
            // Duplicate updates for the same key within a slot.
            let items = vec![(5u64, 100.0), (5, 100.0), (6, 50.0)];
            let alarms = det.process_slot(&items);
            let keys: Vec<u64> = alarms.iter().map(|a| a.key).collect();
            let mut dedup = keys.clone();
            dedup.dedup();
            assert_eq!(keys, dedup, "slot {s}");
        }
    }

    #[test]
    fn lane_interval_equals_sum_of_slots() {
        // The COMBINE path must agree with direct per-interval sketching:
        // run 2-lane staggered and a plain detector fed the concatenated
        // slot pairs at the aligned phase; their alarm sets must coincide
        // on aligned boundaries.
        let mut staggered = StaggeredDetector::new(config(), 2);
        let mut plain = SketchChangeDetector::new(config());
        let all = slots(4, 12);
        let mut plain_alarms: Vec<Vec<u64>> = Vec::new();
        for pair in all.chunks(2) {
            if pair.len() == 2 {
                let merged: Vec<(u64, f64)> =
                    pair[0].iter().chain(pair[1].iter()).copied().collect();
                plain_alarms
                    .push(plain.process_interval(&merged).alarms.iter().map(|a| a.key).collect());
            }
        }
        let mut staggered_aligned: Vec<Vec<u64>> = Vec::new();
        for (s, items) in all.iter().enumerate() {
            let alarms = det_keys(&mut staggered, items);
            if s % 2 == 1 {
                // Aligned lane fires on odd slot indices (slot counter hits
                // an even multiple after incrementing).
                staggered_aligned.push(alarms);
            }
        }
        assert_eq!(plain_alarms, staggered_aligned);
    }

    fn det_keys(det: &mut StaggeredDetector, items: &[(u64, f64)]) -> Vec<u64> {
        det.process_slot(items).iter().map(|a| a.key).collect()
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = StaggeredDetector::new(config(), 0);
    }

    /// Warm-up boundary regression (ISSUE 10 audit): a change planted in
    /// slot 0 must never surface through a *partial* window. Until
    /// `lanes` slots are buffered, a lane interval would COMBINE fewer
    /// slots than a full interval holds, showing the burst at reduced
    /// magnitude against full-interval baselines — the guard suppresses
    /// every report until the buffer holds a complete window.
    #[test]
    fn change_in_slot_zero_never_fires_on_a_partial_window() {
        for lanes in [2usize, 3, 4, 5] {
            let mut det = StaggeredDetector::new(config(), lanes);
            for s in 0..lanes * 4 {
                let mut items = vec![(1u64, 1000.0), (2, 800.0), (3, 600.0)];
                if s == 0 {
                    items.push((42, 500_000.0));
                }
                let warmed_before = det.warmed_up();
                let alarms = det.process_slot(&items);
                if s + 1 < lanes {
                    assert!(!warmed_before, "warm-up ended early at slot {s} (lanes={lanes})");
                    assert!(
                        alarms.is_empty(),
                        "lane fired on a partial {}-slot window (lanes={lanes})",
                        s + 1
                    );
                } else {
                    assert!(det.warmed_up(), "still cold after {} slots (lanes={lanes})", s + 1);
                }
            }
        }
    }

    /// Snapshot/restore round-trips bit-exactly, including mid-warm-up:
    /// a detector restored from a snapshot taken before the slot buffer
    /// filled must keep suppressing partial windows and then produce the
    /// exact alarm stream of the uninterrupted run.
    #[test]
    fn snapshot_restore_is_bit_exact_even_mid_warm_up() {
        let lanes = 3;
        let all = slots(6, 18);
        for snap_at in [1usize, 2, 7] {
            let mut reference = StaggeredDetector::new(config(), lanes);
            let mut interrupted = StaggeredDetector::new(config(), lanes);
            let mut ref_alarms = Vec::new();
            let mut got_alarms = Vec::new();
            for (s, items) in all.iter().enumerate() {
                ref_alarms.push(reference.process_slot(items));
                if s == snap_at {
                    let snap = interrupted.snapshot();
                    interrupted = StaggeredDetector::restore(config(), lanes, snap)
                        .expect("restore staggered snapshot");
                    // `interrupted` has processed slots 0..s at this point.
                    assert_eq!(interrupted.warmed_up(), s >= lanes);
                }
                got_alarms.push(interrupted.process_slot(items));
            }
            assert_eq!(ref_alarms, got_alarms, "divergence after restore at slot {snap_at}");
        }
    }

    #[test]
    fn restore_rejects_bad_shapes() {
        let det = StaggeredDetector::new(config(), 2);
        let snap = det.snapshot();
        assert!(StaggeredDetector::restore(config(), 3, snap.clone()).is_err());
        assert!(StaggeredDetector::restore(config(), 0, snap.clone()).is_err());
        let mut wrong_family = config();
        wrong_family.sketch.seed ^= 1;
        let mut fed = StaggeredDetector::new(config(), 2);
        fed.process_slot(&[(1, 10.0)]);
        assert!(StaggeredDetector::restore(wrong_family, 2, fed.snapshot()).is_err());
    }
}
