//! Record sampling in front of the sketch — the paper's fourth "ongoing
//! work" item (§6): *"sampling is increasingly being used in ISP network
//! measurement infrastructures … We plan to explore combining sampling
//! techniques with our approach for increased scalability."*
//!
//! [`UpdateSampler`] thins an update stream by keeping each record with
//! probability `p` and scaling kept values by `1/p` (Horvitz–Thompson),
//! so the sketched totals — and therefore the forecasts built on them —
//! remain **unbiased**. The price is extra variance in `So(t)`:
//! `Var[ŝ_a] = v̄_a² (1−p)/p · n_a` for a flow with `n_a` records, which
//! adds to the sketch's own `F2/(K−1)` estimation noise. The
//! `sampling_accuracy` test quantifies the tradeoff.

use scd_hash::SplitMix64;

/// Bernoulli record sampler with unbiased value rescaling.
#[derive(Debug, Clone)]
pub struct UpdateSampler {
    rate: f64,
    rng: SplitMix64,
}

impl UpdateSampler {
    /// Creates a sampler keeping each update with probability `rate`.
    ///
    /// # Panics
    /// Panics unless `0 < rate ≤ 1`.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "sampling rate must be in (0, 1], got {rate}");
        UpdateSampler { rate, rng: SplitMix64::new(seed) }
    }

    /// The configured sampling rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// One Bernoulli keep/shed decision at probability `rate`, consuming
    /// one draw from `rng`. This is the **single** sampling predicate in
    /// the crate — the sampler itself, the detector's
    /// [`crate::detector::KeyStrategy::Sampled`] key scan and the
    /// streaming `Sample` overload policy all route through it, so their
    /// decisions agree for a shared `(rate, seed)`.
    ///
    /// Semantics: keep iff `next_u64() < ⌊rate · 2⁶⁴⌋`, i.e. keep
    /// probability is exact to within 2⁻⁶⁴ across the whole range.
    /// `rate = 0` keeps nothing and `rate ≥ 1` keeps everything (without
    /// consuming a draw) — unlike the previous inline `<= threshold`
    /// comparisons, which kept rate-ε keys with probability ≥ 2⁻⁶⁴ and,
    /// because `u64::MAX as f64` rounds up to 2⁶⁴, saturated every rate
    /// above 1 − 2⁻⁶⁴ into "always keep".
    #[inline]
    pub fn keep(rate: f64, rng: &mut SplitMix64) -> bool {
        if rate >= 1.0 {
            return true;
        }
        // 2⁶⁴ exactly; for rate < 1 the product stays below 2⁶⁴, so the
        // cast is a plain floor, not a saturation.
        rng.next_u64() < (rate * 18_446_744_073_709_551_616.0) as u64
    }

    /// Samples one update: `Some((key, value / rate))` if kept.
    #[inline]
    pub fn sample(&mut self, key: u64, value: f64) -> Option<(u64, f64)> {
        if Self::keep(self.rate, &mut self.rng) {
            Some((key, value / self.rate))
        } else {
            None
        }
    }

    /// Thins a whole interval of updates.
    pub fn sample_interval(&mut self, items: &[(u64, f64)]) -> Vec<(u64, f64)> {
        items.iter().filter_map(|&(k, v)| self.sample(k, v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_rate_close_to_configured() {
        let mut s = UpdateSampler::new(0.25, 7);
        let items: Vec<(u64, f64)> = (0..40_000u64).map(|k| (k, 1.0)).collect();
        let kept = s.sample_interval(&items);
        let rate = kept.len() as f64 / items.len() as f64;
        assert!((rate - 0.25).abs() < 0.02, "kept rate {rate}");
    }

    #[test]
    fn totals_are_unbiased() {
        // Sampled-and-rescaled total ≈ true total.
        let items: Vec<(u64, f64)> = (0..20_000u64).map(|k| (k, (k % 13) as f64 + 1.0)).collect();
        let truth: f64 = items.iter().map(|&(_, v)| v).sum();
        let mut total = 0.0;
        let reps = 20;
        for seed in 0..reps {
            let mut s = UpdateSampler::new(0.1, seed);
            total += s.sample_interval(&items).iter().map(|&(_, v)| v).sum::<f64>();
        }
        let mean = total / reps as f64;
        assert!((mean - truth).abs() < 0.03 * truth, "mean sampled total {mean} vs truth {truth}");
    }

    #[test]
    fn rate_one_keeps_everything_unscaled() {
        let mut s = UpdateSampler::new(1.0, 3);
        let items = vec![(1u64, 5.0), (2, 7.0)];
        assert_eq!(s.sample_interval(&items), items);
    }

    #[test]
    fn values_rescaled_by_inverse_rate() {
        let mut s = UpdateSampler::new(0.5, 11);
        for _ in 0..100 {
            if let Some((_, v)) = s.sample(9, 3.0) {
                assert_eq!(v, 6.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn zero_rate_rejected() {
        let _ = UpdateSampler::new(0.0, 0);
    }

    #[test]
    fn keep_boundary_rates_are_exact() {
        // rate 0 keeps nothing — the old `<= (0.0 * MAX) as u64` form kept
        // every key whose draw was exactly 0 (probability 2⁻⁶⁴ each).
        let mut rng = SplitMix64::new(42);
        assert!((0..10_000).all(|_| !UpdateSampler::keep(0.0, &mut rng)));
        // rate ≥ 1 keeps everything without consuming a draw.
        let mut rng = SplitMix64::new(42);
        let before = rng.state();
        assert!((0..10_000).all(|_| UpdateSampler::keep(1.0, &mut rng)));
        assert_eq!(rng.state(), before);
        // A rate within 2⁻⁵³ of 1 is *not* saturated into "always keep":
        // its threshold is strictly below 2⁶⁴, so some draw is shed.
        let rate = 1.0 - f64::EPSILON;
        let threshold = (rate * 18_446_744_073_709_551_616.0) as u64;
        assert!(threshold < u64::MAX, "threshold must not saturate");
    }

    #[test]
    fn sample_routes_through_shared_keep() {
        // The sampler's own decisions replay exactly from the shared
        // predicate with the same (rate, seed).
        let mut s = UpdateSampler::new(0.3, 11);
        let mut rng = SplitMix64::new(11);
        for key in 0..2_000u64 {
            let kept = s.sample(key, 1.0).is_some();
            assert_eq!(kept, UpdateSampler::keep(0.3, &mut rng), "diverged at key {key}");
        }
    }

    /// End-to-end: sampled detection still finds a large spike, losing only
    /// precision on small flows.
    #[test]
    fn sampling_accuracy() {
        use crate::detector::{DetectorConfig, KeyStrategy, SketchChangeDetector};
        use scd_forecast::ModelSpec;
        use scd_sketch::SketchConfig;

        let mk = || {
            SketchChangeDetector::new(DetectorConfig {
                sketch: SketchConfig { h: 5, k: 8192, seed: 2 },
                model: ModelSpec::Ewma { alpha: 0.5 },
                threshold: 0.2,
                key_strategy: KeyStrategy::TwoPass,
            })
        };
        let mut full = mk();
        let mut thinned = mk();
        let mut sampler = UpdateSampler::new(0.2, 9);

        // Steady traffic: 500 flows x 20 records each; spike on key 7 at t=3.
        for t in 0..5 {
            let mut items = Vec::new();
            for key in 0..500u64 {
                for r in 0..20 {
                    let v = if key == 7 && t == 3 { 5_000.0 } else { 100.0 };
                    items.push((key, v + (r % 3) as f64));
                }
            }
            let full_report = full.process_interval(&items);
            let thin_items = sampler.sample_interval(&items);
            let thin_report = thinned.process_interval(&thin_items);
            if t == 3 {
                assert!(full_report.alarms.iter().any(|a| a.key == 7));
                assert!(
                    thin_report.alarms.iter().any(|a| a.key == 7),
                    "sampled pipeline missed the spike: {:?}",
                    thin_report.alarms
                );
            }
        }
    }
}
