//! Durable checkpoints of a running detector, for crash recovery.
//!
//! A checkpoint is a single self-describing binary blob holding everything
//! needed to resume a streaming detector exactly where it left off: the
//! [`DetectorConfig`] (so a restored run cannot silently diverge from the
//! config it was started with), the [`DetectorSnapshot`] (model state,
//! pending error sketch, sampler state, interval counter), and the
//! streaming binner's position (the event-time index of the interval being
//! accumulated and the running record count).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "SCDCKPT1"                               magic, 8 bytes
//! h: u32, k: u32, seed: u64               sketch shape
//! model: u32 len + utf-8 compact spec     e.g. "nshw:0.2,0.4"
//! threshold: f64
//! key strategy: u8 tag (+ rate f64 + seed u64 for Sampled)
//! intervals_processed: u64
//! sampler_state: u64
//! pending_error: u8 flag (+ interval u64 + sketch blob)
//! model state: u8 tag + variant payload   (sketch blobs are u64 len +
//!                                          scd-sketch wire bytes)
//! binner: u8 flag (+ next_interval u64), processed: u64
//! crc32: u32                              over every preceding byte
//! ```
//!
//! The trailing CRC-32 means any single-byte corruption anywhere in the
//! file is detected before any state is trusted; each embedded sketch blob
//! additionally carries its own wire-format checksum. Writes go through a
//! temp file plus atomic rename, so a crash mid-write leaves the previous
//! checkpoint intact — the supervisor never sees a torn file.
//!
//! Version 2 (`"SCDCKPT2"`) appends two optional sections between
//! `processed` and the CRC footer — the staggered-lane state
//! ([`StaggeredSnapshot`] plus its lane count) and the GLR sequential
//! layer ([`GlrEngineSnapshot`] plus its [`GlrConfig`]) — each behind a
//! one-byte presence flag. A checkpoint carrying neither section is
//! still written as byte-identical version 1, and version-1 files load
//! unchanged, so pre-existing checkpoints survive the upgrade in both
//! directions.

use crate::detector::{
    DetectorConfig, DetectorSnapshot, KeyStrategy, RestoreError, SketchChangeDetector,
};
use crate::engine::GlrEngineSnapshot;
use crate::glr::{GlrConfig, GlrSlotSnapshot, GlrSnapshot, ProvisionalAlarm};
use crate::staggered::{StaggeredDetector, StaggeredSnapshot};
use scd_forecast::{ModelSpec, ModelState, NshwParts, ShwParts};
use scd_hash::byteio::{self, Cursor};
use scd_hash::{crc32, HashRows};
use scd_sketch::{wire, KarySketch, SketchConfig};
use std::path::Path;
use std::sync::Arc;

/// File magic for checkpoint version 1.
pub const MAGIC: &[u8; 8] = b"SCDCKPT1";

/// File magic for checkpoint version 2 (adds the optional staggered-lane
/// and GLR sections). Emitted only when at least one section is present.
pub const MAGIC_V2: &[u8; 8] = b"SCDCKPT2";

/// Everything needed to resume a streaming detector after a crash.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The detector's configuration at checkpoint time.
    pub config: DetectorConfig,
    /// The detector's mutable state.
    pub snapshot: DetectorSnapshot,
    /// Event-time index of the interval the streaming binner was
    /// accumulating (`None` if no record had arrived yet). Records binned
    /// into this interval before the crash are the "checkpoint gap" — they
    /// are lost; everything up to the previous flush is not.
    pub next_interval: Option<u64>,
    /// Records processed up to the last completed interval.
    pub processed: u64,
    /// Staggered-lane state (lane count + full snapshot), when the run
    /// used [`StaggeredDetector`]. `None` keeps the file at version 1.
    pub staggered: Option<(usize, StaggeredSnapshot)>,
    /// GLR sequential-layer state (configuration + engine snapshot), when
    /// the run used `--glr`. `None` keeps the file at version 1.
    pub glr: Option<(GlrConfig, GlrEngineSnapshot)>,
}

/// Errors from reading or writing checkpoints.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file ends before its structure does.
    Truncated,
    /// The CRC-32 footer does not match the payload.
    BadChecksum {
        /// Checksum computed over the payload as read.
        computed: u32,
        /// Checksum stored in the footer.
        stored: u32,
    },
    /// A structurally invalid field (bad model spec, unknown tag, bad
    /// UTF-8).
    Malformed(String),
    /// An embedded sketch blob failed to decode.
    Sketch(wire::WireError),
    /// The decoded state was rejected by the detector.
    Restore(RestoreError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o: {e}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadChecksum { computed, stored } => {
                write!(f, "checkpoint corrupt: crc32 {computed:#010x} != stored {stored:#010x}")
            }
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CheckpointError::Sketch(e) => write!(f, "embedded sketch: {e}"),
            CheckpointError::Restore(e) => write!(f, "checkpoint rejected: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<byteio::ShortInput> for CheckpointError {
    fn from(_: byteio::ShortInput) -> Self {
        CheckpointError::Truncated
    }
}

impl From<wire::WireError> for CheckpointError {
    fn from(e: wire::WireError) -> Self {
        CheckpointError::Sketch(e)
    }
}

fn put_sketch(out: &mut Vec<u8>, sketch: &KarySketch) {
    let blob = wire::to_bytes(sketch);
    byteio::put_u64(out, blob.len() as u64);
    out.extend_from_slice(&blob);
}

fn take_sketch(cur: &mut Cursor<'_>, rows: &Arc<HashRows>) -> Result<KarySketch, CheckpointError> {
    let len = cur.u64()? as usize;
    let blob = cur.take(len)?;
    Ok(wire::from_bytes_with_rows(blob, rows)?)
}

fn put_opt_sketch(out: &mut Vec<u8>, sketch: Option<&KarySketch>) {
    match sketch {
        None => byteio::put_u8(out, 0),
        Some(s) => {
            byteio::put_u8(out, 1);
            put_sketch(out, s);
        }
    }
}

fn take_opt_sketch(
    cur: &mut Cursor<'_>,
    rows: &Arc<HashRows>,
) -> Result<Option<KarySketch>, CheckpointError> {
    match cur.u8()? {
        0 => Ok(None),
        1 => Ok(Some(take_sketch(cur, rows)?)),
        other => Err(CheckpointError::Malformed(format!("option flag {other}"))),
    }
}

fn put_sketch_vec(out: &mut Vec<u8>, sketches: &[KarySketch]) {
    byteio::put_u64(out, sketches.len() as u64);
    for s in sketches {
        put_sketch(out, s);
    }
}

fn take_sketch_vec(
    cur: &mut Cursor<'_>,
    rows: &Arc<HashRows>,
) -> Result<Vec<KarySketch>, CheckpointError> {
    let n = cur.u64()? as usize;
    // Each sketch blob is at least a header; reject absurd counts before
    // allocating.
    if n > cur.remaining() {
        return Err(CheckpointError::Truncated);
    }
    (0..n).map(|_| take_sketch(cur, rows)).collect()
}

fn put_model_state(out: &mut Vec<u8>, state: &ModelState<KarySketch>) {
    match state {
        ModelState::Ma { history } => {
            byteio::put_u8(out, 0);
            put_sketch_vec(out, history);
        }
        ModelState::Sma { history } => {
            byteio::put_u8(out, 1);
            put_sketch_vec(out, history);
        }
        ModelState::Ewma { forecast } => {
            byteio::put_u8(out, 2);
            put_opt_sketch(out, forecast.as_ref());
        }
        ModelState::Nshw { first, state } => {
            byteio::put_u8(out, 3);
            put_opt_sketch(out, first.as_ref());
            match state {
                None => byteio::put_u8(out, 0),
                Some(p) => {
                    byteio::put_u8(out, 1);
                    put_sketch(out, &p.level);
                    put_sketch(out, &p.trend);
                    put_sketch(out, &p.forecast);
                }
            }
        }
        ModelState::Arima { x_hist, e_hist, observed_count } => {
            byteio::put_u8(out, 4);
            put_sketch_vec(out, x_hist);
            put_sketch_vec(out, e_hist);
            byteio::put_u64(out, *observed_count);
        }
        ModelState::Shw { init, state } => {
            byteio::put_u8(out, 5);
            put_sketch_vec(out, init);
            match state {
                None => byteio::put_u8(out, 0),
                Some(p) => {
                    byteio::put_u8(out, 1);
                    put_sketch(out, &p.level);
                    put_sketch(out, &p.trend);
                    put_sketch_vec(out, &p.season);
                    byteio::put_u64(out, p.phase as u64);
                }
            }
        }
    }
}

fn take_model_state(
    cur: &mut Cursor<'_>,
    rows: &Arc<HashRows>,
) -> Result<ModelState<KarySketch>, CheckpointError> {
    match cur.u8()? {
        0 => Ok(ModelState::Ma { history: take_sketch_vec(cur, rows)? }),
        1 => Ok(ModelState::Sma { history: take_sketch_vec(cur, rows)? }),
        2 => Ok(ModelState::Ewma { forecast: take_opt_sketch(cur, rows)? }),
        3 => {
            let first = take_opt_sketch(cur, rows)?;
            let state = match cur.u8()? {
                0 => None,
                1 => Some(NshwParts {
                    level: take_sketch(cur, rows)?,
                    trend: take_sketch(cur, rows)?,
                    forecast: take_sketch(cur, rows)?,
                }),
                other => return Err(CheckpointError::Malformed(format!("NSHW flag {other}"))),
            };
            Ok(ModelState::Nshw { first, state })
        }
        4 => Ok(ModelState::Arima {
            x_hist: take_sketch_vec(cur, rows)?,
            e_hist: take_sketch_vec(cur, rows)?,
            observed_count: cur.u64()?,
        }),
        5 => {
            let init = take_sketch_vec(cur, rows)?;
            let state = match cur.u8()? {
                0 => None,
                1 => Some(ShwParts {
                    level: take_sketch(cur, rows)?,
                    trend: take_sketch(cur, rows)?,
                    season: take_sketch_vec(cur, rows)?,
                    phase: cur.u64()? as usize,
                }),
                other => return Err(CheckpointError::Malformed(format!("SHW flag {other}"))),
            };
            Ok(ModelState::Shw { init, state })
        }
        other => Err(CheckpointError::Malformed(format!("model state tag {other}"))),
    }
}

fn put_keys(out: &mut Vec<u8>, keys: &[u64]) {
    byteio::put_u64(out, keys.len() as u64);
    for &k in keys {
        byteio::put_u64(out, k);
    }
}

fn take_keys(cur: &mut Cursor<'_>) -> Result<Vec<u64>, CheckpointError> {
    let n = cur.u64()? as usize;
    if n.checked_mul(8).map_or(true, |bytes| bytes > cur.remaining()) {
        return Err(CheckpointError::Truncated);
    }
    (0..n).map(|_| Ok(cur.u64()?)).collect()
}

fn put_f64_slice(out: &mut Vec<u8>, xs: &[f64]) {
    for &x in xs {
        byteio::put_f64(out, x);
    }
}

fn take_f64_vec(cur: &mut Cursor<'_>, n: usize) -> Result<Vec<f64>, CheckpointError> {
    (0..n).map(|_| Ok(cur.f64()?)).collect()
}

fn put_detector_snapshot(out: &mut Vec<u8>, snap: &DetectorSnapshot) {
    byteio::put_u64(out, snap.intervals_processed);
    byteio::put_u64(out, snap.sampler_state);
    match &snap.pending_error {
        None => byteio::put_u8(out, 0),
        Some((t, s)) => {
            byteio::put_u8(out, 1);
            byteio::put_u64(out, *t);
            put_sketch(out, s);
        }
    }
    put_model_state(out, &snap.model);
}

fn take_detector_snapshot(
    cur: &mut Cursor<'_>,
    rows: &Arc<HashRows>,
) -> Result<DetectorSnapshot, CheckpointError> {
    let intervals_processed = cur.u64()?;
    let sampler_state = cur.u64()?;
    let pending_error = match cur.u8()? {
        0 => None,
        1 => {
            let t = cur.u64()?;
            Some((t, take_sketch(cur, rows)?))
        }
        other => return Err(CheckpointError::Malformed(format!("pending flag {other}"))),
    };
    let model = take_model_state(cur, rows)?;
    Ok(DetectorSnapshot { intervals_processed, sampler_state, pending_error, model })
}

fn put_staggered(out: &mut Vec<u8>, lanes: usize, snap: &StaggeredSnapshot) {
    byteio::put_u32(out, lanes as u32);
    byteio::put_u64(out, snap.slot);
    byteio::put_u64(out, snap.recent_slots.len() as u64);
    for (sketch, keys) in &snap.recent_slots {
        put_sketch(out, sketch);
        put_keys(out, keys);
    }
    for lane in &snap.lanes {
        put_detector_snapshot(out, lane);
    }
}

fn take_staggered(
    cur: &mut Cursor<'_>,
    rows: &Arc<HashRows>,
) -> Result<(usize, StaggeredSnapshot), CheckpointError> {
    let lanes = cur.u32()? as usize;
    if lanes == 0 {
        return Err(CheckpointError::Malformed("staggered section with zero lanes".into()));
    }
    let slot = cur.u64()?;
    let n = cur.u64()? as usize;
    if n > cur.remaining() {
        return Err(CheckpointError::Truncated);
    }
    let recent_slots = (0..n)
        .map(|_| Ok((take_sketch(cur, rows)?, take_keys(cur)?)))
        .collect::<Result<Vec<_>, CheckpointError>>()?;
    let lane_snaps = (0..lanes)
        .map(|_| take_detector_snapshot(cur, rows))
        .collect::<Result<Vec<_>, CheckpointError>>()?;
    Ok((lanes, StaggeredSnapshot { slot, recent_slots, lanes: lane_snaps }))
}

fn put_glr_slot(out: &mut Vec<u8>, slot: &GlrSlotSnapshot) {
    put_f64_slice(out, &slot.proj);
    put_sketch(out, &slot.sketch);
    put_keys(out, &slot.keys);
}

fn take_glr_slot(
    cur: &mut Cursor<'_>,
    rows: &Arc<HashRows>,
    projections: usize,
) -> Result<GlrSlotSnapshot, CheckpointError> {
    Ok(GlrSlotSnapshot {
        proj: take_f64_vec(cur, projections)?,
        sketch: take_sketch(cur, rows)?,
        keys: take_keys(cur)?,
    })
}

fn put_alarm(out: &mut Vec<u8>, alarm: &ProvisionalAlarm) {
    match alarm.key_hint {
        None => byteio::put_u8(out, 0),
        Some(k) => {
            byteio::put_u8(out, 1);
            byteio::put_u64(out, k);
        }
    }
    byteio::put_u64(out, alarm.onset_slot);
    byteio::put_u64(out, alarm.raised_slot);
    byteio::put_f64(out, alarm.statistic);
    byteio::put_u64(out, alarm.window as u64);
}

fn take_alarm(cur: &mut Cursor<'_>) -> Result<ProvisionalAlarm, CheckpointError> {
    let key_hint = match cur.u8()? {
        0 => None,
        1 => Some(cur.u64()?),
        other => return Err(CheckpointError::Malformed(format!("key hint flag {other}"))),
    };
    Ok(ProvisionalAlarm {
        key_hint,
        onset_slot: cur.u64()?,
        raised_slot: cur.u64()?,
        statistic: cur.f64()?,
        window: cur.u64()? as usize,
    })
}

fn put_glr(out: &mut Vec<u8>, config: &GlrConfig, snap: &GlrEngineSnapshot) {
    byteio::put_u32(out, config.sketch.h as u32);
    byteio::put_u32(out, config.sketch.k as u32);
    byteio::put_u64(out, config.sketch.seed);
    byteio::put_u32(out, config.projections as u32);
    byteio::put_u32(out, config.max_window as u32);
    byteio::put_f64(out, config.threshold);
    byteio::put_u32(out, config.min_baseline as u32);
    byteio::put_u64(out, config.hint_keys as u64);
    byteio::put_u64(out, config.cooldown as u64);
    let det = &snap.detector;
    byteio::put_u64(out, det.slot);
    byteio::put_u64(out, det.cooldown_left);
    byteio::put_u64(out, det.base_count);
    put_f64_slice(out, &det.base_mean);
    put_f64_slice(out, &det.base_m2);
    put_sketch(out, &det.base_sketch);
    byteio::put_u64(out, det.window.len() as u64);
    for slot in &det.window {
        put_glr_slot(out, slot);
    }
    put_glr_slot(out, &det.cur);
    byteio::put_u64(out, snap.pending.len() as u64);
    for (interval, alarm) in &snap.pending {
        byteio::put_u64(out, *interval);
        put_alarm(out, alarm);
    }
    byteio::put_u64(out, snap.closes.len() as u64);
    for &(interval, slot) in &snap.closes {
        byteio::put_u64(out, interval);
        byteio::put_u64(out, slot);
    }
    byteio::put_u64(out, snap.ingest_interval);
}

fn take_glr(cur: &mut Cursor<'_>) -> Result<(GlrConfig, GlrEngineSnapshot), CheckpointError> {
    let h = cur.u32()? as usize;
    let k = cur.u32()? as usize;
    let seed = cur.u64()?;
    let projections = cur.u32()? as usize;
    let max_window = cur.u32()? as usize;
    let threshold = cur.f64()?;
    let min_baseline = cur.u32()? as usize;
    let hint_keys = cur.u64()? as usize;
    let cooldown = cur.u64()? as usize;
    // Reject shapes GlrConfig::validate would panic on: a corrupt-but-
    // CRC-valid file must surface as a typed error, never a panic.
    if !(1..=64).contains(&projections)
        || max_window == 0
        || min_baseline < 2
        || hint_keys == 0
        || !(threshold.is_finite() && threshold > 0.0)
    {
        return Err(CheckpointError::Malformed("GLR section shape".into()));
    }
    let config = GlrConfig {
        sketch: SketchConfig { h, k, seed },
        projections,
        max_window,
        threshold,
        min_baseline,
        hint_keys,
        cooldown,
    };
    let rows = Arc::new(HashRows::new(h, k, seed));
    let slot = cur.u64()?;
    let cooldown_left = cur.u64()?;
    let base_count = cur.u64()?;
    let base_mean = take_f64_vec(cur, projections)?;
    let base_m2 = take_f64_vec(cur, projections)?;
    let base_sketch = take_sketch(cur, &rows)?;
    let n = cur.u64()? as usize;
    if n > cur.remaining() {
        return Err(CheckpointError::Truncated);
    }
    let window = (0..n)
        .map(|_| take_glr_slot(cur, &rows, projections))
        .collect::<Result<Vec<_>, CheckpointError>>()?;
    let cur_slot = take_glr_slot(cur, &rows, projections)?;
    let pending_n = cur.u64()? as usize;
    if pending_n > cur.remaining() {
        return Err(CheckpointError::Truncated);
    }
    let pending = (0..pending_n)
        .map(|_| Ok((cur.u64()?, take_alarm(cur)?)))
        .collect::<Result<Vec<_>, CheckpointError>>()?;
    let closes_n = cur.u64()? as usize;
    if closes_n.checked_mul(16).map_or(true, |bytes| bytes > cur.remaining()) {
        return Err(CheckpointError::Truncated);
    }
    let closes = (0..closes_n)
        .map(|_| Ok((cur.u64()?, cur.u64()?)))
        .collect::<Result<Vec<_>, CheckpointError>>()?;
    let ingest_interval = cur.u64()?;
    let detector = GlrSnapshot {
        slot,
        cooldown_left,
        base_count,
        base_mean,
        base_m2,
        base_sketch,
        window,
        cur: cur_slot,
    };
    Ok((config, GlrEngineSnapshot { detector, pending, closes, ingest_interval }))
}

impl Checkpoint {
    /// Serializes the checkpoint, CRC-32 footer included. Emits version 1
    /// (byte-identical to the pre-extension format) unless a staggered or
    /// GLR section is present, in which case the [`MAGIC_V2`] layout is
    /// used.
    pub fn to_bytes(&self) -> Vec<u8> {
        let v2 = self.staggered.is_some() || self.glr.is_some();
        let mut out = Vec::new();
        out.extend_from_slice(if v2 { MAGIC_V2 } else { MAGIC });
        byteio::put_u32(&mut out, self.config.sketch.h as u32);
        byteio::put_u32(&mut out, self.config.sketch.k as u32);
        byteio::put_u64(&mut out, self.config.sketch.seed);
        let spec = self.config.model.compact();
        byteio::put_u32(&mut out, spec.len() as u32);
        out.extend_from_slice(spec.as_bytes());
        byteio::put_f64(&mut out, self.config.threshold);
        match self.config.key_strategy {
            KeyStrategy::TwoPass => byteio::put_u8(&mut out, 0),
            KeyStrategy::NextInterval => byteio::put_u8(&mut out, 1),
            KeyStrategy::Sampled { rate, seed } => {
                byteio::put_u8(&mut out, 2);
                byteio::put_f64(&mut out, rate);
                byteio::put_u64(&mut out, seed);
            }
        }
        byteio::put_u64(&mut out, self.snapshot.intervals_processed);
        byteio::put_u64(&mut out, self.snapshot.sampler_state);
        match &self.snapshot.pending_error {
            None => byteio::put_u8(&mut out, 0),
            Some((t, s)) => {
                byteio::put_u8(&mut out, 1);
                byteio::put_u64(&mut out, *t);
                put_sketch(&mut out, s);
            }
        }
        put_model_state(&mut out, &self.snapshot.model);
        match self.next_interval {
            None => byteio::put_u8(&mut out, 0),
            Some(t) => {
                byteio::put_u8(&mut out, 1);
                byteio::put_u64(&mut out, t);
            }
        }
        byteio::put_u64(&mut out, self.processed);
        if v2 {
            match &self.staggered {
                None => byteio::put_u8(&mut out, 0),
                Some((lanes, snap)) => {
                    byteio::put_u8(&mut out, 1);
                    put_staggered(&mut out, *lanes, snap);
                }
            }
            match &self.glr {
                None => byteio::put_u8(&mut out, 0),
                Some((config, snap)) => {
                    byteio::put_u8(&mut out, 1);
                    put_glr(&mut out, config, snap);
                }
            }
        }
        let crc = crc32(&out);
        byteio::put_u32(&mut out, crc);
        out
    }

    /// Parses a checkpoint, verifying the CRC before trusting any field.
    pub fn from_bytes(data: &[u8]) -> Result<Checkpoint, CheckpointError> {
        if data.len() < MAGIC.len() + 4 {
            return Err(CheckpointError::Truncated);
        }
        let v2 = match &data[..MAGIC.len()] {
            m if m == MAGIC => false,
            m if m == MAGIC_V2 => true,
            _ => return Err(CheckpointError::BadMagic),
        };
        let (payload, footer) = data.split_at(data.len() - 4);
        let stored = u32::from_le_bytes(footer.try_into().expect("4-byte footer"));
        let computed = crc32(payload);
        if computed != stored {
            return Err(CheckpointError::BadChecksum { computed, stored });
        }
        let mut cur = Cursor::new(&payload[MAGIC.len()..]);
        let h = cur.u32()? as usize;
        let k = cur.u32()? as usize;
        let seed = cur.u64()?;
        let spec_len = cur.u32()? as usize;
        let spec_bytes = cur.take(spec_len)?;
        let spec_text = std::str::from_utf8(spec_bytes)
            .map_err(|_| CheckpointError::Malformed("model spec is not utf-8".into()))?;
        let model = ModelSpec::parse(spec_text)
            .map_err(|e| CheckpointError::Malformed(format!("model spec: {e}")))?;
        let threshold = cur.f64()?;
        let key_strategy = match cur.u8()? {
            0 => KeyStrategy::TwoPass,
            1 => KeyStrategy::NextInterval,
            2 => KeyStrategy::Sampled { rate: cur.f64()?, seed: cur.u64()? },
            other => return Err(CheckpointError::Malformed(format!("key strategy tag {other}"))),
        };
        let config =
            DetectorConfig { sketch: SketchConfig { h, k, seed }, model, threshold, key_strategy };
        // One hash family for every embedded sketch: decoding through
        // `from_bytes_with_rows` both enforces that each blob matches the
        // config's family and avoids re-deriving tabulation tables per
        // sketch.
        let rows = Arc::new(HashRows::new(h, k, seed));
        let intervals_processed = cur.u64()?;
        let sampler_state = cur.u64()?;
        let pending_error = match cur.u8()? {
            0 => None,
            1 => {
                let t = cur.u64()?;
                Some((t, take_sketch(&mut cur, &rows)?))
            }
            other => return Err(CheckpointError::Malformed(format!("pending flag {other}"))),
        };
        let model_state = take_model_state(&mut cur, &rows)?;
        let next_interval = match cur.u8()? {
            0 => None,
            1 => Some(cur.u64()?),
            other => return Err(CheckpointError::Malformed(format!("binner flag {other}"))),
        };
        let processed = cur.u64()?;
        let (staggered, glr) = if v2 {
            let staggered = match cur.u8()? {
                0 => None,
                1 => Some(take_staggered(&mut cur, &rows)?),
                other => return Err(CheckpointError::Malformed(format!("staggered flag {other}"))),
            };
            let glr = match cur.u8()? {
                0 => None,
                1 => Some(take_glr(&mut cur)?),
                other => return Err(CheckpointError::Malformed(format!("GLR flag {other}"))),
            };
            (staggered, glr)
        } else {
            (None, None)
        };
        if cur.remaining() != 0 {
            return Err(CheckpointError::Malformed(format!("{} trailing bytes", cur.remaining())));
        }
        Ok(Checkpoint {
            config,
            snapshot: DetectorSnapshot {
                intervals_processed,
                sampler_state,
                pending_error,
                model: model_state,
            },
            next_interval,
            processed,
            staggered,
            glr,
        })
    }

    /// Writes the checkpoint atomically: serialize to `<path>.tmp`, fsync,
    /// rename over `path`, fsync the parent directory. A crash at any
    /// point leaves either the old checkpoint or the new one — never a
    /// torn file.
    pub fn write_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        let bytes = self.to_bytes();
        let file_name = path.file_name().ok_or_else(|| {
            CheckpointError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("checkpoint path has no file name: {}", path.display()),
            ))
        })?;
        // `.tmp` is appended to the full file name rather than swapped for
        // the final extension, so sibling checkpoints `a.ckpt` and
        // `a.state` never collide on the same temp file.
        let mut tmp_name = file_name.to_os_string();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        // The rename is durable only once the directory entry itself is
        // synced; without this a power loss can roll back to the old file.
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()?;
        Ok(())
    }

    /// Reads and verifies a checkpoint from disk.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Checkpoint::from_bytes(&bytes)
    }

    /// Rebuilds the detector this checkpoint describes.
    pub fn restore_detector(&self) -> Result<SketchChangeDetector, CheckpointError> {
        SketchChangeDetector::restore(self.config.clone(), self.snapshot.clone())
            .map_err(CheckpointError::Restore)
    }

    /// Rebuilds the staggered-lane detector when this checkpoint carries
    /// one (`None` for version-1 files and runs without `--stagger`).
    pub fn restore_staggered(&self) -> Result<Option<StaggeredDetector>, CheckpointError> {
        self.staggered
            .as_ref()
            .map(|(lanes, snap)| {
                StaggeredDetector::restore(self.config.clone(), *lanes, snap.clone())
                    .map_err(CheckpointError::Restore)
            })
            .transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::KeyStrategy;
    use scd_forecast::ModelSpec;

    fn sample_checkpoint(model: ModelSpec, strategy: KeyStrategy) -> Checkpoint {
        let config = DetectorConfig {
            sketch: SketchConfig { h: 3, k: 256, seed: 11 },
            model,
            threshold: 0.05,
            key_strategy: strategy,
        };
        let mut det = SketchChangeDetector::new(config.clone());
        for t in 0..6 {
            let items: Vec<(u64, f64)> =
                (0..20u64).map(|k| (k, 100.0 + (t * 7 + k as usize) as f64)).collect();
            det.process_interval(&items);
        }
        Checkpoint {
            config,
            snapshot: det.snapshot(),
            next_interval: Some(6),
            processed: 120,
            staggered: None,
            glr: None,
        }
    }

    fn all_cases() -> Vec<Checkpoint> {
        use scd_forecast::ArimaSpec;
        vec![
            sample_checkpoint(ModelSpec::Ewma { alpha: 0.5 }, KeyStrategy::TwoPass),
            sample_checkpoint(ModelSpec::Ma { window: 3 }, KeyStrategy::NextInterval),
            sample_checkpoint(ModelSpec::Sma { window: 4 }, KeyStrategy::TwoPass),
            sample_checkpoint(
                ModelSpec::Nshw { alpha: 0.4, beta: 0.3 },
                KeyStrategy::Sampled { rate: 0.5, seed: 9 },
            ),
            sample_checkpoint(
                ModelSpec::Arima(ArimaSpec::new(1, &[0.5], &[0.2]).unwrap()),
                KeyStrategy::TwoPass,
            ),
            sample_checkpoint(
                ModelSpec::Shw { alpha: 0.4, beta: 0.2, gamma: 0.3, period: 3 },
                KeyStrategy::TwoPass,
            ),
        ]
    }

    #[test]
    fn round_trip_preserves_everything() {
        for ck in all_cases() {
            let decoded = Checkpoint::from_bytes(&ck.to_bytes()).expect("decode");
            assert_eq!(decoded.config, ck.config);
            assert_eq!(decoded.next_interval, ck.next_interval);
            assert_eq!(decoded.processed, ck.processed);
            assert_eq!(decoded.snapshot.intervals_processed, ck.snapshot.intervals_processed);
            assert_eq!(decoded.snapshot.sampler_state, ck.snapshot.sampler_state);
            // Restored detectors behave identically (the real invariant).
            let mut a = ck.restore_detector().expect("restore original");
            let mut b = decoded.restore_detector().expect("restore decoded");
            for t in 0..4 {
                let items: Vec<(u64, f64)> =
                    (0..20u64).map(|k| (k, 50.0 * (t + 1) as f64 + k as f64)).collect();
                assert_eq!(a.process_interval(&items), b.process_interval(&items));
            }
        }
    }

    #[test]
    fn any_single_byte_flip_is_detected() {
        let ck = sample_checkpoint(ModelSpec::Ewma { alpha: 0.5 }, KeyStrategy::TwoPass);
        let bytes = ck.to_bytes();
        // Deterministically probe positions across the whole file.
        let step = (bytes.len() / 97).max(1);
        for pos in (0..bytes.len()).step_by(step) {
            for bit in [0x01u8, 0x80] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= bit;
                assert!(
                    Checkpoint::from_bytes(&corrupt).is_err(),
                    "flip at byte {pos} (mask {bit:#04x}) went undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let ck = sample_checkpoint(ModelSpec::Ma { window: 2 }, KeyStrategy::TwoPass);
        let bytes = ck.to_bytes();
        let step = (bytes.len() / 61).max(1);
        for len in (0..bytes.len()).step_by(step) {
            assert!(
                Checkpoint::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn wrong_magic_is_typed() {
        let ck = sample_checkpoint(ModelSpec::Ewma { alpha: 0.5 }, KeyStrategy::TwoPass);
        let mut bytes = ck.to_bytes();
        bytes[..8].copy_from_slice(b"SCDTRC02");
        assert!(matches!(Checkpoint::from_bytes(&bytes), Err(CheckpointError::BadMagic)));
    }

    /// Sibling checkpoints differing only by extension (`det.ckpt`,
    /// `det.state`) must not share a temp file: concurrent atomic writes
    /// never cross-contaminate or clobber each other.
    #[test]
    fn sibling_checkpoints_use_distinct_temp_files() {
        let dir = std::env::temp_dir().join("scd-checkpoint-siblings");
        std::fs::create_dir_all(&dir).unwrap();
        let path_a = dir.join("det.ckpt");
        let path_b = dir.join("det.state");
        let ck_a = sample_checkpoint(ModelSpec::Ewma { alpha: 0.3 }, KeyStrategy::TwoPass);
        let ck_b = sample_checkpoint(ModelSpec::Ma { window: 4 }, KeyStrategy::TwoPass);
        std::thread::scope(|s| {
            let (a, b) = (&ck_a, &ck_b);
            let (pa, pb) = (&path_a, &path_b);
            s.spawn(move || {
                for _ in 0..20 {
                    a.write_atomic(pa).expect("write det.ckpt");
                }
            });
            s.spawn(move || {
                for _ in 0..20 {
                    b.write_atomic(pb).expect("write det.state");
                }
            });
        });
        assert_eq!(Checkpoint::load(&path_a).expect("load det.ckpt").config, ck_a.config);
        assert_eq!(Checkpoint::load(&path_b).expect("load det.state").config, ck_b.config);
        std::fs::remove_file(&path_a).ok();
        std::fs::remove_file(&path_b).ok();
    }

    #[test]
    fn mid_write_crash_leaves_previous_checkpoint_intact() {
        // Simulate a kill between tmp-write and rename: a good checkpoint
        // is on disk, and the crash left behind a partial/garbage `.tmp`
        // next to it. Recovery must read the previous checkpoint
        // unharmed, and the next atomic write must still land.
        let dir = std::env::temp_dir().join("scd-checkpoint-crash-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("det.ckpt");
        let good = sample_checkpoint(ModelSpec::Ewma { alpha: 0.3 }, KeyStrategy::TwoPass);
        good.write_atomic(&path).expect("write good checkpoint");

        // The interrupted writer got partway into the next snapshot: its
        // tmp file holds a truncated prefix of a real serialization.
        let next = sample_checkpoint(ModelSpec::Ma { window: 5 }, KeyStrategy::TwoPass);
        let torn = &next.to_bytes()[..200];
        let tmp = dir.join("det.ckpt.tmp");
        std::fs::write(&tmp, torn).expect("plant torn tmp file");

        // load() goes to `path`, never the tmp: the good checkpoint wins.
        let recovered = Checkpoint::load(&path).expect("recover previous checkpoint");
        assert_eq!(recovered.config, good.config);
        assert_eq!(recovered.processed, good.processed);

        // A later write overwrites the stale tmp and replaces the file.
        next.write_atomic(&path).expect("write after crash");
        assert_eq!(Checkpoint::load(&path).expect("reload").config, next.config);
        assert!(!tmp.exists(), "the rename must consume the tmp file");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn plain_checkpoints_stay_version_1() {
        // No staggered/GLR state → the emitted bytes must still carry the
        // version-1 magic (older readers keep working), and decoding must
        // leave both sections empty.
        let ck = sample_checkpoint(ModelSpec::Ewma { alpha: 0.5 }, KeyStrategy::TwoPass);
        let bytes = ck.to_bytes();
        assert_eq!(&bytes[..8], MAGIC);
        let decoded = Checkpoint::from_bytes(&bytes).expect("decode v1");
        assert!(decoded.staggered.is_none());
        assert!(decoded.glr.is_none());
    }

    fn slot_items(s: u64) -> Vec<(u64, f64)> {
        (0..25u64).map(|k| (k, 100.0 + ((s * 13 + k) % 40) as f64)).collect()
    }

    fn sample_v2_checkpoint() -> Checkpoint {
        use crate::glr::GlrDetector;
        let mut base = sample_checkpoint(ModelSpec::Ewma { alpha: 0.5 }, KeyStrategy::TwoPass);
        // Staggered lanes caught mid-warm-up (buffered slots + lane state).
        let lanes = 3usize;
        let mut stag = StaggeredDetector::new(base.config.clone(), lanes);
        for s in 0..7u64 {
            stag.process_slot(&slot_items(s));
        }
        base.staggered = Some((lanes, stag.snapshot()));
        // GLR layer caught mid-slot, with a pending provisional queued.
        let glr_cfg = GlrConfig {
            sketch: SketchConfig { h: 3, k: 512, seed: 0x5CD },
            projections: 8,
            max_window: 4,
            threshold: 16.0,
            min_baseline: 4,
            hint_keys: 1024,
            cooldown: 8,
        };
        let mut glr = GlrDetector::new(glr_cfg.clone());
        for s in 0..11u64 {
            glr.observe_slice(&slot_items(s));
            glr.end_slot();
        }
        glr.observe(99, 1234.5); // half-open slot
        let snap = GlrEngineSnapshot {
            detector: glr.snapshot(),
            pending: vec![(
                2,
                ProvisionalAlarm {
                    key_hint: Some(777),
                    onset_slot: 9,
                    raised_slot: 10,
                    statistic: 42.5,
                    window: 2,
                },
            )],
            closes: vec![(1, 4), (2, 8)],
            ingest_interval: 2,
        };
        base.glr = Some((glr_cfg, snap));
        base
    }

    #[test]
    fn v2_round_trip_preserves_staggered_and_glr_sections() {
        use crate::glr::GlrDetector;
        let ck = sample_v2_checkpoint();
        let bytes = ck.to_bytes();
        assert_eq!(&bytes[..8], MAGIC_V2);
        let decoded = Checkpoint::from_bytes(&bytes).expect("decode v2");

        // The engine-side bookkeeping round-trips field for field.
        let (glr_cfg, glr_snap) = decoded.glr.as_ref().expect("GLR section");
        let (ref_cfg, ref_snap) = ck.glr.as_ref().unwrap();
        assert_eq!(glr_cfg, ref_cfg);
        assert_eq!(glr_snap.pending, ref_snap.pending);
        assert_eq!(glr_snap.closes, ref_snap.closes);
        assert_eq!(glr_snap.ingest_interval, ref_snap.ingest_interval);

        // Behavioral bit-exactness: detectors restored from the decoded
        // and the in-memory snapshots emit identical alarms forever after.
        let mut a = GlrDetector::restore(ref_cfg.clone(), ref_snap.detector.clone())
            .expect("restore reference GLR");
        let mut b = GlrDetector::restore(glr_cfg.clone(), glr_snap.detector.clone())
            .expect("restore decoded GLR");
        for s in 11..30u64 {
            let mut items = slot_items(s);
            if s >= 20 {
                items.push((777, 50_000.0));
            }
            a.observe_slice(&items);
            b.observe_slice(&items);
            assert_eq!(a.end_slot(), b.end_slot(), "GLR diverged at slot {s}");
        }

        let mut stag_ref = ck.restore_staggered().expect("restore reference").unwrap();
        let mut stag_dec = decoded.restore_staggered().expect("restore decoded").unwrap();
        for s in 7..20u64 {
            assert_eq!(
                stag_ref.process_slot(&slot_items(s)),
                stag_dec.process_slot(&slot_items(s)),
                "staggered lanes diverged at slot {s}"
            );
        }
    }

    #[test]
    fn v2_single_byte_flip_is_detected() {
        let bytes = sample_v2_checkpoint().to_bytes();
        let step = (bytes.len() / 97).max(1);
        for pos in (0..bytes.len()).step_by(step) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x01;
            assert!(
                Checkpoint::from_bytes(&corrupt).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn atomic_write_and_load() {
        let dir = std::env::temp_dir().join("scd-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("det.ckpt");
        let ck = sample_checkpoint(ModelSpec::Ewma { alpha: 0.3 }, KeyStrategy::TwoPass);
        ck.write_atomic(&path).expect("write");
        // Overwrite with a second checkpoint; the rename must replace.
        let ck2 = sample_checkpoint(ModelSpec::Ma { window: 5 }, KeyStrategy::TwoPass);
        ck2.write_atomic(&path).expect("overwrite");
        let loaded = Checkpoint::load(&path).expect("load");
        assert_eq!(loaded.config, ck2.config);
        std::fs::remove_file(&path).ok();
    }
}
