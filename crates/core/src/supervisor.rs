//! Supervised streaming: panic recovery with checkpoint restarts.
//!
//! [`spawn`](crate::streaming::spawn) runs the detector on a bare thread —
//! a panic there surfaces only at shutdown, and everything the detector
//! knew dies with it. A monitoring deployment wants the opposite: the
//! detector is the component *least* allowed to disappear, precisely
//! because it is the thing watching everything else.
//!
//! [`spawn_supervised`] wraps the same detector loop in a supervisor that:
//!
//! 1. catches panics (`catch_unwind`) instead of unwinding the thread,
//! 2. restarts the detector from its last on-disk
//!    [`Checkpoint`] (or fresh, if none),
//! 3. backs off exponentially between attempts and gives up after a
//!    configurable budget, and
//! 4. narrates everything on a dedicated [`LifecycleEvent`] channel, so
//!    operators observe restarts instead of discovering them.
//!
//! Recovery is consulted at **startup** too, not only after a panic: if a
//! checkpoint file already exists when [`spawn_supervised`] runs, the
//! detector resumes from it — so a crashed or cleanly stopped *process*
//! restarted with the same config picks up where it left off instead of
//! starting over from interval 0.
//!
//! The record channel lives *outside* the supervised region: producers
//! keep their sender across restarts, and records queued at crash time
//! are delivered to the restarted detector. What is lost is the
//! checkpoint gap — intervals flushed after the last checkpoint — and the
//! partially accumulated interval; the restarted detector resumes at the
//! checkpointed position and re-emits from there, so the report stream
//! has no holes, only a rewind.

use crate::channel::{bounded, Receiver, Sender};
use crate::checkpoint::Checkpoint;
use crate::detector::{IntervalReport, SketchChangeDetector};
use crate::streaming::{
    make_front_end, panic_message, run_loop, BinnerState, LoopContext, RecordSender, StreamFault,
    StreamingConfig,
};
use scd_traffic::FaultPlan;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What the supervisor announces on its event channel.
///
/// Events are delivered best-effort (`try_send`): an undrained event
/// channel is allowed to lose events, never to stall detection.
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleEvent {
    /// The detector thread is up and consuming records.
    Started,
    /// A checkpoint was persisted after this many flushed intervals.
    CheckpointWritten {
        /// Total intervals flushed at write time.
        intervals: u64,
    },
    /// The detector panicked and was restarted.
    Restarted {
        /// Restart attempt number (1-based).
        attempt: u32,
        /// Interval count the restarted detector resumed from (0 when no
        /// checkpoint was available).
        resumed_intervals: u64,
        /// The panic message that triggered the restart.
        panic: String,
    },
    /// Something non-fatal went wrong (checkpoint unwritable or
    /// unloadable); the detector keeps running with reduced guarantees.
    Degraded {
        /// Human-readable description.
        reason: String,
    },
    /// The restart budget is exhausted; the detector is down for good.
    GaveUp {
        /// Panics absorbed before giving up.
        attempts: u32,
    },
}

/// Restart budget and backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestartPolicy {
    /// Panics tolerated before [`LifecycleEvent::GaveUp`].
    pub max_restarts: u32,
    /// Backoff before restart attempt `n` is `base · 2^(n−1)`, capped.
    pub backoff_base_ms: u64,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap_ms: u64,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy { max_restarts: 3, backoff_base_ms: 10, backoff_cap_ms: 1_000 }
    }
}

impl RestartPolicy {
    /// The sleep before restart attempt `attempt` (1-based):
    /// `base · 2^(attempt−1)`, with the exponent clamped at 20 (so the
    /// factor never overflows a shift even for absurd attempt counts) and
    /// the product capped at [`backoff_cap_ms`](RestartPolicy::backoff_cap_ms).
    /// Attempt 0 never happens in the restart loop; it maps to the same
    /// sleep as attempt 1. Public so operators can print the schedule a
    /// policy implies before deploying it.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u64 << attempt.saturating_sub(1).min(20);
        Duration::from_millis(self.backoff_base_ms.saturating_mul(factor).min(self.backoff_cap_ms))
    }

    /// [`backoff`](RestartPolicy::backoff) plus deterministic jitter, so a
    /// fleet of restarting components seeded differently does not
    /// thunder back in lockstep. The jitter is a seed-and-attempt-derived
    /// fraction in `[0, base/4)` added on top of the exponential sleep,
    /// and the sum still respects
    /// [`backoff_cap_ms`](RestartPolicy::backoff_cap_ms). Same `(attempt,
    /// seed)` always yields the same sleep — schedules stay printable and
    /// tests stay exact — while different seeds decorrelate.
    pub fn backoff_jittered(&self, attempt: u32, seed: u64) -> Duration {
        let base = self.backoff(attempt).as_millis() as u64;
        let mixed = scd_hash::mix64(seed ^ u64::from(attempt) ^ 0x9E37_79B9_7F4A_7C15);
        // Multiply the top 32 bits of the hash (uniform in [0, 2³²)) by
        // the jitter span and take the high word: an exact scaled draw in
        // [0, base/4) without floats or modulo bias.
        let jitter = ((base / 4).saturating_mul(mixed >> 32)) >> 32;
        Duration::from_millis(base.saturating_add(jitter).min(self.backoff_cap_ms))
    }
}

/// Configuration of a supervised streaming detector.
#[derive(Clone)]
pub struct SupervisorConfig {
    /// The streaming front end (set [`StreamingConfig::checkpoint`] to
    /// make restarts resume instead of starting over).
    pub stream: StreamingConfig,
    /// Restart budget and backoff.
    pub restart: RestartPolicy,
    /// Test-only fault injection, consulted once per record inside the
    /// supervised region. `None` in production.
    pub fault: Option<FaultPlan>,
}

/// Handle to a supervised streaming detector.
pub struct SupervisedHandle {
    records: RecordSender,
    reports: Receiver<IntervalReport>,
    events: Receiver<LifecycleEvent>,
    thread: JoinHandle<u64>,
}

impl SupervisedHandle {
    /// Sends one record under the configured overload policy. Returns
    /// `false` once the supervisor has given up or shut down.
    pub fn send(&self, record: scd_traffic::FlowRecord) -> bool {
        self.records.send(record)
    }

    /// A cloneable sender for feeding records from multiple threads.
    pub fn sender(&self) -> RecordSender {
        self.records.clone()
    }

    /// The report stream (survives restarts).
    pub fn reports(&self) -> &Receiver<IntervalReport> {
        &self.reports
    }

    /// The lifecycle event stream.
    pub fn events(&self) -> &Receiver<LifecycleEvent> {
        &self.events
    }

    /// Stops the detector, then drains and returns remaining reports,
    /// all undrained lifecycle events, and the processed-record count.
    /// `Err` only if the *supervisor itself* panicked, which no detector
    /// panic can cause.
    pub fn shutdown(self) -> Result<(Vec<IntervalReport>, Vec<LifecycleEvent>, u64), StreamFault> {
        drop(self.records);
        let reports: Vec<IntervalReport> = self.reports.iter().collect();
        let events: Vec<LifecycleEvent> = self.events.iter().collect();
        match self.thread.join() {
            Ok(processed) => Ok((reports, events, processed)),
            Err(payload) => Err(StreamFault::Panicked(panic_message(payload.as_ref()))),
        }
    }
}

fn emit(events: &Sender<LifecycleEvent>, event: LifecycleEvent) {
    // Best-effort: losing an event beats stalling the detector.
    let _ = events.try_send(event);
}

/// Spawns a streaming detector under supervision.
///
/// # Panics
/// Panics on an invalid configuration (same rules as
/// [`crate::streaming::spawn`]).
pub fn spawn_supervised(config: SupervisorConfig) -> SupervisedHandle {
    let (sender, record_rx, counters) = make_front_end(&config.stream);
    let (report_tx, report_rx) = bounded::<IntervalReport>(64);
    let (event_tx, event_rx) = bounded::<LifecycleEvent>(256);
    let restart = config.restart;
    let ctx = LoopContext {
        config: config.stream,
        counters,
        events: Some(event_tx.clone()),
        fault: config.fault,
    };

    let thread = std::thread::Builder::new()
        .name("scd-supervised-detector".into())
        .spawn(move || {
            // Process-level resume: consult the configured checkpoint
            // *before* the first record, so a restarted process continues
            // where the previous one left off instead of starting over
            // (and clobbering the old checkpoint at its first write). An
            // unusable checkpoint degrades to a fresh start, same as on a
            // mid-run restart.
            let (mut detector, mut binner) = match recover(&ctx) {
                Ok(Some(resumed)) => resumed,
                Ok(None) => fresh_state(&ctx),
                Err(reason) => {
                    if let Some(m) = &ctx.config.metrics {
                        m.supervisor.degraded_total.inc();
                    }
                    emit(&event_tx, LifecycleEvent::Degraded { reason });
                    fresh_state(&ctx)
                }
            };
            if let Some(m) = &ctx.config.metrics {
                m.supervisor.started_total.inc();
            }
            emit(&event_tx, LifecycleEvent::Started);
            let mut attempts = 0u32;
            loop {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    run_loop(&mut detector, &mut binner, &ctx, &record_rx, &report_tx)
                }));
                match outcome {
                    Ok(_) => break, // input closed or reports dropped: done
                    Err(payload) => {
                        attempts += 1;
                        if attempts > restart.max_restarts {
                            if let Some(m) = &ctx.config.metrics {
                                m.supervisor.gave_up_total.inc();
                            }
                            emit(&event_tx, LifecycleEvent::GaveUp { attempts: attempts - 1 });
                            break;
                        }
                        let backoff =
                            restart.backoff_jittered(attempts, ctx.config.detector.sketch.seed);
                        if let Some(m) = &ctx.config.metrics {
                            m.supervisor.backoff_ms_total.add(backoff.as_millis() as u64);
                        }
                        std::thread::sleep(backoff);
                        let panic = panic_message(payload.as_ref());
                        // Rebuild state: from the last checkpoint when one
                        // is readable, from scratch otherwise. The
                        // half-mutated detector/binner from the panicked
                        // run are discarded either way.
                        match recover(&ctx) {
                            Ok(Some((d, b))) => {
                                detector = d;
                                binner = b;
                            }
                            Ok(None) => {
                                (detector, binner) = fresh_state(&ctx);
                            }
                            Err(reason) => {
                                if let Some(m) = &ctx.config.metrics {
                                    m.supervisor.degraded_total.inc();
                                }
                                emit(&event_tx, LifecycleEvent::Degraded { reason });
                                (detector, binner) = fresh_state(&ctx);
                            }
                        }
                        if let Some(m) = &ctx.config.metrics {
                            m.supervisor.restarts_total.inc();
                        }
                        emit(
                            &event_tx,
                            LifecycleEvent::Restarted {
                                attempt: attempts,
                                resumed_intervals: detector.intervals_processed() as u64,
                                panic,
                            },
                        );
                    }
                }
            }
            binner.processed
        })
        .expect("spawn supervisor thread");

    SupervisedHandle { records: sender, reports: report_rx, events: event_rx, thread }
}

fn fresh_state(ctx: &LoopContext) -> (SketchChangeDetector, BinnerState) {
    let mut detector = SketchChangeDetector::new(ctx.config.detector.clone());
    // The metric sink is not detector state and is never checkpointed, so
    // every rebuild — fresh or restored — re-attaches the same sink.
    if let Some(m) = &ctx.config.metrics {
        detector.set_metrics(Arc::clone(&m.detector));
    }
    (detector, BinnerState::fresh())
}

/// Loads the last checkpoint, if checkpointing is configured and a file
/// exists. `Ok(None)` — nothing to resume from; `Err` — a checkpoint
/// exists but is unusable (corrupt, or for a different config).
fn recover(ctx: &LoopContext) -> Result<Option<(SketchChangeDetector, BinnerState)>, String> {
    let Some(policy) = &ctx.config.checkpoint else {
        return Ok(None);
    };
    if !policy.path.exists() {
        return Ok(None);
    }
    let ck = Checkpoint::load(&policy.path)
        .map_err(|e| format!("checkpoint unusable, restarting fresh: {e}"))?;
    if ck.config != ctx.config.detector {
        return Err("checkpoint is for a different detector config, restarting fresh".into());
    }
    let mut detector = ck
        .restore_detector()
        .map_err(|e| format!("checkpoint restore failed, restarting fresh: {e}"))?;
    if let Some(m) = &ctx.config.metrics {
        detector.set_metrics(Arc::clone(&m.detector));
    }
    let binner = BinnerState::from_checkpoint(&ck);
    Ok(Some((detector, binner)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_doubles_from_base() {
        let p = RestartPolicy { max_restarts: 3, backoff_base_ms: 10, backoff_cap_ms: 1_000 };
        // Attempt 0 cannot occur in the restart loop (attempts is
        // incremented before the first backoff), but the saturating_sub
        // maps it onto attempt 1's sleep rather than shifting by −1.
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
    }

    #[test]
    fn backoff_caps_at_configured_ceiling() {
        let p = RestartPolicy { max_restarts: 10, backoff_base_ms: 10, backoff_cap_ms: 1_000 };
        // 10 · 2⁶ = 640 < 1000 < 10 · 2⁷ = 1280: the cap lands between
        // attempts 7 and 8 and holds from there on.
        assert_eq!(p.backoff(7), Duration::from_millis(640));
        assert_eq!(p.backoff(8), Duration::from_millis(1_000));
        assert_eq!(p.backoff(100), Duration::from_millis(1_000));
    }

    #[test]
    fn backoff_shift_clamps_at_twenty_doublings() {
        // With the cap out of the way, the exponent itself clamps at 20:
        // attempts beyond 21 all sleep base · 2²⁰. Without the clamp,
        // attempt 65 would shift by 64 — undefined behavior on u64.
        let p =
            RestartPolicy { max_restarts: u32::MAX, backoff_base_ms: 1, backoff_cap_ms: u64::MAX };
        assert_eq!(p.backoff(21), Duration::from_millis(1 << 20));
        assert_eq!(p.backoff(22), Duration::from_millis(1 << 20));
        assert_eq!(p.backoff(u32::MAX), Duration::from_millis(1 << 20));
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let p = RestartPolicy { max_restarts: 10, backoff_base_ms: 40, backoff_cap_ms: 10_000 };
        for attempt in 0..=10u32 {
            for seed in [0u64, 1, 42, u64::MAX] {
                let base = p.backoff(attempt).as_millis() as u64;
                let jittered = p.backoff_jittered(attempt, seed).as_millis() as u64;
                // Same inputs, same sleep: a printed schedule is the real one.
                assert_eq!(p.backoff_jittered(attempt, seed), p.backoff_jittered(attempt, seed));
                // Jitter only ever adds, and adds less than a quarter of
                // the exponential base.
                assert!(jittered >= base, "attempt {attempt} seed {seed}: {jittered} < {base}");
                assert!(
                    jittered < base + base / 4 + 1,
                    "attempt {attempt} seed {seed}: {jittered} vs base {base}"
                );
            }
        }
    }

    #[test]
    fn jittered_backoff_respects_cap() {
        // The un-jittered schedule already sits on the cap from attempt 8;
        // jitter must not push the sleep past it.
        let p = RestartPolicy { max_restarts: 20, backoff_base_ms: 10, backoff_cap_ms: 1_000 };
        for attempt in 8..40u32 {
            for seed in [3u64, 0xDEAD_BEEF, u64::MAX / 3] {
                assert!(p.backoff_jittered(attempt, seed) <= Duration::from_millis(1_000));
            }
        }
    }

    #[test]
    fn jittered_backoff_decorrelates_across_seeds() {
        // Different seeds should not produce identical schedules: across
        // ten attempts, at least one sleep must differ between two seeds.
        let p = RestartPolicy { max_restarts: 10, backoff_base_ms: 100, backoff_cap_ms: 1 << 40 };
        let schedule = |seed: u64| -> Vec<Duration> {
            (1..=10).map(|a| p.backoff_jittered(a, seed)).collect()
        };
        assert_ne!(schedule(1), schedule(2));
        assert_ne!(schedule(2), schedule(3));
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        // base near u64::MAX with an uncapped policy: the multiply
        // saturates, then the cap (also u64::MAX) passes it through.
        let p = RestartPolicy {
            max_restarts: 5,
            backoff_base_ms: u64::MAX / 2,
            backoff_cap_ms: u64::MAX,
        };
        assert_eq!(p.backoff(3), Duration::from_millis(u64::MAX));
    }
}
