//! Minimal bounded MPSC channel on `std` primitives (`Mutex` + `Condvar`).
//!
//! The streaming front end needs exactly four behaviours from its queues:
//! blocking send (backpressure), non-blocking send (drop/sample overload
//! policies), blocking receive, and disconnect detection in both
//! directions. This module provides precisely that — no external
//! dependencies, and small enough to audit in one sitting.
//!
//! Senders are cloneable (many producers); the receiver is single-consumer.
//! Dropping every sender ends the stream after the queue drains; dropping
//! the receiver wakes and fails all blocked senders.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signalled when the queue gains an item or all senders drop.
    not_empty: Condvar,
    /// Signalled when the queue loses an item or the receiver drops.
    not_full: Condvar,
}

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError;

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError {
    /// The queue is at capacity; the value was not enqueued.
    Full,
    /// The receiver is gone; no send can ever succeed again.
    Disconnected,
}

/// Error returned by [`Receiver::recv`] when the stream has ended (all
/// senders dropped and the queue is drained).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// The sending half; clone for additional producers.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half (single consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded channel with the given capacity (must be positive).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "channel capacity must be positive");
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            senders: 1,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Blocks until there is room, then enqueues. Fails only if the
    /// receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError> {
        let mut state = self.shared.state.lock().expect("channel lock");
        loop {
            if !state.receiver_alive {
                return Err(SendError);
            }
            if state.queue.len() < state.capacity {
                state.queue.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).expect("channel lock");
        }
    }

    /// Number of values currently queued (a racy snapshot — by the time
    /// the caller looks, the receiver may have drained some). Used for
    /// queue-depth telemetry, never for flow control.
    pub fn len(&self) -> usize {
        self.shared.state.lock().expect("channel lock").queue.len()
    }

    /// True when nothing is queued right now (same snapshot caveat as
    /// [`Sender::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking; reports a full queue instead of waiting.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError> {
        let mut state = self.shared.state.lock().expect("channel lock");
        if !state.receiver_alive {
            return Err(TrySendError::Disconnected);
        }
        if state.queue.len() >= state.capacity {
            return Err(TrySendError::Full);
        }
        state.queue.push_back(value);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel lock").senders += 1;
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel lock");
        state.senders -= 1;
        if state.senders == 0 {
            // Wake a receiver blocked on an empty queue so it can observe
            // the end of the stream.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks for the next value; `Err` means the stream ended (all senders
    /// dropped, queue drained).
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().expect("channel lock");
        loop {
            if let Some(value) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).expect("channel lock");
        }
    }

    /// Returns immediately with the next value if one is queued.
    pub fn try_recv(&self) -> Option<T> {
        let mut state = self.shared.state.lock().expect("channel lock");
        let value = state.queue.pop_front();
        if value.is_some() {
            self.shared.not_full.notify_one();
        }
        value
    }

    /// Blocking iterator over the stream; ends when all senders are gone.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.recv().ok())
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel lock");
        state.receiver_alive = false;
        // Fail every sender blocked on a full queue.
        drop(state);
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_send_reports_full() {
        let (tx, _rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full));
    }

    #[test]
    fn send_blocks_until_room() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).is_ok());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert!(t.join().unwrap());
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn dropping_receiver_fails_senders() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap(); // fill
        let t = std::thread::spawn(move || tx.send(2)); // blocks
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert_eq!(t.join().unwrap(), Err(SendError));
    }

    #[test]
    fn dropping_all_senders_ends_stream_after_drain() {
        let (tx, rx) = bounded(8);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        tx2.send(2).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn many_producers_one_consumer() {
        let (tx, rx) = bounded(16);
        let threads: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got: Vec<i32> = rx.iter().collect();
        for t in threads {
            t.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, (0..400).collect::<Vec<i32>>());
    }
}
