//! Streaming change detection with **direct key recovery** — the §3.3
//! group-testing option, assembled into a full detector.
//!
//! [`ReversibleChangeDetector`] mirrors
//! [`SketchChangeDetector`](crate::detector::SketchChangeDetector) but
//! summarizes each interval into a [`Deltoid`] (group-testing sketch)
//! instead of a plain k-ary sketch. The error deltoid
//! `Se(t) = So(t) − Sf(t)` then *names its own heavy changers*: no second
//! pass over the input, no waiting for keys to reappear, no sampling loss.
//! This closes the blind spot of the online strategies — a key that spikes
//! once and never returns (a classic hit-and-run attack) is still
//! identified — at the documented cost of `(key_bits + 1)×` memory and
//! update work.
//!
//! The alarm rule is the same as the paper's: recover every key whose
//! reconstructed |error| is at least `T · √(ESTIMATEF2(Se(t)))`.

use crate::detector::Alarm;
use scd_forecast::{Forecaster, ModelSpec};
use scd_hash::HashRows;
use scd_sketch::{Deltoid, DeltoidConfig};
use std::sync::Arc;

/// Configuration for the reversible detector.
#[derive(Debug, Clone, PartialEq)]
pub struct ReversibleConfig {
    /// Deltoid shape (`H`, `K`, key width, seed).
    pub deltoid: DeltoidConfig,
    /// Forecasting model.
    pub model: ModelSpec,
    /// Alarm threshold parameter `T` (fraction of the error L2 norm).
    pub threshold: f64,
}

/// Per-interval report with directly recovered keys.
#[derive(Debug, Clone, Default)]
pub struct ReversibleReport {
    /// Interval index.
    pub interval: usize,
    /// False during model warm-up.
    pub warmed_up: bool,
    /// `ESTIMATEF2(Se(t))`.
    pub error_f2: f64,
    /// `TA = T·√(max(F2, 0))`.
    pub alarm_threshold: f64,
    /// Recovered keys with |error| ≥ `TA`, sorted by decreasing |error| —
    /// obtained from the sketch alone, with no key stream.
    pub alarms: Vec<Alarm>,
}

/// The change-detection pipeline over group-testing sketches.
pub struct ReversibleChangeDetector {
    config: ReversibleConfig,
    rows: Arc<HashRows>,
    model: Box<dyn Forecaster<Deltoid> + Send>,
    intervals_processed: usize,
}

impl std::fmt::Debug for ReversibleChangeDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReversibleChangeDetector")
            .field("config", &self.config)
            .field("intervals_processed", &self.intervals_processed)
            .finish()
    }
}

impl ReversibleChangeDetector {
    /// Builds the detector.
    ///
    /// # Panics
    /// Panics on an invalid model spec or non-positive threshold.
    pub fn new(config: ReversibleConfig) -> Self {
        config.model.validate().expect("invalid model spec");
        assert!(
            config.threshold > 0.0 && config.threshold.is_finite(),
            "threshold parameter T must be positive"
        );
        let model = config.model.build();
        let rows = Arc::new(HashRows::new(config.deltoid.h, config.deltoid.k, config.deltoid.seed));
        ReversibleChangeDetector { config, rows, model, intervals_processed: 0 }
    }

    /// The configuration.
    pub fn config(&self) -> &ReversibleConfig {
        &self.config
    }

    /// Feeds one interval of `(key, value)` updates; alarms are recovered
    /// from the error sketch directly.
    pub fn process_interval(&mut self, items: &[(u64, f64)]) -> ReversibleReport {
        let t = self.intervals_processed;
        self.intervals_processed += 1;

        let mut observed = Deltoid::with_rows(Arc::clone(&self.rows), self.config.deltoid.key_bits);
        for &(key, value) in items {
            observed.update(key, value);
        }
        match self.model.step(&observed) {
            None => ReversibleReport { interval: t, ..Default::default() },
            Some((_forecast, error)) => {
                let f2 = error.estimate_f2();
                let ta = self.config.threshold * f2.max(0.0).sqrt();
                let alarms = if ta > 0.0 {
                    error
                        .recover(ta)
                        .into_iter()
                        .map(|(key, estimated_error)| Alarm { key, estimated_error, threshold: ta })
                        .collect()
                } else {
                    Vec::new()
                };
                ReversibleReport {
                    interval: t,
                    warmed_up: true,
                    error_f2: f2,
                    alarm_threshold: ta,
                    alarms,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ReversibleConfig {
        ReversibleConfig {
            deltoid: DeltoidConfig { h: 5, k: 1024, key_bits: 32, seed: 11 },
            model: ModelSpec::Ewma { alpha: 0.5 },
            threshold: 0.3,
        }
    }

    fn steady() -> Vec<(u64, f64)> {
        (0..200u64).map(|k| (k * 101 + 7, 500.0)).collect()
    }

    #[test]
    fn hit_and_run_attack_recovered_without_key_stream() {
        // The attack key appears in exactly one interval. Two-pass would
        // need the (offline) replay; next-interval would MISS it; the
        // reversible detector names it from the sketch alone.
        let mut det = ReversibleChangeDetector::new(config());
        det.process_interval(&steady());
        det.process_interval(&steady());
        let mut attacked = steady();
        attacked.push((0xDEAD_BEEF, 300_000.0));
        let report = det.process_interval(&attacked);
        assert!(report.warmed_up);
        assert!(
            report.alarms.iter().any(|a| a.key == 0xDEAD_BEEF),
            "hit-and-run key not recovered: {:?}",
            report.alarms
        );
    }

    #[test]
    fn quiet_intervals_produce_no_alarms() {
        let mut det = ReversibleChangeDetector::new(config());
        for _ in 0..4 {
            let r = det.process_interval(&steady());
            if r.warmed_up {
                assert!(r.alarms.is_empty(), "false recovery on steady traffic: {:?}", r.alarms);
            }
        }
    }

    #[test]
    fn outage_recovered_as_negative_change() {
        let mut det = ReversibleChangeDetector::new(config());
        let mut with_big = steady();
        with_big.push((0x0BAD_CAFE, 400_000.0));
        det.process_interval(&with_big);
        det.process_interval(&with_big);
        // The big flow disappears entirely — no record carries its key.
        let report = det.process_interval(&steady());
        let alarm = report
            .alarms
            .iter()
            .find(|a| a.key == 0x0BAD_CAFE)
            .expect("outage key recovered with no key stream");
        assert!(alarm.estimated_error < -100_000.0);
    }

    #[test]
    fn warm_up_reports_empty() {
        let mut det = ReversibleChangeDetector::new(config());
        let r = det.process_interval(&steady());
        assert!(!r.warmed_up);
        assert!(r.alarms.is_empty());
    }

    #[test]
    fn alarms_sorted_by_magnitude() {
        let mut det = ReversibleChangeDetector::new(config());
        det.process_interval(&steady());
        det.process_interval(&steady());
        // Both changes must clear TA = 0.3·√(400K² + 900K²) ≈ 296K.
        let mut attacked = steady();
        attacked.push((0x1111_1111, 400_000.0));
        attacked.push((0x2222_2222, 900_000.0));
        let report = det.process_interval(&attacked);
        let idx_small = report.alarms.iter().position(|a| a.key == 0x1111_1111);
        let idx_big = report.alarms.iter().position(|a| a.key == 0x2222_2222);
        match (idx_big, idx_small) {
            (Some(b), Some(s)) => assert!(b < s, "larger change must rank first"),
            other => panic!("both attacks should be recovered, got {other:?}"),
        }
    }
}
