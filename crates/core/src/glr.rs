//! Sub-interval GLR sequential change detection — low-latency provisional
//! alarms raised *inside* the interval, confirmed or retracted by the
//! interval-close detector.
//!
//! Every detector in this repo reports at interval close, so a DoS onset
//! pays the full interval (60 s/300 s) of detection latency. Following
//! *Sketching for Sequential Change-Point Detection* (Cao et al.), this
//! module watches a handful of **random ±1 projections** of the update
//! stream at *base-slot* granularity (an interval is `slots` base slots,
//! exactly the staggered-lane slotting of [`crate::staggered`]) and runs a
//! windowed GLR mean-shift statistic over them:
//!
//! ```text
//! x_r(s)  = Σ_updates sign_r(key) · value          (projection r, slot s)
//! G(s)    = max_r max_{w ≤ W} (S_{r,w} − w·μ̂_r)² / (2·w·σ̂_r²)
//! S_{r,w} = Σ_{i=s−w+1..s} x_r(i)
//! ```
//!
//! where `μ̂_r, σ̂_r²` are running baseline moments (Welford) over slots
//! that have aged out of the `W`-slot window. When `G` crosses the
//! threshold, a [`ProvisionalAlarm`] fires carrying the maximizing window
//! `ŵ` (its start is the estimated change onset) and a **key hint**:
//! the per-slot partial sketches are summed over the `ŵ` alarm slots,
//! the per-slot baseline mean sketch is subtracted `ŵ` times (sketch
//! linearity — the same COMBINE trick `StaggeredDetector` uses), and the
//! logged slot keys are scored against that window-delta sketch.
//!
//! The layer is **contractually invisible**: it observes updates but never
//! touches the interval detector's sketches, RNG, or key stream, so
//! [`crate::detector::IntervalReport`]s are bit-identical with GLR on or
//! off (`tests/glr_invisibility.rs`). Confirm/retract bookkeeping against
//! interval reports lives in the engine ([`crate::engine::ShardedEngine`]),
//! which tags each provisional with the interval that was being ingested
//! and matches its key hint against that interval's close-time alarms.
//!
//! Everything here is a pure function of the observed update/slot
//! sequence — no wall clock, no global RNG — so a checkpointed detector
//! resumes mid-window bit-exactly ([`GlrDetector::snapshot`]).

use scd_hash::{mix64, HashRows, MixBuildHasher};
use scd_sketch::{KarySketch, SketchConfig};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

/// Domain-separation salt for the projection sign hash, mixed with the
/// sketch seed so GLR signs are independent of the sketch's hash family.
const PROJ_SALT: u64 = 0x6752_4C52_5F73_6C74;

/// Variance floor for the GLR denominator: keeps a literally-constant
/// baseline (exact integer slots) from producing `0/0 = NaN` while still
/// letting any real deviation dominate.
const VAR_FLOOR: f64 = 1e-12;

/// Configuration of the sequential GLR layer.
#[derive(Debug, Clone, PartialEq)]
pub struct GlrConfig {
    /// Hash family for the per-slot partial sketches used for key hints.
    /// Deliberately small — these are slot-lifetime scratch sketches, not
    /// the detection sketch.
    pub sketch: SketchConfig,
    /// Number of ±1 projections (1..=64; all signs for one key come from
    /// a single 64-bit mix).
    pub projections: usize,
    /// Maximum GLR window `W` in base slots; also the size of the slot
    /// ring buffer.
    pub max_window: usize,
    /// Alarm threshold on the GLR statistic (units of squared standard
    /// deviations over two).
    pub threshold: f64,
    /// Baseline slots (aged out of the window) required before the
    /// statistic is armed; must be ≥ 2 so a sample variance exists.
    pub min_baseline: usize,
    /// Cap on distinct keys logged per slot for key-hint scoring.
    pub hint_keys: usize,
    /// Slots to suppress further alarms after one fires. A change that
    /// persists would otherwise re-fire every slot until it ages into the
    /// baseline; the cooldown makes the event stream one alarm per onset.
    pub cooldown: usize,
}

impl GlrConfig {
    /// A reasonable default configuration at the given threshold: 8
    /// projections, 8-slot window, 8 baseline slots, a small `h=3, k=1024`
    /// hint-sketch family derived from `seed`.
    pub fn new(threshold: f64, seed: u64) -> Self {
        GlrConfig {
            sketch: SketchConfig { h: 3, k: 1024, seed },
            projections: 8,
            max_window: 8,
            threshold,
            min_baseline: 8,
            hint_keys: 4096,
            cooldown: 8,
        }
    }

    fn validate(&self) {
        assert!(
            (1..=64).contains(&self.projections),
            "GLR projections must be in 1..=64 (one 64-bit mix supplies all signs)"
        );
        assert!(self.max_window >= 1, "GLR max_window must be at least one slot");
        assert!(self.min_baseline >= 2, "GLR min_baseline must be >= 2 (sample variance)");
        assert!(
            self.threshold.is_finite() && self.threshold > 0.0,
            "GLR threshold must be finite and positive"
        );
        assert!(self.hint_keys >= 1, "GLR hint_keys must be at least 1");
    }
}

/// A provisional alarm raised by the sequential statistic mid-interval,
/// awaiting confirmation or retraction at interval close.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvisionalAlarm {
    /// The key the window-delta sketch blames most (largest absolute
    /// estimated change over the alarm window); `None` if the alarm
    /// window logged no keys.
    pub key_hint: Option<u64>,
    /// Base-slot index (0-based, global) where the maximizing window
    /// starts — the estimated change onset.
    pub onset_slot: u64,
    /// Base-slot index whose close raised the alarm.
    pub raised_slot: u64,
    /// Value of the GLR statistic at the firing slot.
    pub statistic: f64,
    /// The maximizing window length `ŵ` in slots.
    pub window: usize,
}

/// Lifecycle events of provisional alarms, drained from the engine via
/// [`crate::engine::ShardedEngine::take_glr_events`].
#[derive(Debug, Clone, PartialEq)]
pub enum GlrEvent {
    /// The sequential statistic crossed its threshold mid-interval.
    Provisional {
        /// Interval (0-based ingest index) being accumulated when the
        /// alarm fired.
        interval: u64,
        /// The alarm.
        alarm: ProvisionalAlarm,
    },
    /// The interval-close detector raised an alarm for the hinted key:
    /// the provisional was real.
    Confirmed {
        /// Interval whose close-time report confirmed the alarm.
        interval: u64,
        /// How many base slots before the interval's closing slot the
        /// provisional fired — the detection-latency win.
        lead_slots: u64,
        /// The original provisional alarm.
        alarm: ProvisionalAlarm,
    },
    /// The interval closed without a matching alarm (or the report never
    /// warmed up): the provisional was a false start.
    Retracted {
        /// Interval whose close retracted the alarm.
        interval: u64,
        /// The original provisional alarm.
        alarm: ProvisionalAlarm,
    },
}

/// One sealed base slot: projection values, partial sketch, logged keys.
#[derive(Debug, Clone)]
struct SlotRecord {
    proj: Vec<f64>,
    sketch: KarySketch,
    keys: Vec<u64>,
}

/// Serializable image of one slot's accumulators.
#[derive(Debug, Clone)]
pub struct GlrSlotSnapshot {
    /// Per-projection ±1-signed sums.
    pub proj: Vec<f64>,
    /// Partial sketch of the slot's updates.
    pub sketch: KarySketch,
    /// Distinct keys logged (capped at `hint_keys`), in first-seen order.
    pub keys: Vec<u64>,
}

/// Complete mutable state of a [`GlrDetector`], sufficient to resume
/// mid-window — and mid-slot — bit-exactly.
#[derive(Debug, Clone)]
pub struct GlrSnapshot {
    /// Base slots closed so far.
    pub slot: u64,
    /// Remaining alarm-suppression slots.
    pub cooldown_left: u64,
    /// Slots folded into the baseline.
    pub base_count: u64,
    /// Per-projection baseline means.
    pub base_mean: Vec<f64>,
    /// Per-projection baseline Welford M2 accumulators.
    pub base_m2: Vec<f64>,
    /// Sum of all baseline slot sketches.
    pub base_sketch: KarySketch,
    /// The ring of sealed slots still inside the window, oldest first.
    pub window: Vec<GlrSlotSnapshot>,
    /// The partially accumulated current slot.
    pub cur: GlrSlotSnapshot,
}

/// Errors restoring a [`GlrDetector`] from a snapshot.
#[derive(Debug)]
pub enum GlrRestoreError {
    /// A snapshot field does not fit the configuration.
    Config(String),
    /// An embedded sketch was built from a different hash family than the
    /// configuration derives.
    FamilyMismatch,
}

impl std::fmt::Display for GlrRestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GlrRestoreError::Config(what) => write!(f, "GLR snapshot rejected: {what}"),
            GlrRestoreError::FamilyMismatch => {
                write!(f, "GLR snapshot sketch family differs from the configuration")
            }
        }
    }
}

impl std::error::Error for GlrRestoreError {}

/// The sequential GLR detector: feed it every update, close a base slot
/// with [`end_slot`](Self::end_slot), collect [`ProvisionalAlarm`]s.
pub struct GlrDetector {
    config: GlrConfig,
    rows: Arc<HashRows>,
    proj_salt: u64,
    // Current (open) slot accumulators.
    cur_proj: Vec<f64>,
    cur_sketch: KarySketch,
    cur_keys: Vec<u64>,
    cur_seen: HashSet<u64, MixBuildHasher>,
    cur_dirty: bool,
    // Sealed slots inside the window, oldest first.
    window: VecDeque<SlotRecord>,
    // Baseline moments over expired slots.
    base_count: u64,
    base_mean: Vec<f64>,
    base_m2: Vec<f64>,
    base_sketch: KarySketch,
    // Slots closed so far; the slot being accumulated has this index.
    slot: u64,
    cooldown_left: u64,
    // Recycled buffers (sketches here are small, but end_slot runs on the
    // ingest thread and must not allocate per slot in steady state).
    spare_sketch: Option<KarySketch>,
    spare_proj: Option<Vec<f64>>,
    spare_keys: Option<Vec<u64>>,
    hint_scratch: Option<KarySketch>,
}

impl std::fmt::Debug for GlrDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlrDetector")
            .field("slot", &self.slot)
            .field("window", &self.window.len())
            .field("base_count", &self.base_count)
            .field("cooldown_left", &self.cooldown_left)
            .finish()
    }
}

impl GlrDetector {
    /// Builds a detector from the configuration.
    ///
    /// # Panics
    /// Panics if the configuration is structurally invalid (see
    /// [`GlrConfig`] field docs).
    pub fn new(config: GlrConfig) -> Self {
        config.validate();
        let rows = Arc::new(HashRows::new(config.sketch.h, config.sketch.k, config.sketch.seed));
        let r = config.projections;
        GlrDetector {
            proj_salt: config.sketch.seed ^ PROJ_SALT,
            rows: Arc::clone(&rows),
            cur_proj: vec![0.0; r],
            cur_sketch: KarySketch::with_rows(Arc::clone(&rows)),
            cur_keys: Vec::new(),
            cur_seen: HashSet::with_hasher(MixBuildHasher),
            cur_dirty: false,
            window: VecDeque::with_capacity(config.max_window + 1),
            base_count: 0,
            base_mean: vec![0.0; r],
            base_m2: vec![0.0; r],
            base_sketch: KarySketch::with_rows(rows),
            slot: 0,
            cooldown_left: 0,
            spare_sketch: None,
            spare_proj: None,
            spare_keys: None,
            hint_scratch: None,
            config,
        }
    }

    /// The configuration this detector was built from.
    pub fn config(&self) -> &GlrConfig {
        &self.config
    }

    /// Base slots closed so far (the open slot has this index).
    pub fn slots_closed(&self) -> u64 {
        self.slot
    }

    /// Whether the current (open) slot has absorbed any updates.
    pub fn slot_dirty(&self) -> bool {
        self.cur_dirty
    }

    /// Whether enough baseline has accumulated for the statistic to fire.
    pub fn armed(&self) -> bool {
        self.base_count >= self.config.min_baseline as u64
    }

    /// Folds one update into the open slot: one `mix64` supplies the ±1
    /// signs for every projection, plus `h` small-sketch adds.
    #[inline]
    pub fn observe(&mut self, key: u64, value: f64) {
        let bits = mix64(key ^ self.proj_salt);
        for (r, p) in self.cur_proj.iter_mut().enumerate() {
            if (bits >> r) & 1 == 1 {
                *p += value;
            } else {
                *p -= value;
            }
        }
        self.cur_sketch.update(key, value);
        if self.cur_keys.len() < self.config.hint_keys && self.cur_seen.insert(key) {
            self.cur_keys.push(key);
        }
        self.cur_dirty = true;
    }

    /// Folds a batch of updates; bit-identical to per-update
    /// [`observe`](Self::observe) in order.
    pub fn observe_slice(&mut self, items: &[(u64, f64)]) {
        for &(key, value) in items {
            self.observe(key, value);
        }
    }

    /// Seals the open slot, ages the oldest windowed slot into the
    /// baseline, and evaluates the GLR statistic. Returns an alarm when
    /// the statistic crosses the threshold (at most one per slot; a fire
    /// starts the configured cooldown).
    pub fn end_slot(&mut self) -> Option<ProvisionalAlarm> {
        let r = self.config.projections;
        // Seal the current slot, swapping in recycled buffers.
        let proj = std::mem::replace(
            &mut self.cur_proj,
            self.spare_proj.take().map_or_else(
                || vec![0.0; r],
                |mut v| {
                    v.iter_mut().for_each(|x| *x = 0.0);
                    v
                },
            ),
        );
        let sketch = std::mem::replace(
            &mut self.cur_sketch,
            self.spare_sketch
                .take()
                .unwrap_or_else(|| KarySketch::with_rows(Arc::clone(&self.rows))),
        );
        let keys =
            std::mem::replace(&mut self.cur_keys, self.spare_keys.take().unwrap_or_default());
        self.cur_seen.clear();
        self.cur_dirty = false;
        self.window.push_back(SlotRecord { proj, sketch, keys });

        // Age the oldest slot out of the window into the baseline.
        if self.window.len() > self.config.max_window {
            let expired = self.window.pop_front().expect("window non-empty");
            self.base_count += 1;
            let n = self.base_count as f64;
            for (i, &x) in expired.proj.iter().enumerate() {
                let d = x - self.base_mean[i];
                self.base_mean[i] += d / n;
                self.base_m2[i] += d * (x - self.base_mean[i]);
            }
            self.base_sketch
                .add_scaled(&expired.sketch, 1.0)
                .expect("slot sketches share the configured family");
            let SlotRecord { proj, mut sketch, mut keys } = expired;
            sketch.clear();
            keys.clear();
            self.spare_sketch = Some(sketch);
            self.spare_proj = Some(proj);
            self.spare_keys = Some(keys);
        }

        let closed = self.slot;
        self.slot += 1;
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return None;
        }
        if self.base_count < self.config.min_baseline as u64 {
            return None;
        }

        // GLR scan: for each projection, the best window ending here.
        let nwin = self.window.len();
        let denom_n = (self.base_count - 1).max(1) as f64;
        let mut best_stat = 0.0f64;
        let mut best_w = 0usize;
        for i in 0..r {
            let mu = self.base_mean[i];
            let var = (self.base_m2[i] / denom_n).max(VAR_FLOOR);
            let mut s = 0.0;
            for w in 1..=nwin {
                s += self.window[nwin - w].proj[i];
                let dev = s - (w as f64) * mu;
                let g = dev * dev / (2.0 * (w as f64) * var);
                if g > best_stat {
                    best_stat = g;
                    best_w = w;
                }
            }
        }
        let fired = best_stat > self.config.threshold && best_w != 0;
        if !fired {
            return None;
        }
        self.cooldown_left = self.config.cooldown as u64;
        let key_hint = self.key_hint(best_w);
        Some(ProvisionalAlarm {
            key_hint,
            onset_slot: closed + 1 - best_w as u64,
            raised_slot: closed,
            statistic: best_stat,
            window: best_w,
        })
    }

    /// Scores logged keys against the window-delta sketch
    /// `Σ_{alarm slots} S_slot − ŵ · (S_baseline / N)` and returns the key
    /// with the largest absolute estimated change (ties to the smaller
    /// key, for determinism).
    fn key_hint(&mut self, w: usize) -> Option<u64> {
        let nwin = self.window.len();
        let mut delta = match self.hint_scratch.take() {
            Some(mut s) => {
                s.clear();
                s
            }
            None => KarySketch::with_rows(Arc::clone(&self.rows)),
        };
        for i in 0..w {
            delta
                .add_scaled(&self.window[nwin - 1 - i].sketch, 1.0)
                .expect("slot sketches share the configured family");
        }
        if self.base_count > 0 {
            delta
                .add_scaled(&self.base_sketch, -(w as f64) / (self.base_count as f64))
                .expect("baseline sketch shares the configured family");
        }
        let mut best: Option<(f64, u64)> = None;
        {
            let est = delta.estimator();
            let mut seen: HashSet<u64, MixBuildHasher> = HashSet::with_hasher(MixBuildHasher);
            for i in 0..w {
                for &key in &self.window[nwin - 1 - i].keys {
                    if !seen.insert(key) {
                        continue;
                    }
                    let e = est.estimate(key).abs();
                    let better = match best {
                        None => true,
                        Some((be, bk)) => e > be || (e == be && key < bk),
                    };
                    if better {
                        best = Some((e, key));
                    }
                }
            }
        }
        self.hint_scratch = Some(delta);
        best.map(|(_, key)| key)
    }

    /// Captures the complete mutable state, including the partially
    /// accumulated open slot.
    pub fn snapshot(&self) -> GlrSnapshot {
        let snap_slot = |s: &SlotRecord| GlrSlotSnapshot {
            proj: s.proj.clone(),
            sketch: s.sketch.clone(),
            keys: s.keys.clone(),
        };
        GlrSnapshot {
            slot: self.slot,
            cooldown_left: self.cooldown_left,
            base_count: self.base_count,
            base_mean: self.base_mean.clone(),
            base_m2: self.base_m2.clone(),
            base_sketch: self.base_sketch.clone(),
            window: self.window.iter().map(snap_slot).collect(),
            cur: GlrSlotSnapshot {
                proj: self.cur_proj.clone(),
                sketch: self.cur_sketch.clone(),
                keys: self.cur_keys.clone(),
            },
        }
    }

    /// Rebuilds a detector from a snapshot taken under the same
    /// configuration; the restored detector is bit-identical to the
    /// snapshotted one for every subsequent observation.
    ///
    /// # Errors
    /// [`GlrRestoreError`] if the snapshot's shapes or sketch families do
    /// not match `config`.
    pub fn restore(config: GlrConfig, snap: GlrSnapshot) -> Result<Self, GlrRestoreError> {
        config.validate();
        let r = config.projections;
        let rows = Arc::new(HashRows::new(config.sketch.h, config.sketch.k, config.sketch.seed));
        let family = rows.identity();
        let check_slot = |s: &GlrSlotSnapshot, what: &str| -> Result<(), GlrRestoreError> {
            if s.proj.len() != r {
                return Err(GlrRestoreError::Config(format!(
                    "{what} has {} projections, config has {r}",
                    s.proj.len()
                )));
            }
            if s.sketch.rows().identity() != family {
                return Err(GlrRestoreError::FamilyMismatch);
            }
            Ok(())
        };
        if snap.base_mean.len() != r || snap.base_m2.len() != r {
            return Err(GlrRestoreError::Config(format!(
                "baseline has {} projections, config has {r}",
                snap.base_mean.len()
            )));
        }
        if snap.base_sketch.rows().identity() != family {
            return Err(GlrRestoreError::FamilyMismatch);
        }
        if snap.window.len() > config.max_window {
            return Err(GlrRestoreError::Config(format!(
                "window holds {} slots, config max is {}",
                snap.window.len(),
                config.max_window
            )));
        }
        for s in &snap.window {
            check_slot(s, "windowed slot")?;
        }
        check_slot(&snap.cur, "open slot")?;
        let mut cur_seen: HashSet<u64, MixBuildHasher> = HashSet::with_hasher(MixBuildHasher);
        for &k in &snap.cur.keys {
            cur_seen.insert(k);
        }
        let window: VecDeque<SlotRecord> = snap
            .window
            .into_iter()
            .map(|s| SlotRecord { proj: s.proj, sketch: s.sketch, keys: s.keys })
            .collect();
        let cur_dirty = !snap.cur.keys.is_empty()
            || snap.cur.proj.iter().any(|&x| x != 0.0)
            || snap.cur.sketch.table().iter().any(|&x| x != 0.0);
        Ok(GlrDetector {
            proj_salt: config.sketch.seed ^ PROJ_SALT,
            rows,
            cur_proj: snap.cur.proj,
            cur_sketch: snap.cur.sketch,
            cur_keys: snap.cur.keys,
            cur_seen,
            cur_dirty,
            window,
            base_count: snap.base_count,
            base_mean: snap.base_mean,
            base_m2: snap.base_m2,
            base_sketch: snap.base_sketch,
            slot: snap.slot,
            cooldown_left: snap.cooldown_left,
            spare_sketch: None,
            spare_proj: None,
            spare_keys: None,
            hint_scratch: None,
            config,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_hash::SplitMix64;

    fn config() -> GlrConfig {
        GlrConfig {
            sketch: SketchConfig { h: 3, k: 1024, seed: 0x5CD },
            projections: 8,
            max_window: 6,
            threshold: 16.0,
            min_baseline: 6,
            hint_keys: 4096,
            cooldown: 6,
        }
    }

    /// A noisy but stationary slot: ~40 keys with per-slot jitter.
    fn steady_slot(rng: &mut SplitMix64) -> Vec<(u64, f64)> {
        (0..40u64).map(|k| (k, 1_000.0 + (rng.next_below(101) as f64) - 50.0)).collect()
    }

    #[test]
    fn step_change_fires_and_hints_the_key() {
        let mut det = GlrDetector::new(config());
        let mut rng = SplitMix64::new(42);
        let onset = 30u64;
        let mut fired_at = None;
        for s in 0..45u64 {
            let mut items = steady_slot(&mut rng);
            if s >= onset {
                items.push((777, 40_000.0));
            }
            det.observe_slice(&items);
            if let Some(alarm) = det.end_slot() {
                assert!(s >= onset, "false alarm at slot {s}: {alarm:?}");
                fired_at = Some((s, alarm));
                break;
            }
        }
        let (slot, alarm) = fired_at.expect("step change never fired");
        assert!(slot <= onset + 2, "fired late, at slot {slot}");
        assert_eq!(alarm.key_hint, Some(777));
        assert!(alarm.onset_slot >= onset.saturating_sub(1) && alarm.onset_slot <= onset + 1);
        assert!(alarm.statistic > det.config().threshold);
    }

    #[test]
    fn steady_stream_stays_quiet() {
        let mut det = GlrDetector::new(config());
        let mut rng = SplitMix64::new(9);
        for _ in 0..200 {
            let items = steady_slot(&mut rng);
            det.observe_slice(&items);
            assert!(det.end_slot().is_none(), "false alarm on a stationary stream");
        }
        assert!(det.armed());
    }

    #[test]
    fn cooldown_suppresses_refires() {
        let mut det = GlrDetector::new(config());
        let mut rng = SplitMix64::new(3);
        let mut alarms = Vec::new();
        for s in 0..40u64 {
            let mut items = steady_slot(&mut rng);
            if s >= 25 {
                items.push((5, 60_000.0));
            }
            det.observe_slice(&items);
            if let Some(a) = det.end_slot() {
                alarms.push(a.raised_slot);
            }
        }
        assert!(!alarms.is_empty());
        for pair in alarms.windows(2) {
            assert!(
                pair[1] - pair[0] > det.config().cooldown as u64,
                "alarms {pair:?} closer than the cooldown"
            );
        }
    }

    #[test]
    fn snapshot_restore_mid_slot_is_bit_exact() {
        let cfg = config();
        let mut rng = SplitMix64::new(1234);
        let slots: Vec<Vec<(u64, f64)>> = (0..50u64)
            .map(|s| {
                let mut items = steady_slot(&mut rng);
                if s >= 33 {
                    items.push((99, 35_000.0));
                }
                items
            })
            .collect();

        // Reference run, recording every alarm.
        let mut a = GlrDetector::new(cfg.clone());
        let mut ref_alarms = Vec::new();
        for items in &slots {
            a.observe_slice(items);
            ref_alarms.push(a.end_slot());
        }

        // Interrupted run: snapshot mid-slot 20 (after half its updates),
        // restore, finish the slot, continue.
        let mut b = GlrDetector::new(cfg.clone());
        let mut got = Vec::new();
        for (s, items) in slots.iter().enumerate() {
            if s == 20 {
                let (first, rest) = items.split_at(items.len() / 2);
                b.observe_slice(first);
                let snap = b.snapshot();
                let mut c = GlrDetector::restore(cfg.clone(), snap).expect("restore");
                c.observe_slice(rest);
                got.push(c.end_slot());
                b = c;
            } else {
                b.observe_slice(items);
                got.push(b.end_slot());
            }
        }
        assert_eq!(ref_alarms, got);
    }

    #[test]
    fn restore_rejects_mismatched_family() {
        let det = GlrDetector::new(config());
        let snap = det.snapshot();
        let mut other = config();
        other.sketch.seed ^= 1;
        assert!(matches!(GlrDetector::restore(other, snap), Err(GlrRestoreError::FamilyMismatch)));
    }

    #[test]
    fn restore_rejects_wrong_projection_count() {
        let det = GlrDetector::new(config());
        let snap = det.snapshot();
        let mut other = config();
        other.projections = 4;
        assert!(matches!(GlrDetector::restore(other, snap), Err(GlrRestoreError::Config(_))));
    }

    #[test]
    fn observe_slice_matches_per_update() {
        let mut a = GlrDetector::new(config());
        let mut b = GlrDetector::new(config());
        let mut rng = SplitMix64::new(77);
        for _ in 0..20 {
            let items = steady_slot(&mut rng);
            a.observe_slice(&items);
            for &(k, v) in &items {
                b.observe(k, v);
            }
            assert_eq!(a.end_slot(), b.end_slot());
        }
        assert_eq!(a.snapshot().base_mean, b.snapshot().base_mean);
    }
}
