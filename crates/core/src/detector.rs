//! The sketch-based change detector (paper §2.2, §3.3).

use crate::sampling::UpdateSampler;
use crate::telemetry::DetectorMetrics;
use scd_forecast::{Forecaster, ModelSpec, ModelState, StateError};
use scd_hash::{HashRows, MixBuildHasher, SplitMix64};
use scd_sketch::{EstimateScratch, KarySketch, SketchConfig};
use std::collections::HashSet;
use std::sync::Arc;

/// How the detector obtains the stream of keys whose forecast errors it
/// reconstructs from the error sketch (§3.3 — sketches answer point
/// queries; they do not enumerate keys).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyStrategy {
    /// Offline two-pass: replay the keys of the *same* interval the error
    /// sketch covers. "In this paper, we use the offline two-pass algorithm
    /// in all experiments."
    TwoPass,
    /// Online: query `Se(t)` with the keys arriving *after* it was built
    /// (here: the keys of interval `t+1`). Misses keys that never reappear
    /// — "often acceptable for many applications like DoS attack detection,
    /// where the damage can be very limited if a key never appears again".
    NextInterval,
    /// Like [`KeyStrategy::TwoPass`] but querying only a sampled substream
    /// of the keys, for when even one estimate per arrival is too costly
    /// (§5.3).
    Sampled {
        /// Probability of scanning each distinct key.
        rate: f64,
        /// Sampling seed (deterministic experiments).
        seed: u64,
    },
}

/// Detector configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// Sketch shape `(H, K, seed)`.
    pub sketch: SketchConfig,
    /// Forecasting model and parameters.
    pub model: ModelSpec,
    /// Alarm threshold parameter `T`: alarms fire when the estimated
    /// forecast error exceeds `T · √(ESTIMATEF2(Se(t)))` in absolute value.
    /// The paper sweeps `T ∈ {0.01, 0.02, 0.05, 0.07, 0.1}`.
    pub threshold: f64,
    /// Key-stream strategy.
    pub key_strategy: KeyStrategy,
}

/// One raised alarm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alarm {
    /// The offending key.
    pub key: u64,
    /// Estimated forecast error reconstructed from the error sketch.
    pub estimated_error: f64,
    /// The threshold `TA` in force when the alarm fired.
    pub threshold: f64,
}

/// Records shed by the streaming front end during one interval, under the
/// configured [`crate::streaming::OverloadPolicy`]. All zero when the
/// policy is `Block` (backpressure never drops).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DropStats {
    /// Records discarded because the input queue was full (`DropNewest`).
    pub dropped: u64,
    /// Records admitted by the `Sample` policy (each carries weight
    /// `1/rate` so sketch totals stay unbiased, §3.3).
    pub sampled_in: u64,
    /// Records shed by the `Sample` policy (not admitted).
    pub shed: u64,
}

impl DropStats {
    /// Total records that never reached the detector.
    pub fn lost(&self) -> u64 {
        self.dropped + self.shed
    }
}

/// Everything the detector can say about one interval.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntervalReport {
    /// Interval index (0-based, counting processed intervals).
    pub interval: usize,
    /// False while the forecasting model is still warming up — no error
    /// sketch exists yet, so `alarms` and `errors` are empty.
    pub warmed_up: bool,
    /// `ESTIMATEF2(Se(t))` — the estimated total energy of forecast errors.
    pub error_f2: f64,
    /// The alarm threshold `TA = T·√(max(F2, 0))`.
    pub alarm_threshold: f64,
    /// Keys whose |estimated error| ≥ `TA`, sorted by decreasing |error|.
    pub alarms: Vec<Alarm>,
    /// Estimated forecast error for every scanned key (deduplicated),
    /// sorted by decreasing |error|. This is the raw material for the
    /// paper's top-N comparisons.
    pub errors: Vec<(u64, f64)>,
    /// Scanned keys whose estimated error came back non-finite
    /// (NaN/±inf). They are excluded from `errors` and can never alarm;
    /// a nonzero count means the forecast model has been driven outside
    /// its numeric envelope and deserves operator attention, not a
    /// detector panic.
    pub non_finite_errors: u64,
    /// Records shed during this interval by the streaming overload policy.
    /// Always zero for detectors fed directly via `process_interval`.
    pub drops: DropStats,
}

impl IntervalReport {
    /// A canonical one-line digest of the report, with every float
    /// rendered by its exact bit pattern and the (potentially long)
    /// alarm/error lists compressed to a length + CRC-32 over their
    /// `(key, f64-bits)` pairs in report order. Equal reports produce
    /// equal lines, and any difference in interval index, warm-up state,
    /// `F2`, threshold, alarm set, error list, or drop accounting changes
    /// the line — which is what lets two runs (e.g. single-node vs
    /// distributed COMBINE) be diffed for bit-identity from the shell
    /// without serializing whole reports.
    pub fn canonical_line(&self) -> String {
        let mut buf = Vec::with_capacity(self.alarms.len() * 24);
        for a in &self.alarms {
            buf.extend_from_slice(&a.key.to_le_bytes());
            buf.extend_from_slice(&a.estimated_error.to_bits().to_le_bytes());
            buf.extend_from_slice(&a.threshold.to_bits().to_le_bytes());
        }
        let alarms_crc = scd_hash::crc32(&buf);
        buf.clear();
        for &(key, err) in &self.errors {
            buf.extend_from_slice(&key.to_le_bytes());
            buf.extend_from_slice(&err.to_bits().to_le_bytes());
        }
        let errors_crc = scd_hash::crc32(&buf);
        format!(
            "interval={} warm={} f2={:016x} ta={:016x} alarms={}:{alarms_crc:08x} \
             errors={}:{errors_crc:08x} nonfinite={} drops={}/{}/{}",
            self.interval,
            u8::from(self.warmed_up),
            self.error_f2.to_bits(),
            self.alarm_threshold.to_bits(),
            self.alarms.len(),
            self.errors.len(),
            self.non_finite_errors,
            self.drops.dropped,
            self.drops.sampled_in,
            self.drops.shed,
        )
    }
}

/// The full sketch-based change-detection pipeline.
pub struct SketchChangeDetector {
    config: DetectorConfig,
    /// Hash family built once and shared by every per-interval sketch —
    /// rebuilding it per interval would redo megabytes of tabulation fill.
    rows: Arc<HashRows>,
    model: Box<dyn Forecaster<KarySketch> + Send>,
    /// Error sketch of the previous interval, pending key replay (only used
    /// by [`KeyStrategy::NextInterval`]).
    pending_error: Option<(usize, KarySketch)>,
    sampler: SplitMix64,
    intervals_processed: usize,
    // --- Recycled turnover workspace. None of this is detector *state*:
    // it is never checkpointed, and a freshly restored detector rebuilds
    // it lazily with identical results. ---
    /// Persistent buffer `forecast_into` fills each interval.
    forecast_buf: Option<KarySketch>,
    /// Spare error-sketch buffer rotated through the turnover (under
    /// `NextInterval` it alternates with the pending slot).
    error_spare: Option<KarySketch>,
    /// Scratch for the fused error/F2 sweep and batched key scoring.
    scratch: EstimateScratch,
    /// Persistent dedup set, cleared (not freed) every interval.
    seen: HashSet<u64, MixBuildHasher>,
    /// Reused output buffer for `estimate_batch`.
    estimates: Vec<f64>,
    /// Telemetry sink. Like the workspaces above, this is not detector
    /// *state*: it is never checkpointed (a restored detector starts with
    /// `None`; re-attach via [`SketchChangeDetector::set_metrics`]), and
    /// recording never influences a report.
    metrics: Option<Arc<DetectorMetrics>>,
}

impl std::fmt::Debug for SketchChangeDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SketchChangeDetector")
            .field("config", &self.config)
            .field("intervals_processed", &self.intervals_processed)
            .finish()
    }
}

impl SketchChangeDetector {
    /// Builds the detector.
    ///
    /// # Panics
    /// Panics on an invalid model spec or non-positive threshold; validate
    /// configs from untrusted sources with [`ModelSpec::validate`] first.
    pub fn new(config: DetectorConfig) -> Self {
        config.model.validate().expect("invalid model spec");
        assert!(
            config.threshold > 0.0 && config.threshold.is_finite(),
            "threshold parameter T must be positive"
        );
        if let KeyStrategy::Sampled { rate, .. } = config.key_strategy {
            assert!((0.0..=1.0).contains(&rate), "sampling rate must be in [0, 1], got {rate}");
        }
        let model = config.model.build();
        let sampler_seed = match config.key_strategy {
            KeyStrategy::Sampled { seed, .. } => seed,
            _ => 0,
        };
        let rows = Arc::new(HashRows::new(config.sketch.h, config.sketch.k, config.sketch.seed));
        SketchChangeDetector {
            config,
            rows,
            model,
            pending_error: None,
            sampler: SplitMix64::new(sampler_seed),
            intervals_processed: 0,
            forecast_buf: None,
            error_spare: None,
            scratch: EstimateScratch::new(),
            seen: HashSet::with_hasher(MixBuildHasher),
            estimates: Vec::new(),
            metrics: None,
        }
    }

    /// Attaches a telemetry sink: per-interval alarm/scan counters and
    /// the F2/threshold gauges. Deliberately a setter rather than a
    /// [`DetectorConfig`] field — the config is compared against
    /// checkpoints for equality, and observability must never invalidate
    /// a checkpoint.
    pub fn set_metrics(&mut self, metrics: Arc<DetectorMetrics>) {
        self.metrics = Some(metrics);
    }

    /// The detector's configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Number of intervals fed so far.
    pub fn intervals_processed(&self) -> usize {
        self.intervals_processed
    }

    /// Feeds one interval's `(key, value)` update stream and returns the
    /// interval's report.
    ///
    /// With [`KeyStrategy::TwoPass`] (and `Sampled`), the report covers the
    /// *current* interval. With [`KeyStrategy::NextInterval`], the report
    /// covers the **previous** interval — its error sketch is only queried
    /// once the current interval's keys arrive — so `report.interval` lags
    /// by one.
    pub fn process_interval(&mut self, items: &[(u64, f64)]) -> IntervalReport {
        // Sketch module: build the observed sketch So(t) over the shared
        // hash family (no per-interval table derivation).
        let mut observed = KarySketch::with_rows(Arc::clone(&self.rows));
        for &(key, value) in items {
            observed.update(key, value);
        }
        let keys = items.iter().map(|&(k, _)| k).collect();
        self.process_observed(&observed, keys)
    }

    /// Feeds one interval whose observed sketch was built externally —
    /// e.g. aggregated from remote routers via COMBINE, or assembled from
    /// per-slot sketches by [`crate::staggered::StaggeredDetector`]. `keys`
    /// is the key stream for error reconstruction (the two-pass replay
    /// list; deduplication is the caller's concern only for efficiency).
    ///
    /// # Panics
    /// Panics if `observed` was built over a different hash family than
    /// this detector's configuration — their cells would not be comparable.
    pub fn process_observed(&mut self, observed: &KarySketch, keys: Vec<u64>) -> IntervalReport {
        // Not wanting the error sketch back lets the turnover recycle its
        // buffer: the steady-state path performs zero heap allocations.
        self.turnover(observed, keys, false).0
    }

    /// Like [`process_observed`](Self::process_observed), but additionally
    /// hands back ownership of the error sketch the report was computed
    /// from, labeled with the interval it covers — the hook the sharded
    /// engine uses to feed an `scd-archive` without re-deriving `Se(t)`.
    ///
    /// The second component is `None` while the model is warming up (no
    /// error sketch exists). Under [`KeyStrategy::NextInterval`] the
    /// returned sketch covers the *previous* interval, matching the
    /// report's lag, and the final interval's error sketch stays pending
    /// (it has not been queried yet).
    ///
    /// # Panics
    /// As [`process_observed`](Self::process_observed).
    pub fn process_observed_archiving(
        &mut self,
        observed: &KarySketch,
        keys: Vec<u64>,
    ) -> (IntervalReport, Option<(usize, KarySketch)>) {
        self.turnover(observed, keys, true)
    }

    /// The interval turnover: forecast, fused error/F2 sweep, key scan.
    ///
    /// Runs entirely on recycled buffers — the persistent forecast
    /// workspace, a rotating error-sketch slot, the estimate scratch, and
    /// the persistent dedup set — so with `want_error = false` a warm
    /// steady-state turnover performs **zero heap allocations** beyond the
    /// report's own output vectors. With `want_error = true` the error
    /// sketch is handed to the caller (the archiving path) and its buffer
    /// is replaced on a later interval.
    fn turnover(
        &mut self,
        observed: &KarySketch,
        mut keys: Vec<u64>,
        want_error: bool,
    ) -> (IntervalReport, Option<(usize, KarySketch)>) {
        assert_eq!(
            observed.rows().identity(),
            (self.config.sketch.h, self.config.sketch.k, self.config.sketch.seed),
            "observed sketch must share the detector's hash family"
        );
        let t = self.intervals_processed;

        // Forecasting module: Sf(t) into the recycled forecast buffer, then
        // the fused sweep computing Se(t) = So(t) − Sf(t) and
        // ESTIMATEF2(Se(t)) in one pass; advances the model.
        let mut fbuf = self
            .forecast_buf
            .take()
            .unwrap_or_else(|| KarySketch::with_rows(Arc::clone(&self.rows)));
        let stepped = if self.model.forecast_into(&mut fbuf) {
            let mut error = self
                .error_spare
                .take()
                .unwrap_or_else(|| KarySketch::with_rows(Arc::clone(&self.rows)));
            let f2 = error
                .sub_into_estimate_f2(observed, &fbuf, &mut self.scratch)
                .expect("family asserted above");
            Some((error, f2))
        } else {
            None
        };
        self.model.observe(observed);
        self.forecast_buf = Some(fbuf);
        self.intervals_processed += 1;

        match self.config.key_strategy {
            KeyStrategy::TwoPass | KeyStrategy::Sampled { .. } => match stepped {
                None => (IntervalReport { interval: t, ..Default::default() }, None),
                Some((error, f2)) => {
                    self.dedup_in_place(&mut keys);
                    if let KeyStrategy::Sampled { rate, .. } = self.config.key_strategy {
                        // One shared Bernoulli predicate with the record
                        // sampler — see `UpdateSampler::keep` for the
                        // strict-< semantics this fixes.
                        let sampler = &mut self.sampler;
                        keys.retain(|_| UpdateSampler::keep(rate, sampler));
                    }
                    let report = self.detect(t, &error, &keys, f2);
                    if want_error {
                        (report, Some((t, error)))
                    } else {
                        self.error_spare = Some(error);
                        (report, None)
                    }
                }
            },
            KeyStrategy::NextInterval => {
                // Query the *pending* error sketch with this interval's keys.
                let (report, queried) = match self.pending_error.take() {
                    None => (
                        IntervalReport { interval: t.saturating_sub(1), ..Default::default() },
                        None,
                    ),
                    Some((prev_t, error)) => {
                        self.dedup_in_place(&mut keys);
                        // F2 is a pure function of the sketch, so computing
                        // it at query time (not build time) changes nothing.
                        let f2 = error.estimate_f2();
                        let report = self.detect(prev_t, &error, &keys, f2);
                        if want_error {
                            (report, Some((prev_t, error)))
                        } else {
                            self.error_spare = Some(error);
                            (report, None)
                        }
                    }
                };
                if let Some((error, _f2)) = stepped {
                    self.pending_error = Some((t, error));
                }
                (report, queried)
            }
        }
    }

    /// Deduplicates `keys` in place, preserving first-seen order, using the
    /// persistent set (cleared, never freed — no steady-state allocation).
    fn dedup_in_place(&mut self, keys: &mut Vec<u64>) {
        self.seen.clear();
        let seen = &mut self.seen;
        keys.retain(|k| seen.insert(*k));
    }

    /// Change-detection module: threshold selection + batched key scan.
    fn detect(
        &mut self,
        interval: usize,
        error_sketch: &KarySketch,
        keys: &[u64],
        f2: f64,
    ) -> IntervalReport {
        let alarm_threshold = self.config.threshold * f2.max(0.0).sqrt();
        error_sketch.estimate_batch(keys, &mut self.scratch, &mut self.estimates);
        // Non-finite estimates are filtered *before* the sort: they carry
        // no magnitude information, and under `total_cmp` a NaN would
        // outrank +inf and stall the take_while alarm scan below. A single
        // poisoned cell must degrade one key's estimate, not panic the
        // whole scan (under the supervisor that panic is a poison pill —
        // the checkpoint restores the same state and the restart loop
        // burns the entire budget re-dying on the same interval).
        let mut non_finite_errors = 0u64;
        let mut errors: Vec<(u64, f64)> = keys
            .iter()
            .copied()
            .zip(self.estimates.iter().copied())
            .filter(|&(_, e)| {
                let finite = e.is_finite();
                non_finite_errors += u64::from(!finite);
                finite
            })
            .collect();
        errors.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()).then_with(|| a.0.cmp(&b.0)));
        // |error| must meet the threshold *and* be nonzero: when an interval
        // is predicted perfectly, F2 = 0 makes TA = 0, and flows with zero
        // error must not alarm.
        let alarms: Vec<Alarm> = errors
            .iter()
            .take_while(|(_, e)| e.abs() >= alarm_threshold && e.abs() > 0.0)
            .map(|&(key, estimated_error)| Alarm {
                key,
                estimated_error,
                threshold: alarm_threshold,
            })
            .collect();
        if let Some(m) = &self.metrics {
            m.intervals_total.inc();
            m.keys_scanned_total.add(keys.len() as u64);
            m.alarms_total.add(alarms.len() as u64);
            m.non_finite_errors_total.add(non_finite_errors);
            m.error_f2.set(f2);
            m.alarm_threshold.set(alarm_threshold);
        }
        IntervalReport {
            interval,
            warmed_up: true,
            error_f2: f2,
            alarm_threshold,
            alarms,
            errors,
            non_finite_errors,
            drops: DropStats::default(),
        }
    }

    /// The hash family shared by every sketch this detector touches.
    pub fn rows(&self) -> &Arc<HashRows> {
        &self.rows
    }

    /// Exports the detector's complete mutable state for checkpointing.
    ///
    /// Together with the (immutable) [`DetectorConfig`], the snapshot fully
    /// determines future behaviour: [`SketchChangeDetector::restore`] on an
    /// equal config yields a detector whose reports are bit-identical to
    /// this one's from here on.
    pub fn snapshot(&self) -> DetectorSnapshot {
        DetectorSnapshot {
            intervals_processed: self.intervals_processed as u64,
            sampler_state: self.sampler.state(),
            pending_error: self.pending_error.as_ref().map(|(t, s)| (*t as u64, s.clone())),
            model: self.model.snapshot_state(),
        }
    }

    /// Rebuilds a detector from a config and a snapshot taken by
    /// [`SketchChangeDetector::snapshot`] on a detector with an equal
    /// config.
    ///
    /// Corrupt or mismatched snapshots yield a typed [`RestoreError`],
    /// never a panic — this is the path a supervisor takes after a crash,
    /// where the checkpoint on disk is the least-trusted input in the
    /// system.
    pub fn restore(
        config: DetectorConfig,
        snapshot: DetectorSnapshot,
    ) -> Result<Self, RestoreError> {
        config.model.validate().map_err(|e| RestoreError::BadConfig(e.to_string()))?;
        if !(config.threshold > 0.0 && config.threshold.is_finite()) {
            return Err(RestoreError::BadConfig("threshold parameter T must be positive".into()));
        }
        let identity = (config.sketch.h, config.sketch.k, config.sketch.seed);
        let mut sketches: Vec<&KarySketch> = model_sketches(&snapshot.model);
        if let Some((_, s)) = &snapshot.pending_error {
            sketches.push(s);
        }
        if sketches.iter().any(|s| s.rows().identity() != identity) {
            return Err(RestoreError::FamilyMismatch);
        }
        // Reuse the snapshot's hash family when one is present: rebuilding
        // tabulation tables is the expensive part of detector construction,
        // and restart latency is on the supervisor's critical path.
        let rows = match sketches.first() {
            Some(s) => Arc::clone(s.rows()),
            None => Arc::new(HashRows::new(config.sketch.h, config.sketch.k, config.sketch.seed)),
        };
        let model = config.model.restore(snapshot.model).map_err(RestoreError::Model)?;
        Ok(SketchChangeDetector {
            config,
            rows,
            model,
            pending_error: snapshot.pending_error.map(|(t, s)| (t as usize, s)),
            sampler: SplitMix64::new(snapshot.sampler_state),
            intervals_processed: snapshot.intervals_processed as usize,
            forecast_buf: None,
            error_spare: None,
            scratch: EstimateScratch::new(),
            seen: HashSet::with_hasher(MixBuildHasher),
            estimates: Vec::new(),
            metrics: None,
        })
    }
}

/// Complete mutable state of a [`SketchChangeDetector`], as captured by
/// [`SketchChangeDetector::snapshot`].
#[derive(Debug, Clone)]
pub struct DetectorSnapshot {
    /// Number of intervals fed so far.
    pub intervals_processed: u64,
    /// Internal state of the key-sampling generator (`Sampled` strategy),
    /// so restored runs sample the same keys the original would have.
    pub sampler_state: u64,
    /// The pending error sketch (`NextInterval` strategy only).
    pub pending_error: Option<(u64, KarySketch)>,
    /// The forecasting model's state.
    pub model: ModelState<KarySketch>,
}

/// Errors from [`SketchChangeDetector::restore`].
#[derive(Debug, Clone, PartialEq)]
pub enum RestoreError {
    /// The config itself is invalid (bad model spec or threshold).
    BadConfig(String),
    /// The model state does not match the config's model spec.
    Model(StateError),
    /// A sketch in the snapshot was built over a different hash family
    /// than the config describes.
    FamilyMismatch,
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::BadConfig(what) => write!(f, "invalid detector config: {what}"),
            RestoreError::Model(e) => write!(f, "model state rejected: {e}"),
            RestoreError::FamilyMismatch => {
                write!(f, "snapshot sketches use a different hash family than the config")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// Every sketch embedded in a model state (for family validation).
fn model_sketches(state: &ModelState<KarySketch>) -> Vec<&KarySketch> {
    match state {
        ModelState::Ma { history } | ModelState::Sma { history } => history.iter().collect(),
        ModelState::Ewma { forecast } => forecast.iter().collect(),
        ModelState::Nshw { first, state } => {
            let mut v: Vec<&KarySketch> = first.iter().collect();
            if let Some(p) = state {
                v.extend([&p.level, &p.trend, &p.forecast]);
            }
            v
        }
        ModelState::Arima { x_hist, e_hist, .. } => x_hist.iter().chain(e_hist.iter()).collect(),
        ModelState::Shw { init, state } => {
            let mut v: Vec<&KarySketch> = init.iter().collect();
            if let Some(p) = state {
                v.extend([&p.level, &p.trend]);
                v.extend(p.season.iter());
            }
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(strategy: KeyStrategy) -> DetectorConfig {
        DetectorConfig {
            sketch: SketchConfig { h: 5, k: 4096, seed: 99 },
            model: ModelSpec::Ewma { alpha: 0.5 },
            threshold: 0.05,
            key_strategy: strategy,
        }
    }

    /// Three flows with steady traffic; flow 42 spikes at interval 4.
    fn spike_stream(t: usize) -> Vec<(u64, f64)> {
        let mut items = vec![(1u64, 10_000.0), (2, 5_000.0), (42, 1_000.0)];
        if t == 4 {
            items[2].1 = 80_000.0;
        }
        items
    }

    #[test]
    fn two_pass_detects_spike_only_at_spike_interval() {
        let mut det = SketchChangeDetector::new(config(KeyStrategy::TwoPass));
        for t in 0..6 {
            let report = det.process_interval(&spike_stream(t));
            let spiked = report.alarms.iter().any(|a| a.key == 42);
            if t == 4 {
                assert!(spiked, "spike missed at t=4: {:?}", report.alarms);
            } else if t >= 2 && t != 5 {
                // t=5 sees a "drop" relative to the inflated forecast, so an
                // alarm there is legitimate; quiet intervals must be quiet.
                assert!(!spiked, "false alarm at t={t}: {:?}", report.alarms);
            }
        }
    }

    #[test]
    fn warm_up_intervals_report_no_alarms() {
        let mut det = SketchChangeDetector::new(config(KeyStrategy::TwoPass));
        let report = det.process_interval(&spike_stream(0));
        assert!(!report.warmed_up);
        assert!(report.alarms.is_empty() && report.errors.is_empty());
    }

    #[test]
    fn errors_sorted_by_magnitude() {
        let mut det = SketchChangeDetector::new(config(KeyStrategy::TwoPass));
        det.process_interval(&[(1, 100.0), (2, 100.0), (3, 100.0)]);
        let report = det.process_interval(&[(1, 500.0), (2, 150.0), (3, 100.0)]);
        assert!(report.warmed_up);
        let mags: Vec<f64> = report.errors.iter().map(|(_, e)| e.abs()).collect();
        for w in mags.windows(2) {
            assert!(w[0] >= w[1], "not sorted: {mags:?}");
        }
        assert_eq!(report.errors[0].0, 1, "largest change first");
    }

    #[test]
    fn next_interval_strategy_lags_by_one() {
        let mut det = SketchChangeDetector::new(config(KeyStrategy::NextInterval));
        det.process_interval(&spike_stream(0)); // warm-up
        det.process_interval(&spike_stream(1)); // builds Se(1)
        let r = det.process_interval(&spike_stream(2)); // queries Se(1)
        assert!(r.warmed_up);
        assert_eq!(r.interval, 1);
    }

    #[test]
    fn next_interval_misses_keys_that_vanish() {
        // Key 42 spikes at t=2 and never appears again: the online strategy
        // cannot scan it, exactly the caveat the paper documents.
        let mut det = SketchChangeDetector::new(config(KeyStrategy::NextInterval));
        let steady = vec![(1u64, 10_000.0), (2, 5_000.0)];
        let mut with_spike = steady.clone();
        with_spike.push((42, 90_000.0));
        det.process_interval(&steady);
        det.process_interval(&steady);
        det.process_interval(&with_spike); // spike interval: Se(2) pending
        let r = det.process_interval(&steady); // scans Se(2) with steady keys
        assert_eq!(r.interval, 2);
        assert!(
            !r.errors.iter().any(|&(k, _)| k == 42),
            "online strategy should not see vanished key 42"
        );
    }

    #[test]
    fn sampled_strategy_scans_subset() {
        let many: Vec<(u64, f64)> = (0..400u64).map(|k| (k, 100.0)).collect();
        let mut det =
            SketchChangeDetector::new(config(KeyStrategy::Sampled { rate: 0.25, seed: 7 }));
        det.process_interval(&many);
        let r = det.process_interval(&many);
        assert!(r.warmed_up);
        let scanned = r.errors.len();
        assert!((40..=160).contains(&scanned), "expected ~100 of 400 keys scanned, got {scanned}");
    }

    #[test]
    fn sampled_rate_one_equals_two_pass() {
        let items: Vec<(u64, f64)> = (0..50u64).map(|k| (k, (k + 1) as f64)).collect();
        let mut a = SketchChangeDetector::new(config(KeyStrategy::TwoPass));
        let mut b = SketchChangeDetector::new(config(KeyStrategy::Sampled { rate: 1.0, seed: 1 }));
        a.process_interval(&items);
        b.process_interval(&items);
        let ra = a.process_interval(&items);
        let rb = b.process_interval(&items);
        assert_eq!(ra.errors, rb.errors);
    }

    #[test]
    fn sampled_strategy_agrees_with_shared_sampler() {
        // The detector's key retention must replay exactly the decisions of
        // `UpdateSampler::keep` on the same (rate, seed): one draw per
        // deduplicated key, in first-seen order. This pins the shared path
        // — any drift back to an inline threshold reintroduces the bias.
        let rate = 0.3;
        let seed = 11;
        let many: Vec<(u64, f64)> = (0..500u64).map(|k| (k, 100.0)).collect();
        let mut det = SketchChangeDetector::new(config(KeyStrategy::Sampled { rate, seed }));
        det.process_interval(&many); // warm-up: no error sketch, no draws
        let r = det.process_interval(&many);
        let mut scanned: Vec<u64> = r.errors.iter().map(|&(k, _)| k).collect();
        scanned.sort_unstable();
        let mut rng = SplitMix64::new(seed);
        let expected: Vec<u64> =
            (0..500u64).filter(|_| crate::sampling::UpdateSampler::keep(rate, &mut rng)).collect();
        assert_eq!(scanned, expected);
    }

    #[test]
    fn sampled_rate_zero_scans_nothing() {
        // rate 0 must keep nothing — under the old `<=` comparison each key
        // still survived with probability 2⁻⁶⁴.
        let many: Vec<(u64, f64)> = (0..50u64).map(|k| (k, 100.0)).collect();
        let mut det =
            SketchChangeDetector::new(config(KeyStrategy::Sampled { rate: 0.0, seed: 5 }));
        det.process_interval(&many);
        let r = det.process_interval(&many);
        assert!(r.warmed_up);
        assert!(r.errors.is_empty(), "rate 0 scanned {:?}", r.errors);
    }

    #[test]
    fn non_finite_errors_reported_not_panicked() {
        // Feeding an infinite value poisons the affected cells: once the
        // forecast also carries inf, the error cells become inf − inf = NaN.
        // The scan must degrade gracefully — count the poisoned keys, keep
        // alarming on the finite ones — not panic (under the supervisor a
        // panic here is a poison pill: the checkpoint restores the same
        // state and every restart dies on the same interval).
        let mut det = SketchChangeDetector::new(config(KeyStrategy::TwoPass));
        let poisoned = vec![(1u64, f64::INFINITY), (2, 5_000.0), (3, 800.0)];
        det.process_interval(&poisoned);
        let snap = det.snapshot();
        let r = det.process_interval(&poisoned);
        assert!(r.warmed_up);
        assert!(r.non_finite_errors > 0, "expected poisoned keys: {r:?}");
        assert!(r.errors.iter().all(|(_, e)| e.is_finite()));
        assert!(r.alarms.iter().all(|a| a.estimated_error.is_finite()));

        // The poison-pill scenario: a checkpoint taken *before* the fatal
        // interval restores to the same state — reprocessing the same
        // input must again yield a report, not a panic, or a supervised
        // restart loop would burn its whole budget re-dying here.
        let mut restored =
            SketchChangeDetector::restore(det.config().clone(), snap).expect("restore");
        let r2 = restored.process_interval(&poisoned);
        // `error_f2` is NaN here, and NaN != NaN under PartialEq — compare
        // the floats by bit pattern to assert bit-identical degradation.
        assert_eq!(r.error_f2.to_bits(), r2.error_f2.to_bits());
        assert_eq!(r.alarm_threshold.to_bits(), r2.alarm_threshold.to_bits());
        assert_eq!(
            (r.interval, &r.alarms, &r.errors, r.non_finite_errors),
            (r2.interval, &r2.alarms, &r2.errors, r2.non_finite_errors),
            "restored detector must reproduce the degraded report"
        );
        // And the detector remains usable on later (finite) intervals.
        let r3 = restored.process_interval(&[(1, 100.0), (2, 5_000.0), (3, 800.0)]);
        assert!(r3.warmed_up);
    }

    #[test]
    fn duplicate_keys_scanned_once() {
        let mut det = SketchChangeDetector::new(config(KeyStrategy::TwoPass));
        det.process_interval(&[(5, 10.0), (5, 20.0)]);
        let r = det.process_interval(&[(5, 10.0), (5, 20.0), (5, 5.0)]);
        assert_eq!(r.errors.len(), 1, "key 5 must appear once: {:?}", r.errors);
    }

    #[test]
    fn threshold_scales_alarm_count() {
        // Lower T ⇒ at least as many alarms.
        let items_base: Vec<(u64, f64)> = (0..100u64).map(|k| (k, 1000.0)).collect();
        let mut items_spiky = items_base.clone();
        for (i, item) in items_spiky.iter_mut().take(10).enumerate() {
            item.1 = 5_000.0 + 1_000.0 * i as f64;
        }
        let run = |t: f64| -> usize {
            let mut cfg = config(KeyStrategy::TwoPass);
            cfg.threshold = t;
            let mut det = SketchChangeDetector::new(cfg);
            det.process_interval(&items_base);
            det.process_interval(&items_base);
            det.process_interval(&items_spiky).alarms.len()
        };
        let low = run(0.01);
        let high = run(0.3);
        assert!(low >= high, "T=0.01 gave {low} alarms, T=0.3 gave {high}");
        assert!(high >= 1, "clear spikes should alarm even at high T");
    }

    #[test]
    #[should_panic(expected = "threshold parameter T must be positive")]
    fn rejects_nonpositive_threshold() {
        let mut cfg = config(KeyStrategy::TwoPass);
        cfg.threshold = 0.0;
        let _ = SketchChangeDetector::new(cfg);
    }

    #[test]
    fn snapshot_restore_reports_identical() {
        for strategy in [
            KeyStrategy::TwoPass,
            KeyStrategy::NextInterval,
            KeyStrategy::Sampled { rate: 0.5, seed: 3 },
        ] {
            let mut original = SketchChangeDetector::new(config(strategy));
            for t in 0..3 {
                original.process_interval(&spike_stream(t));
            }
            let snap = original.snapshot();
            let mut restored =
                SketchChangeDetector::restore(original.config().clone(), snap).expect("restore");
            for t in 3..7 {
                let a = original.process_interval(&spike_stream(t));
                let b = restored.process_interval(&spike_stream(t));
                assert_eq!(a, b, "{strategy:?} diverged at t={t}");
            }
        }
    }

    #[test]
    fn restore_rejects_foreign_hash_family() {
        let mut det = SketchChangeDetector::new(config(KeyStrategy::TwoPass));
        for t in 0..3 {
            det.process_interval(&spike_stream(t));
        }
        let snap = det.snapshot();
        let mut other = config(KeyStrategy::TwoPass);
        other.sketch.seed = 1234; // different family, same shape
        match SketchChangeDetector::restore(other, snap) {
            Err(RestoreError::FamilyMismatch) => {}
            other => panic!("expected FamilyMismatch, got {other:?}"),
        }
    }

    #[test]
    fn negative_changes_alarm_too() {
        // An outage (traffic drops to zero) is a change with negative error.
        let mut det = SketchChangeDetector::new(config(KeyStrategy::TwoPass));
        let busy = vec![(1u64, 50_000.0), (2, 900.0), (3, 800.0)];
        let outage = vec![(1u64, 0.0), (2, 900.0), (3, 800.0)];
        det.process_interval(&busy);
        det.process_interval(&busy);
        let r = det.process_interval(&outage);
        let alarm = r.alarms.iter().find(|a| a.key == 1).expect("outage alarm");
        assert!(alarm.estimated_error < 0.0, "outage error should be negative");
    }
}
