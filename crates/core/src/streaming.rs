//! Near-real-time streaming front end — the paper's §6 "online change
//! detection" deployment shape.
//!
//! The offline pipeline consumes pre-binned intervals; a live deployment
//! consumes a **stream of flow records** and must bin, rotate, and detect
//! as time advances. [`spawn`] runs the detector on its
//! own thread behind a bounded crossbeam channel:
//!
//! ```text
//! capture thread ──records──► [channel] ──► detector thread ──reports──►
//! ```
//!
//! Interval rotation is driven by **event time** (record timestamps), not
//! wall clock, so behaviour is deterministic and replayable: when a record
//! arrives whose timestamp belongs to a later interval, every interval up
//! to it is flushed through the detector (empty intervals included — the
//! forecasting models must advance through silence). Records that arrive
//! *late* (timestamp before the current interval) are folded into the
//! current interval rather than dropped; the paper's two-pass replay is
//! equally approximate about stragglers.
//!
//! Shutdown: drop the record sender. The detector flushes the final
//! partial interval, emits its report, and the thread ends; the report
//! receiver then disconnects. No locks are shared — the detector is owned
//! by its thread; backpressure comes from the bounded channel.

use crate::detector::{DetectorConfig, IntervalReport, SketchChangeDetector};
use crossbeam::channel::{bounded, Receiver, Sender};
use scd_traffic::{FlowRecord, KeySpec, ValueSpec};
use std::thread::JoinHandle;

/// Configuration for the streaming front end.
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// The underlying detector.
    pub detector: DetectorConfig,
    /// Interval length in milliseconds of event time.
    pub interval_ms: u64,
    /// Key projection from records.
    pub key: KeySpec,
    /// Value projection from records.
    pub value: ValueSpec,
    /// Record-channel capacity (backpressure bound).
    pub channel_capacity: usize,
}

/// Handle to a running streaming detector.
pub struct StreamingHandle {
    /// Send flow records here; drop (or [`StreamingHandle::shutdown`]) to stop.
    records: Sender<FlowRecord>,
    /// Interval reports arrive here as event time advances.
    reports: Receiver<IntervalReport>,
    thread: JoinHandle<u64>,
}

impl StreamingHandle {
    /// Sends one record; blocks when the channel is full (backpressure).
    /// Returns `false` if the detector thread has already stopped.
    pub fn send(&self, record: FlowRecord) -> bool {
        self.records.send(record).is_ok()
    }

    /// The report stream.
    pub fn reports(&self) -> &Receiver<IntervalReport> {
        &self.reports
    }

    /// Stops the detector, drains remaining reports, and returns them with
    /// the total number of records processed.
    pub fn shutdown(self) -> (Vec<IntervalReport>, u64) {
        drop(self.records);
        let mut remaining = Vec::new();
        while let Ok(r) = self.reports.recv() {
            remaining.push(r);
        }
        let processed = self.thread.join().expect("detector thread panicked");
        (remaining, processed)
    }
}

/// Spawns the detector thread.
///
/// # Panics
/// Panics if `interval_ms == 0` or `channel_capacity == 0`, or on an
/// invalid detector configuration.
pub fn spawn(config: StreamingConfig) -> StreamingHandle {
    assert!(config.interval_ms > 0, "interval must be positive");
    assert!(config.channel_capacity > 0, "channel capacity must be positive");
    let (record_tx, record_rx) = bounded::<FlowRecord>(config.channel_capacity);
    let (report_tx, report_rx) = bounded::<IntervalReport>(64);
    let mut detector = SketchChangeDetector::new(config.detector.clone());
    let interval_ms = config.interval_ms;
    let key = config.key;
    let value = config.value;

    let thread = std::thread::Builder::new()
        .name("scd-streaming-detector".into())
        .spawn(move || {
            let mut processed = 0u64;
            let mut current: Vec<(u64, f64)> = Vec::new();
            // Event-time interval index; fixed by the first record.
            let mut interval_idx: Option<u64> = None;
            for record in record_rx.iter() {
                processed += 1;
                let t = record.timestamp_ms / interval_ms;
                let idx = *interval_idx.get_or_insert(t);
                if t > idx {
                    // Flush the finished interval, then any empty ones the
                    // stream skipped over (models advance through silence).
                    let report = detector.process_interval(&current);
                    current.clear();
                    if report_tx.send(report).is_err() {
                        return processed; // receiver gone: stop quietly
                    }
                    for _ in (idx + 1)..t {
                        let report = detector.process_interval(&[]);
                        if report_tx.send(report).is_err() {
                            return processed;
                        }
                    }
                    interval_idx = Some(t);
                }
                // Late records (t < idx) fold into the current interval.
                current.push((key.key_of(&record), value.value_of(&record)));
            }
            // Sender dropped: flush the final partial interval.
            if !current.is_empty() {
                let report = detector.process_interval(&current);
                let _ = report_tx.send(report);
            }
            processed
        })
        .expect("spawn detector thread");

    StreamingHandle { records: record_tx, reports: report_rx, thread }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::KeyStrategy;
    use scd_forecast::ModelSpec;
    use scd_sketch::SketchConfig;

    fn config() -> StreamingConfig {
        StreamingConfig {
            detector: DetectorConfig {
                sketch: SketchConfig { h: 3, k: 1024, seed: 3 },
                model: ModelSpec::Ewma { alpha: 0.5 },
                threshold: 0.3,
                key_strategy: KeyStrategy::TwoPass,
            },
            interval_ms: 1_000,
            key: KeySpec::DstIp,
            value: ValueSpec::Bytes,
            channel_capacity: 256,
        }
    }

    fn record(ts: u64, dst: u32, bytes: u64) -> FlowRecord {
        FlowRecord {
            timestamp_ms: ts,
            src_ip: 1,
            dst_ip: dst,
            src_port: 1,
            dst_port: 80,
            protocol: 6,
            bytes,
            packets: 1,
        }
    }

    #[test]
    fn detects_spike_in_stream() {
        let handle = spawn(config());
        // Intervals 0..4: steady; interval 3 carries a spike on dst 99.
        for t in 0..5u64 {
            for i in 0..20 {
                handle.send(record(t * 1000 + i * 40, 7, 1_000));
                handle.send(record(t * 1000 + i * 40 + 1, 8, 500));
            }
            if t == 3 {
                for i in 0..10 {
                    handle.send(record(t * 1000 + 500 + i, 99, 50_000));
                }
            }
        }
        let (reports, processed) = handle.shutdown();
        assert_eq!(processed, 5 * 40 + 10);
        assert_eq!(reports.len(), 5, "one report per event-time interval");
        let spike_report = &reports[3];
        assert!(
            spike_report.alarms.iter().any(|a| a.key == 99),
            "spike not flagged: {:?}",
            spike_report.alarms
        );
        assert!(
            reports[2].alarms.iter().all(|a| a.key != 99),
            "no alarm before the spike"
        );
    }

    #[test]
    fn empty_intervals_advance_the_model() {
        let handle = spawn(config());
        handle.send(record(100, 5, 1_000));
        handle.send(record(5_100, 5, 1_000)); // skips intervals 1..=4
        let (reports, _) = handle.shutdown();
        // Interval 0 + three empty (1,2,3,4) + final partial (5) = 6.
        assert_eq!(reports.len(), 6);
        // The disappearance registers as a negative error in interval 1.
        let r1 = &reports[1];
        if r1.warmed_up {
            assert!(r1.errors.is_empty(), "empty interval scans no keys (two-pass)");
        }
    }

    #[test]
    fn late_records_fold_into_current_interval() {
        let handle = spawn(config());
        handle.send(record(2_500, 1, 10.0 as u64));
        handle.send(record(1_900, 1, 10)); // late by 600ms: accepted
        let (reports, processed) = handle.shutdown();
        assert_eq!(processed, 2);
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn shutdown_with_no_records_is_clean() {
        let handle = spawn(config());
        let (reports, processed) = handle.shutdown();
        assert!(reports.is_empty());
        assert_eq!(processed, 0);
    }

    #[test]
    fn report_interval_indices_are_sequential() {
        let handle = spawn(config());
        for t in 0..4u64 {
            handle.send(record(t * 1000 + 10, 2, 100));
        }
        let (reports, _) = handle.shutdown();
        let idx: Vec<usize> = reports.iter().map(|r| r.interval).collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }
}
