//! Near-real-time streaming front end — the paper's §6 "online change
//! detection" deployment shape.
//!
//! The offline pipeline consumes pre-binned intervals; a live deployment
//! consumes a **stream of flow records** and must bin, rotate, and detect
//! as time advances. [`spawn`] runs the detector on its own thread behind
//! a bounded channel ([`crate::channel`]):
//!
//! ```text
//! capture thread ──records──► [channel] ──► detector thread ──reports──►
//! ```
//!
//! Interval rotation is driven by **event time** (record timestamps), not
//! wall clock, so behaviour is deterministic and replayable: when a record
//! arrives whose timestamp belongs to a later interval, every interval up
//! to it is flushed through the detector (empty intervals included — the
//! forecasting models must advance through silence). Records that arrive
//! *late* (timestamp before the current interval) are folded into the
//! current interval rather than dropped; the paper's two-pass replay is
//! equally approximate about stragglers.
//!
//! **Overload** is a policy, not an accident: [`OverloadPolicy`] decides
//! what happens when records outpace the detector — block the producer
//! (lossless backpressure), drop the newest record (bounded latency), or
//! admit a random fraction at weight `1/rate` so sketch totals stay
//! unbiased (the paper's §3.3 sampled-stream estimator). Whatever is shed
//! is counted and surfaced per interval in [`IntervalReport::drops`].
//!
//! **Durability** is optional: give [`StreamingConfig::checkpoint`] a path
//! and a cadence and the detector thread persists a
//! [`crate::checkpoint::Checkpoint`] atomically every N flushed intervals.
//! [`crate::supervisor`] builds crash recovery on top of exactly this
//! file.
//!
//! Shutdown: drop the record sender (or call
//! [`StreamingHandle::shutdown`]). The detector flushes the final partial
//! interval, emits its report, and the thread ends. A detector panic is
//! returned as a typed [`StreamFault`] — shutting down is never itself a
//! panic.

use crate::channel::{bounded, Receiver, Sender, TrySendError};
use crate::checkpoint::Checkpoint;
use crate::detector::{DetectorConfig, DropStats, IntervalReport, SketchChangeDetector};
use crate::sampling::UpdateSampler;
use crate::supervisor::LifecycleEvent;
use crate::telemetry::PipelineMetrics;
use scd_hash::SplitMix64;
use scd_traffic::{FaultPlan, FlowRecord, KeySpec, ValueSpec};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// What the record sender does when the detector cannot keep up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OverloadPolicy {
    /// Block the producer until the queue has room. Lossless; producer
    /// latency is unbounded.
    Block,
    /// Drop the record being sent when the queue is full, counting it in
    /// [`DropStats::dropped`]. Producer never blocks; sketch totals are
    /// biased low under sustained overload.
    DropNewest,
    /// Admit each record with probability `rate`, at weight `1/rate`, and
    /// shed the rest (counted in [`DropStats::shed`]). This is the paper's
    /// §3.3 sampled-stream estimator: totals stay unbiased while load
    /// drops by `1/rate`. Admitted records still block when the queue is
    /// full.
    Sample {
        /// Admission probability, in `(0, 1]`.
        rate: f64,
        /// Seed for the admission coin (deterministic experiments).
        seed: u64,
    },
}

/// When and where the detector thread persists checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Checkpoint file; written atomically (temp + rename).
    pub path: PathBuf,
    /// Write after every this many flushed intervals (≥ 1).
    pub every_intervals: u64,
}

/// Configuration for the streaming front end.
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// The underlying detector.
    pub detector: DetectorConfig,
    /// Interval length in milliseconds of event time.
    pub interval_ms: u64,
    /// Key projection from records.
    pub key: KeySpec,
    /// Value projection from records.
    pub value: ValueSpec,
    /// Record-channel capacity (backpressure bound).
    pub channel_capacity: usize,
    /// Overload behaviour of [`RecordSender::send`].
    pub overload: OverloadPolicy,
    /// Optional periodic checkpointing of the full detector state.
    pub checkpoint: Option<CheckpointPolicy>,
    /// When set, the streaming loop records throughput/overload counters,
    /// detector stats, and (under supervision) lifecycle counters here.
    /// Never checkpointed: a restored detector re-attaches the same sink.
    pub metrics: Option<Arc<PipelineMetrics>>,
}

/// A record admitted into the detector queue, with its sampling weight.
pub(crate) struct Msg {
    pub(crate) record: FlowRecord,
    pub(crate) weight: f64,
}

/// Shared overload counters, drained into [`DropStats`] at each interval
/// flush. Attribution is approximate by one queue depth: a record shed
/// while interval `t` is being accumulated is charged to the next report
/// flushed, which is the best a sender that never sees event time can do.
pub(crate) struct OverloadCounters {
    dropped: AtomicU64,
    sampled_in: AtomicU64,
    shed: AtomicU64,
    sampler: Mutex<SplitMix64>,
}

impl OverloadCounters {
    fn new(seed: u64) -> Self {
        OverloadCounters {
            dropped: AtomicU64::new(0),
            sampled_in: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            sampler: Mutex::new(SplitMix64::new(seed)),
        }
    }

    fn drain(&self) -> DropStats {
        DropStats {
            dropped: self.dropped.swap(0, Ordering::Relaxed),
            sampled_in: self.sampled_in.swap(0, Ordering::Relaxed),
            shed: self.shed.swap(0, Ordering::Relaxed),
        }
    }
}

/// The sending half of a streaming detector: applies the configured
/// [`OverloadPolicy`] to every record. Clone freely for multiple
/// producers.
pub struct RecordSender {
    tx: Sender<Msg>,
    policy: OverloadPolicy,
    counters: Arc<OverloadCounters>,
}

impl Clone for RecordSender {
    fn clone(&self) -> Self {
        RecordSender {
            tx: self.tx.clone(),
            policy: self.policy,
            counters: Arc::clone(&self.counters),
        }
    }
}

impl RecordSender {
    /// Offers one record under the overload policy. Returns `false` only
    /// if the detector thread has stopped; a record shed *by policy* is a
    /// successful send (it is counted, not an error).
    pub fn send(&self, record: FlowRecord) -> bool {
        match self.policy {
            OverloadPolicy::Block => self.tx.send(Msg { record, weight: 1.0 }).is_ok(),
            OverloadPolicy::DropNewest => match self.tx.try_send(Msg { record, weight: 1.0 }) {
                Ok(()) => true,
                Err(TrySendError::Full) => {
                    self.counters.dropped.fetch_add(1, Ordering::Relaxed);
                    true
                }
                Err(TrySendError::Disconnected) => false,
            },
            OverloadPolicy::Sample { rate, .. } => {
                // The same Bernoulli predicate as the record sampler and
                // the detector's Sampled key scan — see
                // `UpdateSampler::keep` for the strict-< semantics (the
                // inline comparison this replaces admitted with a 2⁻⁶⁴
                // bias and saturated rates within 2⁻⁵³ of 1).
                let admit = {
                    let mut rng = self.counters.sampler.lock().expect("sampler lock");
                    UpdateSampler::keep(rate, &mut rng)
                };
                if admit {
                    self.counters.sampled_in.fetch_add(1, Ordering::Relaxed);
                    self.tx.send(Msg { record, weight: 1.0 / rate }).is_ok()
                } else {
                    self.counters.shed.fetch_add(1, Ordering::Relaxed);
                    true
                }
            }
        }
    }
}

/// Why a detector thread stopped abnormally.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamFault {
    /// The detector thread panicked; the payload's message, if any.
    Panicked(String),
}

impl std::fmt::Display for StreamFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamFault::Panicked(msg) => write!(f, "detector thread panicked: {msg}"),
        }
    }
}

impl std::error::Error for StreamFault {}

/// Renders a panic payload (from `join` or `catch_unwind`) as text.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Handle to a running streaming detector.
pub struct StreamingHandle {
    /// Send flow records here; drop (or [`StreamingHandle::shutdown`]) to stop.
    records: RecordSender,
    /// Interval reports arrive here as event time advances.
    reports: Receiver<IntervalReport>,
    thread: JoinHandle<u64>,
}

impl StreamingHandle {
    /// Sends one record under the configured overload policy. Returns
    /// `false` if the detector thread has already stopped.
    pub fn send(&self, record: FlowRecord) -> bool {
        self.records.send(record)
    }

    /// A cloneable sender for feeding records from multiple threads.
    pub fn sender(&self) -> RecordSender {
        self.records.clone()
    }

    /// The report stream.
    pub fn reports(&self) -> &Receiver<IntervalReport> {
        &self.reports
    }

    /// Stops the detector, drains remaining reports, and returns them with
    /// the total number of records processed. A detector panic surfaces as
    /// `Err(StreamFault::Panicked)` — this method itself never panics.
    pub fn shutdown(self) -> Result<(Vec<IntervalReport>, u64), StreamFault> {
        drop(self.records);
        let remaining: Vec<IntervalReport> = self.reports.iter().collect();
        match self.thread.join() {
            Ok(processed) => Ok((remaining, processed)),
            Err(payload) => Err(StreamFault::Panicked(panic_message(payload.as_ref()))),
        }
    }
}

/// The streaming binner's position in event time — everything the
/// detector loop owns besides the detector itself.
pub(crate) struct BinnerState {
    /// `(key, weighted value)` pairs of the interval being accumulated.
    pub(crate) current: Vec<(u64, f64)>,
    /// Event-time index of the interval being accumulated; fixed by the
    /// first record.
    pub(crate) interval_idx: Option<u64>,
    /// Records processed so far.
    pub(crate) processed: u64,
    /// `intervals_processed` at the last checkpoint write.
    pub(crate) last_checkpoint: u64,
}

impl BinnerState {
    pub(crate) fn fresh() -> Self {
        BinnerState { current: Vec::new(), interval_idx: None, processed: 0, last_checkpoint: 0 }
    }

    /// Resumes from a checkpoint: the in-flight interval's records are the
    /// checkpoint gap and are gone; position and counters carry over.
    pub(crate) fn from_checkpoint(ck: &Checkpoint) -> Self {
        BinnerState {
            current: Vec::new(),
            interval_idx: ck.next_interval,
            processed: ck.processed,
            last_checkpoint: ck.snapshot.intervals_processed,
        }
    }
}

/// Everything the detector loop needs besides its mutable state.
pub(crate) struct LoopContext {
    pub(crate) config: StreamingConfig,
    pub(crate) counters: Arc<OverloadCounters>,
    /// Lifecycle events (checkpoint written / degraded); `None` outside
    /// supervision.
    pub(crate) events: Option<Sender<LifecycleEvent>>,
    /// Test-only fault injection, threaded through the supervisor.
    pub(crate) fault: Option<FaultPlan>,
}

/// Why the detector loop returned.
pub(crate) enum LoopEnd {
    /// All record senders dropped; final partial interval flushed.
    InputClosed,
    /// The report receiver is gone; no point continuing.
    ReportsGone,
}

/// The detector loop proper: bin records by event time, flush intervals
/// through the detector, periodically checkpoint. Runs on the detector
/// thread; the supervisor calls it inside `catch_unwind` so `detector`
/// and `binner` live outside and can be rebuilt after a panic.
pub(crate) fn run_loop(
    detector: &mut SketchChangeDetector,
    binner: &mut BinnerState,
    ctx: &LoopContext,
    records: &Receiver<Msg>,
    reports: &Sender<IntervalReport>,
) -> LoopEnd {
    let interval_ms = ctx.config.interval_ms;
    while let Ok(msg) = records.recv() {
        binner.processed += 1;
        if let Some(m) = &ctx.config.metrics {
            m.stream.records_total.inc();
        }
        if let Some(fault) = &ctx.fault {
            fault.before_record(binner.processed);
        }
        let t = msg.record.timestamp_ms / interval_ms;
        let idx = *binner.interval_idx.get_or_insert(t);
        if t > idx {
            // Flush the finished interval, then any empty ones the stream
            // skipped over (models advance through silence).
            let mut report = detector.process_interval(&binner.current);
            report.drops = ctx.counters.drain();
            if let Some(m) = &ctx.config.metrics {
                m.record_drops(&report.drops);
            }
            binner.current.clear();
            if reports.send(report).is_err() {
                return LoopEnd::ReportsGone;
            }
            for _ in (idx + 1)..t {
                if reports.send(detector.process_interval(&[])).is_err() {
                    return LoopEnd::ReportsGone;
                }
            }
            binner.interval_idx = Some(t);
            maybe_checkpoint(detector, binner, ctx);
        }
        // Late records (t < idx) fold into the current interval.
        binner.current.push((
            ctx.config.key.key_of(&msg.record),
            ctx.config.value.value_of(&msg.record) * msg.weight,
        ));
    }
    // Senders dropped: flush the final partial interval. Counters are
    // drained unconditionally — even when every tail record was shed or
    // dropped (leaving nothing to process), the counts must surface in a
    // report so `processed + lost == sent` accounting holds.
    let drops = ctx.counters.drain();
    if let Some(m) = &ctx.config.metrics {
        m.record_drops(&drops);
    }
    if !binner.current.is_empty() {
        let mut report = detector.process_interval(&binner.current);
        report.drops = drops;
        binner.current.clear();
        binner.interval_idx = binner.interval_idx.map(|t| t + 1);
        let _ = reports.send(report);
        maybe_checkpoint(detector, binner, ctx);
    } else if drops != DropStats::default() {
        // No records to process, so the detector is not advanced; the
        // trailing counts ride out on a synthetic counters-only report.
        let report = IntervalReport {
            interval: detector.intervals_processed(),
            drops,
            ..IntervalReport::default()
        };
        let _ = reports.send(report);
    }
    LoopEnd::InputClosed
}

/// Writes a checkpoint if the cadence says so. Write failures degrade
/// (reported on the event channel when there is one) rather than kill the
/// detector: losing durability is strictly better than losing detection.
fn maybe_checkpoint(detector: &SketchChangeDetector, binner: &mut BinnerState, ctx: &LoopContext) {
    let Some(policy) = &ctx.config.checkpoint else { return };
    let done = detector.intervals_processed() as u64;
    if done < binner.last_checkpoint + policy.every_intervals.max(1) {
        return;
    }
    let ck = Checkpoint {
        config: ctx.config.detector.clone(),
        snapshot: detector.snapshot(),
        next_interval: binner.interval_idx,
        processed: binner.processed,
        staggered: None,
        glr: None,
    };
    match ck.write_atomic(&policy.path) {
        // Lifecycle events are best-effort (try_send): an undrained event
        // channel may lose events, never stall detection.
        Ok(()) => {
            binner.last_checkpoint = done;
            if let Some(m) = &ctx.config.metrics {
                m.supervisor.checkpoints_total.inc();
            }
            if let Some(events) = &ctx.events {
                let _ = events.try_send(LifecycleEvent::CheckpointWritten { intervals: done });
            }
        }
        Err(e) => {
            if let Some(m) = &ctx.config.metrics {
                m.supervisor.degraded_total.inc();
            }
            if let Some(events) = &ctx.events {
                let _ = events.try_send(LifecycleEvent::Degraded {
                    reason: format!("checkpoint write failed: {e}"),
                });
            }
        }
    }
}

/// Builds the record channel + counters + sender for a config.
pub(crate) fn make_front_end(
    config: &StreamingConfig,
) -> (RecordSender, Receiver<Msg>, Arc<OverloadCounters>) {
    assert!(config.interval_ms > 0, "interval must be positive");
    assert!(config.channel_capacity > 0, "channel capacity must be positive");
    let sampler_seed = match config.overload {
        OverloadPolicy::Sample { rate, seed } => {
            assert!(rate > 0.0 && rate <= 1.0, "sampling rate must be in (0, 1], got {rate}");
            seed
        }
        _ => 0,
    };
    let (tx, rx) = bounded::<Msg>(config.channel_capacity);
    let counters = Arc::new(OverloadCounters::new(sampler_seed));
    let sender = RecordSender { tx, policy: config.overload, counters: Arc::clone(&counters) };
    (sender, rx, counters)
}

/// Spawns the detector thread.
///
/// For crash recovery (automatic restart from checkpoints), use
/// [`crate::supervisor::spawn_supervised`] instead; this plain variant
/// reports a detector panic once, at [`StreamingHandle::shutdown`].
///
/// # Panics
/// Panics if `interval_ms == 0`, `channel_capacity == 0`, or the sampling
/// rate is out of range, or on an invalid detector configuration.
pub fn spawn(config: StreamingConfig) -> StreamingHandle {
    let (sender, record_rx, counters) = make_front_end(&config);
    let (report_tx, report_rx) = bounded::<IntervalReport>(64);
    let mut detector = SketchChangeDetector::new(config.detector.clone());
    if let Some(m) = &config.metrics {
        detector.set_metrics(Arc::clone(&m.detector));
    }
    let ctx = LoopContext { config, counters, events: None, fault: None };

    let thread = std::thread::Builder::new()
        .name("scd-streaming-detector".into())
        .spawn(move || {
            let mut binner = BinnerState::fresh();
            run_loop(&mut detector, &mut binner, &ctx, &record_rx, &report_tx);
            binner.processed
        })
        .expect("spawn detector thread");

    StreamingHandle { records: sender, reports: report_rx, thread }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::KeyStrategy;
    use scd_forecast::ModelSpec;
    use scd_sketch::SketchConfig;

    fn config() -> StreamingConfig {
        StreamingConfig {
            detector: DetectorConfig {
                sketch: SketchConfig { h: 3, k: 1024, seed: 3 },
                model: ModelSpec::Ewma { alpha: 0.5 },
                threshold: 0.3,
                key_strategy: KeyStrategy::TwoPass,
            },
            interval_ms: 1_000,
            key: KeySpec::DstIp,
            value: ValueSpec::Bytes,
            channel_capacity: 256,
            overload: OverloadPolicy::Block,
            checkpoint: None,
            metrics: None,
        }
    }

    fn record(ts: u64, dst: u32, bytes: u64) -> FlowRecord {
        FlowRecord {
            timestamp_ms: ts,
            src_ip: 1,
            dst_ip: dst,
            src_port: 1,
            dst_port: 80,
            protocol: 6,
            bytes,
            packets: 1,
        }
    }

    #[test]
    fn detects_spike_in_stream() {
        let handle = spawn(config());
        // Intervals 0..4: steady; interval 3 carries a spike on dst 99.
        for t in 0..5u64 {
            for i in 0..20 {
                handle.send(record(t * 1000 + i * 40, 7, 1_000));
                handle.send(record(t * 1000 + i * 40 + 1, 8, 500));
            }
            if t == 3 {
                for i in 0..10 {
                    handle.send(record(t * 1000 + 500 + i, 99, 50_000));
                }
            }
        }
        let (reports, processed) = handle.shutdown().expect("clean shutdown");
        assert_eq!(processed, 5 * 40 + 10);
        assert_eq!(reports.len(), 5, "one report per event-time interval");
        let spike_report = &reports[3];
        assert!(
            spike_report.alarms.iter().any(|a| a.key == 99),
            "spike not flagged: {:?}",
            spike_report.alarms
        );
        assert!(reports[2].alarms.iter().all(|a| a.key != 99), "no alarm before the spike");
    }

    #[test]
    fn empty_intervals_advance_the_model() {
        let handle = spawn(config());
        handle.send(record(100, 5, 1_000));
        handle.send(record(5_100, 5, 1_000)); // skips intervals 1..=4
        let (reports, _) = handle.shutdown().expect("clean shutdown");
        // Interval 0 + three empty (1,2,3,4) + final partial (5) = 6.
        assert_eq!(reports.len(), 6);
        // The disappearance registers as a negative error in interval 1.
        let r1 = &reports[1];
        if r1.warmed_up {
            assert!(r1.errors.is_empty(), "empty interval scans no keys (two-pass)");
        }
    }

    #[test]
    fn late_records_fold_into_current_interval() {
        let handle = spawn(config());
        handle.send(record(2_500, 1, 10));
        handle.send(record(1_900, 1, 10)); // late by 600ms: accepted
        let (reports, processed) = handle.shutdown().expect("clean shutdown");
        assert_eq!(processed, 2);
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn shutdown_with_no_records_is_clean() {
        let handle = spawn(config());
        let (reports, processed) = handle.shutdown().expect("clean shutdown");
        assert!(reports.is_empty());
        assert_eq!(processed, 0);
    }

    #[test]
    fn report_interval_indices_are_sequential() {
        let handle = spawn(config());
        for t in 0..4u64 {
            handle.send(record(t * 1000 + 10, 2, 100));
        }
        let (reports, _) = handle.shutdown().expect("clean shutdown");
        let idx: Vec<usize> = reports.iter().map(|r| r.interval).collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn block_policy_reports_zero_drops() {
        let handle = spawn(config());
        for t in 0..3u64 {
            for i in 0..50 {
                handle.send(record(t * 1000 + i, 7, 100));
            }
        }
        let (reports, _) = handle.shutdown().expect("clean shutdown");
        assert!(reports.iter().all(|r| r.drops == DropStats::default()));
    }

    #[test]
    fn sample_policy_counts_and_reweights() {
        let mut cfg = config();
        cfg.overload = OverloadPolicy::Sample { rate: 0.5, seed: 42 };
        let handle = spawn(cfg);
        // One interval of 2000 identical records on one key, then a
        // boundary record to force the flush.
        for i in 0..2_000u64 {
            handle.send(record(i % 1000, 7, 100));
        }
        handle.send(record(1_500, 7, 100));
        let (reports, processed) = handle.shutdown().expect("clean shutdown");
        let admitted: u64 = reports.iter().map(|r| r.drops.sampled_in).sum();
        let shed: u64 = reports.iter().map(|r| r.drops.shed).sum();
        assert_eq!(admitted + shed, 2_001, "every record is either admitted or shed");
        assert!((700..=1_300).contains(&admitted), "rate 0.5 admitted {admitted} of 2001");
        // Only admitted records reached the detector.
        assert_eq!(processed, admitted);
        assert!(reports.iter().all(|r| r.drops.dropped == 0));
    }

    #[test]
    fn drop_newest_policy_never_blocks() {
        let mut cfg = config();
        cfg.channel_capacity = 4;
        cfg.overload = OverloadPolicy::DropNewest;
        let handle = spawn(cfg);
        // Flood far beyond capacity; with Block this could stall only if
        // the detector hung, with DropNewest it must always return.
        for i in 0..10_000u64 {
            assert!(handle.send(record(i % 500, 9, 10)));
        }
        handle.send(record(2_000, 9, 10)); // flush boundary
        let (reports, processed) = handle.shutdown().expect("clean shutdown");
        let total_dropped: u64 = reports.iter().map(|r| r.drops.dropped).sum();
        assert_eq!(processed + total_dropped, 10_001);
    }
}
