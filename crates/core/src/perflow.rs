//! Exact per-flow change detection — the reference the paper compares
//! sketches against (§2.2: "In an ideal environment with infinite
//! resources, we can perform time series forecasting and change detection
//! on a per-flow basis").
//!
//! One scalar forecaster per signal `A[a]`. A signal participates "if it
//! appears before or during interval It": once a key has been seen, its
//! model keeps running, observing 0 in intervals where the key is absent —
//! this is exactly what the sketch does implicitly (absent keys simply
//! contribute nothing to `So(t)`), and it is what lets a *disappearing*
//! flow register as a large negative change.
//!
//! Memory and time are `O(#flows)` — tens of millions at ISP scale, which
//! is the cost the sketch exists to avoid. Keep that in mind before feeding
//! this detector a full-scale trace.

use scd_forecast::{Forecaster, ModelSpec};
use std::collections::HashMap;

/// Exact per-interval results from per-flow analysis.
#[derive(Debug, Clone, Default)]
pub struct PerFlowReport {
    /// Interval index.
    pub interval: usize,
    /// False while *every* tracked flow is still inside model warm-up.
    pub warmed_up: bool,
    /// True total error energy `F2 = Σ_a e_a(t)²` over flows with warm
    /// models.
    pub error_f2: f64,
    /// Exact forecast error per flow (flows with warm models only), sorted
    /// by decreasing |error|.
    pub errors: Vec<(u64, f64)>,
}

impl PerFlowReport {
    /// Flows whose |error| meets `threshold`.
    pub fn alarms(&self, threshold: f64) -> Vec<(u64, f64)> {
        self.errors.iter().copied().take_while(|(_, e)| e.abs() >= threshold).collect()
    }

    /// The L2 norm of the interval's forecast errors.
    pub fn l2_norm(&self) -> f64 {
        self.error_f2.sqrt()
    }
}

/// Exact per-flow detector: one scalar model per key.
pub struct PerFlowDetector {
    model_spec: ModelSpec,
    models: HashMap<u64, Box<dyn Forecaster<f64> + Send>>,
    intervals_processed: usize,
}

impl std::fmt::Debug for PerFlowDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerFlowDetector")
            .field("model", &self.model_spec)
            .field("tracked_flows", &self.models.len())
            .field("intervals_processed", &self.intervals_processed)
            .finish()
    }
}

impl PerFlowDetector {
    /// Builds the detector.
    ///
    /// # Panics
    /// Panics on an invalid model spec.
    pub fn new(model: ModelSpec) -> Self {
        model.validate().expect("invalid model spec");
        PerFlowDetector { model_spec: model, models: HashMap::new(), intervals_processed: 0 }
    }

    /// Number of flows currently tracked.
    pub fn tracked_flows(&self) -> usize {
        self.models.len()
    }

    /// Number of intervals fed so far.
    pub fn intervals_processed(&self) -> usize {
        self.intervals_processed
    }

    /// Feeds one interval's `(key, value)` stream; duplicate keys are
    /// pre-aggregated (the observed value `o_a(t)` is the total update).
    /// Every previously-seen key that is absent from `items` observes 0.
    pub fn process_interval(&mut self, items: &[(u64, f64)]) -> PerFlowReport {
        let t = self.intervals_processed;
        self.intervals_processed += 1;

        // o_a(t): total update per key this interval.
        let mut observed: HashMap<u64, f64> = HashMap::new();
        for &(key, value) in items {
            *observed.entry(key).or_insert(0.0) += value;
        }

        // Make sure every newly-appearing key has a model. A signal that
        // first appears at interval t existed (with value 0) in intervals
        // 0..t — the Turnstile model's signals are defined over the whole
        // key space — so a new model is backfilled with t zero
        // observations. This is also exactly what sketch-space forecasting
        // implies by linearity (every cell's model runs from interval 0),
        // so the per-flow reference and the sketch stay aligned on keys
        // that appear mid-trace.
        for &key in observed.keys() {
            self.models.entry(key).or_insert_with(|| {
                let mut model = self.model_spec.build();
                for _ in 0..t {
                    model.observe(&0.0);
                }
                model
            });
        }

        let mut errors = Vec::new();
        let mut f2 = 0.0;
        let mut any_warm = false;
        for (&key, model) in &mut self.models {
            let value = observed.get(&key).copied().unwrap_or(0.0);
            if let Some((_forecast, e)) = model.step(&value) {
                any_warm = true;
                f2 += e * e;
                errors.push((key, e));
            }
        }
        errors.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()).then_with(|| a.0.cmp(&b.0)));
        PerFlowReport { interval: t, warmed_up: any_warm, error_f2: f2, errors }
    }

    /// Convenience: runs the detector over a whole trace and returns one
    /// report per interval.
    pub fn run(&mut self, intervals: &[Vec<(u64, f64)>]) -> Vec<PerFlowReport> {
        intervals.iter().map(|i| self.process_interval(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ewma() -> ModelSpec {
        ModelSpec::Ewma { alpha: 0.5 }
    }

    #[test]
    fn exact_errors_for_known_stream() {
        let mut det = PerFlowDetector::new(ModelSpec::Ewma { alpha: 1.0 }); // last-value
        det.process_interval(&[(1, 100.0), (2, 40.0)]);
        let r = det.process_interval(&[(1, 130.0), (2, 40.0)]);
        assert!(r.warmed_up);
        let errs: HashMap<u64, f64> = r.errors.iter().copied().collect();
        assert_eq!(errs[&1], 30.0);
        assert_eq!(errs[&2], 0.0);
        assert!((r.error_f2 - 900.0).abs() < 1e-9);
    }

    #[test]
    fn absent_keys_observe_zero() {
        let mut det = PerFlowDetector::new(ModelSpec::Ewma { alpha: 1.0 });
        det.process_interval(&[(7, 500.0)]);
        let r = det.process_interval(&[]); // flow 7 disappears
        let errs: HashMap<u64, f64> = r.errors.iter().copied().collect();
        assert_eq!(errs[&7], -500.0, "disappearance is a negative change");
    }

    #[test]
    fn duplicate_keys_aggregate() {
        let mut det = PerFlowDetector::new(ModelSpec::Ewma { alpha: 1.0 });
        det.process_interval(&[(3, 10.0), (3, 20.0)]); // o_3 = 30
        let r = det.process_interval(&[(3, 45.0)]);
        assert_eq!(r.errors[0], (3, 15.0));
    }

    #[test]
    fn new_keys_keep_getting_models() {
        let mut det = PerFlowDetector::new(ewma());
        det.process_interval(&[(1, 1.0)]);
        det.process_interval(&[(1, 1.0), (2, 2.0)]);
        det.process_interval(&[(3, 3.0)]);
        assert_eq!(det.tracked_flows(), 3);
    }

    #[test]
    fn errors_sorted_by_magnitude() {
        let mut det = PerFlowDetector::new(ModelSpec::Ewma { alpha: 1.0 });
        det.process_interval(&[(1, 0.0), (2, 0.0), (3, 0.0)]);
        let r = det.process_interval(&[(1, 5.0), (2, 50.0), (3, -20.0)]);
        let keys: Vec<u64> = r.errors.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![2, 3, 1]);
    }

    #[test]
    fn alarms_respect_threshold() {
        let mut det = PerFlowDetector::new(ModelSpec::Ewma { alpha: 1.0 });
        det.process_interval(&[(1, 0.0), (2, 0.0)]);
        let r = det.process_interval(&[(1, 100.0), (2, 5.0)]);
        let alarms = r.alarms(50.0);
        assert_eq!(alarms, vec![(1, 100.0)]);
    }

    #[test]
    fn no_warm_reports_before_model_ready() {
        let mut det = PerFlowDetector::new(ModelSpec::Nshw { alpha: 0.5, beta: 0.5 });
        let r0 = det.process_interval(&[(1, 1.0)]);
        let r1 = det.process_interval(&[(1, 1.0)]);
        let r2 = det.process_interval(&[(1, 1.0)]);
        assert!(!r0.warmed_up && !r1.warmed_up);
        assert!(r2.warmed_up, "NSHW warm after two observations");
    }

    #[test]
    fn run_processes_whole_trace() {
        let trace = vec![vec![(1u64, 10.0)], vec![(1u64, 12.0)], vec![(1u64, 14.0)]];
        let mut det = PerFlowDetector::new(ewma());
        let reports = det.run(&trace);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[2].interval, 2);
    }
}
