//! Evaluation metrics from paper §5.
//!
//! All of the paper's accuracy figures reduce to comparing two per-interval
//! error lists — exact per-flow errors and sketch-reconstructed errors —
//! under one of two selection rules:
//!
//! * **Top-N** (§5.2.1): how many of the per-flow scheme's N
//!   largest-|error| flows also rank in the sketch scheme's top N (or top
//!   X·N)? Reported as the similarity `N_AB / N`.
//! * **Thresholding** (§5.2.2): select flows whose |error| is at least a
//!   fraction φ of the L2 norm of all errors; compare the two selected
//!   sets via false-negative and false-positive ratios and alarm counts.

/// Sorts (key, error) pairs by decreasing |error|, tie-breaking on key so
/// orderings are deterministic across runs. `total_cmp` keeps the sort
/// total even if a non-finite error slips in (NaN ranks above +inf)
/// instead of panicking mid-evaluation.
fn sort_by_magnitude(list: &mut [(u64, f64)]) {
    list.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()).then_with(|| a.0.cmp(&b.0)));
}

/// Keys of the top `n` entries by |error|.
fn top_keys(list: &[(u64, f64)], n: usize) -> std::collections::HashSet<u64> {
    let mut sorted = list.to_vec();
    sort_by_magnitude(&mut sorted);
    sorted.iter().take(n).map(|&(k, _)| k).collect()
}

/// Top-N similarity `N_AB / N` (§5.2.1): the overlap between the top-N
/// per-flow flows and the top-N sketch flows, normalized by `N`.
///
/// When fewer than `n` flows exist, the lists are compared whole and
/// normalized by the smaller of `n` and the reference list length.
pub fn topn_similarity(per_flow: &[(u64, f64)], sketch: &[(u64, f64)], n: usize) -> f64 {
    topn_vs_xn(per_flow, sketch, n, 1.0)
}

/// Top-N vs top-X·N similarity (§5.2.1): per-flow top `n` compared against
/// the sketch's top `ceil(x · n)`; "it is possible to increase the accuracy
/// by comparing the top-N per-flow list with additional elements in the
/// sketch-based ranked list". `x ≥ 1`.
pub fn topn_vs_xn(per_flow: &[(u64, f64)], sketch: &[(u64, f64)], n: usize, x: f64) -> f64 {
    assert!(n > 0, "top-N needs N >= 1");
    assert!(x >= 1.0, "X must be at least 1");
    let reference = top_keys(per_flow, n);
    if reference.is_empty() {
        return 1.0; // nothing to find, vacuous agreement
    }
    let candidates = top_keys(sketch, (x * n as f64).ceil() as usize);
    let common = reference.intersection(&candidates).count();
    common as f64 / reference.len().min(n) as f64
}

/// Outcome of the thresholding comparison (§5.2.2) at one threshold φ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdReport {
    /// The threshold fraction φ of the L2 norm.
    pub phi: f64,
    /// `N_pf(φ)` — alarms raised by per-flow detection.
    pub perflow_alarms: usize,
    /// `N_sk(φ)` — alarms raised by sketch detection.
    pub sketch_alarms: usize,
    /// `N_AB(φ)` — alarms common to both.
    pub common_alarms: usize,
}

impl ThresholdReport {
    /// False-negative ratio `(N_pf − N_AB) / N_pf` (0 when `N_pf = 0`).
    pub fn false_negative_ratio(&self) -> f64 {
        if self.perflow_alarms == 0 {
            0.0
        } else {
            (self.perflow_alarms - self.common_alarms) as f64 / self.perflow_alarms as f64
        }
    }

    /// False-positive ratio `(N_sk − N_AB) / N_sk` (0 when `N_sk = 0`).
    pub fn false_positive_ratio(&self) -> f64 {
        if self.sketch_alarms == 0 {
            0.0
        } else {
            (self.sketch_alarms - self.common_alarms) as f64 / self.sketch_alarms as f64
        }
    }
}

/// Computes the thresholding comparison at fraction `phi` of the L2 norm.
///
/// Each side thresholds against its *own* norm estimate, as the deployed
/// system would: per-flow uses the exact `√F2` of its errors; the sketch
/// side passes the `ESTIMATEF2`-derived norm it computed online
/// (`sketch_l2`).
pub fn threshold_report(
    per_flow: &[(u64, f64)],
    sketch: &[(u64, f64)],
    sketch_l2: f64,
    phi: f64,
) -> ThresholdReport {
    assert!(phi > 0.0, "threshold fraction must be positive");
    let perflow_l2: f64 = per_flow.iter().map(|&(_, e)| e * e).sum::<f64>().sqrt();
    let pf_set: std::collections::HashSet<u64> =
        per_flow.iter().filter(|&&(_, e)| e.abs() >= phi * perflow_l2).map(|&(k, _)| k).collect();
    let sk_set: std::collections::HashSet<u64> =
        sketch.iter().filter(|&&(_, e)| e.abs() >= phi * sketch_l2).map(|&(k, _)| k).collect();
    ThresholdReport {
        phi,
        perflow_alarms: pf_set.len(),
        sketch_alarms: sk_set.len(),
        common_alarms: pf_set.intersection(&sk_set).count(),
    }
}

/// Relative difference (§5.1.1): `(sketch_energy − perflow_energy) /
/// perflow_energy`, as a **percentage**. "Total energy" is the square root
/// of the sum over intervals of the per-interval second moments.
pub fn relative_difference(sketch_energy: f64, perflow_energy: f64) -> f64 {
    assert!(perflow_energy > 0.0, "reference energy must be positive");
    100.0 * (sketch_energy - perflow_energy) / perflow_energy
}

/// Total energy over a sequence of per-interval second moments: the square
/// root of their sum (the quantity Figures 1–3 compare).
pub fn total_energy(per_interval_f2: &[f64]) -> f64 {
    per_interval_f2.iter().map(|f2| f2.max(0.0)).sum::<f64>().sqrt()
}

/// Empirical CDF of a sample: returns `(value, P(X ≤ value))` pairs sorted
/// by value — the form the paper's CDF figures plot.
pub fn empirical_cdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    sorted.into_iter().enumerate().map(|(i, v)| (v, (i + 1) as f64 / n)).collect()
}

/// Mean of a sample (0 for an empty sample) — used for the "mean similarity
/// across the 180/37 intervals" figures.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> Vec<(u64, f64)> {
        vec![(1, 100.0), (2, -90.0), (3, 80.0), (4, 10.0), (5, 5.0)]
    }

    #[test]
    fn identical_lists_have_similarity_one() {
        let list = pf();
        assert_eq!(topn_similarity(&list, &list, 3), 1.0);
        assert_eq!(topn_similarity(&list, &list, 5), 1.0);
    }

    #[test]
    fn disjoint_lists_have_similarity_zero() {
        let sketch = vec![(10u64, 50.0), (11, 40.0), (12, 30.0)];
        assert_eq!(topn_similarity(&pf(), &sketch, 3), 0.0);
    }

    #[test]
    fn partial_overlap_counts_fractionally() {
        // Sketch agrees on 1 and 3 but replaces 2 with 9 in its top 3.
        let sketch = vec![(1u64, 95.0), (9, 90.0), (3, 85.0), (2, 10.0)];
        let sim = topn_similarity(&pf(), &sketch, 3);
        assert!((sim - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn magnitude_not_sign_ranks_errors() {
        // Key 2 has error -90: it must rank 2nd by magnitude.
        let top2 = top_keys(&pf(), 2);
        assert!(top2.contains(&1) && top2.contains(&2));
    }

    #[test]
    fn x_expansion_recovers_near_misses() {
        // Per-flow top-2 = {1, 2}. Sketch ranks 2 third, so top-2 misses it
        // but top-3 (X = 1.5) finds it.
        let sketch = vec![(1u64, 95.0), (7, 93.0), (2, 90.0)];
        assert!((topn_vs_xn(&pf(), &sketch, 2, 1.0) - 0.5).abs() < 1e-12);
        assert!((topn_vs_xn(&pf(), &sketch, 2, 1.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn short_lists_normalize_by_available() {
        let short = vec![(1u64, 10.0), (2, 5.0)];
        // N = 10 but only 2 reference flows exist: perfect agreement = 1.
        assert_eq!(topn_similarity(&short, &short, 10), 1.0);
    }

    #[test]
    fn empty_reference_is_vacuously_perfect() {
        assert_eq!(topn_similarity(&[], &pf(), 5), 1.0);
    }

    #[test]
    fn threshold_report_counts() {
        // per-flow L2 = sqrt(100² + 90² + 80² + 10² + 5²) ≈ 156.8
        // φ = 0.5 ⇒ cut ≈ 78.4 ⇒ {1, 2, 3}.
        let sketch = vec![(1u64, 99.0), (2, -20.0), (3, 85.0), (9, 95.0)];
        // Give the sketch the same norm for a readable test.
        let l2 = 156.8;
        let rep = threshold_report(&pf(), &sketch, l2, 0.5);
        assert_eq!(rep.perflow_alarms, 3);
        assert_eq!(rep.sketch_alarms, 3); // {1, 3, 9}
        assert_eq!(rep.common_alarms, 2); // {1, 3}
        assert!((rep.false_negative_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert!((rep.false_positive_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_report_empty_sides() {
        let rep = threshold_report(&[], &[], 0.0, 0.05);
        assert_eq!(rep.false_negative_ratio(), 0.0);
        assert_eq!(rep.false_positive_ratio(), 0.0);
    }

    #[test]
    fn relative_difference_signs() {
        assert_eq!(relative_difference(110.0, 100.0), 10.0);
        assert_eq!(relative_difference(95.0, 100.0), -5.0);
        assert_eq!(relative_difference(100.0, 100.0), 0.0);
    }

    #[test]
    fn total_energy_is_sqrt_of_sum() {
        assert_eq!(total_energy(&[9.0, 16.0]), 5.0);
        // Negative F2 estimates clamp to 0 in the sum.
        assert_eq!(total_energy(&[25.0, -3.0]), 5.0);
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let cdf = empirical_cdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.first().unwrap().0, 1.0);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
