//! The GLR sequential layer must be contractually invisible: attaching a
//! [`GlrConfig`] to an engine adds a side channel of provisional events
//! (`take_glr_events`), but it must not perturb a single bit of any
//! `IntervalReport` — the projections read the update stream, never
//! touch the detector's sketches, RNGs, or sorts. These tests pin that
//! contract for every paper model, every key strategy, and both engine
//! drive modes, driving both engines with the identical slot-granular
//! feed (so even the feed-order-sensitive `Sampled` strategy sees the
//! same stream byte for byte).

use scd_core::{
    DetectorConfig, EngineConfig, GlrConfig, GlrEvent, IntervalReport, KeyStrategy, ShardedEngine,
};
use scd_forecast::{ArimaSpec, ModelSpec};
use scd_hash::SplitMix64;
use scd_sketch::SketchConfig;

/// The paper's five models (§3.2) plus the seasonal extension.
fn all_models() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Ma { window: 3 },
        ModelSpec::Sma { window: 4 },
        ModelSpec::Ewma { alpha: 0.4 },
        ModelSpec::Nshw { alpha: 0.5, beta: 0.3 },
        ModelSpec::Arima(ArimaSpec::new(1, &[0.6], &[0.3]).unwrap()),
        ModelSpec::Shw { alpha: 0.5, beta: 0.2, gamma: 0.4, period: 3 },
    ]
}

fn all_strategies() -> [KeyStrategy; 3] {
    [KeyStrategy::TwoPass, KeyStrategy::NextInterval, KeyStrategy::Sampled { rate: 0.5, seed: 77 }]
}

fn detector_config(model: ModelSpec, strategy: KeyStrategy) -> DetectorConfig {
    DetectorConfig {
        sketch: SketchConfig { h: 5, k: 1024, seed: 0x000F_F5E7 },
        model,
        threshold: 0.05,
        key_strategy: strategy,
    }
}

fn glr_config() -> GlrConfig {
    GlrConfig { max_window: 4, min_baseline: 4, ..GlrConfig::new(16.0, 0x5CD) }
}

/// One interval of synthetic traffic: ~500 updates over ~180 keys with
/// integer volumes (exact in f64), plus a burst so alarms fire.
fn interval_updates(t: u64) -> Vec<(u64, f64)> {
    let mut rng = SplitMix64::new(0x00BE_21A9 ^ t);
    let mut items: Vec<(u64, f64)> = (0..500)
        .map(|_| {
            let key = rng.next_below(180);
            let volume = (rng.next_below(900) + 1) as f64;
            (key, volume)
        })
        .collect();
    if t == 10 {
        items.push((0x000B_0057, 1_500_000.0));
    }
    items
}

const INTERVALS: u64 = 14;
const SLOTS: usize = 4;
const SHARDS: usize = 4;

/// The interval's updates split into `SLOTS` contiguous chunks — the
/// same total order either way, so both engines see identical streams.
fn slot_chunks(t: u64) -> Vec<Vec<(u64, f64)>> {
    let items = interval_updates(t);
    let per = items.len().div_ceil(SLOTS);
    let mut chunks: Vec<Vec<(u64, f64)>> = items.chunks(per).map(<[_]>::to_vec).collect();
    while chunks.len() < SLOTS {
        chunks.push(Vec::new());
    }
    chunks
}

/// Drives an engine with the slot-granular feed and collects every
/// report plus (for a GLR engine) every sequential event.
fn run(config: EngineConfig, pipelined: bool) -> (Vec<IntervalReport>, Vec<GlrEvent>) {
    let config = if pipelined { config.with_pipeline() } else { config };
    let mut engine = ShardedEngine::new(config).unwrap();
    let mut reports = Vec::new();
    let mut events = Vec::new();
    for t in 0..INTERVALS {
        for chunk in slot_chunks(t) {
            engine.push_slice(&chunk).unwrap();
            engine.end_glr_slot();
        }
        if let Some(report) = engine.end_interval_overlapped().unwrap() {
            reports.push(report);
        }
        events.extend(engine.take_glr_events());
    }
    if let Some(last) = engine.drain().unwrap() {
        reports.push(last);
    }
    events.extend(engine.take_glr_events());
    (reports, events)
}

/// Enabling GLR changes no report bit in any model × strategy × drive
/// mode cell, while the side channel itself stays live (the burst at
/// t=10 raises at least one provisional somewhere in the matrix).
#[test]
fn reports_bit_identical_with_and_without_glr() {
    let mut provisionals = 0usize;
    for model in all_models() {
        for strategy in all_strategies() {
            let config = EngineConfig::new(detector_config(model.clone(), strategy), SHARDS);
            let with_glr = config.clone().with_glr(glr_config());

            let (bare_seq, no_events) = run(config.clone(), false);
            assert!(no_events.is_empty(), "a GLR-less engine must emit no events");
            let (glr_seq, seq_events) = run(with_glr.clone(), false);
            assert_eq!(
                bare_seq, glr_seq,
                "{model:?} {strategy:?}: sequential reports diverged with GLR attached"
            );

            let (bare_pipe, _) = run(config, true);
            let (glr_pipe, pipe_events) = run(with_glr, true);
            assert_eq!(
                bare_pipe, glr_pipe,
                "{model:?} {strategy:?}: pipelined reports diverged with GLR attached"
            );
            assert_eq!(bare_seq, bare_pipe, "{model:?} {strategy:?}: drive modes diverged");
            assert_eq!(
                seq_events, pipe_events,
                "{model:?} {strategy:?}: GLR events diverged between drive modes"
            );
            provisionals +=
                seq_events.iter().filter(|e| matches!(e, GlrEvent::Provisional { .. })).count();
        }
    }
    assert!(provisionals > 0, "the t=10 burst must raise provisionals somewhere in the matrix");
}
