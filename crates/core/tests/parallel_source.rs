//! End-to-end determinism of the parallel source plane (PR 8): per-shard
//! trace synthesis, the chunked binary-trace reader, and multi-producer
//! `push_slice_parallel` must all leave `IntervalReport`s bit-identical to
//! the single-threaded source path, for every key strategy and engine mode.

use scd_core::{
    segment_records, DetectorConfig, EngineConfig, IntervalReport, KeyStrategy, ShardedEngine,
    StreamSegmenter,
};
use scd_forecast::ModelSpec;
use scd_sketch::SketchConfig;
use scd_traffic::{
    io, ChunkedTraceReader, FlowRecord, KeySpec, RouterProfile, TrafficGenerator, ValueSpec,
};

fn engine_config(strategy: KeyStrategy, shards: usize) -> EngineConfig {
    EngineConfig::new(
        DetectorConfig {
            sketch: SketchConfig { h: 3, k: 1024, seed: 9 },
            model: ModelSpec::Ewma { alpha: 0.5 },
            threshold: 0.1,
            key_strategy: strategy,
        },
        shards,
    )
}

fn flat_trace(seed: u64, intervals: usize) -> Vec<FlowRecord> {
    let mut cfg = RouterProfile::Small.config(seed);
    cfg.records_per_sec = 25.0;
    cfg.interval_secs = 60;
    cfg.n_flows = 300;
    let mut g = TrafficGenerator::new(cfg);
    g.trace(intervals).into_iter().flatten().collect()
}

fn run_engine(
    mut engine: ShardedEngine,
    intervals: &[Vec<(u64, f64)>],
    producers: Option<usize>,
) -> Vec<IntervalReport> {
    let mut reports = Vec::new();
    for items in intervals {
        match producers {
            Some(p) => engine.push_slice_parallel(items, p).unwrap(),
            None => engine.push_slice(items).unwrap(),
        }
        reports.push(engine.end_interval().unwrap());
    }
    reports
}

/// Chunked trace-reader feed == single-threaded `push_slice` on the fully
/// materialized trace: bit-identical reports for every key strategy, with
/// the parallel producer plane on and off.
#[test]
fn chunked_reader_feed_is_bit_identical() {
    let records = flat_trace(41, 8);
    let bytes = io::to_binary(&records);

    for strategy in [
        KeyStrategy::TwoPass,
        KeyStrategy::NextInterval,
        KeyStrategy::Sampled { rate: 0.5, seed: 3 },
    ] {
        // Reference: whole-file decode + segment + sequential push_slice.
        let reference = {
            let decoded = io::from_binary(&bytes).unwrap();
            let intervals = segment_records(&decoded, 60, KeySpec::DstIp, ValueSpec::Bytes);
            run_engine(ShardedEngine::new(engine_config(strategy, 4)).unwrap(), &intervals, None)
        };

        // Chunked: stream 500-record chunks through the segmenter, then
        // feed with multi-producer routing.
        for producers in [None, Some(3)] {
            let mut reader = ChunkedTraceReader::new(&bytes[..]).unwrap();
            let mut seg = StreamSegmenter::new(60, KeySpec::DstIp, ValueSpec::Bytes);
            let mut chunk = Vec::new();
            loop {
                chunk.clear();
                if reader.next_chunk(500, &mut chunk).unwrap() == 0 {
                    break;
                }
                seg.push(&chunk);
            }
            let intervals = seg.finish();
            let got = run_engine(
                ShardedEngine::new(engine_config(strategy, 4)).unwrap(),
                &intervals,
                producers,
            );
            assert_eq!(got, reference, "{strategy:?} producers={producers:?}");
        }
    }
}

/// Per-shard (parallel) trace synthesis feeding the engine == sequential
/// synthesis feeding the engine, across shard counts and pipeline mode.
#[test]
fn parallel_synthesis_feed_is_bit_identical() {
    let mut cfg = RouterProfile::Small.config(17);
    cfg.records_per_sec = 25.0;
    cfg.interval_secs = 60;
    cfg.n_flows = 300;
    let mut g = TrafficGenerator::new(cfg);

    let sequential: Vec<Vec<(u64, f64)>> = (0..6)
        .map(|t| scd_traffic::to_updates(&g.interval_records(t), KeySpec::DstIp, ValueSpec::Bytes))
        .collect();
    let parallel: Vec<Vec<(u64, f64)>> = (0..6)
        .map(|t| {
            scd_traffic::to_updates(&g.par_interval_records(t, 4), KeySpec::DstIp, ValueSpec::Bytes)
        })
        .collect();
    assert_eq!(sequential, parallel, "synthesis diverged before the engine");

    for shards in [1usize, 4] {
        let a = run_engine(
            ShardedEngine::new(engine_config(KeyStrategy::TwoPass, shards)).unwrap(),
            &sequential,
            None,
        );
        let b = run_engine(
            ShardedEngine::new(engine_config(KeyStrategy::TwoPass, shards)).unwrap(),
            &parallel,
            Some(4),
        );
        assert_eq!(a, b, "shards={shards}");

        // Pipelined engine with the fully parallel source.
        let mut pipe =
            ShardedEngine::new(engine_config(KeyStrategy::TwoPass, shards).with_pipeline())
                .unwrap();
        let mut got = Vec::new();
        for items in &parallel {
            pipe.push_slice_parallel(items, 4).unwrap();
            if let Some(r) = pipe.end_interval_overlapped().unwrap() {
                got.push(r);
            }
        }
        while let Some(r) = pipe.drain().unwrap() {
            got.push(r);
        }
        assert_eq!(a, got, "pipelined shards={shards}");
    }
}
