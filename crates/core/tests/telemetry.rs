//! Telemetry must be invisible to detection: attaching a
//! [`PipelineMetrics`] handle to an engine may cost a few atomic adds,
//! but it must not perturb a single bit of any `IntervalReport` — the
//! instrumentation reads timings and counts, never a sketch, an RNG, or
//! a sort. These tests pin that contract for every paper model, every
//! key strategy, and both engine drive modes, and sanity-check that the
//! counters the run *does* record tell a story consistent with the
//! traffic that was pushed.

use scd_core::{
    DetectorConfig, EngineConfig, IntervalReport, KeyStrategy, PipelineMetrics, ShardedEngine,
};
use scd_forecast::{ArimaSpec, ModelSpec};
use scd_hash::SplitMix64;
use scd_obs::Registry;
use scd_sketch::SketchConfig;
use std::sync::Arc;

/// The paper's five models (§3.2) plus the seasonal extension.
fn all_models() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Ma { window: 3 },
        ModelSpec::Sma { window: 4 },
        ModelSpec::Ewma { alpha: 0.4 },
        ModelSpec::Nshw { alpha: 0.5, beta: 0.3 },
        ModelSpec::Arima(ArimaSpec::new(1, &[0.6], &[0.3]).unwrap()),
        ModelSpec::Shw { alpha: 0.5, beta: 0.2, gamma: 0.4, period: 3 },
    ]
}

fn all_strategies() -> [KeyStrategy; 3] {
    [KeyStrategy::TwoPass, KeyStrategy::NextInterval, KeyStrategy::Sampled { rate: 0.5, seed: 77 }]
}

fn detector_config(model: ModelSpec, strategy: KeyStrategy) -> DetectorConfig {
    DetectorConfig {
        sketch: SketchConfig { h: 5, k: 1024, seed: 0x000F_F5E7 },
        model,
        threshold: 0.05,
        key_strategy: strategy,
    }
}

/// One interval of synthetic traffic: ~500 updates over ~180 keys with
/// integer volumes (exact in f64), plus a burst so alarms fire.
fn interval_updates(t: u64) -> Vec<(u64, f64)> {
    let mut rng = SplitMix64::new(0x00BE_21A9 ^ t);
    let mut items: Vec<(u64, f64)> = (0..500)
        .map(|_| {
            let key = rng.next_below(180);
            let volume = (rng.next_below(900) + 1) as f64;
            (key, volume)
        })
        .collect();
    if t == 10 {
        items.push((0x000B_0057, 1_500_000.0));
    }
    items
}

const INTERVALS: u64 = 14;
const SHARDS: usize = 4;

fn run_sequential(config: EngineConfig) -> Vec<IntervalReport> {
    let mut engine = ShardedEngine::new(config).unwrap();
    (0..INTERVALS).map(|t| engine.process_interval(&interval_updates(t)).unwrap()).collect()
}

fn run_pipelined(config: EngineConfig) -> Vec<IntervalReport> {
    let mut engine = ShardedEngine::new(config.with_pipeline()).unwrap();
    let mut reports = Vec::new();
    for t in 0..INTERVALS {
        engine.push_slice(&interval_updates(t)).unwrap();
        if let Some(report) = engine.end_interval_overlapped().unwrap() {
            reports.push(report);
        }
    }
    if let Some(last) = engine.drain().unwrap() {
        reports.push(last);
    }
    reports
}

#[test]
fn reports_bit_identical_with_and_without_telemetry() {
    for model in all_models() {
        for strategy in all_strategies() {
            let config = EngineConfig::new(detector_config(model.clone(), strategy), SHARDS);

            let registry = Registry::new();
            let metrics = PipelineMetrics::register(&registry);
            let instrumented = config.clone().with_metrics(Arc::clone(&metrics));

            let bare_seq = run_sequential(config.clone());
            let wired_seq = run_sequential(instrumented.clone());
            assert_eq!(
                bare_seq, wired_seq,
                "{model:?} {strategy:?}: sequential reports diverged with telemetry attached"
            );

            let bare_pipe = run_pipelined(config);
            let wired_pipe = run_pipelined(instrumented);
            assert_eq!(
                bare_pipe, wired_pipe,
                "{model:?} {strategy:?}: pipelined reports diverged with telemetry attached"
            );
            assert_eq!(bare_seq, bare_pipe, "{model:?} {strategy:?}: drive modes diverged");
        }
    }
}

#[test]
fn recorded_metrics_match_the_traffic() {
    let registry = Registry::new();
    let metrics = PipelineMetrics::register(&registry);
    let config = EngineConfig::new(
        detector_config(ModelSpec::Ewma { alpha: 0.4 }, KeyStrategy::TwoPass),
        SHARDS,
    )
    .with_metrics(Arc::clone(&metrics));
    let reports = run_sequential(config);

    let pushed: u64 = (0..INTERVALS).map(|t| interval_updates(t).len() as u64).sum();
    assert_eq!(metrics.engine.records_total.get(), pushed, "every pushed update is counted");
    assert_eq!(metrics.engine.intervals_total.get(), INTERVALS);
    assert_eq!(metrics.engine.detect_ns.count(), INTERVALS, "one detect span per interval");
    assert_eq!(metrics.engine.combine_ns.count(), INTERVALS);
    assert_eq!(metrics.engine.barrier_ns.count(), INTERVALS);
    assert!(metrics.engine.batches_total.get() >= INTERVALS, "at least one batch per interval");
    assert_eq!(
        metrics.engine.ingest_batch_ns.count(),
        metrics.engine.batches_total.get(),
        "one fold-latency sample per batch"
    );
    // Integer traffic through finite models: nothing non-finite to shed.
    assert_eq!(metrics.detector.non_finite_errors_total.get(), 0);
    let alarms: u64 = reports.iter().map(|r| r.alarms.len() as u64).sum();
    assert_eq!(metrics.detector.alarms_total.get(), alarms);
    assert!(alarms > 0, "the burst at t=10 must raise at least one alarm");
    // The detector skips warm-up intervals; it still sees most of them.
    let scanned = metrics.detector.intervals_total.get();
    assert!(
        scanned > 0 && scanned <= INTERVALS,
        "warmed-up interval count out of range: {scanned}"
    );

    // The rendered snapshot carries the same numbers end to end.
    let mut line = String::new();
    registry.render_jsonl(INTERVALS - 1, &mut line);
    let fields = scd_obs::parse_flat_json(&line).expect("snapshot parses");
    let get = |name: &str| {
        fields.iter().find(|(k, _)| k == name).unwrap_or_else(|| panic!("missing field {name}")).1
    };
    assert_eq!(get("scd_engine_records_total"), pushed as f64);
    assert_eq!(get("scd_detector_alarms_total"), alarms as f64);

    let mut exposition = String::new();
    registry.render_prometheus(&mut exposition);
    scd_obs::validate_exposition(&exposition).expect("exposition is well-formed");
}
