//! Acceptance tests for the ingest/detect pipeline (interval turnover
//! tentpole):
//!
//! 1. With detection overlapped on its own thread, every
//!    `IntervalReport` is **bit-identical** (`==`, no epsilon) to the
//!    sequential engine's — for all five paper models plus the seasonal
//!    extension, across every key strategy. The pipelined path reuses
//!    every buffer (double-buffered observed sketches, recycled merge
//!    destination, in-place forecast recursions), and these tests pin
//!    that none of that recycling perturbs a single bit.
//! 2. A checkpoint taken mid-pipeline — with an interval still in
//!    flight on the detect thread — restores a detector whose future
//!    reports are bit-identical to the pipeline's own.
//! 3. The recycled/preallocated forecast workspaces never leak into
//!    checkpoints: snapshot → wire bytes → restore round-trips bit-exact
//!    for every model even after long in-place steady-state runs.

use scd_archive::ArchiveConfig;
use scd_core::{
    Checkpoint, DetectorConfig, EngineConfig, IntervalReport, KeyStrategy, ShardedEngine,
    SketchChangeDetector,
};
use scd_forecast::{ArimaSpec, ModelSpec};
use scd_hash::SplitMix64;
use scd_sketch::SketchConfig;

/// The paper's five models (§3.2) plus the seasonal extension.
fn all_models() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Ma { window: 3 },
        ModelSpec::Sma { window: 4 },
        ModelSpec::Ewma { alpha: 0.4 },
        ModelSpec::Nshw { alpha: 0.5, beta: 0.3 },
        ModelSpec::Arima(ArimaSpec::new(1, &[0.6], &[0.3]).unwrap()),
        ModelSpec::Shw { alpha: 0.5, beta: 0.2, gamma: 0.4, period: 3 },
    ]
}

fn detector_config(model: ModelSpec, strategy: KeyStrategy) -> DetectorConfig {
    DetectorConfig {
        sketch: SketchConfig { h: 5, k: 1024, seed: 0x000F_F5E7 },
        model,
        threshold: 0.05,
        key_strategy: strategy,
    }
}

/// One interval of synthetic traffic: ~500 updates over ~180 keys with
/// integer volumes (exact in f64), plus a burst late in the run so the
/// alarm path is exercised, not just the quiet path.
fn interval_updates(t: u64) -> Vec<(u64, f64)> {
    let mut rng = SplitMix64::new(0x00BE_21A9 ^ t);
    let mut items: Vec<(u64, f64)> = (0..500)
        .map(|_| {
            let key = rng.next_below(180);
            let volume = (rng.next_below(900) + 1) as f64;
            (key, volume)
        })
        .collect();
    if t == 10 {
        items.push((0x000B_0057, 1_500_000.0));
    }
    items
}

/// Runs `intervals` through a pipelined engine with the overlapped API
/// and returns the reports in interval order.
fn run_pipelined(config: EngineConfig, intervals: u64) -> Vec<IntervalReport> {
    let mut engine = ShardedEngine::new(config.with_pipeline()).unwrap();
    assert!(engine.is_pipelined());
    let mut reports = Vec::new();
    for t in 0..intervals {
        engine.push_slice(&interval_updates(t)).unwrap();
        if let Some(report) = engine.end_interval_overlapped().unwrap() {
            reports.push(report);
        }
    }
    if let Some(last) = engine.drain().unwrap() {
        reports.push(last);
    }
    reports
}

fn run_sequential(config: EngineConfig, intervals: u64) -> Vec<IntervalReport> {
    let mut engine = ShardedEngine::new(config).unwrap();
    assert!(!engine.is_pipelined());
    (0..intervals).map(|t| engine.process_interval(&interval_updates(t)).unwrap()).collect()
}

#[test]
fn pipelined_reports_bit_identical_to_sequential() {
    let strategies = [
        KeyStrategy::TwoPass,
        KeyStrategy::NextInterval,
        KeyStrategy::Sampled { rate: 0.5, seed: 77 },
    ];
    for model in all_models() {
        for strategy in strategies {
            let config = EngineConfig::new(detector_config(model.clone(), strategy), 4);
            let overlapped = run_pipelined(config.clone(), 14);
            let sequential = run_sequential(config, 14);
            assert_eq!(overlapped.len(), sequential.len(), "{model:?} {strategy:?} lost reports");
            for (t, (a, b)) in overlapped.iter().zip(&sequential).enumerate() {
                assert_eq!(a, b, "{model:?} {strategy:?} diverged on interval {t}");
            }
        }
    }
}

#[test]
fn pipelined_blocking_close_matches_sequential() {
    // `end_interval` works in pipeline mode too (ship + wait): same
    // reports, no lag — the drop-in path for callers that don't overlap.
    let config =
        EngineConfig::new(detector_config(ModelSpec::Ewma { alpha: 0.4 }, KeyStrategy::TwoPass), 4);
    let mut pipelined = ShardedEngine::new(config.clone().with_pipeline()).unwrap();
    let mut sequential = ShardedEngine::new(config).unwrap();
    for t in 0..8u64 {
        let items = interval_updates(t);
        let a = pipelined.process_interval(&items).unwrap();
        let b = sequential.process_interval(&items).unwrap();
        assert_eq!(a, b, "interval {t}");
    }
    assert!(pipelined.drain().unwrap().is_none(), "blocking close leaves nothing in flight");
}

#[test]
fn pipelined_archive_matches_sequential_archive() {
    // The archive lives on the detect thread in pipeline mode;
    // `take_archive` retrieves it after draining, and its contents match
    // the sequential engine's bit for bit (same pushes, same order).
    let archive_cfg = ArchiveConfig { max_sketches: 16, full_resolution: 4, keys_per_epoch: 16 };
    let config =
        EngineConfig::new(detector_config(ModelSpec::Ewma { alpha: 0.4 }, KeyStrategy::TwoPass), 4)
            .with_archive(archive_cfg);

    let mut pipelined = ShardedEngine::new(config.clone().with_pipeline()).unwrap();
    assert!(pipelined.archive().is_none(), "pipeline mode has no inline archive handle");
    for t in 0..12u64 {
        pipelined.push_slice(&interval_updates(t)).unwrap();
        pipelined.end_interval_overlapped().unwrap();
    }
    pipelined.drain().unwrap();
    let from_pipeline = pipelined.take_archive().expect("archive configured");

    let mut sequential = ShardedEngine::new(config).unwrap();
    for t in 0..12u64 {
        sequential.process_interval(&interval_updates(t)).unwrap();
    }
    let reference = sequential.take_archive().expect("archive configured");

    assert_eq!(from_pipeline.coverage(), reference.coverage());
    assert_eq!(from_pipeline.sketch_count(), reference.sketch_count());
    let (start, end) = from_pipeline.coverage().unwrap();
    for t in start..end {
        let a = from_pipeline.range_sketch(t, t + 1).unwrap();
        let b = reference.range_sketch(t, t + 1).unwrap();
        assert_eq!(a.covered, b.covered, "interval {t}");
        assert!(a.sketch.estimate_f2() == b.sketch.estimate_f2(), "interval {t} F2");
    }
}

#[test]
fn mid_pipeline_checkpoint_restores_bit_exact() {
    // Checkpoint while an interval is still in flight on the detect
    // thread: the snapshot round-trips through the detect queue, so it
    // reflects that interval. A detector restored from the serialized
    // checkpoint must then report bit-identically to the live pipeline.
    for model in all_models() {
        let det_cfg = detector_config(model.clone(), KeyStrategy::TwoPass);
        let config = EngineConfig::new(det_cfg.clone(), 4).with_pipeline();
        let mut engine = ShardedEngine::new(config).unwrap();
        for t in 0..9u64 {
            engine.push_slice(&interval_updates(t)).unwrap();
            engine.end_interval_overlapped().unwrap();
        }
        // Interval 8's report has not been drained yet — it is (or just
        // was) in flight. The snapshot still covers it.
        let snapshot = engine.detector_snapshot().unwrap();
        let checkpoint = Checkpoint {
            config: det_cfg,
            snapshot,
            next_interval: None,
            processed: 0,
            staggered: None,
            glr: None,
        };
        let bytes = checkpoint.to_bytes();
        let mut restored = Checkpoint::from_bytes(&bytes).unwrap().restore_detector().unwrap();

        engine.drain().unwrap();
        for t in 9..15u64 {
            let items = interval_updates(t);
            engine.push_slice(&items).unwrap();
            engine.end_interval_overlapped().unwrap();
            let live = engine.drain().unwrap().expect("one interval in flight");
            let resumed = restored.process_interval(&items);
            assert_eq!(live, resumed, "{model:?} diverged on interval {t} after restore");
        }
    }
}

#[test]
fn recycled_forecast_state_checkpoints_bit_exact() {
    // Long steady-state runs exercise every in-place recursion and
    // recycled workspace; none of that scratch is model state, so a
    // snapshot → bytes → restore round trip must resume bit-exact for
    // every model.
    for model in all_models() {
        let det_cfg = detector_config(model.clone(), KeyStrategy::NextInterval);
        let mut detector = SketchChangeDetector::new(det_cfg.clone());
        for t in 0..20u64 {
            detector.process_interval(&interval_updates(t));
        }
        let checkpoint = Checkpoint {
            config: det_cfg,
            snapshot: detector.snapshot(),
            next_interval: None,
            processed: 0,
            staggered: None,
            glr: None,
        };
        let bytes = checkpoint.to_bytes();
        let mut restored = Checkpoint::from_bytes(&bytes).unwrap().restore_detector().unwrap();
        for t in 20..30u64 {
            let items = interval_updates(t);
            let a = detector.process_interval(&items);
            let b = restored.process_interval(&items);
            assert_eq!(a, b, "{model:?} diverged on interval {t} after restore");
        }
    }
}
