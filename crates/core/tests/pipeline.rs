//! End-to-end pipeline tests on generated traffic: the miniature version of
//! the paper's evaluation, asserting its qualitative results hold.

use scd_core::{metrics, DetectorConfig, KeyStrategy, PerFlowDetector, SketchChangeDetector};
use scd_forecast::ModelSpec;
use scd_sketch::SketchConfig;
use scd_traffic::{
    to_updates, AnomalyEvent, AnomalyInjector, AnomalyKind, KeySpec, RouterProfile,
    TrafficGenerator, ValueSpec,
};

/// A dense miniature trace: enough records per interval that the busiest
/// flows appear in every interval, matching the regime of the paper's
/// traces (~1M records per 300 s interval). Two-pass key replay only scans
/// keys present in the interval, so on *sparse* traffic per-flow analysis
/// sees disappearances the sketch scan cannot — a documented §3.3 caveat,
/// tested separately in `outage_detection_negative_change`.
fn small_trace(intervals: usize, seed: u64) -> Vec<Vec<(u64, f64)>> {
    let mut cfg = RouterProfile::Small.config(seed);
    cfg.records_per_sec = 30.0;
    cfg.interval_secs = 60;
    cfg.n_flows = 400;
    let mut g = TrafficGenerator::new(cfg);
    (0..intervals)
        .map(|t| to_updates(&g.interval_records(t), KeySpec::DstIp, ValueSpec::Bytes))
        .collect()
}

/// The paper's headline accuracy result in miniature: with H=5, K=32768 the
/// sketch's top-N flows by |forecast error| agree with per-flow analysis at
/// similarity ≳ 0.9.
#[test]
fn topn_similarity_matches_paper_shape() {
    let trace = small_trace(14, 2024);
    let warm_up = 4;

    let model = ModelSpec::Ewma { alpha: 0.5 };
    let mut sketch_det = SketchChangeDetector::new(DetectorConfig {
        sketch: SketchConfig { h: 5, k: 32_768, seed: 77 },
        model: model.clone(),
        threshold: 0.05,
        key_strategy: KeyStrategy::TwoPass,
    });
    let mut perflow_det = PerFlowDetector::new(model);

    let mut sims = Vec::new();
    for (t, items) in trace.iter().enumerate() {
        let sk = sketch_det.process_interval(items);
        let pf = perflow_det.process_interval(items);
        if t >= warm_up && sk.warmed_up && pf.warmed_up {
            sims.push(metrics::topn_similarity(&pf.errors, &sk.errors, 50));
        }
    }
    let mean_sim = metrics::mean(&sims);
    assert!(
        mean_sim > 0.9,
        "top-50 similarity {mean_sim} below paper-shape threshold (sims: {sims:?})"
    );
}

/// Lower K must not *improve* agreement (paper Figure 5): K=1024 should be
/// measurably worse than K=32768 on the same trace.
#[test]
fn similarity_improves_with_k() {
    let trace = small_trace(14, 5);
    let model = ModelSpec::Ewma { alpha: 0.5 };

    let mean_sim = |k: usize| -> f64 {
        let mut sk_det = SketchChangeDetector::new(DetectorConfig {
            sketch: SketchConfig { h: 5, k, seed: 77 },
            model: model.clone(),
            threshold: 0.05,
            key_strategy: KeyStrategy::TwoPass,
        });
        let mut pf_det = PerFlowDetector::new(model.clone());
        let mut sims = Vec::new();
        for (t, items) in trace.iter().enumerate() {
            let sk = sk_det.process_interval(items);
            let pf = pf_det.process_interval(items);
            if t >= 4 {
                sims.push(metrics::topn_similarity(&pf.errors, &sk.errors, 100));
            }
        }
        metrics::mean(&sims)
    };

    let low = mean_sim(256);
    let high = mean_sim(32_768);
    assert!(high > low, "similarity should improve with K: K=256 -> {low}, K=32768 -> {high}");
    assert!(high > 0.85, "large-K similarity too low: {high}");
}

/// Injected DoS attacks must be detected (recall) without drowning in false
/// alarms (precision floor), using ground-truth labels the paper lacked.
#[test]
fn injected_dos_attacks_are_detected() {
    let mut cfg = RouterProfile::Small.config(9);
    cfg.records_per_sec = 4.0;
    cfg.interval_secs = 60;
    cfg.n_flows = 500;
    let mut g = TrafficGenerator::new(cfg);

    // Calibrate attack volume to ~15x the victim's baseline.
    let victim_rank = 20;
    let baseline = g.expected_rank_bytes(victim_rank, 8);
    let events = vec![AnomalyEvent {
        kind: AnomalyKind::DosAttack { byte_rate: baseline * 15.0, flows: 30 },
        victim_rank,
        start_interval: 8,
        duration: 2,
    }];
    let injector = AnomalyInjector::new(events, 3);
    let (records, truth) = injector.labeled_trace(&mut g, 12);
    let victim_key = g.dst_ip_of_rank(victim_rank) as u64;

    let mut det = SketchChangeDetector::new(DetectorConfig {
        sketch: SketchConfig { h: 5, k: 8192, seed: 4 },
        model: ModelSpec::Ewma { alpha: 0.4 },
        threshold: 0.2,
        key_strategy: KeyStrategy::TwoPass,
    });

    let mut detected_at = Vec::new();
    for (t, interval_records) in records.iter().enumerate() {
        let items = to_updates(interval_records, KeySpec::DstIp, ValueSpec::Bytes);
        let report = det.process_interval(&items);
        if report.alarms.iter().any(|a| a.key == victim_key) {
            detected_at.push(t);
        }
    }
    assert!(
        detected_at.contains(&8),
        "attack onset at t=8 not detected (alarms at {detected_at:?})"
    );
    assert!(truth.is_anomalous(8, victim_key), "ground truth sanity");
    // The attack should not be flagged during quiet pre-attack intervals.
    assert!(
        detected_at.iter().all(|&t| t >= 8),
        "victim flagged before the attack: {detected_at:?}"
    );
}

/// An outage (flow disappears) is caught by per-flow analysis and by the
/// sketch *when the two-pass key list still contains the key* (i.e. via
/// explicit zero updates); the online strategy documented in §3.3 misses it.
#[test]
fn outage_detection_negative_change() {
    let model = ModelSpec::Ewma { alpha: 0.5 };
    let mut pf = PerFlowDetector::new(model);
    let busy: Vec<(u64, f64)> = vec![(10, 100_000.0), (11, 90_000.0), (12, 500.0)];
    let outage: Vec<(u64, f64)> = vec![(11, 90_000.0), (12, 500.0)]; // flow 10 gone
    pf.process_interval(&busy);
    pf.process_interval(&busy);
    let r = pf.process_interval(&outage);
    let top = r.errors.first().expect("errors exist");
    assert_eq!(top.0, 10);
    assert!(top.1 < -80_000.0, "outage must be a large negative change");
}

/// Threshold-based agreement (paper Figures 10–15 shape): false negative
/// and false positive ratios at K = 32768 stay low for thresholds ≥ 0.05.
#[test]
fn thresholding_false_rates_low_at_large_k() {
    let trace = small_trace(14, 31);
    let model = ModelSpec::Nshw { alpha: 0.6, beta: 0.3 };
    let mut sk_det = SketchChangeDetector::new(DetectorConfig {
        sketch: SketchConfig { h: 5, k: 32_768, seed: 12 },
        model: model.clone(),
        threshold: 0.05,
        key_strategy: KeyStrategy::TwoPass,
    });
    let mut pf_det = PerFlowDetector::new(model);

    let mut fn_ratios = Vec::new();
    let mut fp_ratios = Vec::new();
    for (t, items) in trace.iter().enumerate() {
        let sk = sk_det.process_interval(items);
        let pf = pf_det.process_interval(items);
        if t >= 4 && sk.warmed_up {
            let sketch_l2 = sk.error_f2.max(0.0).sqrt();
            let rep = metrics::threshold_report(&pf.errors, &sk.errors, sketch_l2, 0.05);
            fn_ratios.push(rep.false_negative_ratio());
            fp_ratios.push(rep.false_positive_ratio());
        }
    }
    let mean_fn = metrics::mean(&fn_ratios);
    let mean_fp = metrics::mean(&fp_ratios);
    // The paper reports <2% at full trace scale; at this miniature scale an
    // interval's alarm set is ~15 flows, so a single boundary miss already
    // costs ~7%. Bound at 12% — still far below the ~50%+ that a broken
    // estimator produces (see the K=256 case in similarity_improves_with_k).
    assert!(mean_fn < 0.12, "mean false-negative ratio {mean_fn} too high");
    assert!(mean_fp < 0.12, "mean false-positive ratio {mean_fp} too high");
}

/// Estimated total energy from sketches tracks per-flow total energy within
/// a few percent even at H=1, K=1024 (paper Figure 1's claim).
#[test]
fn energy_relative_difference_small() {
    let trace = small_trace(16, 55);
    let model = ModelSpec::Ewma { alpha: 0.5 };
    let warm = 4;

    let mut sk_det = SketchChangeDetector::new(DetectorConfig {
        sketch: SketchConfig { h: 1, k: 1024, seed: 1 },
        model: model.clone(),
        threshold: 0.05,
        key_strategy: KeyStrategy::TwoPass,
    });
    let mut pf_det = PerFlowDetector::new(model);

    let mut sk_f2 = Vec::new();
    let mut pf_f2 = Vec::new();
    for (t, items) in trace.iter().enumerate() {
        let sk = sk_det.process_interval(items);
        let pf = pf_det.process_interval(items);
        if t >= warm {
            sk_f2.push(sk.error_f2);
            pf_f2.push(pf.error_f2);
        }
    }
    let rel =
        metrics::relative_difference(metrics::total_energy(&sk_f2), metrics::total_energy(&pf_f2));
    assert!(
        rel.abs() < 5.0,
        "relative difference {rel}% exceeds the paper's ±3.5% envelope (with margin)"
    );
}
