//! Integration tests of the fault-tolerance layer: checkpoint/restore,
//! supervised restarts, overload accounting, and corruption handling —
//! the acceptance criteria of the robustness milestone.

use scd_core::{
    spawn_streaming, spawn_supervised, Checkpoint, CheckpointPolicy, DetectorConfig, KeyStrategy,
    LifecycleEvent, OverloadPolicy, RestartPolicy, SketchChangeDetector, StreamingConfig,
    SupervisorConfig,
};
use scd_forecast::ModelSpec;
use scd_sketch::SketchConfig;
use scd_traffic::{Corruptor, FaultPlan, FlowRecord, KeySpec, ValueSpec};
use std::path::PathBuf;

fn detector_config() -> DetectorConfig {
    DetectorConfig {
        sketch: SketchConfig { h: 3, k: 1024, seed: 17 },
        model: ModelSpec::Nshw { alpha: 0.4, beta: 0.2 },
        threshold: 0.1,
        key_strategy: KeyStrategy::TwoPass,
    }
}

/// Deterministic per-interval update streams: 30 steady flows plus a 20×
/// spike on key 7 at interval 8.
fn interval_updates(t: usize) -> Vec<(u64, f64)> {
    (0..30u64)
        .map(|k| {
            let base = 1_000.0 + 40.0 * k as f64 + 10.0 * ((t + k as usize) % 5) as f64;
            let v = if k == 7 && t == 8 { base * 20.0 } else { base };
            (k, v)
        })
        .collect()
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("scd-fault-tolerance");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn record(ts: u64, dst: u32, bytes: u64) -> FlowRecord {
    FlowRecord {
        timestamp_ms: ts,
        src_ip: 1,
        dst_ip: dst,
        src_port: 1,
        dst_port: 80,
        protocol: 6,
        bytes,
        packets: 1,
    }
}

fn streaming_config(checkpoint: Option<CheckpointPolicy>) -> StreamingConfig {
    StreamingConfig {
        detector: detector_config(),
        interval_ms: 1_000,
        key: KeySpec::DstIp,
        value: ValueSpec::Bytes,
        channel_capacity: 256,
        overload: OverloadPolicy::Block,
        checkpoint,
        metrics: None,
    }
}

/// Acceptance criterion 1: kill the detector mid-stream, restore from the
/// checkpoint file, and the remaining interval reports are identical to
/// an uninterrupted run's — field for field, including every float.
#[test]
fn kill_and_restore_reports_are_identical() {
    let cfg = detector_config();
    let mut uninterrupted = SketchChangeDetector::new(cfg.clone());
    let reference: Vec<_> =
        (0..16).map(|t| uninterrupted.process_interval(&interval_updates(t))).collect();

    // Run to interval 9, persist, and "kill" by dropping the detector.
    let path = temp_path("kill-restore.ckpt");
    let mut first_half = SketchChangeDetector::new(cfg.clone());
    for (t, expected) in reference.iter().enumerate().take(9) {
        let r = first_half.process_interval(&interval_updates(t));
        assert_eq!(&r, expected, "pre-kill divergence at t={t}");
    }
    Checkpoint {
        config: cfg.clone(),
        snapshot: first_half.snapshot(),
        next_interval: Some(9),
        processed: 9 * 30,
        staggered: None,
        glr: None,
    }
    .write_atomic(&path)
    .expect("write checkpoint");
    drop(first_half);

    // A new process would do exactly this: load, restore, continue.
    let loaded = Checkpoint::load(&path).expect("load checkpoint");
    assert_eq!(loaded.next_interval, Some(9));
    assert_eq!(loaded.processed, 270);
    let mut restored = loaded.restore_detector().expect("restore");
    for (t, expected) in reference.iter().enumerate().skip(9) {
        let r = restored.process_interval(&interval_updates(t));
        assert_eq!(&r, expected, "post-restore divergence at t={t}");
    }
    std::fs::remove_file(&path).ok();
}

/// Acceptance criterion 2: a panic inside the supervised detector leads
/// to a `Restarted` event and a report stream with no holes — only the
/// checkpoint gap is re-emitted, nothing is silently missing.
#[test]
fn supervised_detector_restarts_from_checkpoint_after_panic() {
    let path = temp_path("supervised-restart.ckpt");
    std::fs::remove_file(&path).ok();
    let every = 2u64;
    let handle = spawn_supervised(SupervisorConfig {
        stream: streaming_config(Some(CheckpointPolicy {
            path: path.clone(),
            every_intervals: every,
        })),
        restart: RestartPolicy::default(),
        // 5 records per interval: record 33 lands mid-interval-6, well
        // after several checkpoints exist.
        fault: Some(FaultPlan::panic_at(33, "injected detector crash")),
    });
    for t in 0..12u64 {
        for i in 0..5u64 {
            assert!(handle.send(record(t * 1_000 + i * 100, (i % 3) as u32, 500 + t)));
        }
    }
    let (reports, events, _processed) = handle.shutdown().expect("supervisor never panics");

    let restarts: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            LifecycleEvent::Restarted { attempt, resumed_intervals, .. } => {
                Some((*attempt, *resumed_intervals))
            }
            _ => None,
        })
        .collect();
    assert_eq!(restarts.len(), 1, "exactly one restart: {events:?}");
    let (attempt, resumed) = restarts[0];
    assert_eq!(attempt, 1);
    assert!(resumed > 0, "restart should resume from a checkpoint, not from scratch");
    assert!(events.contains(&LifecycleEvent::Started));
    assert!(
        events.iter().any(|e| matches!(e, LifecycleEvent::CheckpointWritten { .. })),
        "checkpoints should have been written: {events:?}"
    );
    assert!(
        !events.iter().any(|e| matches!(e, LifecycleEvent::GaveUp { .. })),
        "one panic must not exhaust the budget"
    );

    // No holes: every interval index from 0 to the maximum is reported at
    // least once, and only the checkpoint gap is reported twice.
    let mut indices: Vec<usize> = reports.iter().map(|r| r.interval).collect();
    let max = *indices.iter().max().expect("reports exist");
    assert!(max >= 10, "stream should reach interval 10+, got {max}");
    for want in 0..=max {
        assert!(indices.contains(&want), "interval {want} lost: {indices:?}");
    }
    indices.sort_unstable();
    let duplicates = indices.len() - (max + 1);
    assert!(
        (duplicates as u64) <= every,
        "re-emitted {duplicates} intervals; checkpoint gap is at most {every}"
    );
    std::fs::remove_file(&path).ok();
}

/// Without a checkpoint file the supervisor still restarts — from scratch
/// — and says so via `resumed_intervals: 0`.
#[test]
fn restart_without_checkpoint_starts_fresh() {
    let handle = spawn_supervised(SupervisorConfig {
        stream: streaming_config(None),
        restart: RestartPolicy::default(),
        fault: Some(FaultPlan::panic_at(12, "crash with no durability")),
    });
    for t in 0..6u64 {
        for i in 0..5u64 {
            handle.send(record(t * 1_000 + i * 100, 1, 100));
        }
    }
    let (_reports, events, _) = handle.shutdown().expect("supervisor survives");
    assert!(events
        .iter()
        .any(|e| matches!(e, LifecycleEvent::Restarted { resumed_intervals: 0, .. })));
}

/// A corrupt checkpoint at restart time degrades (typed, evented) and
/// restarts fresh — it must not panic the supervisor and must not be
/// trusted.
#[test]
fn corrupt_checkpoint_degrades_instead_of_crashing() {
    let path = temp_path("corrupt.ckpt");
    // Build a valid checkpoint file, then flip one byte.
    let cfg = detector_config();
    let mut det = SketchChangeDetector::new(cfg.clone());
    for t in 0..4 {
        det.process_interval(&interval_updates(t));
    }
    let ck = Checkpoint {
        config: cfg,
        snapshot: det.snapshot(),
        next_interval: Some(4),
        processed: 120,
        staggered: None,
        glr: None,
    };
    let mut bytes = ck.to_bytes();
    Corruptor::new(99).flip_one_byte(&mut bytes);
    assert!(Checkpoint::from_bytes(&bytes).is_err(), "flip must be detected");
    std::fs::write(&path, &bytes).expect("write corrupt file");

    let handle = spawn_supervised(SupervisorConfig {
        stream: streaming_config(Some(CheckpointPolicy {
            path: path.clone(),
            // Effectively never write, so the corrupt file stays in place
            // until the crash tries to read it.
            every_intervals: 1_000_000,
        })),
        restart: RestartPolicy::default(),
        fault: Some(FaultPlan::panic_at(8, "crash into corrupt checkpoint")),
    });
    for t in 0..5u64 {
        for i in 0..5u64 {
            handle.send(record(t * 1_000 + i * 100, 2, 300));
        }
    }
    let (_reports, events, _) = handle.shutdown().expect("supervisor survives");
    assert!(
        events.iter().any(|e| matches!(e, LifecycleEvent::Degraded { .. })),
        "corrupt checkpoint must surface as Degraded: {events:?}"
    );
    assert!(events
        .iter()
        .any(|e| matches!(e, LifecycleEvent::Restarted { resumed_intervals: 0, .. })));
    std::fs::remove_file(&path).ok();
}

/// Exhausting the restart budget produces `GaveUp` and stops cleanly;
/// producers see `send` fail instead of hanging. With telemetry attached,
/// the lifecycle counters narrate the same story: one start, two absorbed
/// restarts, one exhausted budget, and backoff sleep covering at least
/// the policy's schedule for those attempts.
#[test]
fn restart_budget_exhaustion_gives_up_cleanly() {
    let registry = scd_obs::Registry::new();
    let metrics = scd_core::PipelineMetrics::register(&registry);
    let mut stream = streaming_config(None);
    stream.metrics = Some(std::sync::Arc::clone(&metrics));
    let restart = RestartPolicy { max_restarts: 2, backoff_base_ms: 1, backoff_cap_ms: 5 };
    let handle = spawn_supervised(SupervisorConfig {
        stream,
        restart,
        fault: Some(
            FaultPlan::panic_at(1, "first").and_panic_at(1, "second").and_panic_at(1, "third"),
        ),
    });
    // Keep sending until the dead detector disconnects the channel.
    let mut refused = false;
    for i in 0..10_000u64 {
        if !handle.send(record(i, 1, 10)) {
            refused = true;
            break;
        }
    }
    assert!(refused, "sends must start failing after GaveUp");
    let (_reports, events, _) = handle.shutdown().expect("supervisor survives");
    assert!(
        events.contains(&LifecycleEvent::GaveUp { attempts: 2 }),
        "expected GaveUp after 2 absorbed restarts: {events:?}"
    );
    assert_eq!(metrics.supervisor.started_total.get(), 1);
    assert_eq!(metrics.supervisor.restarts_total.get(), 2);
    assert_eq!(metrics.supervisor.gave_up_total.get(), 1);
    // The budget check precedes the sleep, so only the two absorbed
    // attempts slept: backoff(1) + backoff(2).
    let expected_ms: u64 = (1..=2).map(|a| restart.backoff(a).as_millis() as u64).sum();
    assert_eq!(metrics.supervisor.backoff_ms_total.get(), expected_ms);
}

/// Supervision is transparent when nothing goes wrong: a supervised run
/// and a plain run over the same stream produce identical reports.
#[test]
fn supervised_clean_run_matches_plain_run() {
    let send_all = |send: &dyn Fn(FlowRecord) -> bool| {
        for t in 0..8u64 {
            for i in 0..10u64 {
                send(record(t * 1_000 + i * 90, (i % 4) as u32, 100 * (t + 1)));
            }
        }
    };
    let plain = spawn_streaming(streaming_config(None));
    send_all(&|r| plain.send(r));
    let (plain_reports, plain_n) = plain.shutdown().expect("clean");

    let supervised = spawn_supervised(SupervisorConfig {
        stream: streaming_config(None),
        restart: RestartPolicy::default(),
        fault: None,
    });
    send_all(&|r| supervised.send(r));
    let (sup_reports, events, sup_n) = supervised.shutdown().expect("clean");

    assert_eq!(plain_reports, sup_reports);
    assert_eq!(plain_n, sup_n);
    assert_eq!(events, vec![LifecycleEvent::Started]);
}

/// Out-of-order records within the stream do not derail binning: records
/// late by less than an interval fold into the current interval, and the
/// report sequence stays sequential.
#[test]
fn out_of_order_records_keep_interval_sequence() {
    let handle = spawn_streaming(streaming_config(None));
    // Interval 0 arrives interleaved out of order.
    for ts in [700u64, 100, 900, 300, 500] {
        handle.send(record(ts, 1, 100));
    }
    // Jump to interval 2, then a straggler from interval 1 arrives late.
    handle.send(record(2_200, 1, 100));
    handle.send(record(1_800, 1, 100)); // late: folds into interval 2
    handle.send(record(2_600, 1, 100));
    let (reports, processed) = handle.shutdown().expect("clean");
    assert_eq!(processed, 8);
    let idx: Vec<usize> = reports.iter().map(|r| r.interval).collect();
    assert_eq!(idx, vec![0, 1, 2], "sequential intervals: {idx:?}");
    // The straggler's bytes are counted (in interval 2), not dropped.
    let total: f64 = reports.iter().flat_map(|r| &r.errors).map(|(_, e)| e.abs()).sum();
    assert!(total.is_finite());
}

/// Permuting record order *within* one interval does not change the
/// interval's report (sketch updates commute).
#[test]
fn intra_interval_order_is_irrelevant() {
    let run = |order: &[u64]| {
        let handle = spawn_streaming(streaming_config(None));
        for &i in order {
            handle.send(record(i * 7 % 1_000, (i % 5) as u32, 100 + i));
        }
        handle.send(record(1_500, 0, 1)); // flush boundary
        let (reports, _) = handle.shutdown().expect("clean");
        reports
    };
    let forward: Vec<u64> = (0..60).collect();
    let mut backward = forward.clone();
    backward.reverse();
    assert_eq!(run(&forward)[0], run(&backward)[0]);
}

/// Process-level resume: a *new* supervised detector pointed at an
/// existing checkpoint file picks up where the previous run left off —
/// its first report continues the interval sequence instead of starting
/// over at 0 (and quietly overwriting the old checkpoint).
#[test]
fn new_process_resumes_from_existing_checkpoint() {
    let path = temp_path("process-resume.ckpt");
    std::fs::remove_file(&path).ok();
    let policy = || Some(CheckpointPolicy { path: path.clone(), every_intervals: 2 });

    // First "process": 6 intervals, checkpointed every 2 (and once more at
    // the final flush).
    let first = spawn_supervised(SupervisorConfig {
        stream: streaming_config(policy()),
        restart: RestartPolicy::default(),
        fault: None,
    });
    for t in 0..6u64 {
        for i in 0..5u64 {
            assert!(first.send(record(t * 1_000 + i * 100, (i % 3) as u32, 400 + t)));
        }
    }
    let (first_reports, _, _) = first.shutdown().expect("clean first run");
    let first_max = first_reports.iter().map(|r| r.interval).max().expect("reports");

    // Second "process", same config and checkpoint path, fed the next
    // stretch of the stream.
    let second = spawn_supervised(SupervisorConfig {
        stream: streaming_config(policy()),
        restart: RestartPolicy::default(),
        fault: None,
    });
    for t in 6..9u64 {
        for i in 0..5u64 {
            assert!(second.send(record(t * 1_000 + i * 100, (i % 3) as u32, 400 + t)));
        }
    }
    let (reports, events, _) = second.shutdown().expect("clean second run");
    assert!(events.contains(&LifecycleEvent::Started));
    assert!(
        !events.iter().any(|e| matches!(e, LifecycleEvent::Degraded { .. })),
        "valid checkpoint must not degrade: {events:?}"
    );
    let min = reports.iter().map(|r| r.interval).min().expect("second run reports");
    assert!(
        min > first_max,
        "second process restarted from interval {min} instead of resuming past {first_max}"
    );
    std::fs::remove_file(&path).ok();
}

/// Overload accounting survives a fully shed tail: when every record of
/// the stream is shed by the sampler (nothing ever reaches the detector),
/// the shed counts still surface in a report instead of vanishing, so
/// `processed + lost == sent` holds.
#[test]
fn fully_shed_tail_still_surfaces_drop_counters() {
    let mut cfg = streaming_config(None);
    // Rate low enough that (deterministically, for this seed) all 50
    // records are shed.
    cfg.overload = OverloadPolicy::Sample { rate: 1e-9, seed: 7 };
    let handle = spawn_streaming(cfg);
    for i in 0..50u64 {
        assert!(handle.send(record(i * 10, 1, 100)));
    }
    let (reports, processed) = handle.shutdown().expect("clean");
    assert_eq!(processed, 0, "every record should have been shed");
    let shed: u64 = reports.iter().map(|r| r.drops.shed).sum();
    let admitted: u64 = reports.iter().map(|r| r.drops.sampled_in).sum();
    assert_eq!(shed + admitted, 50, "tail counters lost: {reports:?}");
}
