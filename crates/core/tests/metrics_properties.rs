//! Property-based tests for the evaluation metrics: the experiment
//! harness's conclusions are only as sound as these functions.

use proptest::prelude::*;
use scd_core::metrics;

fn error_list() -> impl Strategy<Value = Vec<(u64, f64)>> {
    prop::collection::vec((0u64..500, -1e6f64..1e6), 0..80).prop_map(|mut v| {
        // Metrics expect at most one entry per key (they are per-flow error
        // lists); dedup by key keeping the first occurrence.
        let mut seen = std::collections::HashSet::new();
        v.retain(|(k, _)| seen.insert(*k));
        v
    })
}

proptest! {
    /// Similarity is always within [0, 1].
    #[test]
    fn similarity_bounded(pf in error_list(), sk in error_list(), n in 1usize..50) {
        let s = metrics::topn_similarity(&pf, &sk, n);
        prop_assert!((0.0..=1.0).contains(&s), "similarity {s}");
    }

    /// Comparing a list against itself is perfect for any N.
    #[test]
    fn self_similarity_is_one(pf in error_list(), n in 1usize..50) {
        prop_assert_eq!(metrics::topn_similarity(&pf, &pf, n), 1.0);
    }

    /// Expanding the candidate list (larger X) never reduces similarity.
    #[test]
    fn x_monotone(pf in error_list(), sk in error_list(), n in 1usize..30) {
        let mut prev = 0.0;
        for x in [1.0, 1.25, 1.5, 1.75, 2.0] {
            let s = metrics::topn_vs_xn(&pf, &sk, n, x);
            prop_assert!(s + 1e-12 >= prev, "X={x}: {s} < {prev}");
            prev = s;
        }
    }

    /// Threshold-report counts are internally consistent: the overlap never
    /// exceeds either side, and ratios are in [0, 1].
    #[test]
    fn threshold_report_consistent(
        pf in error_list(),
        sk in error_list(),
        l2 in 0.0f64..1e6,
        phi in 0.001f64..0.5,
    ) {
        let rep = metrics::threshold_report(&pf, &sk, l2, phi);
        prop_assert!(rep.common_alarms <= rep.perflow_alarms);
        prop_assert!(rep.common_alarms <= rep.sketch_alarms);
        prop_assert!((0.0..=1.0).contains(&rep.false_negative_ratio()));
        prop_assert!((0.0..=1.0).contains(&rep.false_positive_ratio()));
    }

    /// Raising the threshold fraction never raises the per-flow alarm count.
    #[test]
    fn alarms_monotone_in_threshold(pf in error_list(), sk in error_list(), l2 in 1.0f64..1e6) {
        let mut prev = usize::MAX;
        for phi in [0.01, 0.02, 0.05, 0.1, 0.3] {
            let rep = metrics::threshold_report(&pf, &sk, l2, phi);
            prop_assert!(rep.perflow_alarms <= prev);
            prev = rep.perflow_alarms;
        }
    }

    /// The empirical CDF is monotone in both coordinates, starts above 0
    /// and ends at exactly 1.
    #[test]
    fn cdf_well_formed(values in prop::collection::vec(-1e9f64..1e9, 1..200)) {
        let cdf = metrics::empirical_cdf(&values);
        prop_assert_eq!(cdf.len(), values.len());
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    /// Total energy is the Euclidean norm of the per-interval L2 values:
    /// permutation-invariant and monotone under adding intervals.
    #[test]
    fn total_energy_properties(f2s in prop::collection::vec(0.0f64..1e9, 1..40)) {
        let e = metrics::total_energy(&f2s);
        let mut shuffled = f2s.clone();
        shuffled.reverse();
        prop_assert!((metrics::total_energy(&shuffled) - e).abs() < 1e-9);
        let mut extended = f2s.clone();
        extended.push(1.0);
        prop_assert!(metrics::total_energy(&extended) >= e);
    }

    /// Relative difference is antisymmetric-ish around equality and zero
    /// exactly at equality.
    #[test]
    fn relative_difference_zero_at_equality(e in 1.0f64..1e9) {
        prop_assert_eq!(metrics::relative_difference(e, e), 0.0);
    }
}
