//! Property-based tests for the evaluation metrics, driven by a seeded
//! `SplitMix64` so runs are reproducible: the experiment harness's
//! conclusions are only as sound as these functions.

use scd_core::metrics;
use scd_hash::SplitMix64;

const CASES: u64 = 64;

fn uniform(rng: &mut SplitMix64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * (rng.next_below(1_000_000) as f64) / 1_000_000.0
}

/// A per-flow error list: at most one entry per key.
fn error_list(rng: &mut SplitMix64) -> Vec<(u64, f64)> {
    let len = rng.next_below(80) as usize;
    let mut v: Vec<(u64, f64)> =
        (0..len).map(|_| (rng.next_below(500), uniform(rng, -1e6, 1e6))).collect();
    let mut seen = std::collections::HashSet::new();
    v.retain(|(k, _)| seen.insert(*k));
    v
}

/// Similarity is always within [0, 1].
#[test]
fn similarity_bounded() {
    let mut rng = SplitMix64::new(0x51A1);
    for _ in 0..CASES {
        let pf = error_list(&mut rng);
        let sk = error_list(&mut rng);
        let n = 1 + rng.next_below(49) as usize;
        let s = metrics::topn_similarity(&pf, &sk, n);
        assert!((0.0..=1.0).contains(&s), "similarity {s}");
    }
}

/// Comparing a list against itself is perfect for any N.
#[test]
fn self_similarity_is_one() {
    let mut rng = SplitMix64::new(0x5E1F);
    for _ in 0..CASES {
        let pf = error_list(&mut rng);
        let n = 1 + rng.next_below(49) as usize;
        assert_eq!(metrics::topn_similarity(&pf, &pf, n), 1.0);
    }
}

/// Expanding the candidate list (larger X) never reduces similarity.
#[test]
fn x_monotone() {
    let mut rng = SplitMix64::new(0x1107);
    for _ in 0..CASES {
        let pf = error_list(&mut rng);
        let sk = error_list(&mut rng);
        let n = 1 + rng.next_below(29) as usize;
        let mut prev = 0.0;
        for x in [1.0, 1.25, 1.5, 1.75, 2.0] {
            let s = metrics::topn_vs_xn(&pf, &sk, n, x);
            assert!(s + 1e-12 >= prev, "X={x}: {s} < {prev}");
            prev = s;
        }
    }
}

/// Threshold-report counts are internally consistent: the overlap never
/// exceeds either side, and ratios are in [0, 1].
#[test]
fn threshold_report_consistent() {
    let mut rng = SplitMix64::new(0x7B0E);
    for _ in 0..CASES {
        let pf = error_list(&mut rng);
        let sk = error_list(&mut rng);
        let l2 = uniform(&mut rng, 0.0, 1e6);
        let phi = uniform(&mut rng, 0.001, 0.5);
        let rep = metrics::threshold_report(&pf, &sk, l2, phi);
        assert!(rep.common_alarms <= rep.perflow_alarms);
        assert!(rep.common_alarms <= rep.sketch_alarms);
        assert!((0.0..=1.0).contains(&rep.false_negative_ratio()));
        assert!((0.0..=1.0).contains(&rep.false_positive_ratio()));
    }
}

/// Raising the threshold fraction never raises the per-flow alarm count.
#[test]
fn alarms_monotone_in_threshold() {
    let mut rng = SplitMix64::new(0xA1A2);
    for _ in 0..CASES {
        let pf = error_list(&mut rng);
        let sk = error_list(&mut rng);
        let l2 = uniform(&mut rng, 1.0, 1e6);
        let mut prev = usize::MAX;
        for phi in [0.01, 0.02, 0.05, 0.1, 0.3] {
            let rep = metrics::threshold_report(&pf, &sk, l2, phi);
            assert!(rep.perflow_alarms <= prev);
            prev = rep.perflow_alarms;
        }
    }
}

/// The empirical CDF is monotone in both coordinates, starts above 0 and
/// ends at exactly 1.
#[test]
fn cdf_well_formed() {
    let mut rng = SplitMix64::new(0xCDF0);
    for _ in 0..CASES {
        let len = 1 + rng.next_below(199) as usize;
        let values: Vec<f64> = (0..len).map(|_| uniform(&mut rng, -1e9, 1e9)).collect();
        let cdf = metrics::empirical_cdf(&values);
        assert_eq!(cdf.len(), values.len());
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }
}

/// Total energy is the Euclidean norm of the per-interval L2 values:
/// permutation-invariant and monotone under adding intervals.
#[test]
fn total_energy_properties() {
    let mut rng = SplitMix64::new(0xE4E6);
    for _ in 0..CASES {
        let len = 1 + rng.next_below(39) as usize;
        let f2s: Vec<f64> = (0..len).map(|_| uniform(&mut rng, 0.0, 1e9)).collect();
        let e = metrics::total_energy(&f2s);
        let mut shuffled = f2s.clone();
        shuffled.reverse();
        assert!((metrics::total_energy(&shuffled) - e).abs() < 1e-9);
        let mut extended = f2s.clone();
        extended.push(1.0);
        assert!(metrics::total_energy(&extended) >= e);
    }
}

/// Relative difference is zero exactly at equality.
#[test]
fn relative_difference_zero_at_equality() {
    let mut rng = SplitMix64::new(0x0E11);
    for _ in 0..CASES {
        let e = uniform(&mut rng, 1.0, 1e9);
        assert_eq!(metrics::relative_difference(e, e), 0.0);
    }
}
