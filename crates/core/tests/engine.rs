//! Acceptance tests for the sharded ingest engine (the tentpole claims):
//!
//! 1. At `N ≥ 4` shards, every `IntervalReport` — estimates, F2, alarm
//!    thresholds, alarm sets — is **bit-identical** to the
//!    single-threaded detector's, for every key strategy. Integer update
//!    values make every sketch cell an exact sum, so the partition and
//!    merge cannot perturb even the last bit.
//! 2. With an archive attached, an anomaly injected into a past interval
//!    is answered by a historical change query over a dyadic window,
//!    within the archive's sketch budget.

use scd_archive::ArchiveConfig;
use scd_core::{DetectorConfig, EngineConfig, KeyStrategy, ShardedEngine, SketchChangeDetector};
use scd_forecast::ModelSpec;
use scd_hash::SplitMix64;
use scd_sketch::SketchConfig;

fn detector_config(strategy: KeyStrategy) -> DetectorConfig {
    DetectorConfig {
        sketch: SketchConfig { h: 5, k: 1024, seed: 0x5CD },
        model: ModelSpec::Ewma { alpha: 0.4 },
        threshold: 0.05,
        key_strategy: strategy,
    }
}

/// One interval of synthetic traffic: ~600 updates over ~200 keys with
/// integer volumes (exact in f64), plus an optional injected burst.
fn interval_updates(t: u64, burst: Option<(u64, f64)>) -> Vec<(u64, f64)> {
    let mut rng = SplitMix64::new(0xE614E ^ t);
    let mut items: Vec<(u64, f64)> = (0..600)
        .map(|_| {
            let key = rng.next_below(200);
            let volume = (rng.next_below(1_000) + 1) as f64;
            (key, volume)
        })
        .collect();
    if let Some((key, volume)) = burst {
        items.push((key, volume));
    }
    items
}

#[test]
fn sharded_reports_bit_identical_to_single_threaded() {
    let strategies = [
        KeyStrategy::TwoPass,
        KeyStrategy::NextInterval,
        KeyStrategy::Sampled { rate: 0.5, seed: 77 },
    ];
    for strategy in strategies {
        for shards in [2usize, 4, 8] {
            let mut engine =
                ShardedEngine::new(EngineConfig::new(detector_config(strategy), shards)).unwrap();
            let mut reference = SketchChangeDetector::new(detector_config(strategy));
            for t in 0..12u64 {
                let burst = (t == 9).then_some((0xDD05_u64, 2_000_000.0));
                let items = interval_updates(t, burst);
                let sharded = engine.process_interval(&items).unwrap();
                let single = reference.process_interval(&items);
                assert_eq!(
                    sharded, single,
                    "{strategy:?} at {shards} shards diverged on interval {t}"
                );
                if t == 9 && matches!(strategy, KeyStrategy::TwoPass) {
                    assert!(
                        sharded.alarms.iter().any(|a| a.key == 0xDD05),
                        "burst missed at {shards} shards"
                    );
                }
            }
        }
    }
}

#[test]
fn archive_answers_historical_change_query() {
    let archive_cfg = ArchiveConfig { max_sketches: 12, full_resolution: 4, keys_per_epoch: 32 };
    let mut engine = ShardedEngine::new(
        EngineConfig::new(detector_config(KeyStrategy::TwoPass), 4).with_archive(archive_cfg),
    )
    .unwrap();
    let burst_key = 0xABCD_u64;
    // Burst at interval 20; query mid-run while 20 is still inside the
    // full-resolution window, then again at the end once it has decayed
    // into a dyadic epoch.
    for t in 0..23u64 {
        let burst = (t == 20).then_some((burst_key, 3_000_000.0));
        engine.process_interval(&interval_updates(t, burst)).unwrap();
    }
    {
        let archive = engine.archive().expect("archive configured");
        // At full resolution the error history pinpoints the burst to
        // its exact interval…
        let history = archive.key_history(burst_key, 16, 23).unwrap();
        let hot: Vec<_> = history.iter().filter(|p| p.total > 1_000_000.0).collect();
        assert_eq!(hot.len(), 1, "burst not localized: {history:?}");
        assert_eq!((hot[0].start, hot[0].len), (20, 1));
        // …and the model's subsequent adaptation shows as negative
        // forecast error (the telescoping that later cancels inside
        // coarse epochs — see DESIGN.md).
        let correction: f64 = history.iter().filter(|p| p.start > 20).map(|p| p.total).sum();
        assert!(correction < -500_000.0, "no post-burst correction visible: {history:?}");
    }
    for t in 23..64u64 {
        engine.process_interval(&interval_updates(t, None)).unwrap();
    }
    let archive = engine.take_archive().expect("archive configured");
    assert!(archive.sketch_count() <= 12, "budget exceeded: {}", archive.sketch_count());
    assert_eq!(archive.coverage(), Some((0, 64)), "archive must track detector intervals");
    // The window [16, 32) now lives in the decayed region; the burst's
    // *net* unforecast volume still tops the change query.
    let report = archive.changed_keys(16, 32, 0.05, &[]).unwrap();
    assert_eq!(
        report.changes.first().map(|c| c.key),
        Some(burst_key),
        "burst not the top historical change: {report:?}"
    );
    assert!(report.epochs_used >= 1);
    // A quiet recent window stays quiet for that key.
    let quiet = archive.changed_keys(60, 64, 0.05, &[burst_key]).unwrap();
    assert!(quiet.changes.iter().all(|c| c.key != burst_key));
}

#[test]
fn warmup_gaps_are_backfilled_with_zero_epochs() {
    // MA(3) has no forecast for interval 0 (empty history), so no error
    // sketch exists for it; the interval must still occupy archive slot
    // 0 so indices line up.
    let config = DetectorConfig {
        sketch: SketchConfig { h: 3, k: 512, seed: 2 },
        model: ModelSpec::Ma { window: 3 },
        threshold: 0.05,
        key_strategy: KeyStrategy::TwoPass,
    };
    // Budget 12 > 10 intervals: nothing merges, so the query window
    // below covers exactly the warm-up intervals.
    let archive_cfg = ArchiveConfig { max_sketches: 12, full_resolution: 2, keys_per_epoch: 8 };
    let mut engine =
        ShardedEngine::new(EngineConfig::new(config, 4).with_archive(archive_cfg)).unwrap();
    for t in 0..10u64 {
        engine.process_interval(&interval_updates(t, None)).unwrap();
    }
    let archive = engine.take_archive().unwrap();
    assert_eq!(archive.coverage(), Some((0, 10)));
    // The warm-up interval carries zero error mass; the next one does
    // not (the model is live from interval 1 on).
    let warmup = archive.range_sketch(0, 1).unwrap();
    assert_eq!(warmup.covered, (0, 1));
    assert_eq!(warmup.sketch.estimate_f2(), 0.0);
    let live = archive.range_sketch(1, 2).unwrap();
    assert!(live.sketch.estimate_f2() > 0.0);
}

#[test]
fn next_interval_strategy_archives_with_lag() {
    let archive_cfg = ArchiveConfig { max_sketches: 8, full_resolution: 2, keys_per_epoch: 8 };
    let mut engine = ShardedEngine::new(
        EngineConfig::new(detector_config(KeyStrategy::NextInterval), 4).with_archive(archive_cfg),
    )
    .unwrap();
    for t in 0..10u64 {
        engine.process_interval(&interval_updates(t, None)).unwrap();
    }
    let archive = engine.take_archive().unwrap();
    // Interval 9's error sketch is still pending (never queried), so the
    // archive covers one less than the detector's interval count.
    assert_eq!(archive.coverage(), Some((0, 9)));
}
