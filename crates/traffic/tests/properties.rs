//! Property-based tests for the traffic substrate: trace I/O round-trips
//! over arbitrary records, and generator invariants. Cases come from a
//! seeded `SplitMix64`, so runs are reproducible.

use scd_hash::SplitMix64;
use scd_traffic::{io, FlowRecord, KeySpec, Rng, ValueSpec, Zipf};

const CASES: u64 = 48;

fn record(rng: &mut SplitMix64) -> FlowRecord {
    FlowRecord {
        timestamp_ms: rng.next_u64(),
        src_ip: rng.next_u64() as u32,
        dst_ip: rng.next_u64() as u32,
        src_port: rng.next_u64() as u16,
        dst_port: rng.next_u64() as u16,
        protocol: rng.next_u64() as u8,
        bytes: rng.next_u64(),
        packets: rng.next_u64() as u32,
    }
}

fn records(rng: &mut SplitMix64, max: u64) -> Vec<FlowRecord> {
    let len = rng.next_below(max) as usize;
    (0..len).map(|_| record(rng)).collect()
}

/// Binary serialization round-trips every representable record exactly.
#[test]
fn binary_round_trip() {
    let mut rng = SplitMix64::new(0xB14);
    for _ in 0..CASES {
        let recs = records(&mut rng, 100);
        let bytes = io::to_binary(&recs);
        let back = io::from_binary(&bytes).unwrap();
        assert_eq!(recs, back);
    }
}

/// CSV serialization round-trips too (all fields are integers).
#[test]
fn csv_round_trip() {
    let mut rng = SplitMix64::new(0xC57);
    for _ in 0..CASES {
        let recs = records(&mut rng, 60);
        let mut buf = Vec::new();
        io::write_csv(&mut buf, &recs).unwrap();
        let back = io::read_csv(&buf[..]).unwrap();
        assert_eq!(recs, back);
    }
}

/// Truncating a binary trace is always detected (never a silent wrong
/// answer or a panic). With the v02 CRC footer even boundary-aligned cuts
/// are caught.
#[test]
fn binary_truncation_detected() {
    let mut rng = SplitMix64::new(0x7121);
    for case in 0..CASES {
        let recs = {
            let mut r = records(&mut rng, 29);
            r.push(record(&mut rng)); // at least one record
            r
        };
        let bytes = io::to_binary(&recs);
        let cut = 1 + rng.next_below(19) as usize;
        let cut = cut.min(bytes.len().saturating_sub(9)).max(1);
        let truncated = &bytes[..bytes.len() - cut];
        assert!(io::from_binary(truncated).is_err(), "case {case}: cut {cut} undetected");
    }
}

/// Key extraction is total and within the declared width for every spec.
#[test]
fn key_specs_total() {
    let mut rng = SplitMix64::new(0x4E75);
    for case in 0..CASES {
        let r = record(&mut rng);
        assert!(KeySpec::DstIp.key_of(&r) <= u32::MAX as u64);
        assert!(KeySpec::SrcIp.key_of(&r) <= u32::MAX as u64);
        let _ = KeySpec::SrcDstPair.key_of(&r);
        assert!(KeySpec::DstIpPort.key_of(&r) < 1u64 << 48);
        for len in 0..=40u8 {
            let k = KeySpec::DstPrefix(len).key_of(&r);
            let effective = len.min(32);
            if effective < 32 {
                assert!(k < 1u64 << effective, "case {case}, len {len}: key {k}");
            }
        }
        assert!(ValueSpec::Bytes.value_of(&r) >= 0.0);
        assert_eq!(ValueSpec::Count.value_of(&r), 1.0);
    }
}

/// The Zipf sampler stays in range and its PMF is a distribution for
/// arbitrary admissible parameters.
#[test]
fn zipf_is_a_distribution() {
    let mut gen = SplitMix64::new(0x21FF);
    for _ in 0..CASES {
        let n = 1 + gen.next_below(299) as usize;
        let s = (gen.next_below(3_000) as f64) / 1000.0;
        let seed = gen.next_u64();
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            assert!(z.sample(&mut rng) < n);
        }
    }
}
