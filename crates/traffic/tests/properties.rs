//! Property-based tests for the traffic substrate: trace I/O round-trips
//! over arbitrary records, and generator invariants.

use proptest::prelude::*;
use scd_traffic::{io, FlowRecord, KeySpec, Rng, ValueSpec, Zipf};

fn record_strategy() -> impl Strategy<Value = FlowRecord> {
    (
        any::<u64>(),
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
        any::<u64>(),
        any::<u32>(),
    )
        .prop_map(
            |(timestamp_ms, src_ip, dst_ip, src_port, dst_port, protocol, bytes, packets)| {
                FlowRecord {
                    timestamp_ms,
                    src_ip,
                    dst_ip,
                    src_port,
                    dst_port,
                    protocol,
                    bytes,
                    packets,
                }
            },
        )
}

proptest! {
    /// Binary serialization round-trips every representable record exactly.
    #[test]
    fn binary_round_trip(records in prop::collection::vec(record_strategy(), 0..100)) {
        let bytes = io::to_binary(&records);
        let back = io::from_binary(&bytes).unwrap();
        prop_assert_eq!(records, back);
    }

    /// CSV serialization round-trips too (all fields are integers).
    #[test]
    fn csv_round_trip(records in prop::collection::vec(record_strategy(), 0..60)) {
        let mut buf = Vec::new();
        io::write_csv(&mut buf, &records).unwrap();
        let back = io::read_csv(&buf[..]).unwrap();
        prop_assert_eq!(records, back);
    }

    /// Corrupting the length of a binary trace is always detected (never a
    /// silent wrong answer or a panic).
    #[test]
    fn binary_truncation_detected(
        records in prop::collection::vec(record_strategy(), 1..30),
        cut in 1usize..20,
    ) {
        let bytes = io::to_binary(&records).to_vec();
        let cut = cut.min(bytes.len().saturating_sub(9)).max(1);
        let truncated = &bytes[..bytes.len() - cut];
        // Cut can land on a record boundary — then it parses as fewer
        // records, which is indistinguishable by design; only assert it
        // never panics and never returns the original length.
        if let Ok(back) = io::from_binary(truncated) {
            prop_assert!(back.len() < records.len());
        }
    }

    /// Key extraction is total and within the declared width for every spec.
    #[test]
    fn key_specs_total(r in record_strategy()) {
        prop_assert!(KeySpec::DstIp.key_of(&r) <= u32::MAX as u64);
        prop_assert!(KeySpec::SrcIp.key_of(&r) <= u32::MAX as u64);
        let _ = KeySpec::SrcDstPair.key_of(&r);
        prop_assert!(KeySpec::DstIpPort.key_of(&r) < 1u64 << 48);
        for len in 0..=40u8 {
            let k = KeySpec::DstPrefix(len).key_of(&r);
            let effective = len.min(32);
            if effective < 32 {
                prop_assert!(k < 1u64 << effective, "len {len}: key {k}");
            }
        }
        prop_assert!(ValueSpec::Bytes.value_of(&r) >= 0.0);
        prop_assert_eq!(ValueSpec::Count.value_of(&r), 1.0);
    }

    /// The Zipf sampler stays in range and its PMF is a distribution for
    /// arbitrary admissible parameters.
    #[test]
    fn zipf_is_a_distribution(n in 1usize..300, s in 0.0f64..3.0, seed in any::<u64>()) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let mut rng = Rng::new(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }
}
