//! Synthetic netflow trace generation.
//!
//! The generator models a router's traffic as a fixed population of
//! destination hosts whose shares follow a Zipf law, modulated over time by
//! a diurnal cycle and per-key multiplicative noise. Each interval is
//! generated independently and deterministically from `(seed, interval)`,
//! and every *record* within an interval is a pure function of
//! `(seed, interval, index)` via counter-based RNG streams, so traces can
//! be produced out of order, in parallel (see
//! [`TrafficGenerator::par_interval_records`] and
//! [`TrafficGenerator::interval_records_range`]), or streamed without
//! storage — parallel output is bit-identical to sequential.
//!
//! Calibration targets the *shape* of the paper's dataset (§4.1): ten
//! routers from 861 K to 60 M records over four hours. The three
//! [`RouterProfile`]s keep those relative sizes at roughly 1/100 scale so
//! that full experiment sweeps finish in minutes; every experiment binary
//! exposes `--scale` to move back toward paper scale.

use crate::record::FlowRecord;
use crate::rng::Rng;
use crate::zipf::Zipf;
use scd_hash::SplitMix64;

/// Generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Number of distinct destination hosts in the router's population.
    pub n_flows: usize,
    /// Zipf exponent of the destination share distribution (≈1 for
    /// Internet-like skew).
    pub zipf_exponent: f64,
    /// Mean flow records per second (before diurnal modulation).
    pub records_per_sec: f64,
    /// Interval length in seconds (the paper uses 300 and 60).
    pub interval_secs: u32,
    /// Median bytes per flow record.
    pub median_flow_bytes: f64,
    /// Lognormal sigma of per-record byte counts.
    pub byte_sigma: f64,
    /// Relative amplitude of the diurnal volume cycle, in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Diurnal period, in intervals.
    pub diurnal_period: f64,
    /// Sigma of the per-(key, interval) lognormal rate jitter — this is
    /// what gives each flow a non-trivial time series to forecast.
    pub key_noise_sigma: f64,
    /// Master seed.
    pub seed: u64,
}

impl TrafficConfig {
    /// Expected records per interval before modulation.
    pub fn records_per_interval(&self) -> f64 {
        self.records_per_sec * self.interval_secs as f64
    }

    /// Multiplies record volume and key population by `scale` (used by the
    /// experiment binaries' `--scale` flag).
    pub fn scaled(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.records_per_sec *= scale;
        self.n_flows = ((self.n_flows as f64 * scale).round() as usize).max(16);
        self
    }
}

/// The paper's three router sizes (§5.2: "three router data files
/// representing high volume (over 60 Million), medium (12.7 Million), and
/// low (5.3 Million) records" over four hours), at ~1/100 scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouterProfile {
    /// ≈42 records/s (~600 K over 4 h at full scale ÷ 100 ≈ 150 K records).
    Large,
    /// ≈9 records/s.
    Medium,
    /// ≈3.7 records/s.
    Small,
}

impl RouterProfile {
    /// A calibrated configuration for this profile.
    pub fn config(&self, seed: u64) -> TrafficConfig {
        // Paper: large 60 M, medium 12.7 M, small 5.3 M records per 4 h.
        // 1/100 scale => 600 K / 127 K / 53 K records per 4 h trace.
        let records_per_sec = match self {
            RouterProfile::Large => 600_000.0 / 14_400.0,
            RouterProfile::Medium => 127_000.0 / 14_400.0,
            RouterProfile::Small => 53_000.0 / 14_400.0,
        };
        let n_flows = match self {
            RouterProfile::Large => 30_000,
            RouterProfile::Medium => 10_000,
            RouterProfile::Small => 4_000,
        };
        TrafficConfig {
            n_flows,
            zipf_exponent: 1.05,
            records_per_sec,
            interval_secs: 300,
            median_flow_bytes: 2_000.0,
            byte_sigma: 1.2,
            diurnal_amplitude: 0.3,
            // One diurnal cycle per 24 h = 288 five-minute intervals.
            diurnal_period: 288.0,
            key_noise_sigma: 0.25,
            seed,
        }
    }

    /// Display name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            RouterProfile::Large => "large",
            RouterProfile::Medium => "medium",
            RouterProfile::Small => "small",
        }
    }

    /// All three profiles.
    pub const ALL: [RouterProfile; 3] =
        [RouterProfile::Large, RouterProfile::Medium, RouterProfile::Small];
}

/// Deterministic synthetic trace generator.
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    config: TrafficConfig,
    zipf: Zipf,
    /// Salt for the stable rank -> destination IP mapping.
    ip_salt: u64,
}

impl TrafficGenerator {
    /// Builds a generator; `O(n_flows)` setup for the Zipf table.
    pub fn new(config: TrafficConfig) -> Self {
        let zipf = Zipf::new(config.n_flows, config.zipf_exponent);
        let ip_salt = SplitMix64::new(config.seed ^ 0x1B_AD5EED).next_u64();
        TrafficGenerator { config, zipf, ip_salt }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// Stable destination IP for a traffic rank. Ranks map to
    /// pseudo-random, distinct-with-high-probability addresses so key
    /// distributions over the sketch are realistic (not sequential).
    pub fn dst_ip_of_rank(&self, rank: usize) -> u32 {
        let mut sm =
            SplitMix64::new(self.ip_salt ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Avoid 0.0.0.0 and multicast/reserved high ranges for plausibility.
        0x0100_0000 + (sm.next_u64() % 0xDF00_0000u64) as u32
    }

    /// Expected byte volume of `rank` in interval `t` (the ground-truth
    /// mean the noise jitters around) — used by tests and by anomaly
    /// calibration.
    pub fn expected_rank_bytes(&self, rank: usize, t: usize) -> f64 {
        self.config.records_per_interval()
            * self.diurnal_factor(t)
            * self.zipf.pmf(rank)
            * self.mean_flow_bytes()
    }

    /// Mean (not median) bytes per record under the lognormal model.
    pub fn mean_flow_bytes(&self) -> f64 {
        // E[lognormal(mu, sigma)] with median e^mu: median * exp(sigma^2/2).
        self.config.median_flow_bytes * (self.config.byte_sigma.powi(2) / 2.0).exp()
    }

    /// Diurnal volume multiplier at interval `t`.
    pub fn diurnal_factor(&self, t: usize) -> f64 {
        1.0 + self.config.diurnal_amplitude
            * (2.0 * std::f64::consts::PI * t as f64 / self.config.diurnal_period).sin()
    }

    /// Per-(key, interval) lognormal rate multiplier — deterministic in
    /// `(seed, rank, t)` so the same interval regenerates identically.
    fn key_interval_factor(&self, rank: usize, t: usize) -> f64 {
        let mut rng = Rng::new(
            self.config
                .seed
                .wrapping_mul(0xA24B_AED4_963E_E407)
                .wrapping_add((rank as u64) << 20)
                .wrapping_add(t as u64),
        );
        rng.lognormal(
            -self.config.key_noise_sigma.powi(2) / 2.0, // unit mean
            self.config.key_noise_sigma,
        )
    }

    /// Number of records in interval `t` — a Poisson draw from a dedicated
    /// count stream, deterministic in `(seed, t)`.
    pub fn interval_len(&self, t: usize) -> usize {
        let mut rng = Rng::new(self.config.seed.wrapping_add(0x5EED * t as u64 + 1));
        let lambda = self.config.records_per_interval() * self.diurnal_factor(t);
        rng.poisson(lambda) as usize
    }

    /// Per-interval salt for the counter-based record streams. Kept
    /// separate from the count stream so record contents are not
    /// correlated with the Poisson draw.
    fn interval_salt(&self, t: usize) -> u64 {
        SplitMix64::new(
            self.config.seed
                ^ 0xC0DE_5A17_u64.rotate_left(32)
                ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
        .next_u64()
    }

    /// Synthesizes record `i` of interval `t` from its own counter-based
    /// RNG stream (SplitMix64 seeded at golden-ratio stride `i` off the
    /// interval salt). This is what makes the source plane parallel:
    /// `record_at(t, i)` is a pure function of `(seed, t, i)`, so any
    /// partition of `0..interval_len(t)` across producer threads
    /// regenerates exactly the records the sequential path produces.
    fn record_at(
        &self,
        salt: u64,
        t: usize,
        i: usize,
        t0: u64,
        interval_ms: u64,
        mu: f64,
    ) -> FlowRecord {
        let mut rng = Rng::new(salt.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let rank = self.zipf.sample(&mut rng);
        let key_factor = self.key_interval_factor(rank, t);
        let bytes =
            (rng.lognormal(mu, self.config.byte_sigma) * key_factor).round().max(40.0) as u64;
        let packets = ((bytes as f64 / 700.0).ceil() as u32).max(1);
        FlowRecord {
            timestamp_ms: t0 + rng.below(interval_ms),
            src_ip: 0x0100_0000 + (rng.next_u64() % 0xDF00_0000u64) as u32,
            dst_ip: self.dst_ip_of_rank(rank),
            src_port: 1024 + (rng.below(64_512)) as u16,
            dst_port: *[80u16, 443, 53, 25, 8080, 22]
                .get(rng.below(6) as usize)
                .expect("index < 6"),
            protocol: if rng.below(10) < 8 { 6 } else { 17 },
            bytes,
            packets,
        }
    }

    /// Generates records `lo..hi` of interval `t` — exactly the slice
    /// `interval_records(t)[lo..hi]`, without generating the rest. This is
    /// the per-producer building block of the parallel source plane.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `hi > interval_len(t)`.
    pub fn interval_records_range(&self, t: usize, lo: usize, hi: usize) -> Vec<FlowRecord> {
        assert!(lo <= hi, "range reversed: {lo} > {hi}");
        let n = self.interval_len(t);
        assert!(hi <= n, "range end {hi} past interval length {n}");
        let salt = self.interval_salt(t);
        let interval_ms = self.config.interval_secs as u64 * 1000;
        let t0 = t as u64 * interval_ms;
        let mu = self.config.median_flow_bytes.ln();
        (lo..hi).map(|i| self.record_at(salt, t, i, t0, interval_ms, mu)).collect()
    }

    /// Generates all flow records of interval `t` (timestamps within
    /// `[t·L, (t+1)·L)` milliseconds, `L` the interval length).
    pub fn interval_records(&mut self, t: usize) -> Vec<FlowRecord> {
        let n = self.interval_len(t);
        self.interval_records_range(t, 0, n)
    }

    /// Generates interval `t` with `threads` producer threads, each owning
    /// a contiguous counter range of the interval's record stream. The
    /// in-order concatenation of the per-producer ranges is *exactly* the
    /// sequential `interval_records(t)` vector (not merely the same
    /// multiset) because every record is a pure function of `(seed, t, i)`.
    pub fn par_interval_records(&self, t: usize, threads: usize) -> Vec<FlowRecord> {
        let n = self.interval_len(t);
        let threads = threads.max(1).min(n.max(1));
        if threads == 1 {
            return self.interval_records_range(t, 0, n);
        }
        let chunk = n.div_ceil(threads);
        let mut parts: Vec<Vec<FlowRecord>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let lo = (w * chunk).min(n);
                    let hi = ((w + 1) * chunk).min(n);
                    scope.spawn(move || self.interval_records_range(t, lo, hi))
                })
                .collect();
            for handle in handles {
                parts.push(handle.join().expect("producer thread panicked"));
            }
        });
        let mut out = Vec::with_capacity(n);
        for part in parts {
            out.extend(part);
        }
        out
    }

    /// Generates a full trace of `intervals` consecutive intervals.
    pub fn trace(&mut self, intervals: usize) -> Vec<Vec<FlowRecord>> {
        (0..intervals).map(|t| self.interval_records(t)).collect()
    }

    /// Generates a full trace with `threads` producer threads, striding
    /// intervals across threads (intervals were already independent).
    /// Bit-identical to [`TrafficGenerator::trace`].
    pub fn par_trace(&self, intervals: usize, threads: usize) -> Vec<Vec<FlowRecord>> {
        let threads = threads.max(1).min(intervals.max(1));
        if threads == 1 {
            return (0..intervals)
                .map(|t| self.interval_records_range(t, 0, self.interval_len(t)))
                .collect();
        }
        let mut out: Vec<Vec<FlowRecord>> = vec![Vec::new(); intervals];
        std::thread::scope(|scope| {
            let mut rest: &mut [Vec<FlowRecord>] = &mut out;
            let mut handles = Vec::with_capacity(threads);
            for w in 0..threads {
                // Contiguous interval ranges, one per thread.
                let lo = w * intervals / threads;
                let hi = (w + 1) * intervals / threads;
                let (mine, tail) = rest.split_at_mut(hi - lo);
                rest = tail;
                handles.push(scope.spawn(move || {
                    for (slot, t) in mine.iter_mut().zip(lo..hi) {
                        *slot = self.interval_records_range(t, 0, self.interval_len(t));
                    }
                }));
            }
            for handle in handles {
                handle.join().expect("producer thread panicked");
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small_config() -> TrafficConfig {
        TrafficConfig {
            n_flows: 500,
            zipf_exponent: 1.0,
            records_per_sec: 10.0,
            interval_secs: 60,
            median_flow_bytes: 1_000.0,
            byte_sigma: 1.0,
            diurnal_amplitude: 0.2,
            diurnal_period: 100.0,
            key_noise_sigma: 0.2,
            seed: 77,
        }
    }

    #[test]
    fn deterministic_per_interval() {
        let mut a = TrafficGenerator::new(small_config());
        let mut b = TrafficGenerator::new(small_config());
        assert_eq!(a.interval_records(3), b.interval_records(3));
        // And independent of generation order.
        let _ = a.interval_records(7);
        assert_eq!(a.interval_records(3), b.interval_records(3));
    }

    #[test]
    fn record_count_tracks_configured_rate() {
        let mut g = TrafficGenerator::new(small_config());
        let total: usize = (0..20).map(|t| g.interval_records(t).len()).sum();
        let expect = 20.0 * 600.0; // 10 rec/s * 60 s * 20 intervals
        let got = total as f64;
        assert!((got - expect).abs() < 0.15 * expect, "total records {got} vs expected {expect}");
    }

    #[test]
    fn traffic_is_heavy_tailed() {
        let mut g = TrafficGenerator::new(small_config());
        let mut per_key: HashMap<u32, u64> = HashMap::new();
        for t in 0..10 {
            for r in g.interval_records(t) {
                *per_key.entry(r.dst_ip).or_default() += r.bytes;
            }
        }
        let mut volumes: Vec<u64> = per_key.values().copied().collect();
        volumes.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = volumes.iter().sum();
        let top10: u64 = volumes.iter().take(10).sum();
        // Zipf(1.0) over 500 keys: top 10 of ~500 keys should carry a
        // disproportionate share (≥ 25% here; uniform would give 2%).
        assert!(top10 as f64 > 0.25 * total as f64, "top-10 share {} of {}", top10, total);
    }

    #[test]
    fn timestamps_fall_in_interval() {
        let mut g = TrafficGenerator::new(small_config());
        for t in [0usize, 5] {
            let lo = t as u64 * 60_000;
            let hi = lo + 60_000;
            for r in g.interval_records(t) {
                assert!((lo..hi).contains(&r.timestamp_ms));
            }
        }
    }

    #[test]
    fn diurnal_cycle_modulates_volume() {
        let mut cfg = small_config();
        cfg.diurnal_amplitude = 0.5;
        cfg.diurnal_period = 40.0;
        let g = TrafficGenerator::new(cfg);
        // Peak at t = 10 (sin = 1), trough at t = 30 (sin = -1).
        assert!(g.diurnal_factor(10) > 1.4);
        assert!(g.diurnal_factor(30) < 0.6);
    }

    #[test]
    fn rank_ip_mapping_is_stable_and_spread() {
        let g = TrafficGenerator::new(small_config());
        let a = g.dst_ip_of_rank(0);
        assert_eq!(a, g.dst_ip_of_rank(0));
        let distinct: std::collections::HashSet<u32> =
            (0..500).map(|r| g.dst_ip_of_rank(r)).collect();
        assert!(distinct.len() >= 499, "rank IPs should be essentially unique");
    }

    #[test]
    fn profiles_are_ordered_by_volume() {
        let l = RouterProfile::Large.config(1);
        let m = RouterProfile::Medium.config(1);
        let s = RouterProfile::Small.config(1);
        assert!(l.records_per_sec > m.records_per_sec);
        assert!(m.records_per_sec > s.records_per_sec);
        assert!(l.n_flows > m.n_flows && m.n_flows > s.n_flows);
    }

    #[test]
    fn scaling_moves_volume() {
        let base = RouterProfile::Small.config(1);
        let doubled = base.scaled(2.0);
        assert!((doubled.records_per_sec - 2.0 * base.records_per_sec).abs() < 1e-9);
        assert_eq!(doubled.n_flows, base.n_flows * 2);
    }

    #[test]
    fn range_synthesis_matches_sequential_slices() {
        let mut g = TrafficGenerator::new(small_config());
        for t in [0usize, 3, 11] {
            let full = g.interval_records(t);
            let n = full.len();
            assert_eq!(g.interval_len(t), n);
            // Arbitrary sub-ranges are exactly the corresponding slices.
            for (lo, hi) in [(0, n), (0, n / 2), (n / 2, n), (n / 3, 2 * n / 3), (n, n)] {
                assert_eq!(g.interval_records_range(t, lo, hi), full[lo..hi], "range {lo}..{hi}");
            }
            // Any contiguous partition concatenates back to the full interval.
            for parts in [2usize, 3, 7] {
                let chunk = n.div_ceil(parts);
                let merged: Vec<_> = (0..parts)
                    .flat_map(|w| g.interval_records_range(t, w * chunk, ((w + 1) * chunk).min(n)))
                    .collect();
                assert_eq!(merged, full, "{parts}-way partition of interval {t}");
            }
        }
    }

    #[test]
    fn parallel_synthesis_is_bit_identical_to_sequential() {
        let mut g = TrafficGenerator::new(small_config());
        for t in [0usize, 5] {
            let full = g.interval_records(t);
            for threads in [1usize, 2, 3, 8, 64] {
                assert_eq!(g.par_interval_records(t, threads), full, "{threads} threads");
            }
        }
        let trace = g.trace(9);
        for threads in [1usize, 2, 4, 16] {
            assert_eq!(g.par_trace(9, threads), trace, "{threads} threads");
        }
    }

    #[test]
    fn merged_shard_partition_is_same_multiset_as_sequential() {
        use crate::record::KeySpec;
        use crate::shard::{partition_records, ShardPolicy};
        let mut g = TrafficGenerator::new(small_config());
        let full = g.interval_records(2);
        // Producers synthesize disjoint counter ranges; partitioning each
        // range by key hash and merging all shards must reproduce the
        // sequential interval as a multiset.
        let n = full.len();
        let chunk = n.div_ceil(4);
        let mut merged: Vec<FlowRecord> = Vec::new();
        for w in 0..4 {
            let part = g.interval_records_range(2, w * chunk, ((w + 1) * chunk).min(n));
            for shard in partition_records(&part, 3, ShardPolicy::ByKeyHash, KeySpec::DstIp) {
                merged.extend(shard);
            }
        }
        let sort_key =
            |r: &FlowRecord| (r.timestamp_ms, r.src_ip, r.dst_ip, r.src_port, r.bytes, r.packets);
        let mut expect = full;
        expect.sort_by_key(sort_key);
        merged.sort_by_key(sort_key);
        assert_eq!(merged, expect);
    }

    #[test]
    fn bytes_have_floor_and_packets_positive() {
        let mut g = TrafficGenerator::new(small_config());
        for r in g.interval_records(0) {
            assert!(r.bytes >= 40);
            assert!(r.packets >= 1);
        }
    }
}
