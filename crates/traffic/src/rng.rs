//! Deterministic random-variate generation for the traffic substrate.
//!
//! Built on the same vendored SplitMix64 the hash layer uses, so a trace is
//! a pure function of its seed — a property the experiment harness depends
//! on (every figure must be regenerable bit-for-bit). Provides the handful
//! of distributions traffic synthesis needs: uniforms, Gaussians
//! (Box–Muller), lognormals and Poisson counts.

use scd_hash::SplitMix64;

/// Seedable random-variate generator.
#[derive(Debug, Clone)]
pub struct Rng {
    sm: SplitMix64,
    /// Spare Gaussian from Box–Muller.
    spare: Option<f64>,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Rng { sm: SplitMix64::new(seed), spare: None }
    }

    /// Next raw 64 bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.sm.next_u64()
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.sm.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        self.sm.next_below(bound)
    }

    /// Standard normal via Box–Muller (cached pair).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Avoid u == 0 for the logarithm.
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        let v = self.uniform();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * v;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Lognormal: `exp(N(mu, sigma))` — the classic heavy-ish flow-size
    /// model for per-record byte counts.
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Poisson count with the given mean. Uses Knuth's product method for
    /// small means and a Gaussian approximation above 64 (adequate for
    /// record-count synthesis; exact tails are not load-bearing here).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        if mean > 64.0 {
            return self.normal(mean, mean.sqrt()).round().max(0.0) as u64;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::new(5);
        let mut b = Rng::new(5);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Rng::new(1);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng::new(2);
        let n = 50_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let z = r.gaussian();
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn poisson_mean_tracks_parameter() {
        let mut r = Rng::new(3);
        for &lambda in &[0.5, 4.0, 20.0, 200.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| r.poisson(lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!((mean - lambda).abs() < lambda.max(1.0) * 0.05, "lambda {lambda}: mean {mean}");
        }
        assert_eq!(r.poisson(0.0), 0);
        assert_eq!(r.poisson(-3.0), 0);
    }

    #[test]
    fn lognormal_positive() {
        let mut r = Rng::new(4);
        for _ in 0..1000 {
            assert!(r.lognormal(5.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn uniform_in_respects_bounds() {
        let mut r = Rng::new(6);
        for _ in 0..1000 {
            let v = r.uniform_in(-3.0, 7.0);
            assert!((-3.0..7.0).contains(&v));
        }
    }
}
