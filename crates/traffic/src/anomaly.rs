//! Anomaly injection with ground-truth labels.
//!
//! The paper evaluates sketch accuracy *against per-flow analysis*, because
//! its real traces carry no labels. A synthetic substrate can do better:
//! inject anomalies of known kind, location, and magnitude, and keep the
//! labels. This enables true recall/precision measurement for the
//! change-detection pipeline (used in the integration tests and the
//! example applications), on top of the paper's sketch-vs-per-flow
//! agreement metrics.
//!
//! Four anomaly archetypes from the paper's motivation (§1: flash crowds,
//! network element failures, DoS attacks, worm/scan activity):
//!
//! * [`AnomalyKind::DosAttack`] — an abrupt surge of traffic to one victim
//!   from many spoofed sources.
//! * [`AnomalyKind::FlashCrowd`] — a ramp-up of legitimate traffic to one
//!   destination (benign but significant — the paper notes detection
//!   cannot distinguish these by itself).
//! * [`AnomalyKind::Outage`] — a destination's traffic drops to zero
//!   (negative change; exercises the signed error path that Count-Min
//!   cannot represent).
//! * [`AnomalyKind::Scan`] — light probes across many destinations
//!   (many small changes rather than one large one).

use crate::gen::TrafficGenerator;
use crate::record::FlowRecord;
use crate::rng::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// What kind of traffic change to inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnomalyKind {
    /// Sudden extra volume to the victim: `byte_rate` bytes per interval,
    /// split across `flows` records from random spoofed sources.
    DosAttack {
        /// Added bytes per affected interval.
        byte_rate: f64,
        /// Number of attack records per interval.
        flows: usize,
    },
    /// Volume to the victim ramps linearly from 0 to `peak_byte_rate` over
    /// the event duration (a flash crowd builds, it does not switch on).
    FlashCrowd {
        /// Added bytes per interval at the end of the ramp.
        peak_byte_rate: f64,
        /// Number of extra records per interval at peak.
        flows: usize,
    },
    /// All baseline traffic to the victim disappears.
    Outage,
    /// Probe records of `probe_bytes` each to `width` consecutive victim
    /// ranks (a horizontal scan across the victim's neighborhood).
    Scan {
        /// Number of destinations probed per interval.
        width: usize,
        /// Bytes per probe record.
        probe_bytes: u64,
    },
}

impl AnomalyKind {
    /// Short label for logs and reports.
    pub fn label(&self) -> &'static str {
        match self {
            AnomalyKind::DosAttack { .. } => "dos",
            AnomalyKind::FlashCrowd { .. } => "flash-crowd",
            AnomalyKind::Outage => "outage",
            AnomalyKind::Scan { .. } => "scan",
        }
    }
}

/// One scheduled anomaly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyEvent {
    /// What happens.
    pub kind: AnomalyKind,
    /// Victim's traffic rank in the generator population (rank 0 is the
    /// busiest destination). For scans this is the first probed rank.
    pub victim_rank: usize,
    /// First affected interval (inclusive).
    pub start_interval: usize,
    /// Number of affected intervals.
    pub duration: usize,
}

impl AnomalyEvent {
    /// Whether interval `t` is inside this event.
    pub fn active_at(&self, t: usize) -> bool {
        t >= self.start_interval && t < self.start_interval + self.duration
    }
}

/// Ground truth: which keys are anomalous in which interval.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroundTruth {
    /// For each interval index, the set of affected stream keys
    /// (destination IPs as u64, matching `KeySpec::DstIp`).
    pub by_interval: BTreeMap<usize, BTreeSet<u64>>,
}

impl GroundTruth {
    /// Keys labeled anomalous at interval `t` (empty set if none).
    pub fn keys_at(&self, t: usize) -> BTreeSet<u64> {
        self.by_interval.get(&t).cloned().unwrap_or_default()
    }

    /// True iff `key` is anomalous at `t`.
    pub fn is_anomalous(&self, t: usize, key: u64) -> bool {
        self.by_interval.get(&t).is_some_and(|s| s.contains(&key))
    }

    /// Total number of (interval, key) anomaly labels.
    pub fn len(&self) -> usize {
        self.by_interval.values().map(|s| s.len()).sum()
    }

    /// True iff no labels exist.
    pub fn is_empty(&self) -> bool {
        self.by_interval.is_empty()
    }
}

/// Applies a schedule of [`AnomalyEvent`]s to generated intervals.
#[derive(Debug, Clone)]
pub struct AnomalyInjector {
    events: Vec<AnomalyEvent>,
    seed: u64,
}

impl AnomalyInjector {
    /// Creates an injector for the given schedule.
    pub fn new(events: Vec<AnomalyEvent>, seed: u64) -> Self {
        AnomalyInjector { events, seed }
    }

    /// The schedule.
    pub fn events(&self) -> &[AnomalyEvent] {
        &self.events
    }

    /// Transforms interval `t`'s records in place and returns the set of
    /// keys affected at `t`. `generator` supplies the rank → IP mapping and
    /// interval timing.
    pub fn apply(
        &self,
        generator: &TrafficGenerator,
        t: usize,
        records: &mut Vec<FlowRecord>,
    ) -> BTreeSet<u64> {
        let mut touched = BTreeSet::new();
        for (ei, ev) in self.events.iter().enumerate() {
            if !ev.active_at(t) {
                continue;
            }
            let mut rng = Rng::new(
                self.seed
                    .wrapping_mul(0xD134_2543_DE82_EF95)
                    .wrapping_add((ei as u64) << 32)
                    .wrapping_add(t as u64),
            );
            let interval_ms = generator.config().interval_secs as u64 * 1000;
            let t0 = t as u64 * interval_ms;
            match ev.kind {
                AnomalyKind::DosAttack { byte_rate, flows } => {
                    let victim = generator.dst_ip_of_rank(ev.victim_rank);
                    push_attack_records(
                        records,
                        &mut rng,
                        victim,
                        byte_rate,
                        flows,
                        t0,
                        interval_ms,
                    );
                    touched.insert(victim as u64);
                }
                AnomalyKind::FlashCrowd { peak_byte_rate, flows } => {
                    // Linear ramp: interval k of the event carries
                    // (k+1)/duration of the peak.
                    let progress = (t - ev.start_interval + 1) as f64 / ev.duration as f64;
                    let victim = generator.dst_ip_of_rank(ev.victim_rank);
                    let rate = peak_byte_rate * progress;
                    let n = ((flows as f64 * progress).ceil() as usize).max(1);
                    push_attack_records(records, &mut rng, victim, rate, n, t0, interval_ms);
                    touched.insert(victim as u64);
                }
                AnomalyKind::Outage => {
                    let victim = generator.dst_ip_of_rank(ev.victim_rank);
                    records.retain(|r| r.dst_ip != victim);
                    touched.insert(victim as u64);
                }
                AnomalyKind::Scan { width, probe_bytes } => {
                    for offset in 0..width {
                        let target = generator.dst_ip_of_rank(ev.victim_rank + offset);
                        records.push(FlowRecord {
                            timestamp_ms: t0 + rng.below(interval_ms),
                            src_ip: 0x0100_0000 + (rng.next_u64() % 0xDF00_0000u64) as u32,
                            dst_ip: target,
                            src_port: 1024 + rng.below(64_512) as u16,
                            dst_port: 445,
                            protocol: 6,
                            bytes: probe_bytes,
                            packets: 1,
                        });
                        touched.insert(target as u64);
                    }
                }
            }
        }
        touched
    }

    /// Generates a labeled trace: applies the schedule to every interval of
    /// `generator` and collects the ground truth.
    pub fn labeled_trace(
        &self,
        generator: &mut TrafficGenerator,
        intervals: usize,
    ) -> (Vec<Vec<FlowRecord>>, GroundTruth) {
        let mut truth = GroundTruth::default();
        let mut trace = Vec::with_capacity(intervals);
        for t in 0..intervals {
            let mut records = generator.interval_records(t);
            let touched = self.apply(generator, t, &mut records);
            if !touched.is_empty() {
                truth.by_interval.insert(t, touched);
            }
            // Injected records are appended by `apply`; deliver the
            // interval in arrival (timestamp) order as a real flow export
            // would — order-sensitive consumers (e.g. Misra-Gries
            // baselines) must not see attacks conveniently batched last.
            records.sort_by_key(|r| r.timestamp_ms);
            trace.push(records);
        }
        (trace, truth)
    }
}

/// Appends `flows` records totaling `byte_rate` bytes to `victim`.
fn push_attack_records(
    records: &mut Vec<FlowRecord>,
    rng: &mut Rng,
    victim: u32,
    byte_rate: f64,
    flows: usize,
    t0: u64,
    interval_ms: u64,
) {
    let flows = flows.max(1);
    let bytes_each = (byte_rate / flows as f64).round().max(40.0) as u64;
    for _ in 0..flows {
        records.push(FlowRecord {
            timestamp_ms: t0 + rng.below(interval_ms),
            src_ip: 0x0100_0000 + (rng.next_u64() % 0xDF00_0000u64) as u32, // spoofed
            dst_ip: victim,
            src_port: 1024 + rng.below(64_512) as u16,
            dst_port: 80,
            protocol: 6,
            bytes: bytes_each,
            packets: ((bytes_each as f64 / 700.0).ceil() as u32).max(1),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{RouterProfile, TrafficGenerator};

    fn generator() -> TrafficGenerator {
        let mut cfg = RouterProfile::Small.config(11);
        cfg.n_flows = 200;
        cfg.records_per_sec = 2.0;
        cfg.interval_secs = 60;
        TrafficGenerator::new(cfg)
    }

    #[test]
    fn dos_adds_configured_volume() {
        let mut g = generator();
        let ev = AnomalyEvent {
            kind: AnomalyKind::DosAttack { byte_rate: 1_000_000.0, flows: 50 },
            victim_rank: 3,
            start_interval: 2,
            duration: 2,
        };
        let inj = AnomalyInjector::new(vec![ev], 5);
        let victim = g.dst_ip_of_rank(3);

        let mut quiet = g.interval_records(1);
        assert!(inj.apply(&g, 1, &mut quiet).is_empty());

        let mut hot = g.interval_records(2);
        let baseline: u64 = hot.iter().filter(|r| r.dst_ip == victim).map(|r| r.bytes).sum();
        let touched = inj.apply(&g, 2, &mut hot);
        assert!(touched.contains(&(victim as u64)));
        let after: u64 = hot.iter().filter(|r| r.dst_ip == victim).map(|r| r.bytes).sum();
        let added = after - baseline;
        assert!((added as f64 - 1_000_000.0).abs() < 10_000.0, "added {added} bytes");
    }

    #[test]
    fn flash_crowd_ramps_linearly() {
        let mut g = generator();
        let ev = AnomalyEvent {
            kind: AnomalyKind::FlashCrowd { peak_byte_rate: 800_000.0, flows: 40 },
            victim_rank: 150, // quiet destination
            start_interval: 0,
            duration: 4,
        };
        let inj = AnomalyInjector::new(vec![ev], 6);
        let victim = g.dst_ip_of_rank(150);
        let volume_at = |g: &mut TrafficGenerator, t: usize| -> u64 {
            let mut rs = g.interval_records(t);
            inj.apply(g, t, &mut rs);
            rs.iter().filter(|r| r.dst_ip == victim).map(|r| r.bytes).sum()
        };
        let v0 = volume_at(&mut g, 0);
        let v3 = volume_at(&mut g, 3);
        // Final interval carries the full peak; the first carries ~1/4.
        assert!(v3 > 3 * v0, "ramp not increasing: v0={v0}, v3={v3}");
        assert!((v3 as f64 - 800_000.0).abs() < 80_000.0, "v3 = {v3}");
    }

    #[test]
    fn outage_removes_all_victim_traffic() {
        let mut g = generator();
        let ev = AnomalyEvent {
            kind: AnomalyKind::Outage,
            victim_rank: 0, // the busiest destination
            start_interval: 1,
            duration: 1,
        };
        let inj = AnomalyInjector::new(vec![ev], 7);
        let victim = g.dst_ip_of_rank(0);
        let mut records = g.interval_records(1);
        assert!(records.iter().any(|r| r.dst_ip == victim), "victim has baseline");
        inj.apply(&g, 1, &mut records);
        assert!(records.iter().all(|r| r.dst_ip != victim));
    }

    #[test]
    fn scan_touches_width_keys() {
        let mut g = generator();
        let ev = AnomalyEvent {
            kind: AnomalyKind::Scan { width: 25, probe_bytes: 60 },
            victim_rank: 50,
            start_interval: 0,
            duration: 1,
        };
        let inj = AnomalyInjector::new(vec![ev], 8);
        let mut records = g.interval_records(0);
        let touched = inj.apply(&g, 0, &mut records);
        assert_eq!(touched.len(), 25);
    }

    #[test]
    fn labeled_trace_records_ground_truth() {
        let mut g = generator();
        let ev = AnomalyEvent {
            kind: AnomalyKind::DosAttack { byte_rate: 100_000.0, flows: 10 },
            victim_rank: 4,
            start_interval: 3,
            duration: 2,
        };
        let inj = AnomalyInjector::new(vec![ev], 9);
        let (trace, truth) = inj.labeled_trace(&mut g, 6);
        assert_eq!(trace.len(), 6);
        let victim = g.dst_ip_of_rank(4) as u64;
        assert!(truth.is_anomalous(3, victim));
        assert!(truth.is_anomalous(4, victim));
        assert!(!truth.is_anomalous(2, victim));
        assert!(!truth.is_anomalous(5, victim));
        assert_eq!(truth.len(), 2);
    }

    #[test]
    fn event_activity_window() {
        let ev = AnomalyEvent {
            kind: AnomalyKind::Outage,
            victim_rank: 0,
            start_interval: 5,
            duration: 3,
        };
        assert!(!ev.active_at(4));
        assert!(ev.active_at(5));
        assert!(ev.active_at(7));
        assert!(!ev.active_at(8));
    }
}
