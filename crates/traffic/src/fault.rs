//! Fault injection for exercising the fault-tolerance layer.
//!
//! Testing crash recovery honestly requires crashing: [`FaultPlan`] is a
//! deterministic schedule of one-shot faults — panic at the Nth record,
//! stall for a while — that the streaming detector consults once per
//! record when a plan is installed. Each fault fires exactly once, so a
//! supervisor that restarts the detector is not immediately re-killed by
//! the same trigger (restarts replay record counts from the last
//! checkpoint).
//!
//! [`Corruptor`] is the storage-side counterpart: a seeded source of
//! single-byte flips for proving that every persisted format (sketch
//! wire, trace files, checkpoints) turns arbitrary corruption into a
//! typed error instead of a panic or silent misreads.

use scd_hash::SplitMix64;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One scheduled fault.
#[derive(Debug)]
struct Fault {
    /// Fires on the first record whose 1-based index is ≥ `at`.
    at: u64,
    kind: FaultKind,
    fired: AtomicBool,
}

/// What a fault does when it fires.
#[derive(Debug, Clone)]
pub enum FaultKind {
    /// Panic with this message (exercises supervision).
    Panic(String),
    /// Sleep this long (exercises overload policies and backpressure).
    Stall(Duration),
}

/// A deterministic, shareable schedule of one-shot faults.
///
/// Cloning shares the schedule — the fired flags are common to all
/// clones, preserving the fire-exactly-once guarantee across the restart
/// boundary.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Arc<Vec<Fault>>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan that panics once, at the `at`-th record (1-based).
    pub fn panic_at(at: u64, message: &str) -> Self {
        FaultPlan::none().and_panic_at(at, message)
    }

    /// A plan that stalls once, at the `at`-th record (1-based).
    pub fn stall_at(at: u64, pause: Duration) -> Self {
        FaultPlan::none().and_stall_at(at, pause)
    }

    /// Adds a one-shot panic to the schedule.
    pub fn and_panic_at(self, at: u64, message: &str) -> Self {
        self.push(at, FaultKind::Panic(message.to_string()))
    }

    /// Adds a one-shot stall to the schedule.
    pub fn and_stall_at(self, at: u64, pause: Duration) -> Self {
        self.push(at, FaultKind::Stall(pause))
    }

    fn push(self, at: u64, kind: FaultKind) -> Self {
        let mut faults: Vec<Fault> = Arc::try_unwrap(self.faults).unwrap_or_else(|arc| {
            arc.iter()
                .map(|f| Fault {
                    at: f.at,
                    kind: f.kind.clone(),
                    fired: AtomicBool::new(f.fired.load(Ordering::Relaxed)),
                })
                .collect()
        });
        faults.push(Fault { at, kind, fired: AtomicBool::new(false) });
        FaultPlan { faults: Arc::new(faults) }
    }

    /// Called by the consumer before processing its `n`-th record
    /// (1-based). Triggers every not-yet-fired fault whose threshold has
    /// been reached: stalls sleep, panics panic.
    pub fn before_record(&self, n: u64) {
        for fault in self.faults.iter() {
            if n >= fault.at && !fault.fired.swap(true, Ordering::SeqCst) {
                match &fault.kind {
                    FaultKind::Stall(pause) => std::thread::sleep(*pause),
                    FaultKind::Panic(message) => {
                        panic!("injected fault: {message}")
                    }
                }
            }
        }
    }

    /// True if every scheduled fault has fired.
    pub fn exhausted(&self) -> bool {
        self.faults.iter().all(|f| f.fired.load(Ordering::Relaxed))
    }
}

/// What a network fault does to the frame it targets.
///
/// These model the failure modes of a real collector link that a
/// CRC-guarded, ack/resend protocol must survive: lost frames, duplicated
/// frames, bit-rot in flight, connections cut mid-frame, and stalls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetFaultKind {
    /// The frame is silently discarded (never written to the socket).
    DropFrame,
    /// The frame is written twice back to back.
    DuplicateFrame,
    /// One byte of the frame is flipped before writing (the receiver's
    /// CRC must catch it). The seed makes the flip position reproducible.
    CorruptByte {
        /// Seed for the deterministic byte/bit choice.
        seed: u64,
    },
    /// Only a prefix of the frame is written, then the connection is
    /// closed — the receiver sees a torn frame and an EOF.
    TruncateAndClose {
        /// Bytes of the frame to write before closing.
        keep: usize,
    },
    /// The frame is written after this pause (exercises grace windows
    /// and deadline tracking).
    Delay(Duration),
}

/// One scheduled network fault.
#[derive(Debug)]
struct NetFault {
    /// Fires on the first frame whose 1-based send index is ≥ `at`.
    at: u64,
    kind: NetFaultKind,
    fired: AtomicBool,
}

/// A deterministic, shareable schedule of one-shot frame faults —
/// [`FaultPlan`]'s counterpart for the wire. The sender consults
/// [`action_for`](NetFaultPlan::action_for) once per frame write; each
/// fault fires exactly once (resends after the induced reconnect are not
/// re-killed by the same trigger). Clones share the fired flags.
#[derive(Debug, Clone, Default)]
pub struct NetFaultPlan {
    faults: Arc<Vec<NetFault>>,
}

impl NetFaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        NetFaultPlan::default()
    }

    /// Adds a one-shot frame drop at the `at`-th frame (1-based).
    pub fn and_drop_at(self, at: u64) -> Self {
        self.push(at, NetFaultKind::DropFrame)
    }

    /// Adds a one-shot frame duplication.
    pub fn and_duplicate_at(self, at: u64) -> Self {
        self.push(at, NetFaultKind::DuplicateFrame)
    }

    /// Adds a one-shot single-byte corruption with a deterministic seed.
    pub fn and_corrupt_at(self, at: u64, seed: u64) -> Self {
        self.push(at, NetFaultKind::CorruptByte { seed })
    }

    /// Adds a one-shot truncate-and-close (write `keep` bytes, then cut).
    pub fn and_truncate_at(self, at: u64, keep: usize) -> Self {
        self.push(at, NetFaultKind::TruncateAndClose { keep })
    }

    /// Adds a one-shot delayed send.
    pub fn and_delay_at(self, at: u64, pause: Duration) -> Self {
        self.push(at, NetFaultKind::Delay(pause))
    }

    fn push(self, at: u64, kind: NetFaultKind) -> Self {
        let mut faults: Vec<NetFault> = Arc::try_unwrap(self.faults).unwrap_or_else(|arc| {
            arc.iter()
                .map(|f| NetFault {
                    at: f.at,
                    kind: f.kind,
                    fired: AtomicBool::new(f.fired.load(Ordering::Relaxed)),
                })
                .collect()
        });
        faults.push(NetFault { at, kind, fired: AtomicBool::new(false) });
        NetFaultPlan { faults: Arc::new(faults) }
    }

    /// Parses a comma-separated schedule: `drop:N`, `dup:N`,
    /// `corrupt:N[:SEED]`, `trunc:N[:KEEP]`, `delay:N:MS`. Frame indices
    /// are 1-based. Example: `drop:3,corrupt:7,dup:11`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = NetFaultPlan::none();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let fields: Vec<&str> = part.split(':').collect();
            let parse_at = |s: &str| {
                s.parse::<u64>().map_err(|_| format!("bad frame index in fault '{part}'"))
            };
            plan = match fields.as_slice() {
                ["drop", at] => plan.and_drop_at(parse_at(at)?),
                ["dup", at] => plan.and_duplicate_at(parse_at(at)?),
                ["corrupt", at] => plan.and_corrupt_at(parse_at(at)?, 0xC0DE),
                ["corrupt", at, seed] => {
                    let seed = seed.parse().map_err(|_| format!("bad corrupt seed in '{part}'"))?;
                    plan.and_corrupt_at(parse_at(at)?, seed)
                }
                ["trunc", at] => plan.and_truncate_at(parse_at(at)?, 5),
                ["trunc", at, keep] => {
                    let keep =
                        keep.parse().map_err(|_| format!("bad truncate length in '{part}'"))?;
                    plan.and_truncate_at(parse_at(at)?, keep)
                }
                ["delay", at, ms] => {
                    let ms: u64 = ms.parse().map_err(|_| format!("bad delay in '{part}'"))?;
                    plan.and_delay_at(parse_at(at)?, Duration::from_millis(ms))
                }
                _ => return Err(format!("unknown fault spec '{part}'")),
            };
        }
        Ok(plan)
    }

    /// Called by the sender before writing its `n`-th frame (1-based).
    /// Returns the action for the first not-yet-fired fault whose
    /// threshold has been reached, marking it fired — at most one fault
    /// per frame (a second fault due at the same index fires on the next
    /// frame).
    pub fn action_for(&self, n: u64) -> Option<NetFaultKind> {
        for fault in self.faults.iter() {
            if n >= fault.at && !fault.fired.swap(true, Ordering::SeqCst) {
                return Some(fault.kind);
            }
        }
        None
    }

    /// True if every scheduled fault has fired.
    pub fn exhausted(&self) -> bool {
        self.faults.iter().all(|f| f.fired.load(Ordering::Relaxed))
    }
}

/// Deterministic single-byte corrupter for persisted-format tests.
#[derive(Debug)]
pub struct Corruptor {
    rng: SplitMix64,
}

impl Corruptor {
    /// A corrupter with a fixed seed (reproducible failures).
    pub fn new(seed: u64) -> Self {
        Corruptor { rng: SplitMix64::new(seed) }
    }

    /// Flips one random bit of one random byte in place; returns the
    /// position and the XOR mask applied, for error messages.
    pub fn flip_one_byte(&mut self, data: &mut [u8]) -> (usize, u8) {
        assert!(!data.is_empty(), "cannot corrupt an empty buffer");
        let pos = self.rng.next_below(data.len() as u64) as usize;
        let mask = 1u8 << self.rng.next_below(8);
        data[pos] ^= mask;
        (pos, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_fault_fires_exactly_once() {
        let plan = FaultPlan::panic_at(3, "boom");
        plan.before_record(1);
        plan.before_record(2);
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.before_record(3)));
        assert!(caught.is_err(), "fault should panic at record 3");
        // Fired: later records (including replays after restart) pass.
        plan.before_record(3);
        plan.before_record(4);
        assert!(plan.exhausted());
    }

    #[test]
    fn threshold_crossing_fires_even_if_exact_index_skipped() {
        let plan = FaultPlan::panic_at(10, "boom");
        // The consumer jumps from 5 straight to 12 (e.g. sampling).
        plan.before_record(5);
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.before_record(12)));
        assert!(caught.is_err());
    }

    #[test]
    fn clones_share_fired_state() {
        let plan = FaultPlan::panic_at(1, "boom");
        let clone = plan.clone();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.before_record(1)));
        clone.before_record(1); // must not panic again
        assert!(clone.exhausted());
    }

    #[test]
    fn stall_fault_sleeps_once() {
        let plan = FaultPlan::stall_at(1, Duration::from_millis(30));
        let start = std::time::Instant::now();
        plan.before_record(1);
        assert!(start.elapsed() >= Duration::from_millis(25));
        let again = std::time::Instant::now();
        plan.before_record(2);
        assert!(again.elapsed() < Duration::from_millis(25));
    }

    #[test]
    fn net_plan_fires_each_fault_once_in_schedule_order() {
        let plan = NetFaultPlan::none().and_drop_at(2).and_corrupt_at(2, 7).and_duplicate_at(5);
        assert_eq!(plan.action_for(1), None);
        // Two faults due at frame 2: one per call, schedule order.
        assert_eq!(plan.action_for(2), Some(NetFaultKind::DropFrame));
        assert_eq!(plan.action_for(3), Some(NetFaultKind::CorruptByte { seed: 7 }));
        assert_eq!(plan.action_for(4), None);
        // Threshold semantics: index 6 still triggers the fault due at 5.
        assert_eq!(plan.action_for(6), Some(NetFaultKind::DuplicateFrame));
        assert!(plan.exhausted());
        assert_eq!(plan.action_for(7), None);
    }

    #[test]
    fn net_plan_clones_share_fired_state() {
        let plan = NetFaultPlan::none().and_drop_at(1);
        let clone = plan.clone();
        assert_eq!(plan.action_for(1), Some(NetFaultKind::DropFrame));
        assert_eq!(clone.action_for(1), None);
        assert!(clone.exhausted());
    }

    #[test]
    fn net_plan_parses_specs() {
        let plan = NetFaultPlan::parse("drop:3,dup:7,corrupt:9:42,trunc:11:6,delay:13:25").unwrap();
        assert_eq!(plan.action_for(3), Some(NetFaultKind::DropFrame));
        assert_eq!(plan.action_for(7), Some(NetFaultKind::DuplicateFrame));
        assert_eq!(plan.action_for(9), Some(NetFaultKind::CorruptByte { seed: 42 }));
        assert_eq!(plan.action_for(11), Some(NetFaultKind::TruncateAndClose { keep: 6 }));
        assert_eq!(plan.action_for(13), Some(NetFaultKind::Delay(Duration::from_millis(25))));
        assert!(NetFaultPlan::parse("explode:1").is_err());
        assert!(NetFaultPlan::parse("drop:x").is_err());
        assert!(NetFaultPlan::parse("").unwrap().exhausted());
    }

    #[test]
    fn corruptor_changes_exactly_one_byte() {
        let original = vec![0u8; 64];
        let mut c = Corruptor::new(7);
        for _ in 0..20 {
            let mut data = original.clone();
            let (pos, mask) = c.flip_one_byte(&mut data);
            let diffs: Vec<usize> = (0..64).filter(|&i| data[i] != original[i]).collect();
            assert_eq!(diffs, vec![pos]);
            assert_eq!(data[pos] ^ original[pos], mask);
        }
    }
}
