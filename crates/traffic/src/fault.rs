//! Fault injection for exercising the fault-tolerance layer.
//!
//! Testing crash recovery honestly requires crashing: [`FaultPlan`] is a
//! deterministic schedule of one-shot faults — panic at the Nth record,
//! stall for a while — that the streaming detector consults once per
//! record when a plan is installed. Each fault fires exactly once, so a
//! supervisor that restarts the detector is not immediately re-killed by
//! the same trigger (restarts replay record counts from the last
//! checkpoint).
//!
//! [`Corruptor`] is the storage-side counterpart: a seeded source of
//! single-byte flips for proving that every persisted format (sketch
//! wire, trace files, checkpoints) turns arbitrary corruption into a
//! typed error instead of a panic or silent misreads.

use scd_hash::SplitMix64;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One scheduled fault.
#[derive(Debug)]
struct Fault {
    /// Fires on the first record whose 1-based index is ≥ `at`.
    at: u64,
    kind: FaultKind,
    fired: AtomicBool,
}

/// What a fault does when it fires.
#[derive(Debug, Clone)]
pub enum FaultKind {
    /// Panic with this message (exercises supervision).
    Panic(String),
    /// Sleep this long (exercises overload policies and backpressure).
    Stall(Duration),
}

/// A deterministic, shareable schedule of one-shot faults.
///
/// Cloning shares the schedule — the fired flags are common to all
/// clones, preserving the fire-exactly-once guarantee across the restart
/// boundary.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Arc<Vec<Fault>>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan that panics once, at the `at`-th record (1-based).
    pub fn panic_at(at: u64, message: &str) -> Self {
        FaultPlan::none().and_panic_at(at, message)
    }

    /// A plan that stalls once, at the `at`-th record (1-based).
    pub fn stall_at(at: u64, pause: Duration) -> Self {
        FaultPlan::none().and_stall_at(at, pause)
    }

    /// Adds a one-shot panic to the schedule.
    pub fn and_panic_at(self, at: u64, message: &str) -> Self {
        self.push(at, FaultKind::Panic(message.to_string()))
    }

    /// Adds a one-shot stall to the schedule.
    pub fn and_stall_at(self, at: u64, pause: Duration) -> Self {
        self.push(at, FaultKind::Stall(pause))
    }

    fn push(self, at: u64, kind: FaultKind) -> Self {
        let mut faults: Vec<Fault> = Arc::try_unwrap(self.faults).unwrap_or_else(|arc| {
            arc.iter()
                .map(|f| Fault {
                    at: f.at,
                    kind: f.kind.clone(),
                    fired: AtomicBool::new(f.fired.load(Ordering::Relaxed)),
                })
                .collect()
        });
        faults.push(Fault { at, kind, fired: AtomicBool::new(false) });
        FaultPlan { faults: Arc::new(faults) }
    }

    /// Called by the consumer before processing its `n`-th record
    /// (1-based). Triggers every not-yet-fired fault whose threshold has
    /// been reached: stalls sleep, panics panic.
    pub fn before_record(&self, n: u64) {
        for fault in self.faults.iter() {
            if n >= fault.at && !fault.fired.swap(true, Ordering::SeqCst) {
                match &fault.kind {
                    FaultKind::Stall(pause) => std::thread::sleep(*pause),
                    FaultKind::Panic(message) => {
                        panic!("injected fault: {message}")
                    }
                }
            }
        }
    }

    /// True if every scheduled fault has fired.
    pub fn exhausted(&self) -> bool {
        self.faults.iter().all(|f| f.fired.load(Ordering::Relaxed))
    }
}

/// Deterministic single-byte corrupter for persisted-format tests.
#[derive(Debug)]
pub struct Corruptor {
    rng: SplitMix64,
}

impl Corruptor {
    /// A corrupter with a fixed seed (reproducible failures).
    pub fn new(seed: u64) -> Self {
        Corruptor { rng: SplitMix64::new(seed) }
    }

    /// Flips one random bit of one random byte in place; returns the
    /// position and the XOR mask applied, for error messages.
    pub fn flip_one_byte(&mut self, data: &mut [u8]) -> (usize, u8) {
        assert!(!data.is_empty(), "cannot corrupt an empty buffer");
        let pos = self.rng.next_below(data.len() as u64) as usize;
        let mask = 1u8 << self.rng.next_below(8);
        data[pos] ^= mask;
        (pos, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_fault_fires_exactly_once() {
        let plan = FaultPlan::panic_at(3, "boom");
        plan.before_record(1);
        plan.before_record(2);
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.before_record(3)));
        assert!(caught.is_err(), "fault should panic at record 3");
        // Fired: later records (including replays after restart) pass.
        plan.before_record(3);
        plan.before_record(4);
        assert!(plan.exhausted());
    }

    #[test]
    fn threshold_crossing_fires_even_if_exact_index_skipped() {
        let plan = FaultPlan::panic_at(10, "boom");
        // The consumer jumps from 5 straight to 12 (e.g. sampling).
        plan.before_record(5);
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.before_record(12)));
        assert!(caught.is_err());
    }

    #[test]
    fn clones_share_fired_state() {
        let plan = FaultPlan::panic_at(1, "boom");
        let clone = plan.clone();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.before_record(1)));
        clone.before_record(1); // must not panic again
        assert!(clone.exhausted());
    }

    #[test]
    fn stall_fault_sleeps_once() {
        let plan = FaultPlan::stall_at(1, Duration::from_millis(30));
        let start = std::time::Instant::now();
        plan.before_record(1);
        assert!(start.elapsed() >= Duration::from_millis(25));
        let again = std::time::Instant::now();
        plan.before_record(2);
        assert!(again.elapsed() < Duration::from_millis(25));
    }

    #[test]
    fn corruptor_changes_exactly_one_byte() {
        let original = vec![0u8; 64];
        let mut c = Corruptor::new(7);
        for _ in 0..20 {
            let mut data = original.clone();
            let (pos, mask) = c.flip_one_byte(&mut data);
            let diffs: Vec<usize> = (0..64).filter(|&i| data[i] != original[i]).collect();
            assert_eq!(diffs, vec![pos]);
            assert_eq!(data[pos] ^ original[pos], mask);
        }
    }
}
