//! Raw packet-header parsing: Ethernet II / IPv4 / TCP+UDP.
//!
//! §2.1 defines updates as "the size of a packet, the total bytes or
//! packets in a flow (when flow-level data is available)". Flow records
//! cover the latter; this module covers the former, so the sketch pipeline
//! can sit directly on a packet feed (pcap, raw socket, mirror port)
//! without a flow exporter in front. Parsing is allocation-free and
//! zero-copy over the input slice; malformed input yields a structured
//! error, never a panic (`#![forbid(unsafe_code)]` plus explicit bounds
//! checks everywhere).
//!
//! Scope is deliberately the headers the change detector keys on
//! (addresses, ports, protocol, lengths). Options are skipped by their
//! declared lengths; IPv6, VLAN tags and tunnels are out of scope and
//! reported as [`PacketError::Unsupported`].

/// Summary of one parsed packet: exactly the fields the Turnstile-model
/// keys and values are built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketSummary {
    /// IPv4 source address.
    pub src_ip: u32,
    /// IPv4 destination address.
    pub dst_ip: u32,
    /// Transport source port (0 for non-TCP/UDP).
    pub src_port: u16,
    /// Transport destination port (0 for non-TCP/UDP).
    pub dst_port: u16,
    /// IP protocol number.
    pub protocol: u8,
    /// Total packet length from the IP header (the §2.1 "size of a
    /// packet" update value).
    pub total_length: u16,
}

/// Parse failures. Each names the layer that was malformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// Frame shorter than an Ethernet II header.
    TruncatedEthernet,
    /// EtherType is not IPv4 (VLAN/IPv6/ARP/...).
    Unsupported {
        /// The EtherType found.
        ethertype: u16,
    },
    /// IP header incomplete or shorter than its own IHL claims.
    TruncatedIp,
    /// Not IPv4 (version nibble != 4).
    NotIpv4 {
        /// The version nibble found.
        version: u8,
    },
    /// IHL below the minimum of 5 words.
    BadIhl {
        /// The IHL found.
        ihl: u8,
    },
    /// IPv4 header checksum mismatch.
    BadChecksum {
        /// Checksum computed over the header.
        computed: u16,
        /// Checksum stored in the header.
        stored: u16,
    },
    /// TCP/UDP header extends past the frame.
    TruncatedTransport,
}

impl std::fmt::Display for PacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PacketError::TruncatedEthernet => write!(f, "frame shorter than Ethernet header"),
            PacketError::Unsupported { ethertype } => {
                write!(f, "unsupported EtherType {ethertype:#06x}")
            }
            PacketError::TruncatedIp => write!(f, "truncated IPv4 header"),
            PacketError::NotIpv4 { version } => write!(f, "IP version {version} is not 4"),
            PacketError::BadIhl { ihl } => write!(f, "IPv4 IHL {ihl} below minimum 5"),
            PacketError::BadChecksum { computed, stored } => {
                write!(f, "IPv4 checksum mismatch: computed {computed:#06x}, stored {stored:#06x}")
            }
            PacketError::TruncatedTransport => write!(f, "truncated TCP/UDP header"),
        }
    }
}

impl std::error::Error for PacketError {}

const ETHERTYPE_IPV4: u16 = 0x0800;
const ETH_HEADER_LEN: usize = 14;

#[inline]
fn be16(b: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([b[off], b[off + 1]])
}

#[inline]
fn be32(b: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])
}

/// RFC 1071 ones-complement checksum over a header slice.
pub fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut i = 0;
    while i + 1 < header.len() {
        // Skip the checksum field itself (bytes 10-11).
        if i != 10 {
            sum += be16(header, i) as u32;
        }
        i += 2;
    }
    if i < header.len() {
        sum += (header[i] as u32) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Parses an Ethernet II frame carrying IPv4.
pub fn parse_ethernet(frame: &[u8]) -> Result<PacketSummary, PacketError> {
    if frame.len() < ETH_HEADER_LEN {
        return Err(PacketError::TruncatedEthernet);
    }
    let ethertype = be16(frame, 12);
    if ethertype != ETHERTYPE_IPV4 {
        return Err(PacketError::Unsupported { ethertype });
    }
    parse_ipv4(&frame[ETH_HEADER_LEN..])
}

/// Parses an IPv4 packet (starting at the IP header), verifying the header
/// checksum.
pub fn parse_ipv4(packet: &[u8]) -> Result<PacketSummary, PacketError> {
    if packet.len() < 20 {
        return Err(PacketError::TruncatedIp);
    }
    let version = packet[0] >> 4;
    if version != 4 {
        return Err(PacketError::NotIpv4 { version });
    }
    let ihl = packet[0] & 0x0F;
    if ihl < 5 {
        return Err(PacketError::BadIhl { ihl });
    }
    let header_len = ihl as usize * 4;
    if packet.len() < header_len {
        return Err(PacketError::TruncatedIp);
    }
    let header = &packet[..header_len];
    let stored = be16(header, 10);
    let computed = ipv4_checksum(header);
    if computed != stored {
        return Err(PacketError::BadChecksum { computed, stored });
    }

    let total_length = be16(packet, 2);
    let protocol = packet[9];
    let src_ip = be32(packet, 12);
    let dst_ip = be32(packet, 16);

    // Ports only for unfragmented-first TCP (6) / UDP (17) segments.
    let fragment_offset = be16(packet, 6) & 0x1FFF;
    let (src_port, dst_port) = if fragment_offset == 0 && (protocol == 6 || protocol == 17) {
        let transport = &packet[header_len..];
        if transport.len() < 4 {
            return Err(PacketError::TruncatedTransport);
        }
        (be16(transport, 0), be16(transport, 2))
    } else {
        (0, 0)
    };

    Ok(PacketSummary { src_ip, dst_ip, src_port, dst_port, protocol, total_length })
}

impl PacketSummary {
    /// The `(key, value)` update under a key spec, with value = packet
    /// size (the §2.1 per-packet update).
    pub fn to_update(&self, key: crate::record::KeySpec) -> (u64, f64) {
        use crate::record::KeySpec;
        let key = match key {
            KeySpec::DstIp => self.dst_ip as u64,
            KeySpec::SrcIp => self.src_ip as u64,
            KeySpec::SrcDstPair => ((self.src_ip as u64) << 32) | self.dst_ip as u64,
            KeySpec::DstIpPort => ((self.dst_ip as u64) << 16) | self.dst_port as u64,
            KeySpec::DstPrefix(len) => {
                let len = len.min(32);
                if len == 0 {
                    0
                } else {
                    (self.dst_ip >> (32 - len)) as u64
                }
            }
        };
        (key, self.total_length as f64)
    }
}

/// Test/bench helper: builds a syntactically valid Ethernet+IPv4+TCP frame.
pub fn build_frame(
    src_ip: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
    protocol: u8,
    payload_len: usize,
) -> Vec<u8> {
    let ip_header_len = 20usize;
    let transport_len = 8usize; // enough for ports + stub
    let total = ip_header_len + transport_len + payload_len;
    let mut f = Vec::with_capacity(ETH_HEADER_LEN + total);
    // Ethernet: dst, src MAC (dummy), EtherType.
    f.extend_from_slice(&[0x02, 0, 0, 0, 0, 1]);
    f.extend_from_slice(&[0x02, 0, 0, 0, 0, 2]);
    f.extend_from_slice(&ETHERTYPE_IPV4.to_be_bytes());
    // IPv4 header.
    let mut ip = vec![0u8; ip_header_len];
    ip[0] = 0x45; // version 4, IHL 5
    ip[2..4].copy_from_slice(&(total as u16).to_be_bytes());
    ip[8] = 64; // TTL
    ip[9] = protocol;
    ip[12..16].copy_from_slice(&src_ip.to_be_bytes());
    ip[16..20].copy_from_slice(&dst_ip.to_be_bytes());
    let csum = ipv4_checksum(&ip);
    ip[10..12].copy_from_slice(&csum.to_be_bytes());
    f.extend_from_slice(&ip);
    // Transport stub: ports + zeros.
    f.extend_from_slice(&src_port.to_be_bytes());
    f.extend_from_slice(&dst_port.to_be_bytes());
    f.extend_from_slice(&[0u8; 4]);
    f.resize(f.len() + payload_len, 0u8);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::KeySpec;

    #[test]
    fn parses_well_formed_tcp_frame() {
        let frame = build_frame(0x0A000001, 0xC0A80102, 443, 51000, 6, 100);
        let p = parse_ethernet(&frame).unwrap();
        assert_eq!(p.src_ip, 0x0A000001);
        assert_eq!(p.dst_ip, 0xC0A80102);
        assert_eq!(p.src_port, 443);
        assert_eq!(p.dst_port, 51000);
        assert_eq!(p.protocol, 6);
        assert_eq!(p.total_length, 128); // 20 + 8 + 100
    }

    #[test]
    fn udp_and_other_protocols() {
        let udp = build_frame(1, 2, 53, 9999, 17, 40);
        assert_eq!(parse_ethernet(&udp).unwrap().src_port, 53);
        // ICMP: no ports expected.
        let icmp = build_frame(1, 2, 0, 0, 1, 8);
        let p = parse_ethernet(&icmp).unwrap();
        assert_eq!((p.src_port, p.dst_port), (0, 0));
        assert_eq!(p.protocol, 1);
    }

    #[test]
    fn rejects_corruption_at_every_layer() {
        let frame = build_frame(1, 2, 80, 81, 6, 10);
        // Truncated Ethernet.
        assert_eq!(parse_ethernet(&frame[..10]), Err(PacketError::TruncatedEthernet));
        // Wrong EtherType.
        let mut arp = frame.clone();
        arp[12..14].copy_from_slice(&0x0806u16.to_be_bytes());
        assert!(matches!(
            parse_ethernet(&arp),
            Err(PacketError::Unsupported { ethertype: 0x0806 })
        ));
        // Truncated IP.
        assert_eq!(parse_ethernet(&frame[..20]), Err(PacketError::TruncatedIp));
        // Bad version.
        let mut v6 = frame.clone();
        v6[14] = 0x65;
        assert!(matches!(parse_ethernet(&v6), Err(PacketError::NotIpv4 { version: 6 })));
        // Bad IHL.
        let mut ihl = frame.clone();
        ihl[14] = 0x42;
        assert!(matches!(parse_ethernet(&ihl), Err(PacketError::BadIhl { ihl: 2 })));
        // Flipped checksum bit.
        let mut bad = frame.clone();
        bad[14 + 15] ^= 1; // inside the IP header, not the checksum field
        assert!(matches!(parse_ethernet(&bad), Err(PacketError::BadChecksum { .. })));
        // Transport cut off.
        let cut = &frame[..14 + 20 + 2];
        assert_eq!(parse_ethernet(cut), Err(PacketError::TruncatedTransport));
    }

    #[test]
    fn checksum_round_trip() {
        let frame = build_frame(0xDEADBEEF, 0x01020304, 1, 2, 6, 0);
        let header = &frame[14..34];
        assert_eq!(ipv4_checksum(header), be16(header, 10));
    }

    #[test]
    fn fragments_skip_port_parsing() {
        let mut frame = build_frame(1, 2, 80, 81, 6, 10);
        // Set a nonzero fragment offset and refresh the checksum.
        frame[14 + 6] = 0x00;
        frame[14 + 7] = 0x10; // offset 16
        let csum = {
            let mut h = frame[14..34].to_vec();
            h[10] = 0;
            h[11] = 0;
            ipv4_checksum(&h)
        };
        frame[14 + 10..14 + 12].copy_from_slice(&csum.to_be_bytes());
        let p = parse_ethernet(&frame).unwrap();
        assert_eq!((p.src_port, p.dst_port), (0, 0), "fragments carry no ports");
    }

    #[test]
    fn ihl_with_options_is_honored() {
        // Build a 24-byte IP header (IHL 6) by hand.
        let mut ip = vec![0u8; 24];
        ip[0] = 0x46;
        ip[2..4].copy_from_slice(&32u16.to_be_bytes());
        ip[9] = 17;
        ip[12..16].copy_from_slice(&7u32.to_be_bytes());
        ip[16..20].copy_from_slice(&9u32.to_be_bytes());
        let csum = ipv4_checksum(&ip);
        ip[10..12].copy_from_slice(&csum.to_be_bytes());
        let mut pkt = ip;
        pkt.extend_from_slice(&123u16.to_be_bytes()); // src port after options
        pkt.extend_from_slice(&456u16.to_be_bytes());
        pkt.extend_from_slice(&[0; 4]);
        let p = parse_ipv4(&pkt).unwrap();
        assert_eq!(p.src_port, 123);
        assert_eq!(p.dst_port, 456);
    }

    #[test]
    fn update_projection_uses_packet_size() {
        let frame = build_frame(0x0A000001, 0xC0A80102, 1, 2, 6, 50);
        let p = parse_ethernet(&frame).unwrap();
        let (key, value) = p.to_update(KeySpec::DstIp);
        assert_eq!(key, 0xC0A80102);
        assert_eq!(value, 78.0); // 20 + 8 + 50
        let (pk, _) = p.to_update(KeySpec::DstPrefix(16));
        assert_eq!(pk, 0xC0A8);
    }

    #[test]
    fn parser_never_panics_on_noise() {
        // Feed pseudo-random garbage of many lengths: errors only.
        let mut state = 0x9E3779B97F4A7C15u64;
        for len in 0..200usize {
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                *b = state as u8;
            }
            let _ = parse_ethernet(&buf);
            let _ = parse_ipv4(&buf);
        }
    }
}
