//! Flow records and their projection to `(key, value)` update streams.
//!
//! The paper's Turnstile-model instantiation (§2.1): "the key can be
//! defined using one or more fields in packet headers such as source and
//! destination IP addresses, source and destination port numbers, protocol
//! number etc. … The update can be the size of a packet, the total bytes or
//! packets in a flow". The experiments use destination IP and bytes; both
//! axes are configurable here.

/// One netflow-style record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecord {
    /// Flow start time, milliseconds since trace start.
    pub timestamp_ms: u64,
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// IP protocol number (6 = TCP, 17 = UDP, …).
    pub protocol: u8,
    /// Total bytes in the flow.
    pub bytes: u64,
    /// Total packets in the flow.
    pub packets: u32,
}

/// Which header fields form the stream key (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeySpec {
    /// Destination IP address — the key used throughout the paper's
    /// experiments.
    DstIp,
    /// Source IP address.
    SrcIp,
    /// (source IP, destination IP) pair, packed into 64 bits.
    SrcDstPair,
    /// (destination IP, destination port) pair — finer-grained service key.
    DstIpPort,
    /// Destination network prefix of the given length (higher aggregation).
    DstPrefix(
        /// Prefix length in bits, 0–32.
        u8,
    ),
}

/// Which field is the update value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueSpec {
    /// Bytes per flow — the value used throughout the paper's experiments.
    Bytes,
    /// Packets per flow.
    Packets,
    /// Each record counts 1 (connection counting).
    Count,
}

impl KeySpec {
    /// Extracts the key from a record.
    #[inline]
    pub fn key_of(&self, r: &FlowRecord) -> u64 {
        match *self {
            KeySpec::DstIp => r.dst_ip as u64,
            KeySpec::SrcIp => r.src_ip as u64,
            KeySpec::SrcDstPair => ((r.src_ip as u64) << 32) | r.dst_ip as u64,
            KeySpec::DstIpPort => ((r.dst_ip as u64) << 16) | r.dst_port as u64,
            KeySpec::DstPrefix(len) => {
                let len = len.min(32);
                if len == 0 {
                    0
                } else {
                    (r.dst_ip >> (32 - len)) as u64
                }
            }
        }
    }
}

impl ValueSpec {
    /// Extracts the update value from a record.
    #[inline]
    pub fn value_of(&self, r: &FlowRecord) -> f64 {
        match self {
            ValueSpec::Bytes => r.bytes as f64,
            ValueSpec::Packets => r.packets as f64,
            ValueSpec::Count => 1.0,
        }
    }
}

/// Projects records onto the `(key, value)` update stream the sketch layer
/// consumes.
pub fn to_updates(records: &[FlowRecord], key: KeySpec, value: ValueSpec) -> Vec<(u64, f64)> {
    records.iter().map(|r| (key.key_of(r), value.value_of(r))).collect()
}

/// Formats an IPv4 address for human-readable diagnostics.
pub fn format_ipv4(ip: u32) -> String {
    format!("{}.{}.{}.{}", (ip >> 24) & 0xFF, (ip >> 16) & 0xFF, (ip >> 8) & 0xFF, ip & 0xFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> FlowRecord {
        FlowRecord {
            timestamp_ms: 1000,
            src_ip: 0x0A00_0001, // 10.0.0.1
            dst_ip: 0xC0A8_0102, // 192.168.1.2
            src_port: 40000,
            dst_port: 443,
            protocol: 6,
            bytes: 1500,
            packets: 3,
        }
    }

    #[test]
    fn key_extraction_variants() {
        let r = record();
        assert_eq!(KeySpec::DstIp.key_of(&r), 0xC0A8_0102);
        assert_eq!(KeySpec::SrcIp.key_of(&r), 0x0A00_0001);
        assert_eq!(KeySpec::SrcDstPair.key_of(&r), 0x0A00_0001_C0A8_0102);
        assert_eq!(KeySpec::DstIpPort.key_of(&r), (0xC0A8_0102u64 << 16) | 443);
    }

    #[test]
    fn prefix_aggregation() {
        let r = record();
        assert_eq!(KeySpec::DstPrefix(24).key_of(&r), 0x00C0_A801);
        assert_eq!(KeySpec::DstPrefix(16).key_of(&r), 0xC0A8);
        assert_eq!(KeySpec::DstPrefix(8).key_of(&r), 0xC0);
        assert_eq!(KeySpec::DstPrefix(0).key_of(&r), 0);
        assert_eq!(KeySpec::DstPrefix(32).key_of(&r), 0xC0A8_0102);
        // Lengths beyond 32 clamp.
        assert_eq!(KeySpec::DstPrefix(40).key_of(&r), 0xC0A8_0102);
    }

    #[test]
    fn value_extraction() {
        let r = record();
        assert_eq!(ValueSpec::Bytes.value_of(&r), 1500.0);
        assert_eq!(ValueSpec::Packets.value_of(&r), 3.0);
        assert_eq!(ValueSpec::Count.value_of(&r), 1.0);
    }

    #[test]
    fn to_updates_projects_all_records() {
        let rs = vec![record(), record()];
        let ups = to_updates(&rs, KeySpec::DstIp, ValueSpec::Bytes);
        assert_eq!(ups, vec![(0xC0A8_0102, 1500.0), (0xC0A8_0102, 1500.0)]);
    }

    #[test]
    fn ipv4_formatting() {
        assert_eq!(format_ipv4(0xC0A8_0102), "192.168.1.2");
        assert_eq!(format_ipv4(0), "0.0.0.0");
        assert_eq!(format_ipv4(u32::MAX), "255.255.255.255");
    }
}
