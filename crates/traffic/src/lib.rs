//! Netflow-like traffic substrate for sketch-based change detection.
//!
//! The paper's evaluation (§4.1) runs on "four hours worth of netflow dumps
//! from ten different routers in the backbone of a tier-1 ISP" — data we do
//! not have. This crate is the documented substitution (see `DESIGN.md`):
//! a synthetic flow-record generator that reproduces the *statistical
//! shape* the detection pipeline is sensitive to:
//!
//! * a large destination-IP key space with **heavy-tailed** (Zipf) traffic
//!   shares — a few big flows, a long tail of small ones;
//! * per-key time series that vary smoothly (diurnal trend + multiplicative
//!   noise), so forecasting models have signal to track;
//! * configurable record volumes matching the paper's three router sizes
//!   (large / medium / small);
//! * **injected anomalies** (DoS-like spikes, flash crowds, outages, port
//!   scans) with exact ground-truth labels, which the real traces lacked —
//!   enabling recall/precision measurements the paper could only
//!   approximate by sketch-vs-per-flow agreement.
//!
//! Everything is deterministic from a seed, so experiments are exactly
//! reproducible.
//!
//! # Example
//!
//! ```
//! use scd_traffic::{RouterProfile, TrafficGenerator, KeySpec, ValueSpec};
//!
//! let mut gen = TrafficGenerator::new(RouterProfile::Small.config(7));
//! let records = gen.interval_records(0);
//! assert!(!records.is_empty());
//! // Turn records into the (key, value) update stream the sketch consumes.
//! let updates = scd_traffic::to_updates(&records, KeySpec::DstIp, ValueSpec::Bytes);
//! assert_eq!(updates.len(), records.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod fault;
pub mod gen;
pub mod io;
pub mod packet;
pub mod record;
pub mod rng;
pub mod routes;
pub mod shard;
pub mod zipf;

pub use anomaly::{AnomalyEvent, AnomalyInjector, AnomalyKind, GroundTruth};
pub use fault::{Corruptor, FaultKind, FaultPlan, NetFaultKind, NetFaultPlan};
pub use gen::{RouterProfile, TrafficConfig, TrafficGenerator};
pub use io::{ChunkedTraceReader, TraceIoError};
pub use packet::{parse_ethernet, parse_ipv4, PacketError, PacketSummary};
pub use record::{to_updates, FlowRecord, KeySpec, ValueSpec};
pub use rng::Rng;
pub use routes::RouteTable;
pub use shard::{partition_records, partition_updates, shard_of_key, ShardPolicy};
pub use zipf::Zipf;
