//! Partitioning trace streams across ingest shards.
//!
//! The sharded engine in `scd-core` routes updates internally, but
//! distributed experiments (and the scaling benches) also need traces
//! *pre-partitioned* — e.g. to feed N collector processes, or to replay
//! "ten different routers" (paper §4.1) as ten shards of one logical
//! stream. Linearity makes any partition correct: the COMBINE of
//! per-shard sketches equals the whole-stream sketch regardless of how
//! records were split. The policies differ only operationally:
//!
//! * [`ShardPolicy::ByKeyHash`] keeps each key on one shard (the mix
//!   matches the engine's routing), so per-shard sub-streams are
//!   *semantically* complete per key — a shard can answer per-key
//!   questions locally.
//! * [`ShardPolicy::RoundRobin`] balances record counts exactly even
//!   under heavy-tailed key skew, at the cost of scattering keys.
//!
//! Both preserve arrival order within every shard (stable partition),
//! which keeps replays deterministic.

use crate::record::{FlowRecord, KeySpec};

/// How records are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Mix the record's key and reduce modulo the shard count — the same
    /// SplitMix64-style finalizer the `scd-core` engine uses, so a trace
    /// partitioned here lands exactly as the engine would route it.
    ByKeyHash,
    /// Record `i` goes to shard `i mod N`: exact balance, keys scattered.
    RoundRobin,
}

/// The engine's key-to-shard mix: the SplitMix64 finalizer
/// ([`scd_hash::mix64`]) so structured key spaces (sequential IPs,
/// aligned prefixes) spread evenly, followed by Lemire multiply-shift
/// range reduction ([`scd_hash::range_reduce`]) — no division. Exposed
/// so external partitioners agree with in-process routing; must stay in
/// lockstep with `scd-core`'s `shard_of`.
#[inline]
pub fn shard_of_key(key: u64, shards: usize) -> usize {
    scd_hash::range_reduce(scd_hash::mix64(key), shards)
}

/// Splits an update stream into `shards` order-preserving sub-streams.
///
/// # Panics
/// Panics if `shards` is zero.
pub fn partition_updates(
    updates: &[(u64, f64)],
    shards: usize,
    policy: ShardPolicy,
) -> Vec<Vec<(u64, f64)>> {
    assert!(shards > 0, "shard count must be positive");
    let mut out: Vec<Vec<(u64, f64)>> = (0..shards).map(|_| Vec::new()).collect();
    for (i, &(key, value)) in updates.iter().enumerate() {
        let shard = match policy {
            ShardPolicy::ByKeyHash => shard_of_key(key, shards),
            ShardPolicy::RoundRobin => i % shards,
        };
        out[shard].push((key, value));
    }
    out
}

/// Splits flow records into `shards` order-preserving sub-traces, keying
/// [`ShardPolicy::ByKeyHash`] by the given [`KeySpec`] (so the partition
/// matches whatever key the downstream sketches use).
///
/// # Panics
/// Panics if `shards` is zero.
pub fn partition_records(
    records: &[FlowRecord],
    shards: usize,
    policy: ShardPolicy,
    key: KeySpec,
) -> Vec<Vec<FlowRecord>> {
    assert!(shards > 0, "shard count must be positive");
    let mut out: Vec<Vec<FlowRecord>> = (0..shards).map(|_| Vec::new()).collect();
    for (i, record) in records.iter().enumerate() {
        let shard = match policy {
            ShardPolicy::ByKeyHash => shard_of_key(key.key_of(record), shards),
            ShardPolicy::RoundRobin => i % shards,
        };
        out[shard].push(*record);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{RouterProfile, TrafficGenerator};
    use crate::record::{to_updates, ValueSpec};

    fn sample_updates() -> Vec<(u64, f64)> {
        let mut gen = TrafficGenerator::new(RouterProfile::Small.config(3));
        to_updates(&gen.interval_records(0), KeySpec::DstIp, ValueSpec::Bytes)
    }

    #[test]
    fn partition_is_exhaustive_and_order_preserving() {
        let updates = sample_updates();
        for policy in [ShardPolicy::ByKeyHash, ShardPolicy::RoundRobin] {
            let parts = partition_updates(&updates, 4, policy);
            assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), updates.len());
            // Stable partition ⇒ interleaving the shards back by original
            // position reproduces the stream; simpler check: every shard
            // is a subsequence of the original.
            for shard in &parts {
                let mut it = updates.iter();
                for item in shard {
                    assert!(it.any(|u| u == item), "{policy:?}: shard is not a subsequence");
                }
            }
        }
    }

    #[test]
    fn by_key_hash_keeps_each_key_on_one_shard() {
        let updates = sample_updates();
        let parts = partition_updates(&updates, 8, ShardPolicy::ByKeyHash);
        for (shard, part) in parts.iter().enumerate() {
            for &(key, _) in part {
                assert_eq!(shard_of_key(key, 8), shard, "key {key} strayed");
            }
        }
    }

    #[test]
    fn round_robin_is_exactly_balanced() {
        let updates = sample_updates();
        let parts = partition_updates(&updates, 4, ShardPolicy::RoundRobin);
        let max = parts.iter().map(Vec::len).max().unwrap();
        let min = parts.iter().map(Vec::len).min().unwrap();
        assert!(max - min <= 1, "round robin unbalanced: {max} vs {min}");
    }

    #[test]
    fn record_partition_respects_key_spec() {
        let mut gen = TrafficGenerator::new(RouterProfile::Small.config(9));
        let records = gen.interval_records(0);
        let parts = partition_records(&records, 4, ShardPolicy::ByKeyHash, KeySpec::SrcIp);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), records.len());
        for (shard, part) in parts.iter().enumerate() {
            for r in part {
                assert_eq!(shard_of_key(KeySpec::SrcIp.key_of(r), 4), shard);
            }
        }
    }
}
