//! Trace persistence: CSV (human-inspectable) and a compact binary format.
//!
//! The binary layout is a fixed 31-byte little-endian record:
//! `timestamp_ms:u64, src_ip:u32, dst_ip:u32, src_port:u16, dst_port:u16,
//! protocol:u8, bytes:u64, packets:u32`, preceded by an 8-byte magic +
//! version header and — since version 02 — followed by a 4-byte CRC-32
//! footer over everything before it, so truncation and bit-rot produce a
//! typed error instead of silently decoding garbage flows. Files written
//! by older builds (magic `SCDTRC01`, no footer) are still readable. The
//! format exists so large generated traces can be cached between
//! experiment runs without paying CSV parsing costs.

use crate::record::FlowRecord;
use scd_hash::byteio::{put_u16, put_u32, put_u64, put_u8, Cursor};
use scd_hash::{crc32, Crc32};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Magic + format version for the legacy (unchecksummed) binary format.
const MAGIC_V1: &[u8; 8] = b"SCDTRC01";
/// Magic + format version for the current (checksummed) binary format.
const MAGIC_V2: &[u8; 8] = b"SCDTRC02";
/// Serialized size of one record.
const RECORD_LEN: usize = 8 + 4 + 4 + 2 + 2 + 1 + 8 + 4;

/// Errors from trace I/O.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The binary header was missing or unrecognized.
    BadMagic,
    /// The payload length was not a whole number of records.
    Truncated,
    /// The CRC-32 footer does not match the payload (v02 only).
    BadChecksum {
        /// Checksum recomputed over the payload.
        computed: u32,
        /// Checksum stored in the footer.
        stored: u32,
    },
    /// A CSV line could not be parsed.
    BadCsv {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceIoError::Truncated => write!(f, "trace file truncated mid-record"),
            TraceIoError::BadChecksum { computed, stored } => write!(
                f,
                "trace checksum mismatch: computed {computed:#010x}, stored {stored:#010x}"
            ),
            TraceIoError::BadCsv { line } => write!(f, "malformed CSV at line {line}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Serializes records to the current (v02) binary format.
pub fn to_binary(records: &[FlowRecord]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(MAGIC_V2.len() + records.len() * RECORD_LEN + 4);
    buf.extend_from_slice(MAGIC_V2);
    for r in records {
        put_u64(&mut buf, r.timestamp_ms);
        put_u32(&mut buf, r.src_ip);
        put_u32(&mut buf, r.dst_ip);
        put_u16(&mut buf, r.src_port);
        put_u16(&mut buf, r.dst_port);
        put_u8(&mut buf, r.protocol);
        put_u64(&mut buf, r.bytes);
        put_u32(&mut buf, r.packets);
    }
    let crc = crc32(&buf);
    put_u32(&mut buf, crc);
    buf
}

/// Deserializes records from the binary format (v02 or legacy v01).
pub fn from_binary(data: &[u8]) -> Result<Vec<FlowRecord>, TraceIoError> {
    if data.len() < 8 {
        return Err(TraceIoError::BadMagic);
    }
    let body = match &data[..8] {
        m if m == MAGIC_V2 => {
            if data.len() < 12 {
                return Err(TraceIoError::Truncated);
            }
            let (payload, footer) = data.split_at(data.len() - 4);
            let stored = u32::from_le_bytes(footer.try_into().expect("length checked"));
            let computed = crc32(payload);
            if computed != stored {
                return Err(TraceIoError::BadChecksum { computed, stored });
            }
            &payload[8..]
        }
        m if m == MAGIC_V1 => &data[8..],
        _ => return Err(TraceIoError::BadMagic),
    };
    if body.len() % RECORD_LEN != 0 {
        return Err(TraceIoError::Truncated);
    }
    let mut cur = Cursor::new(body);
    let mut out = Vec::with_capacity(body.len() / RECORD_LEN);
    while cur.remaining() > 0 {
        // Field reads cannot fail: length is a whole number of records.
        out.push(decode_record(&mut cur).map_err(|_| TraceIoError::Truncated)?);
    }
    Ok(out)
}

/// Decodes one 31-byte record at the cursor.
fn decode_record(c: &mut Cursor<'_>) -> Result<FlowRecord, scd_hash::byteio::ShortInput> {
    Ok(FlowRecord {
        timestamp_ms: c.u64()?,
        src_ip: c.u32()?,
        dst_ip: c.u32()?,
        src_port: c.u16()?,
        dst_port: c.u16()?,
        protocol: c.u8()?,
        bytes: c.u64()?,
        packets: c.u32()?,
    })
}

/// Incremental binary-trace reader: decodes `SCDTRC02`/`SCDTRC01` streams
/// chunk-by-chunk so large traces can feed shard producers directly,
/// without first materializing the whole `Vec<FlowRecord>` (and without
/// the single-threaded full-file decode hop). The CRC-32 footer is
/// verified *incrementally* — the checksum is folded over every payload
/// byte as it streams past and compared against the stored footer at EOF,
/// so a fully drained reader gives exactly the same integrity guarantee
/// (and the same errors) as [`from_binary`].
#[derive(Debug)]
pub struct ChunkedTraceReader<R: Read> {
    inner: R,
    /// Bytes read but not yet decoded. For v02 the trailing 4 bytes are
    /// withheld from decoding until EOF proves they are the footer.
    pending: Vec<u8>,
    crc: Crc32,
    /// Whether the stream carries a CRC footer (v02).
    checksummed: bool,
    at_eof: bool,
    footer_verified: bool,
    records_read: usize,
}

/// Read granularity for [`ChunkedTraceReader`] fills.
const CHUNK_READ_LEN: usize = 64 * 1024;

impl<R: Read> ChunkedTraceReader<R> {
    /// Opens a binary trace stream, consuming and validating the magic.
    pub fn new(mut inner: R) -> Result<Self, TraceIoError> {
        let mut magic = [0u8; 8];
        let mut filled = 0;
        while filled < magic.len() {
            match inner.read(&mut magic[filled..]) {
                Ok(0) => return Err(TraceIoError::BadMagic),
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        let checksummed = match &magic {
            m if m == MAGIC_V2 => true,
            m if m == MAGIC_V1 => false,
            _ => return Err(TraceIoError::BadMagic),
        };
        let mut crc = Crc32::new();
        crc.update(&magic);
        Ok(ChunkedTraceReader {
            inner,
            pending: Vec::with_capacity(CHUNK_READ_LEN + RECORD_LEN),
            crc,
            checksummed,
            at_eof: false,
            footer_verified: false,
            records_read: 0,
        })
    }

    /// Total records decoded so far.
    pub fn records_read(&self) -> usize {
        self.records_read
    }

    /// Appends up to `max_records` decoded records to `out`. Returns the
    /// number appended; `0` means clean end-of-stream (footer verified for
    /// v02). Errors mirror [`from_binary`]: a mid-record end is
    /// [`TraceIoError::Truncated`], a footer mismatch is
    /// [`TraceIoError::BadChecksum`].
    pub fn next_chunk(
        &mut self,
        max_records: usize,
        out: &mut Vec<FlowRecord>,
    ) -> Result<usize, TraceIoError> {
        let mut appended = 0;
        let mut buf = [0u8; CHUNK_READ_LEN];
        while appended < max_records {
            // Decode whole records from the front of `pending`, keeping the
            // possible footer in reserve until EOF.
            let reserve = if self.checksummed && !self.at_eof { 4 } else { 0 };
            let decodable = (self.pending.len().saturating_sub(reserve) / RECORD_LEN) * RECORD_LEN;
            if decodable > 0 {
                let take = decodable.min((max_records - appended).saturating_mul(RECORD_LEN));
                self.crc.update(&self.pending[..take]);
                let mut cur = Cursor::new(&self.pending[..take]);
                while cur.remaining() > 0 {
                    out.push(decode_record(&mut cur).map_err(|_| TraceIoError::Truncated)?);
                    appended += 1;
                    self.records_read += 1;
                }
                self.pending.drain(..take);
                continue;
            }
            if self.at_eof {
                self.verify_footer()?;
                break;
            }
            match self.inner.read(&mut buf) {
                Ok(0) => {
                    self.at_eof = true;
                    self.check_eof()?;
                }
                Ok(n) => self.pending.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(appended)
    }

    /// Validates stream framing once the underlying reader hits EOF: the
    /// leftover bytes must be a whole number of records plus, for v02, a
    /// footer matching the incrementally computed CRC.
    fn check_eof(&mut self) -> Result<(), TraceIoError> {
        if self.checksummed {
            if self.pending.len() < 4 {
                return Err(TraceIoError::Truncated);
            }
            if (self.pending.len() - 4) % RECORD_LEN != 0 {
                return Err(TraceIoError::Truncated);
            }
        } else if self.pending.len() % RECORD_LEN != 0 {
            return Err(TraceIoError::Truncated);
        }
        Ok(())
    }

    /// Once every record has been decoded, the v02 leftover must be the
    /// 4-byte footer matching the CRC folded over magic + records.
    fn verify_footer(&mut self) -> Result<(), TraceIoError> {
        if self.footer_verified || !self.checksummed {
            return Ok(());
        }
        if self.pending.len() != 4 {
            return Err(TraceIoError::Truncated);
        }
        let stored = u32::from_le_bytes(self.pending[..].try_into().expect("length checked"));
        let computed = self.crc.finalize();
        if computed != stored {
            return Err(TraceIoError::BadChecksum { computed, stored });
        }
        self.pending.clear();
        self.footer_verified = true;
        Ok(())
    }

    /// Drains the remaining stream, returning the total number of records
    /// appended to `out`. Equivalent to calling [`Self::next_chunk`] until
    /// it returns `0`.
    pub fn read_to_end(&mut self, out: &mut Vec<FlowRecord>) -> Result<usize, TraceIoError> {
        let mut total = 0;
        loop {
            let n = self.next_chunk(usize::MAX, out)?;
            if n == 0 {
                return Ok(total);
            }
            total += n;
        }
    }
}

/// Writes records as binary to any writer (file, socket, buffer).
pub fn write_binary<W: Write>(w: W, records: &[FlowRecord]) -> Result<(), TraceIoError> {
    let mut w = BufWriter::new(w);
    w.write_all(&to_binary(records))?;
    w.flush()?;
    Ok(())
}

/// Reads binary records from any reader.
pub fn read_binary<R: Read>(mut r: R) -> Result<Vec<FlowRecord>, TraceIoError> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    from_binary(&data)
}

/// CSV header line.
pub const CSV_HEADER: &str = "timestamp_ms,src_ip,dst_ip,src_port,dst_port,protocol,bytes,packets";

/// Writes records as CSV with header.
pub fn write_csv<W: Write>(w: W, records: &[FlowRecord]) -> Result<(), TraceIoError> {
    let mut w = BufWriter::new(w);
    writeln!(w, "{CSV_HEADER}")?;
    for r in records {
        writeln!(
            w,
            "{},{},{},{},{},{},{},{}",
            r.timestamp_ms,
            r.src_ip,
            r.dst_ip,
            r.src_port,
            r.dst_port,
            r.protocol,
            r.bytes,
            r.packets
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Reads CSV records (header optional).
pub fn read_csv<R: Read>(r: R) -> Result<Vec<FlowRecord>, TraceIoError> {
    let reader = BufReader::new(r);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || (i == 0 && line == CSV_HEADER) {
            continue;
        }
        let mut fields = line.split(',');
        let mut next = || fields.next().ok_or(TraceIoError::BadCsv { line: i + 1 });
        let parse = |s: &str, i: usize| -> Result<u64, TraceIoError> {
            s.parse().map_err(|_| TraceIoError::BadCsv { line: i + 1 })
        };
        let rec = FlowRecord {
            timestamp_ms: parse(next()?, i)?,
            src_ip: parse(next()?, i)? as u32,
            dst_ip: parse(next()?, i)? as u32,
            src_port: parse(next()?, i)? as u16,
            dst_port: parse(next()?, i)? as u16,
            protocol: parse(next()?, i)? as u8,
            bytes: parse(next()?, i)?,
            packets: parse(next()?, i)? as u32,
        };
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{RouterProfile, TrafficGenerator};

    fn sample_records() -> Vec<FlowRecord> {
        let mut cfg = RouterProfile::Small.config(3);
        cfg.records_per_sec = 1.0;
        cfg.interval_secs = 30;
        let mut g = TrafficGenerator::new(cfg);
        g.interval_records(0)
    }

    #[test]
    fn binary_round_trip() {
        let records = sample_records();
        let bytes = to_binary(&records);
        let back = from_binary(&bytes).unwrap();
        assert_eq!(records, back);
    }

    #[test]
    fn binary_round_trip_empty() {
        let bytes = to_binary(&[]);
        assert_eq!(from_binary(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(matches!(from_binary(b"not a trace"), Err(TraceIoError::BadMagic)));
        let mut ok = to_binary(&sample_records());
        ok.pop(); // truncate one byte: checksum can no longer match
        assert!(from_binary(&ok).is_err());
    }

    #[test]
    fn reads_legacy_v01_payloads() {
        let records = sample_records();
        let v2 = to_binary(&records);
        // A v01 file is the v02 body with the old magic and no footer.
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC_V1);
        v1.extend_from_slice(&v2[8..v2.len() - 4]);
        assert_eq!(from_binary(&v1).unwrap(), records);
    }

    #[test]
    fn any_single_byte_flip_is_detected() {
        let clean = to_binary(&sample_records());
        let mut rng = scd_hash::SplitMix64::new(0x7AC3);
        for _ in 0..200 {
            let pos = rng.next_below(clean.len() as u64) as usize;
            let mut bad = clean.clone();
            bad[pos] ^= 1 << rng.next_below(8);
            assert!(from_binary(&bad).is_err(), "byte flip at {pos} decoded successfully");
        }
    }

    #[test]
    fn csv_round_trip() {
        let records = sample_records();
        let mut buf = Vec::new();
        write_csv(&mut buf, &records).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(records, back);
    }

    #[test]
    fn csv_reports_bad_line() {
        let data = format!("{CSV_HEADER}\n1,2,3\n");
        match read_csv(data.as_bytes()) {
            Err(TraceIoError::BadCsv { line }) => assert_eq!(line, 2),
            other => panic!("expected BadCsv, got {other:?}"),
        }
    }

    #[test]
    fn chunked_reader_matches_from_binary() {
        let records = sample_records();
        let bytes = to_binary(&records);
        for chunk in [1usize, 7, 31, 1000] {
            let mut reader = ChunkedTraceReader::new(&bytes[..]).unwrap();
            let mut out = Vec::new();
            loop {
                if reader.next_chunk(chunk, &mut out).unwrap() == 0 {
                    break;
                }
            }
            assert_eq!(out, records, "chunk size {chunk}");
            assert_eq!(reader.records_read(), records.len());
            // Reading past the end stays a clean EOF.
            assert_eq!(reader.next_chunk(chunk, &mut out).unwrap(), 0);
        }
    }

    #[test]
    fn chunked_reader_handles_empty_and_legacy_traces() {
        let empty = to_binary(&[]);
        let mut reader = ChunkedTraceReader::new(&empty[..]).unwrap();
        let mut out = Vec::new();
        assert_eq!(reader.read_to_end(&mut out).unwrap(), 0);

        let records = sample_records();
        let v2 = to_binary(&records);
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC_V1);
        v1.extend_from_slice(&v2[8..v2.len() - 4]);
        let mut reader = ChunkedTraceReader::new(&v1[..]).unwrap();
        let mut out = Vec::new();
        reader.read_to_end(&mut out).unwrap();
        assert_eq!(out, records);
    }

    #[test]
    fn chunked_reader_rejects_corruption_like_from_binary() {
        assert!(matches!(
            ChunkedTraceReader::new(&b"not a trace"[..]),
            Err(TraceIoError::BadMagic)
        ));
        let clean = to_binary(&sample_records());
        let mut rng = scd_hash::SplitMix64::new(0x7AC4);
        for _ in 0..100 {
            let pos = rng.next_below(clean.len() as u64) as usize;
            let mut bad = clean.clone();
            bad[pos] ^= 1 << rng.next_below(8);
            let run = ChunkedTraceReader::new(&bad[..]).and_then(|mut r| {
                let mut out = Vec::new();
                r.read_to_end(&mut out)
            });
            assert!(run.is_err(), "byte flip at {pos} decoded successfully");
        }
        // Truncation mid-record / mid-footer is detected at EOF.
        let mut short = clean.clone();
        short.truncate(clean.len() - 3);
        let run = ChunkedTraceReader::new(&short[..]).and_then(|mut r| {
            let mut out = Vec::new();
            r.read_to_end(&mut out)
        });
        assert!(run.is_err());
    }

    #[test]
    fn writer_reader_round_trip_via_io() {
        let records = sample_records();
        let mut buf = Vec::new();
        write_binary(&mut buf, &records).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(records, back);
    }
}
