//! Trace persistence: CSV (human-inspectable) and a compact binary format.
//!
//! The binary layout is a fixed 31-byte little-endian record:
//! `timestamp_ms:u64, src_ip:u32, dst_ip:u32, src_port:u16, dst_port:u16,
//! protocol:u8, bytes:u64, packets:u32`, preceded by an 8-byte magic +
//! version header. It exists so large generated traces can be cached
//! between experiment runs without paying CSV parsing costs.

use crate::record::FlowRecord;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Magic + format version for the binary trace format.
const MAGIC: &[u8; 8] = b"SCDTRC01";
/// Serialized size of one record.
const RECORD_LEN: usize = 8 + 4 + 4 + 2 + 2 + 1 + 8 + 4;

/// Errors from trace I/O.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The binary header was missing or unrecognized.
    BadMagic,
    /// The payload length was not a whole number of records.
    Truncated,
    /// A CSV line could not be parsed.
    BadCsv {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceIoError::Truncated => write!(f, "trace file truncated mid-record"),
            TraceIoError::BadCsv { line } => write!(f, "malformed CSV at line {line}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Serializes records to the binary format.
pub fn to_binary(records: &[FlowRecord]) -> Bytes {
    let mut buf = BytesMut::with_capacity(MAGIC.len() + records.len() * RECORD_LEN);
    buf.put_slice(MAGIC);
    for r in records {
        buf.put_u64_le(r.timestamp_ms);
        buf.put_u32_le(r.src_ip);
        buf.put_u32_le(r.dst_ip);
        buf.put_u16_le(r.src_port);
        buf.put_u16_le(r.dst_port);
        buf.put_u8(r.protocol);
        buf.put_u64_le(r.bytes);
        buf.put_u32_le(r.packets);
    }
    buf.freeze()
}

/// Deserializes records from the binary format.
pub fn from_binary(mut data: &[u8]) -> Result<Vec<FlowRecord>, TraceIoError> {
    if data.len() < MAGIC.len() || &data[..MAGIC.len()] != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    data = &data[MAGIC.len()..];
    if data.len() % RECORD_LEN != 0 {
        return Err(TraceIoError::Truncated);
    }
    let mut out = Vec::with_capacity(data.len() / RECORD_LEN);
    while data.has_remaining() {
        out.push(FlowRecord {
            timestamp_ms: data.get_u64_le(),
            src_ip: data.get_u32_le(),
            dst_ip: data.get_u32_le(),
            src_port: data.get_u16_le(),
            dst_port: data.get_u16_le(),
            protocol: data.get_u8(),
            bytes: data.get_u64_le(),
            packets: data.get_u32_le(),
        });
    }
    Ok(out)
}

/// Writes records as binary to any writer (file, socket, buffer).
pub fn write_binary<W: Write>(w: W, records: &[FlowRecord]) -> Result<(), TraceIoError> {
    let mut w = BufWriter::new(w);
    w.write_all(&to_binary(records))?;
    w.flush()?;
    Ok(())
}

/// Reads binary records from any reader.
pub fn read_binary<R: Read>(mut r: R) -> Result<Vec<FlowRecord>, TraceIoError> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    from_binary(&data)
}

/// CSV header line.
pub const CSV_HEADER: &str = "timestamp_ms,src_ip,dst_ip,src_port,dst_port,protocol,bytes,packets";

/// Writes records as CSV with header.
pub fn write_csv<W: Write>(w: W, records: &[FlowRecord]) -> Result<(), TraceIoError> {
    let mut w = BufWriter::new(w);
    writeln!(w, "{CSV_HEADER}")?;
    for r in records {
        writeln!(
            w,
            "{},{},{},{},{},{},{},{}",
            r.timestamp_ms, r.src_ip, r.dst_ip, r.src_port, r.dst_port, r.protocol, r.bytes,
            r.packets
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Reads CSV records (header optional).
pub fn read_csv<R: Read>(r: R) -> Result<Vec<FlowRecord>, TraceIoError> {
    let reader = BufReader::new(r);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || (i == 0 && line == CSV_HEADER) {
            continue;
        }
        let mut fields = line.split(',');
        let mut next = || fields.next().ok_or(TraceIoError::BadCsv { line: i + 1 });
        let parse = |s: &str, i: usize| -> Result<u64, TraceIoError> {
            s.parse().map_err(|_| TraceIoError::BadCsv { line: i + 1 })
        };
        let rec = FlowRecord {
            timestamp_ms: parse(next()?, i)?,
            src_ip: parse(next()?, i)? as u32,
            dst_ip: parse(next()?, i)? as u32,
            src_port: parse(next()?, i)? as u16,
            dst_port: parse(next()?, i)? as u16,
            protocol: parse(next()?, i)? as u8,
            bytes: parse(next()?, i)?,
            packets: parse(next()?, i)? as u32,
        };
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{RouterProfile, TrafficGenerator};

    fn sample_records() -> Vec<FlowRecord> {
        let mut cfg = RouterProfile::Small.config(3);
        cfg.records_per_sec = 1.0;
        cfg.interval_secs = 30;
        let mut g = TrafficGenerator::new(cfg);
        g.interval_records(0)
    }

    #[test]
    fn binary_round_trip() {
        let records = sample_records();
        let bytes = to_binary(&records);
        let back = from_binary(&bytes).unwrap();
        assert_eq!(records, back);
    }

    #[test]
    fn binary_round_trip_empty() {
        let bytes = to_binary(&[]);
        assert_eq!(from_binary(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(matches!(from_binary(b"not a trace"), Err(TraceIoError::BadMagic)));
        let mut ok = to_binary(&sample_records()).to_vec();
        ok.pop(); // truncate one byte
        assert!(matches!(from_binary(&ok), Err(TraceIoError::Truncated)));
    }

    #[test]
    fn csv_round_trip() {
        let records = sample_records();
        let mut buf = Vec::new();
        write_csv(&mut buf, &records).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(records, back);
    }

    #[test]
    fn csv_reports_bad_line() {
        let data = format!("{CSV_HEADER}\n1,2,3\n");
        match read_csv(data.as_bytes()) {
            Err(TraceIoError::BadCsv { line }) => assert_eq!(line, 2),
            other => panic!("expected BadCsv, got {other:?}"),
        }
    }

    #[test]
    fn writer_reader_round_trip_via_io() {
        let records = sample_records();
        let mut buf = Vec::new();
        write_binary(&mut buf, &records).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(records, back);
    }
}
