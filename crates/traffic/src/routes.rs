//! Longest-prefix-match route table: IP → AS / prefix aggregation.
//!
//! §2.1: "It is also possible to define keys with entities like network
//! prefixes or AS numbers to achieve higher levels of aggregation." Prefix
//! keys need only bit masks ([`crate::record::KeySpec::DstPrefix`]); AS
//! keys need a *routing table* — this module supplies one, as a binary
//! trie with longest-prefix-match lookup, the data structure underneath
//! every real FIB.
//!
//! Lookups walk destination-address bits from the top, remembering the
//! last value seen on the path — `O(32)` worst case, allocation-free.
//! Insertion supports arbitrary overlapping prefixes (more-specific routes
//! shadow less-specific ones, as in BGP). [`RouteTable::synthetic`] builds
//! a deterministic AS assignment for experiments: the generator's rank→IP
//! population carved into AS-sized blocks.

/// Binary-trie node. Children indexed by the next address bit.
#[derive(Debug, Clone, Default)]
struct Node {
    value: Option<u32>,
    children: [Option<Box<Node>>; 2],
}

/// Longest-prefix-match table mapping IPv4 prefixes to a `u32` value
/// (typically an AS number).
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    root: Node,
    len: usize,
}

impl RouteTable {
    /// An empty table.
    pub fn new() -> Self {
        RouteTable::default()
    }

    /// Number of routes installed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Installs `prefix/prefix_len → value`, replacing any identical
    /// prefix. Returns the previous value if one was replaced.
    ///
    /// # Panics
    /// Panics if `prefix_len > 32` or the prefix has bits set beyond its
    /// length (a malformed route).
    pub fn insert(&mut self, prefix: u32, prefix_len: u8, value: u32) -> Option<u32> {
        assert!(prefix_len <= 32, "prefix length {prefix_len} > 32");
        if prefix_len < 32 {
            assert!(
                prefix.trailing_zeros() >= 32 - prefix_len as u32 || prefix == 0,
                "prefix {prefix:#010x}/{prefix_len} has host bits set"
            );
        }
        let mut node = &mut self.root;
        for i in 0..prefix_len {
            let bit = ((prefix >> (31 - i)) & 1) as usize;
            node = node.children[bit].get_or_insert_with(Box::default);
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Longest-prefix-match lookup. Returns the value of the most specific
    /// covering route, or `None` if no route covers `addr`.
    pub fn lookup(&self, addr: u32) -> Option<u32> {
        let mut node = &self.root;
        let mut best = node.value;
        for i in 0..32 {
            let bit = ((addr >> (31 - i)) & 1) as usize;
            match &node.children[bit] {
                Some(child) => {
                    node = child;
                    if node.value.is_some() {
                        best = node.value;
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Projects a flow record to an `(AS-key, value)` update; unrouted
    /// destinations map to the reserved key `u64::MAX` so they stay
    /// distinguishable rather than silently aggregating into AS 0.
    pub fn as_update(
        &self,
        record: &crate::record::FlowRecord,
        value: crate::record::ValueSpec,
    ) -> (u64, f64) {
        let key = self.lookup(record.dst_ip).map(|asn| asn as u64).unwrap_or(u64::MAX);
        (key, value.value_of(record))
    }

    /// Builds a deterministic synthetic AS layout: the IPv4 space carved
    /// into `n_ases` equal /k blocks (k chosen from `n_ases`), AS numbers
    /// `1..=n_ases`, plus a default route to AS `n_ases + 1` (the
    /// "upstream transit"). Useful for AS-level detection experiments
    /// without real BGP data — documented substitution, same shape: every
    /// address resolves, specific routes shadow the default.
    ///
    /// # Panics
    /// Panics unless `n_ases` is a power of two between 2 and 2^16.
    pub fn synthetic(n_ases: u32) -> Self {
        assert!(
            n_ases.is_power_of_two() && (2..=65_536).contains(&n_ases),
            "n_ases must be a power of two in 2..=65536, got {n_ases}"
        );
        let bits = n_ases.trailing_zeros() as u8;
        let mut table = RouteTable::new();
        table.insert(0, 0, n_ases + 1); // default route: transit AS
        for i in 0..n_ases {
            table.insert(i << (32 - bits), bits, i + 1);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{FlowRecord, ValueSpec};

    #[test]
    fn exact_and_longest_match() {
        let mut t = RouteTable::new();
        t.insert(0x0A000000, 8, 100); // 10/8        -> AS 100
        t.insert(0x0A010000, 16, 200); // 10.1/16    -> AS 200
        t.insert(0x0A010200, 24, 300); // 10.1.2/24  -> AS 300
        assert_eq!(t.lookup(0x0A050505), Some(100));
        assert_eq!(t.lookup(0x0A01FFFF), Some(200));
        assert_eq!(t.lookup(0x0A010203), Some(300));
        assert_eq!(t.lookup(0x0B000001), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn default_route_catches_everything() {
        let mut t = RouteTable::new();
        t.insert(0, 0, 7);
        assert_eq!(t.lookup(0), Some(7));
        assert_eq!(t.lookup(u32::MAX), Some(7));
    }

    #[test]
    fn replacement_returns_old_value() {
        let mut t = RouteTable::new();
        assert_eq!(t.insert(0xC0A80000, 16, 1), None);
        assert_eq!(t.insert(0xC0A80000, 16, 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(0xC0A80101), Some(2));
    }

    #[test]
    fn host_routes_win_over_prefixes() {
        let mut t = RouteTable::new();
        t.insert(0x08000000, 8, 1);
        t.insert(0x08080808, 32, 2);
        assert_eq!(t.lookup(0x08080808), Some(2));
        assert_eq!(t.lookup(0x08080809), Some(1));
    }

    #[test]
    #[should_panic(expected = "host bits")]
    fn malformed_prefix_rejected() {
        let mut t = RouteTable::new();
        t.insert(0x0A000001, 8, 1); // 10.0.0.1/8: host bits set
    }

    #[test]
    fn synthetic_layout_routes_all_space() {
        let t = RouteTable::synthetic(16);
        assert_eq!(t.len(), 17); // 16 blocks + default
                                 // Block i covers i<<28 ..; transit unused since blocks tile space.
        assert_eq!(t.lookup(0x0000_0001), Some(1));
        assert_eq!(t.lookup(0x1000_0000), Some(2));
        assert_eq!(t.lookup(0xF234_5678), Some(16));
    }

    #[test]
    fn as_update_projection() {
        let t = RouteTable::synthetic(4);
        let r = FlowRecord {
            timestamp_ms: 0,
            src_ip: 1,
            dst_ip: 0xC000_0001, // top quarter -> AS 4
            src_port: 1,
            dst_port: 2,
            protocol: 6,
            bytes: 500,
            packets: 1,
        };
        assert_eq!(t.as_update(&r, ValueSpec::Bytes), (4, 500.0));
        assert_eq!(t.as_update(&r, ValueSpec::Count), (4, 1.0));
    }

    #[test]
    fn unrouted_maps_to_sentinel() {
        let mut t = RouteTable::new();
        t.insert(0x0A000000, 8, 1);
        let r = FlowRecord {
            timestamp_ms: 0,
            src_ip: 1,
            dst_ip: 0x0B000001,
            src_port: 1,
            dst_port: 2,
            protocol: 6,
            bytes: 9,
            packets: 1,
        };
        assert_eq!(t.as_update(&r, ValueSpec::Bytes).0, u64::MAX);
    }

    #[test]
    fn dense_random_tables_are_consistent() {
        // Insert many random /16s; lookups must match a linear reference.
        let mut t = RouteTable::new();
        let mut reference: Vec<(u32, u32)> = Vec::new(); // (prefix, value)
        let mut state = 1u64;
        for i in 0..500u32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let prefix = ((state >> 33) as u32) & 0xFFFF_0000;
            t.insert(prefix, 16, i);
            reference.retain(|&(p, _)| p != prefix);
            reference.push((prefix, i));
        }
        for j in 0..2000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(j);
            let addr = (state >> 29) as u32;
            let expect =
                reference.iter().find(|&&(p, _)| p == (addr & 0xFFFF_0000)).map(|&(_, v)| v);
            assert_eq!(t.lookup(addr), expect, "addr {addr:#010x}");
        }
    }
}
