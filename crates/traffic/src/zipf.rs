//! Zipf-distributed rank sampling.
//!
//! Internet traffic shares across destinations are famously heavy-tailed;
//! a Zipf law with exponent near 1 is the standard first-order model. The
//! sampler precomputes the normalized cumulative mass over `n` ranks and
//! draws by binary search — `O(n)` setup, `O(log n)` per sample, exact.

use crate::rng::Rng;

/// Zipf sampler over ranks `0..n` with `P(rank = r) ∝ 1 / (r + 1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative distribution; `cdf[r]` = P(rank ≤ r).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n ≥ 1` ranks with exponent `s ≥ 0`.
    ///
    /// `s = 0` degenerates to the uniform distribution; `s ≈ 1` is the
    /// classic Zipf shape.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top.
        *cdf.last_mut().expect("n >= 1") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True iff there are no ranks (never: construction requires `n ≥ 1`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.uniform();
        // First index with cdf >= u.
        self.cdf.partition_point(|&c| c < u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(1000, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
        assert!(z.pmf(10) > z.pmf(100));
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = Zipf::new(50, 1.0);
        let mut rng = Rng::new(9);
        let n = 200_000;
        let mut counts = [0u32; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for r in [0usize, 1, 5, 20] {
            let emp = counts[r] as f64 / n as f64;
            let expect = z.pmf(r);
            assert!(
                (emp - expect).abs() < 0.1 * expect + 0.001,
                "rank {r}: empirical {emp} vs {expect}"
            );
        }
    }

    #[test]
    fn uniform_when_exponent_zero() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn single_rank_always_sampled() {
        let z = Zipf::new(1, 2.0);
        let mut rng = Rng::new(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(37, 1.3);
        let mut rng = Rng::new(2);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 37);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
