//! Serving-plane telemetry, registered into an `scd-obs` [`Registry`]
//! alongside the pipeline's own metrics so one `/metrics` endpoint (or
//! one `scd-obs` snapshot) covers ingest and serving together.

use scd_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Counters, gauges, and latency histograms for the serving plane:
/// snapshot handoffs on the write side, connections and per-query-kind
/// traffic on the read side.
#[derive(Debug)]
pub struct ServeMetrics {
    /// Interval snapshots published by the [`ServingPlane`] observer.
    ///
    /// [`ServingPlane`]: crate::ServingPlane
    pub snapshots_total: Arc<Counter>,
    /// Interval index of the currently served view (−1 until the first
    /// snapshot).
    pub view_interval: Arc<Gauge>,
    /// Epochs retained by the serving replica archive.
    pub view_epochs: Arc<Gauge>,
    /// Heap bytes of the serving replica archive plus the live slim
    /// sketch.
    pub view_bytes: Arc<Gauge>,
    /// Nanoseconds spent building and publishing one snapshot (replica
    /// push + slim rebuild + swap), on the detecting thread.
    pub snapshot_ns: Arc<Histogram>,
    /// Connections accepted by the query listener.
    pub connections_total: Arc<Counter>,
    /// Connections refused because the concurrent-connection cap was hit.
    pub connections_refused: Arc<Counter>,
    /// Queries answered, across all kinds and connections.
    pub queries_total: Arc<Counter>,
    /// Queries answered with `Response::Error` (bad request or archive
    /// failure — protocol-level failures close the connection instead).
    pub query_errors: Arc<Counter>,
    /// Queries answered with `Response::NoData` (empty window, warm-up).
    pub query_nodata: Arc<Counter>,
    /// Nanoseconds from decoded request to encoded response (answer time
    /// only, excluding socket I/O).
    pub answer_ns: Arc<Histogram>,
    /// Queries answered from the per-view answer cache (no archive work).
    pub cache_hits: Arc<Counter>,
    /// Cacheable queries that missed and were computed (then cached).
    pub cache_misses: Arc<Counter>,
    /// Requests coalesced onto another identical in-flight computation
    /// (a subset of `cache_hits`: the hit happened while the first
    /// requester was still computing).
    pub coalesced_total: Arc<Counter>,
    /// Intervals handed to the background snapshot rebuild thread and
    /// not yet reflected in the published view (0 when rebuilding
    /// inline).
    pub rebuild_lag: Arc<Gauge>,
}

impl ServeMetrics {
    /// Registers every serving metric under the `scd_serve_` prefix and
    /// returns the handle bundle (shareable across the observer, the
    /// listener, and its connection threads).
    pub fn register(registry: &Registry) -> Arc<ServeMetrics> {
        Arc::new(ServeMetrics {
            snapshots_total: registry.counter(
                "scd_serve_snapshots_total",
                "Interval snapshots published to the serving view",
            ),
            view_interval: registry
                .gauge("scd_serve_view_interval", "Interval index of the served view"),
            view_epochs: registry
                .gauge("scd_serve_view_epochs", "Epochs retained by the serving replica archive"),
            view_bytes: registry.gauge(
                "scd_serve_view_bytes",
                "Heap bytes of the serving replica archive and live slim sketch",
            ),
            snapshot_ns: registry.histogram(
                "scd_serve_snapshot_ns",
                "Nanoseconds to build and publish one interval snapshot",
            ),
            connections_total: registry
                .counter("scd_serve_connections_total", "Query connections accepted"),
            connections_refused: registry.counter(
                "scd_serve_connections_refused",
                "Query connections refused at the concurrency cap",
            ),
            queries_total: registry.counter("scd_serve_queries_total", "Queries answered"),
            query_errors: registry
                .counter("scd_serve_query_errors", "Queries answered with an error response"),
            query_nodata: registry
                .counter("scd_serve_query_nodata", "Queries answered with a no-data response"),
            answer_ns: registry.histogram(
                "scd_serve_answer_ns",
                "Nanoseconds from decoded request to encoded response",
            ),
            cache_hits: registry
                .counter("scd_serve_cache_hits", "Queries answered from the per-view answer cache"),
            cache_misses: registry
                .counter("scd_serve_cache_misses", "Cacheable queries computed on a cache miss"),
            coalesced_total: registry.counter(
                "scd_serve_coalesced_total",
                "Requests coalesced onto an identical in-flight computation",
            ),
            rebuild_lag: registry
                .gauge("scd_serve_rebuild_lag", "Intervals queued for background snapshot rebuild"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_under_serve_prefix() {
        let registry = Registry::new();
        let metrics = ServeMetrics::register(&registry);
        metrics.snapshots_total.inc();
        metrics.view_interval.set(3.0);
        metrics.answer_ns.record(1000);
        let mut text = String::new();
        registry.render_prometheus(&mut text);
        assert!(text.contains("scd_serve_snapshots_total 1"));
        assert!(text.contains("scd_serve_view_interval 3"));
        assert!(text.contains("scd_serve_answer_ns"));
    }
}
