//! A minimal blocking client for the `SCDQ` query protocol — one
//! request, one response, over a persistent connection. Used by
//! `scd ask`, the CI smoke job, and the soak/bench harnesses.

use crate::proto::{ProtoError, Request, Response};
use std::net::TcpStream;
use std::time::Duration;

/// How long one `ask` may wait for its response before the connection is
/// considered dead.
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(10);

/// A connected query client. Queries are idempotent reads: on any error,
/// drop the client, reconnect, and retry.
#[derive(Debug)]
pub struct QueryClient {
    stream: TcpStream,
}

impl QueryClient {
    /// Connects to a [`QueryServer`](crate::QueryServer) at `addr`
    /// (e.g. `"127.0.0.1:7171"`).
    ///
    /// # Errors
    /// Propagates connect/configure failures.
    pub fn connect(addr: &str) -> std::io::Result<QueryClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(RESPONSE_TIMEOUT))?;
        stream.set_write_timeout(Some(RESPONSE_TIMEOUT))?;
        Ok(QueryClient { stream })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    /// Any [`ProtoError`]: transport failure, response timeout (`Io`),
    /// corruption, or a server that closed mid-exchange (`Closed`).
    pub fn ask(&mut self, req: &Request) -> Result<Response, ProtoError> {
        use std::io::Write;
        self.stream.write_all(&req.encode())?;
        self.stream.flush()?;
        Response::read_from(&mut self.stream)
    }
}
