//! The `SCDQ` query wire protocol: length-prefixed, CRC-guarded frames
//! between `scd ask` (or any client) and the serving plane's listener.
//!
//! Layout of every frame — identical discipline to the ingest plane's
//! `SCDN` frames:
//!
//! ```text
//! magic  "SCDQ"                        4 bytes
//! type   u8                            1 byte
//! len    u32 LE  (payload length)      4 bytes
//! payload                              len bytes
//! crc32  u32 LE  over everything above 4 bytes
//! ```
//!
//! Requests use type bytes `0..=3`, responses `16..=21`; the ranges are
//! disjoint so a confused peer (client answering, server asking) is
//! caught at the type byte, not by misparsing a payload. Decoders treat
//! input as hostile: truncation, oversized lengths, unknown types,
//! checksum mismatches and non-UTF-8 strings surface as typed
//! [`ProtoError`]s — never panics or unbounded allocations. A decode
//! error tears down the connection; queries are idempotent reads, so the
//! client just reconnects and retries.
//!
//! Every data-bearing response carries `as_of` — the interval of the
//! [`ServingView`](crate::ServingView) that answered — so callers can
//! correlate answers with pipeline progress (the soak test matches
//! served answers against per-interval reference snapshots by exactly
//! this field).

use scd_hash::byteio::{put_f64, put_u32, put_u64, put_u8, Cursor};
use scd_hash::crc32;
use std::io::Read;

/// Frame magic: every query-protocol frame starts with these four bytes.
pub const MAGIC: &[u8; 4] = b"SCDQ";

/// Upper bound on a frame payload (16 MiB) — rejects absurd length
/// prefixes before any allocation happens.
pub const MAX_FRAME: u32 = 16 << 20;

/// Errors from encoding or decoding query frames.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The stream does not start with [`MAGIC`] where a frame should.
    BadMagic,
    /// Unknown frame type byte (or a response type where a request was
    /// expected, and vice versa).
    BadType(u8),
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge(u32),
    /// The CRC-32 footer does not match the frame as read.
    BadCrc {
        /// Checksum computed over the frame as received.
        computed: u32,
        /// Checksum stored in the footer.
        stored: u32,
    },
    /// The payload ended before its structure did, had trailing bytes,
    /// or carried an invalid string.
    Malformed,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "query frame i/o: {e}"),
            ProtoError::Closed => write!(f, "connection closed at frame boundary"),
            ProtoError::BadMagic => write!(f, "bad query frame magic"),
            ProtoError::BadType(t) => write!(f, "unknown query frame type {t}"),
            ProtoError::TooLarge(n) => write!(f, "query frame payload {n} exceeds {MAX_FRAME}"),
            ProtoError::BadCrc { computed, stored } => {
                write!(
                    f,
                    "query frame crc mismatch: computed {computed:#010x}, stored {stored:#010x}"
                )
            }
            ProtoError::Malformed => write!(f, "malformed query frame payload"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// One query, client → server. Intervals are half-open `[from, to)` in
/// detector-interval units, matching `scd query` and the archive API.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Point estimate for one key. `from == to` asks the **live** slim
    /// sketch (the latest interval's forecast error, read-optimized);
    /// `from < to` asks the archive for the key's accumulated error over
    /// the window (exact — the same combine offline `scd query` runs).
    Estimate {
        /// The key to estimate.
        key: u64,
        /// Window start (inclusive), or the live marker when `== to`.
        from: u64,
        /// Window end (exclusive).
        to: u64,
    },
    /// Keys whose accumulated error over `[from, to)` crosses the alarm
    /// bar `threshold · √F2` — the archive's heavy-change query.
    ChangedKeys {
        /// Window start (inclusive).
        from: u64,
        /// Window end (exclusive).
        to: u64,
        /// The paper's detection threshold `T` (e.g. `0.05`).
        threshold: f64,
    },
    /// One key's per-epoch history across `[from, to)`.
    KeyHistory {
        /// The key to trace.
        key: u64,
        /// Window start (inclusive).
        from: u64,
        /// Window end (exclusive).
        to: u64,
    },
    /// Summary of the combined error sketch over `[from, to)`: stream
    /// total and F2 energy (the range's "how much changed overall").
    RangeSketch {
        /// Window start (inclusive).
        from: u64,
        /// Window end (exclusive).
        to: u64,
    },
}

/// One answer, server → client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The question was well-formed but there is nothing to answer from —
    /// the window is empty, the archive holds no epochs yet (warm-up), or
    /// no interval has closed. Not an error: clients print the reason and
    /// move on.
    NoData {
        /// Interval of the view that answered, when one has closed
        /// (`None` only before the first interval boundary) — so even
        /// data-free answers are attributable to a pipeline position.
        as_of: Option<u64>,
        /// Human-readable explanation.
        reason: String,
    },
    /// The query failed (window outside coverage, sketch fault, …). The
    /// connection stays up; only protocol-level corruption tears it down.
    Error {
        /// Interval of the view that answered, when one has closed.
        as_of: Option<u64>,
        /// Human-readable explanation.
        message: String,
    },
    /// Answer to [`Request::Estimate`].
    Estimate {
        /// Interval of the view that answered.
        as_of: u64,
        /// True when the live slim sketch answered (`from == to`); false
        /// for an archive range estimate.
        live: bool,
        /// The point estimate.
        value: f64,
        /// Worst-case |slim − fat| rounding bound for live answers
        /// ([`SlimSketch::error_bound`](crate::SlimSketch::error_bound));
        /// `0.0` for archive answers, which are exact `f64` combines.
        error_bound: f64,
    },
    /// Answer to [`Request::ChangedKeys`].
    ChangedKeys {
        /// Interval of the view that answered.
        as_of: u64,
        /// The window as asked.
        requested: (u64, u64),
        /// The window as answered (snapped outward to epoch bounds).
        covered: (u64, u64),
        /// Epochs summed to answer.
        epochs_used: u64,
        /// `ESTIMATEF2` of the range sketch.
        error_f2: f64,
        /// The alarm bar applied: `threshold · √max(F2, 0)`.
        alarm_threshold: f64,
        /// `(key, magnitude)` pairs, decreasing |magnitude|.
        changes: Vec<(u64, f64)>,
    },
    /// Answer to [`Request::KeyHistory`].
    KeyHistory {
        /// Interval of the view that answered.
        as_of: u64,
        /// The window as answered (snapped outward to epoch bounds).
        covered: (u64, u64),
        /// Per-epoch `(start, len, total, mean)` in ascending time.
        points: Vec<(u64, u64, f64, f64)>,
    },
    /// Answer to [`Request::RangeSketch`].
    RangeSketch {
        /// Interval of the view that answered.
        as_of: u64,
        /// The window as answered (snapped outward to epoch bounds).
        covered: (u64, u64),
        /// Epochs summed to answer.
        epochs_used: u64,
        /// Stream total of the combined error sketch.
        sum: f64,
        /// `ESTIMATEF2` of the combined error sketch.
        error_f2: f64,
    },
}

impl Request {
    fn type_byte(&self) -> u8 {
        match self {
            Request::Estimate { .. } => 0,
            Request::ChangedKeys { .. } => 1,
            Request::KeyHistory { .. } => 2,
            Request::RangeSketch { .. } => 3,
        }
    }

    /// Encodes the request, including magic, length prefix and CRC footer.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            Request::Estimate { key, from, to } => {
                put_u64(&mut payload, *key);
                put_u64(&mut payload, *from);
                put_u64(&mut payload, *to);
            }
            Request::ChangedKeys { from, to, threshold } => {
                put_u64(&mut payload, *from);
                put_u64(&mut payload, *to);
                put_f64(&mut payload, *threshold);
            }
            Request::KeyHistory { key, from, to } => {
                put_u64(&mut payload, *key);
                put_u64(&mut payload, *from);
                put_u64(&mut payload, *to);
            }
            Request::RangeSketch { from, to } => {
                put_u64(&mut payload, *from);
                put_u64(&mut payload, *to);
            }
        }
        seal(self.type_byte(), payload)
    }

    /// Decodes one request from a complete byte buffer.
    ///
    /// # Errors
    /// Any [`ProtoError`] except `Io`/`Closed`.
    pub fn decode(bytes: &[u8]) -> Result<Request, ProtoError> {
        let (ty, payload) = open(bytes)?;
        Request::decode_payload(ty, payload)
    }

    /// Reads exactly one request from a stream. Returns
    /// [`ProtoError::Closed`] on a clean EOF at a frame boundary.
    ///
    /// # Errors
    /// Any [`ProtoError`]; transport failures surface as `Io`.
    pub fn read_from(r: &mut impl Read) -> Result<Request, ProtoError> {
        let (ty, payload) = read_frame(r)?;
        Request::decode_payload(ty, &payload)
    }

    fn decode_payload(ty: u8, payload: &[u8]) -> Result<Request, ProtoError> {
        let mut cur = Cursor::new(payload);
        let req = match ty {
            0 => Request::Estimate {
                key: take_u64(&mut cur)?,
                from: take_u64(&mut cur)?,
                to: take_u64(&mut cur)?,
            },
            1 => Request::ChangedKeys {
                from: take_u64(&mut cur)?,
                to: take_u64(&mut cur)?,
                threshold: take_f64(&mut cur)?,
            },
            2 => Request::KeyHistory {
                key: take_u64(&mut cur)?,
                from: take_u64(&mut cur)?,
                to: take_u64(&mut cur)?,
            },
            3 => Request::RangeSketch { from: take_u64(&mut cur)?, to: take_u64(&mut cur)? },
            other => return Err(ProtoError::BadType(other)),
        };
        if cur.remaining() != 0 {
            return Err(ProtoError::Malformed);
        }
        Ok(req)
    }
}

impl Response {
    fn type_byte(&self) -> u8 {
        match self {
            Response::NoData { .. } => 16,
            Response::Error { .. } => 17,
            Response::Estimate { .. } => 18,
            Response::ChangedKeys { .. } => 19,
            Response::KeyHistory { .. } => 20,
            Response::RangeSketch { .. } => 21,
        }
    }

    /// Encodes the response, including magic, length prefix and CRC
    /// footer.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            Response::NoData { as_of, reason } => {
                put_opt_u64(&mut payload, *as_of);
                put_str(&mut payload, reason);
            }
            Response::Error { as_of, message } => {
                put_opt_u64(&mut payload, *as_of);
                put_str(&mut payload, message);
            }
            Response::Estimate { as_of, live, value, error_bound } => {
                put_u64(&mut payload, *as_of);
                put_u8(&mut payload, u8::from(*live));
                put_f64(&mut payload, *value);
                put_f64(&mut payload, *error_bound);
            }
            Response::ChangedKeys {
                as_of,
                requested,
                covered,
                epochs_used,
                error_f2,
                alarm_threshold,
                changes,
            } => {
                put_u64(&mut payload, *as_of);
                put_u64(&mut payload, requested.0);
                put_u64(&mut payload, requested.1);
                put_u64(&mut payload, covered.0);
                put_u64(&mut payload, covered.1);
                put_u64(&mut payload, *epochs_used);
                put_f64(&mut payload, *error_f2);
                put_f64(&mut payload, *alarm_threshold);
                put_u64(&mut payload, changes.len() as u64);
                for &(key, magnitude) in changes {
                    put_u64(&mut payload, key);
                    put_f64(&mut payload, magnitude);
                }
            }
            Response::KeyHistory { as_of, covered, points } => {
                put_u64(&mut payload, *as_of);
                put_u64(&mut payload, covered.0);
                put_u64(&mut payload, covered.1);
                put_u64(&mut payload, points.len() as u64);
                for &(start, len, total, mean) in points {
                    put_u64(&mut payload, start);
                    put_u64(&mut payload, len);
                    put_f64(&mut payload, total);
                    put_f64(&mut payload, mean);
                }
            }
            Response::RangeSketch { as_of, covered, epochs_used, sum, error_f2 } => {
                put_u64(&mut payload, *as_of);
                put_u64(&mut payload, covered.0);
                put_u64(&mut payload, covered.1);
                put_u64(&mut payload, *epochs_used);
                put_f64(&mut payload, *sum);
                put_f64(&mut payload, *error_f2);
            }
        }
        seal(self.type_byte(), payload)
    }

    /// Decodes one response from a complete byte buffer.
    ///
    /// # Errors
    /// Any [`ProtoError`] except `Io`/`Closed`.
    pub fn decode(bytes: &[u8]) -> Result<Response, ProtoError> {
        let (ty, payload) = open(bytes)?;
        Response::decode_payload(ty, payload)
    }

    /// Reads exactly one response from a stream. Returns
    /// [`ProtoError::Closed`] on a clean EOF at a frame boundary.
    ///
    /// # Errors
    /// Any [`ProtoError`]; transport failures surface as `Io`.
    pub fn read_from(r: &mut impl Read) -> Result<Response, ProtoError> {
        let (ty, payload) = read_frame(r)?;
        Response::decode_payload(ty, &payload)
    }

    fn decode_payload(ty: u8, payload: &[u8]) -> Result<Response, ProtoError> {
        let mut cur = Cursor::new(payload);
        let resp = match ty {
            16 => Response::NoData { as_of: take_opt_u64(&mut cur)?, reason: take_str(&mut cur)? },
            17 => Response::Error { as_of: take_opt_u64(&mut cur)?, message: take_str(&mut cur)? },
            18 => Response::Estimate {
                as_of: take_u64(&mut cur)?,
                live: match take_u8(&mut cur)? {
                    0 => false,
                    1 => true,
                    _ => return Err(ProtoError::Malformed),
                },
                value: take_f64(&mut cur)?,
                error_bound: take_f64(&mut cur)?,
            },
            19 => {
                let as_of = take_u64(&mut cur)?;
                let requested = (take_u64(&mut cur)?, take_u64(&mut cur)?);
                let covered = (take_u64(&mut cur)?, take_u64(&mut cur)?);
                let epochs_used = take_u64(&mut cur)?;
                let error_f2 = take_f64(&mut cur)?;
                let alarm_threshold = take_f64(&mut cur)?;
                let n = bounded_count(&mut cur, 16)?;
                let mut changes = Vec::with_capacity(n);
                for _ in 0..n {
                    changes.push((take_u64(&mut cur)?, take_f64(&mut cur)?));
                }
                Response::ChangedKeys {
                    as_of,
                    requested,
                    covered,
                    epochs_used,
                    error_f2,
                    alarm_threshold,
                    changes,
                }
            }
            20 => {
                let as_of = take_u64(&mut cur)?;
                let covered = (take_u64(&mut cur)?, take_u64(&mut cur)?);
                let n = bounded_count(&mut cur, 32)?;
                let mut points = Vec::with_capacity(n);
                for _ in 0..n {
                    points.push((
                        take_u64(&mut cur)?,
                        take_u64(&mut cur)?,
                        take_f64(&mut cur)?,
                        take_f64(&mut cur)?,
                    ));
                }
                Response::KeyHistory { as_of, covered, points }
            }
            21 => Response::RangeSketch {
                as_of: take_u64(&mut cur)?,
                covered: (take_u64(&mut cur)?, take_u64(&mut cur)?),
                epochs_used: take_u64(&mut cur)?,
                sum: take_f64(&mut cur)?,
                error_f2: take_f64(&mut cur)?,
            },
            other => return Err(ProtoError::BadType(other)),
        };
        if cur.remaining() != 0 {
            return Err(ProtoError::Malformed);
        }
        Ok(resp)
    }
}

/// Wraps a typed payload into a full frame: magic, type, length, CRC.
fn seal(ty: u8, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(13 + payload.len());
    out.extend_from_slice(MAGIC);
    put_u8(&mut out, ty);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Validates framing (magic, length, CRC) on a complete buffer and
/// returns the type byte and payload slice.
fn open(bytes: &[u8]) -> Result<(u8, &[u8]), ProtoError> {
    if bytes.len() < 13 {
        return Err(ProtoError::Malformed);
    }
    if &bytes[..4] != MAGIC {
        return Err(ProtoError::BadMagic);
    }
    let ty = bytes[4];
    let len = u32::from_le_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]);
    if len > MAX_FRAME {
        return Err(ProtoError::TooLarge(len));
    }
    if bytes.len() != 13 + len as usize {
        return Err(ProtoError::Malformed);
    }
    let body_end = bytes.len() - 4;
    let stored = u32::from_le_bytes(bytes[body_end..].try_into().expect("4 bytes"));
    let computed = crc32(&bytes[..body_end]);
    if computed != stored {
        return Err(ProtoError::BadCrc { computed, stored });
    }
    Ok((ty, &bytes[9..body_end]))
}

/// Reads one framed message off a stream and verifies its CRC; the
/// caller dispatches on the type byte.
fn read_frame(r: &mut impl Read) -> Result<(u8, Vec<u8>), ProtoError> {
    let mut header = [0u8; 9];
    read_exact_or_closed(r, &mut header, true)?;
    if &header[..4] != MAGIC {
        return Err(ProtoError::BadMagic);
    }
    let len = u32::from_le_bytes([header[5], header[6], header[7], header[8]]);
    if len > MAX_FRAME {
        return Err(ProtoError::TooLarge(len));
    }
    let mut rest = vec![0u8; len as usize + 4];
    read_exact_or_closed(r, &mut rest, false)?;
    let (payload, footer) = rest.split_at(len as usize);
    let stored = u32::from_le_bytes(footer.try_into().expect("4 bytes"));
    let mut crc = scd_hash::Crc32::new();
    crc.update(&header);
    crc.update(payload);
    let computed = crc.finalize();
    if computed != stored {
        return Err(ProtoError::BadCrc { computed, stored });
    }
    let mut out = rest;
    out.truncate(len as usize);
    Ok((header[4], out))
}

/// `read_exact` that maps EOF to [`ProtoError::Closed`] only when it
/// happens at a frame boundary (`at_boundary`); EOF mid-frame is a
/// truncation and stays an `Io` error.
fn read_exact_or_closed(
    r: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
) -> Result<(), ProtoError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if at_boundary && filled == 0 {
                    Err(ProtoError::Closed)
                } else {
                    Err(ProtoError::Io(std::io::ErrorKind::UnexpectedEof.into()))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(())
}

fn take_u8(cur: &mut Cursor<'_>) -> Result<u8, ProtoError> {
    cur.u8().map_err(|_| ProtoError::Malformed)
}

fn take_u64(cur: &mut Cursor<'_>) -> Result<u64, ProtoError> {
    cur.u64().map_err(|_| ProtoError::Malformed)
}

fn take_f64(cur: &mut Cursor<'_>) -> Result<f64, ProtoError> {
    cur.f64().map_err(|_| ProtoError::Malformed)
}

/// Reads an element count and sanity-bounds it by the bytes actually
/// remaining (`elem_bytes` per element), so a hostile count cannot drive
/// `Vec::with_capacity` past the frame it arrived in.
fn bounded_count(cur: &mut Cursor<'_>, elem_bytes: usize) -> Result<usize, ProtoError> {
    let n = take_u64(cur)?;
    if n as usize > cur.remaining() / elem_bytes {
        return Err(ProtoError::Malformed);
    }
    Ok(n as usize)
}

/// An optional u64 on the wire: one presence byte (`0`/`1`), then the
/// value when present. Any other presence byte is malformed.
fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            put_u8(buf, 1);
            put_u64(buf, v);
        }
        None => put_u8(buf, 0),
    }
}

fn take_opt_u64(cur: &mut Cursor<'_>) -> Result<Option<u64>, ProtoError> {
    match take_u8(cur)? {
        0 => Ok(None),
        1 => Ok(Some(take_u64(cur)?)),
        _ => Err(ProtoError::Malformed),
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn take_str(cur: &mut Cursor<'_>) -> Result<String, ProtoError> {
    let len = take_u64(cur)?;
    if len as usize > cur.remaining() {
        return Err(ProtoError::Malformed);
    }
    let bytes = cur.take(len as usize).map_err(|_| ProtoError::Malformed)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::Malformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Estimate { key: 0xDEAD_BEEF, from: 7, to: 7 },
            Request::Estimate { key: 1, from: 0, to: 12 },
            Request::ChangedKeys { from: 3, to: 9, threshold: 0.05 },
            Request::KeyHistory { key: u64::MAX, from: 0, to: u64::MAX },
            Request::RangeSketch { from: 2, to: 6 },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::NoData { as_of: None, reason: "no epochs yet".into() },
            Response::NoData { as_of: Some(7), reason: "window [3, 3) is empty".into() },
            Response::Error { as_of: None, message: "window [9, 3) is empty".into() },
            Response::Error { as_of: Some(31), message: "window outside coverage".into() },
            Response::Estimate { as_of: 12, live: true, value: -42.5, error_bound: 1e-4 },
            Response::Estimate { as_of: 12, live: false, value: 0.0, error_bound: 0.0 },
            Response::ChangedKeys {
                as_of: 31,
                requested: (3, 9),
                covered: (2, 10),
                epochs_used: 4,
                error_f2: 123.5,
                alarm_threshold: 0.55,
                changes: vec![(9, 100.0), (4, -55.5)],
            },
            Response::KeyHistory {
                as_of: 31,
                covered: (0, 8),
                points: vec![(0, 4, 20.0, 5.0), (4, 2, -3.0, -1.5), (6, 1, 0.0, 0.0)],
            },
            Response::RangeSketch {
                as_of: 31,
                covered: (2, 10),
                epochs_used: 4,
                sum: 1e9,
                error_f2: f64::MAX,
            },
        ]
    }

    #[test]
    fn requests_round_trip_buffers_and_streams() {
        for req in sample_requests() {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req);
            let mut stream = std::io::Cursor::new(bytes);
            assert_eq!(Request::read_from(&mut stream).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip_buffers_and_streams() {
        for resp in sample_responses() {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), resp);
            let mut stream = std::io::Cursor::new(bytes);
            assert_eq!(Response::read_from(&mut stream).unwrap(), resp);
        }
    }

    #[test]
    fn back_to_back_frames_read_in_order() {
        let mut wire = Vec::new();
        let reqs = sample_requests();
        for req in &reqs {
            wire.extend_from_slice(&req.encode());
        }
        let mut stream = std::io::Cursor::new(wire);
        for req in &reqs {
            assert_eq!(&Request::read_from(&mut stream).unwrap(), req);
        }
        assert!(matches!(Request::read_from(&mut stream), Err(ProtoError::Closed)));
    }

    /// Request and response type ranges are disjoint: parsing a response
    /// as a request (or vice versa) fails at the type byte.
    #[test]
    fn crossed_roles_fail_at_type_byte() {
        let req = Request::RangeSketch { from: 0, to: 4 }.encode();
        assert!(matches!(Response::decode(&req), Err(ProtoError::BadType(3))));
        let resp = Response::NoData { as_of: None, reason: "x".into() }.encode();
        assert!(matches!(Request::decode(&resp), Err(ProtoError::BadType(16))));
    }

    /// Every single-bit flip anywhere in a frame is caught — by the CRC,
    /// or by a check that fires before the CRC (magic, length, type).
    #[test]
    fn every_bit_flip_is_detected() {
        let frames: Vec<Vec<u8>> = sample_requests()
            .iter()
            .map(Request::encode)
            .chain(sample_responses().iter().map(Response::encode))
            .collect();
        for bytes in frames {
            for pos in 0..bytes.len() {
                for bit in 0..8 {
                    let mut corrupt = bytes.clone();
                    corrupt[pos] ^= 1 << bit;
                    assert!(
                        Request::decode(&corrupt).is_err() && Response::decode(&corrupt).is_err(),
                        "flip at byte {pos} bit {bit} went undetected"
                    );
                }
            }
        }
    }

    /// Every truncation errors; a zero-byte stream is a clean close.
    #[test]
    fn every_truncation_is_detected() {
        let bytes = Response::ChangedKeys {
            as_of: 1,
            requested: (0, 4),
            covered: (0, 4),
            epochs_used: 2,
            error_f2: 9.0,
            alarm_threshold: 0.3,
            changes: vec![(1, 2.0), (3, -4.0)],
        }
        .encode();
        for keep in 0..bytes.len() {
            let cut = &bytes[..keep];
            assert!(Response::decode(cut).is_err(), "buffer truncated to {keep} decoded");
            let mut stream = std::io::Cursor::new(cut.to_vec());
            let err = Response::read_from(&mut stream).unwrap_err();
            if keep == 0 {
                assert!(matches!(err, ProtoError::Closed));
            } else {
                assert!(!matches!(err, ProtoError::Closed), "truncation at {keep} read as Closed");
            }
        }
    }

    /// Hostile length prefixes (with the CRC fixed up to match) are
    /// rejected without huge allocations.
    #[test]
    fn hostile_lengths_are_rejected() {
        let mut bytes = Request::RangeSketch { from: 0, to: 4 }.encode();
        // Claim a payload just over MAX_FRAME.
        let huge = (MAX_FRAME + 1).to_le_bytes();
        bytes[5..9].copy_from_slice(&huge);
        let body_end = bytes.len() - 4;
        let crc = crc32(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(Request::decode(&bytes), Err(ProtoError::TooLarge(_))));
        let mut stream = std::io::Cursor::new(bytes);
        assert!(matches!(Request::read_from(&mut stream), Err(ProtoError::TooLarge(_))));
    }

    /// A hostile element count inside a valid frame (CRC fixed up) cannot
    /// drive allocation past the frame's actual size.
    #[test]
    fn hostile_element_counts_are_rejected() {
        let resp = Response::KeyHistory { as_of: 1, covered: (0, 4), points: vec![] };
        let mut bytes = resp.encode();
        // The count field sits right after as_of (8) + covered (16) in the
        // payload, which starts at offset 9.
        let count_at = 9 + 24;
        bytes[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let body_end = bytes.len() - 4;
        let crc = crc32(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(Response::decode(&bytes), Err(ProtoError::Malformed)));
    }

    /// Unknown type bytes are rejected by name.
    #[test]
    fn unknown_types_are_rejected() {
        let mut bytes = Request::RangeSketch { from: 0, to: 4 }.encode();
        bytes[4] = 250;
        let body_end = bytes.len() - 4;
        let crc = crc32(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(Request::decode(&bytes), Err(ProtoError::BadType(250))));
        assert!(matches!(Response::decode(&bytes), Err(ProtoError::BadType(250))));
    }

    /// Trailing bytes after a well-formed payload are malformed, even
    /// with a matching CRC.
    #[test]
    fn trailing_payload_bytes_are_malformed() {
        let mut payload = Vec::new();
        put_u64(&mut payload, 0);
        put_u64(&mut payload, 4);
        put_u8(&mut payload, 0xEE);
        let bytes = seal(0x03, payload);
        assert!(matches!(Request::decode(&bytes), Err(ProtoError::Malformed)));
    }

    /// Non-UTF-8 string bytes are malformed, not a panic.
    #[test]
    fn invalid_utf8_strings_are_malformed() {
        let mut payload = Vec::new();
        put_u8(&mut payload, 0); // as_of absent
        put_u64(&mut payload, 2);
        payload.extend_from_slice(&[0xFF, 0xFE]);
        let bytes = seal(16, payload);
        assert!(matches!(Response::decode(&bytes), Err(ProtoError::Malformed)));
    }

    /// A presence byte other than 0/1 for the optional as_of is
    /// malformed.
    #[test]
    fn invalid_presence_bytes_are_malformed() {
        let mut payload = Vec::new();
        put_u8(&mut payload, 2); // neither absent nor present
        put_str(&mut payload, "reason");
        let bytes = seal(16, payload);
        assert!(matches!(Response::decode(&bytes), Err(ProtoError::Malformed)));
    }

    /// Bad magic is reported as such.
    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = Request::RangeSketch { from: 0, to: 4 }.encode();
        bytes[..4].copy_from_slice(b"SCDN");
        assert!(matches!(Request::decode(&bytes), Err(ProtoError::BadMagic)));
        let mut stream = std::io::Cursor::new(bytes);
        assert!(matches!(Request::read_from(&mut stream), Err(ProtoError::BadMagic)));
    }
}
