//! The read-optimized **slim sketch** — the "fat-free" second stage of an
//! SF-sketch pair (Yang et al.) — and [`SlimEpoch`], its archive form.
//!
//! The engine's k-ary sketch is update-optimized: `f64` registers, no
//! derived state, so UPDATE is `H` adds and COMBINE is exact. Point
//! queries against it, however, pay an `O(K)` scan per fresh sketch —
//! `ESTIMATE` needs the stream total `sum(S)`, which the paper computes
//! "once before any ESTIMATE is called" — and drag `8·H·K` bytes through
//! the cache. The slim sketch is the read-side companion:
//!
//! * **`f32` registers** — half the table bytes of the fat sketch, so the
//!   same memory budget holds twice the history and far more of it stays
//!   cache-resident under a query storm;
//! * **per-row totals precomputed** — maintained incrementally in `f64`,
//!   so a point query touches exactly `H` cells and `ESTIMATEF2` never
//!   rescans a row for its total;
//! * **synced at interval boundaries** — [`SlimSketch::from_fat`] /
//!   [`SlimSketch::sync`] rebuild it from the fat sketch at interval
//!   close (the handoff the serving plane publishes), and
//!   [`SlimSketch::update`] mirrors write-path updates in between for
//!   intra-interval freshness.
//!
//! Since PR 9 the slim sketch is also a full [`LinearSketch`]: COMBINE
//! runs **lanewise in `f32`** (through the eight-lane kernels in
//! [`scd_sketch::simd`]), which is what lets the serving plane's replica
//! archive store *slim epochs* and answer every historical query from
//! `f32` state. The price is `f64 → f32` rounding, and the bound is
//! knowable and **composable**: [`SlimSketch::error_bound`] returns a
//! conservative per-estimate envelope derived from the largest magnitude
//! the table has held and the number of rounded operations each cell may
//! have absorbed — [`add_scaled`](SlimSketch::add_scaled) and
//! [`scale`](SlimSketch::scale) widen the envelope so a buddy-merged
//! epoch's bound always dominates each constituent's. For integer cells
//! below 2²⁴ (packet/byte counts in one interval) every rounding is
//! exact and slim answers equal fat answers **bit for bit** — the
//! property tests below assert both regimes.

use crate::shared::SharedSketch;
use scd_hash::HashRows;
use scd_sketch::{
    median_over_rows, simd, KarySketch, LinearSketch, PointEstimate, SecondMoment, SketchError,
};
use std::sync::Arc;

/// One slim archive epoch: a copy-on-write handle on a [`SlimSketch`].
/// The serving replica is a `SketchArchive<SlimEpoch>` — snapshots clone
/// as `Arc` bumps, buddy merges combine lanewise in `f32`, and every
/// historical query (`range_sketch` / `key_history` / `changed_keys`)
/// answers from `f32` state with the composed
/// [`error_bound`](SlimSketch::error_bound) envelope.
pub type SlimEpoch = SharedSketch<SlimSketch>;

/// Reused buffers for [`SlimSketch::estimate_batch`]; keep one per query
/// thread and the batch path allocates nothing in steady state.
#[derive(Debug, Default)]
pub struct SlimScratch {
    buckets: Vec<usize>,
    values: Vec<f64>,
    per_row: Vec<f64>,
}

impl SlimScratch {
    /// An empty scratch; buffers are sized lazily by the first batch.
    pub fn new() -> Self {
        SlimScratch::default()
    }
}

/// A compact read-optimized projection of a [`KarySketch`]: `f32`
/// registers plus per-row totals and the rounding envelope maintained
/// incrementally. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct SlimSketch {
    rows: Arc<HashRows>,
    /// Row-major `H × K` register table, `f32`.
    table: Vec<f32>,
    /// Per-row totals `Σ_j T[i][j]`, carried in full `f64` precision —
    /// row 0 is the stream total the fat sketch recomputes by scanning,
    /// and each row's own total feeds its `ESTIMATEF2` term.
    row_sums: Vec<f64>,
    /// Largest `|cell|` magnitude the envelope must cover — an upper
    /// bound on every cell (and every rounded intermediate) since the
    /// last [`sync`](Self::sync).
    max_abs: f64,
    /// Rounded `f32` operations a cell may have absorbed since the last
    /// sync: 1 for the sync itself, one per incremental update, and two
    /// (multiply + add) per [`add_scaled`](Self::add_scaled) term.
    roundings: u64,
}

impl SlimSketch {
    /// Builds a slim sketch from a fat one (the interval-close path).
    pub fn from_fat(fat: &KarySketch) -> SlimSketch {
        let mut slim = SlimSketch::zeroed(fat.rows());
        slim.sync(fat);
        slim
    }

    /// An all-zero slim sketch over `rows` — the identity for
    /// [`add_scaled`](Self::add_scaled), used for the replica archive's
    /// zero back-fill epochs. A zero table has absorbed no roundings, so
    /// its [`error_bound`](Self::error_bound) is exactly zero.
    pub fn zeroed(rows: &Arc<HashRows>) -> SlimSketch {
        SlimSketch {
            rows: Arc::clone(rows),
            table: vec![0.0; rows.h() * rows.k()],
            row_sums: vec![0.0; rows.h()],
            max_abs: 0.0,
            roundings: 0,
        }
    }

    /// Re-projects `fat` into this slim sketch without reallocating —
    /// the steady-state interval-boundary refresh.
    ///
    /// # Panics
    /// Panics if `fat` belongs to a different hash family (the serving
    /// plane always syncs against the one detector family).
    pub fn sync(&mut self, fat: &KarySketch) {
        assert_eq!(
            self.rows.identity(),
            fat.rows().identity(),
            "slim sketch must sync against its own hash family"
        );
        let k = self.k();
        let mut max_abs = 0.0f64;
        for (row, row_sum) in self.row_sums.iter_mut().enumerate() {
            let src = &fat.table()[row * k..(row + 1) * k];
            let dst = &mut self.table[row * k..(row + 1) * k];
            // Accumulate the row total in element order — row 0 then
            // matches `KarySketch::sum` bit for bit.
            let mut total = 0.0f64;
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s as f32;
                total += s;
                max_abs = max_abs.max(s.abs());
            }
            *row_sum = total;
        }
        self.max_abs = max_abs;
        self.roundings = 1;
    }

    /// Number of hash rows `H`.
    pub fn h(&self) -> usize {
        self.rows.h()
    }

    /// Buckets per row `K`.
    pub fn k(&self) -> usize {
        self.rows.k()
    }

    /// The hash family shared with the fat sketch.
    pub fn rows(&self) -> &Arc<HashRows> {
        &self.rows
    }

    /// Raw `f32` register table (row-major, length `H·K`). Exposed
    /// read-only for diagnostics and the bit-identity soak assertions.
    pub fn table(&self) -> &[f32] {
        &self.table
    }

    /// Heap bytes of the register table — half the fat sketch's.
    pub fn memory_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<f32>()
    }

    /// The maintained stream total (row 0's running sum; no row scan).
    pub fn sum(&self) -> f64 {
        self.row_sums[0]
    }

    /// The maintained per-row totals (one `f64` per hash row).
    pub fn row_sums(&self) -> &[f64] {
        &self.row_sums
    }

    /// Mirrors one write-path `UPDATE` into the slim table — the
    /// intra-interval freshness path when the serving plane tracks
    /// updates between syncs. Arithmetic is performed in `f64` and
    /// rounded once per cell, so integer streams below 2²⁴ stay exact.
    #[inline]
    pub fn update(&mut self, key: u64, value: f64) {
        let k = self.k();
        for row in 0..self.h() {
            let bucket = self.rows.bucket(row, key);
            let cell = &mut self.table[row * k + bucket];
            let next = f64::from(*cell) + value;
            *cell = next as f32;
            self.max_abs = self.max_abs.max(next.abs());
            self.row_sums[row] += value;
        }
        self.roundings += 1;
    }

    /// In-place `self += c · other`, **lanewise in `f32`** (the eight-lane
    /// [`simd::add_scaled_f32`] sweep) — the slim archive's buddy-merge
    /// arithmetic. The coefficient is rounded to `f32` once and applied
    /// identically to every cell; per-row totals fold linearly in `f64`;
    /// the rounding envelope composes so the result's
    /// [`error_bound`](Self::error_bound) dominates both constituents'
    /// (each cell absorbs at most two new rounded operations — multiply
    /// and add — at magnitudes the widened `max_abs` covers).
    ///
    /// # Errors
    /// [`SketchError::IncompatibleSketches`] if the hash families differ.
    pub fn add_scaled(&mut self, other: &SlimSketch, c: f64) -> Result<(), SketchError> {
        if self.rows.identity() != other.rows.identity() {
            return Err(SketchError::IncompatibleSketches {
                left: self.rows.identity(),
                right: other.rows.identity(),
            });
        }
        #[allow(clippy::cast_possible_truncation)]
        let cf = c as f32;
        simd::add_scaled_f32(simd::active(), &mut self.table, &other.table, cf);
        let ca = f64::from(cf).abs();
        for (dst, &src) in self.row_sums.iter_mut().zip(&other.row_sums) {
            *dst += f64::from(cf) * src;
        }
        self.max_abs += ca * other.max_abs;
        self.roundings = self.roundings + other.roundings + 2;
        Ok(())
    }

    /// In-place `self *= c`, lanewise in `f32` ([`simd::scale_f32`]).
    /// One rounded operation per cell; the envelope's magnitude ceiling
    /// only ever widens (`max_abs · max(1, |c|)`), keeping
    /// [`error_bound`](Self::error_bound) monotone.
    pub fn scale(&mut self, c: f64) {
        #[allow(clippy::cast_possible_truncation)]
        let cf = c as f32;
        simd::scale_f32(simd::active(), &mut self.table, cf);
        for s in &mut self.row_sums {
            *s *= f64::from(cf);
        }
        self.max_abs *= f64::from(cf).abs().max(1.0);
        self.roundings += 1;
    }

    /// **ESTIMATE** against the slim table: the paper's
    /// `median_i (T[i][h_i(key)] − sum/K) / (1 − 1/K)` with the stream
    /// total read from the maintained row-0 sum — `H` cell loads, no row
    /// scan. Per-row arithmetic is `f64`; the only precision lost is the
    /// cells' storage rounding, bounded by
    /// [`error_bound`](Self::error_bound).
    pub fn estimate(&self, key: u64) -> f64 {
        let k = self.k() as f64;
        let kk = self.k();
        let sum = self.row_sums[0];
        median_over_rows(self.h(), |row| {
            let cell = f64::from(self.table[row * kk + self.rows.bucket(row, key)]);
            (cell - sum / k) / (1.0 - 1.0 / k)
        })
    }

    /// **ESTIMATE** over a block of keys: appends one estimate per key to
    /// `out`, equal to calling [`estimate`](Self::estimate) per key in
    /// order (the batch-vs-scalar property test asserts exact `==`), but
    /// restructured like the fat sketch's `estimate_batch` — hash phase,
    /// per-row gather-and-widen phase ([`simd::gather_widen_f32`], eight
    /// cells per step), estimator transform over the whole block, then
    /// per-key medians — so each `4·K`-byte register row stays hot for
    /// the whole block. `out` is cleared first.
    pub fn estimate_batch(&self, keys: &[u64], scratch: &mut SlimScratch, out: &mut Vec<f64>) {
        out.clear();
        let n = keys.len();
        if n == 0 {
            return;
        }
        let h = self.h();
        let kk = self.k();
        let kf = kk as f64;
        scratch.buckets.clear();
        scratch.buckets.resize(h * n, 0);
        self.rows.buckets_batch(keys, &mut scratch.buckets);
        scratch.values.clear();
        scratch.values.resize(h * n, 0.0);
        let variant = simd::active();
        for row in 0..h {
            let cells = &self.table[row * kk..(row + 1) * kk];
            let row_buckets = &scratch.buckets[row * n..(row + 1) * n];
            let vals = &mut scratch.values[row * n..(row + 1) * n];
            simd::gather_widen_f32(variant, vals, cells, row_buckets);
        }
        // Apply the per-cell estimator transform to the whole widened
        // block up front (same subtract-and-divide per element as the
        // per-key formula), so the median phase is pure data movement.
        simd::estimate_transform(variant, &mut scratch.values, self.row_sums[0], kf);
        scratch.per_row.clear();
        scratch.per_row.resize(h, 0.0);
        out.reserve(n);
        for i in 0..n {
            for (row, per_row) in scratch.per_row.iter_mut().enumerate() {
                *per_row = scratch.values[row * n + i];
            }
            out.push(scd_sketch::median::median_inplace(&mut scratch.per_row));
        }
    }

    /// **ESTIMATEF2** from `f32` state: the fat formula
    /// `median_i [ K/(K−1) · Σ_j T[i][j]² − sum²/(K−1) ]` with each row's
    /// squared sum accumulated in `f64` over the widened cells and the
    /// `sum` term read from that row's **maintained** total. For integer
    /// streams both quantities equal the fat sketch's exactly, so the F2
    /// estimate is bit-identical; for fractional streams the per-row
    /// totals are the linear fold of the constituents' (not a rescan),
    /// which tracks the same value to within the storage rounding.
    pub fn estimate_f2(&self) -> f64 {
        let k = self.k() as f64;
        let kk = self.k();
        median_over_rows(self.h(), |row| {
            let row_slice = &self.table[row * kk..(row + 1) * kk];
            let sq: f64 = row_slice
                .iter()
                .map(|&x| {
                    let v = f64::from(x);
                    v * v
                })
                .sum();
            let sum = self.row_sums[row];
            (k / (k - 1.0)) * sq - (sum * sum) / (k - 1.0)
        })
    }

    /// A conservative bound on `|slim.estimate(key) − fat.estimate(key)|`
    /// against the `f64` state that would result from the same operation
    /// sequence (sync, updates, combines) in full precision.
    ///
    /// Each cell has absorbed at most `roundings` rounded `f32`
    /// operations, each off by at most half an ulp at the envelope's
    /// magnitude ceiling: `max_abs · 2⁻²⁴`. The estimator divides a cell
    /// difference by `(1 − 1/K)`, so per estimate:
    ///
    /// ```text
    /// bound = roundings · max_abs · 2⁻²⁴ / (1 − 1/K)
    /// ```
    ///
    /// The median across rows cannot exceed the worst row, so the bound
    /// survives the reduction. Composition keeps it an upper envelope:
    /// `add_scaled` sums both operands' roundings (plus two for its own
    /// multiply-add) under a ceiling that dominates both tables, and
    /// `scale` adds one rounding under a never-shrinking ceiling — so a
    /// merged epoch's bound is always ≥ each constituent's. For tables
    /// whose cells are integers below 2²⁴ every rounding is exact and
    /// the true error is zero — the bound is an envelope, not an
    /// estimate.
    pub fn error_bound(&self) -> f64 {
        let k = self.k() as f64;
        (self.roundings as f64) * self.max_abs * 2f64.powi(-24) / (1.0 - 1.0 / k)
    }
}

impl PointEstimate for SlimSketch {
    fn estimate(&self, key: u64) -> f64 {
        SlimSketch::estimate(self, key)
    }
}

impl SecondMoment for SlimSketch {
    fn estimate_f2(&self) -> f64 {
        SlimSketch::estimate_f2(self)
    }
}

impl LinearSketch for SlimSketch {
    fn zero_like(&self) -> Self {
        SlimSketch::zeroed(&self.rows)
    }

    fn add_scaled(&mut self, other: &Self, c: f64) -> Result<(), SketchError> {
        SlimSketch::add_scaled(self, other, c)
    }

    fn scale(&mut self, c: f64) {
        SlimSketch::scale(self, c);
    }

    fn identity(&self) -> (usize, usize, u64) {
        self.rows.identity()
    }

    fn memory_bytes(&self) -> usize {
        SlimSketch::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_sketch::SketchConfig;

    fn fat(seed: u64) -> KarySketch {
        KarySketch::new(SketchConfig { h: 5, k: 1024, seed })
    }

    /// Integer update streams (counts below 2²⁴) round-trip `f32`
    /// exactly, so slim estimates equal fat estimates bit for bit.
    #[test]
    fn integer_cells_estimate_exactly_equal_to_fat() {
        let mut f = fat(7);
        for key in 0..400u64 {
            f.update(key, ((key * 37) % 5000 + 1) as f64);
        }
        let slim = SlimSketch::from_fat(&f);
        let est = f.estimator();
        for key in 0..400u64 {
            let (a, b) = (slim.estimate(key), est.estimate(key));
            assert_eq!(a.to_bits(), b.to_bits(), "key {key}: slim {a} vs fat {b}");
        }
        assert_eq!(slim.error_bound(), slim.error_bound().abs());
        assert_eq!(slim.estimate_f2().to_bits(), f.estimate_f2().to_bits());
    }

    /// Fractional cells pick up `f32` rounding; the error must stay
    /// within the advertised bound.
    #[test]
    fn fractional_cells_stay_within_error_bound() {
        let mut f = fat(8);
        for key in 0..400u64 {
            f.update(key, (key as f64 + 0.1) * 1.000_000_7);
        }
        let slim = SlimSketch::from_fat(&f);
        let bound = slim.error_bound();
        assert!(bound > 0.0);
        let est = f.estimator();
        for key in 0..400u64 {
            let err = (slim.estimate(key) - est.estimate(key)).abs();
            assert!(err <= bound, "key {key}: error {err} exceeds bound {bound}");
        }
    }

    /// Mirroring updates incrementally lands in the same state as
    /// rebuilding from the fat sketch, for integer streams.
    #[test]
    fn incremental_update_matches_rebuild_on_integer_streams() {
        let mut f = fat(9);
        for key in 0..64u64 {
            f.update(key, (key + 1) as f64);
        }
        let mut incremental = SlimSketch::from_fat(&f);
        for key in 0..64u64 {
            let v = ((key * 13) % 200 + 1) as f64;
            f.update(key, v);
            incremental.update(key, v);
        }
        let rebuilt = SlimSketch::from_fat(&f);
        for key in 0..64u64 {
            let (a, b) = (incremental.estimate(key), rebuilt.estimate(key));
            assert_eq!(a.to_bits(), b.to_bits(), "key {key}: incremental {a} vs rebuilt {b}");
        }
        // The incremental bound is wider (one rounding per update) but
        // still finite and monotone in the update count.
        assert!(incremental.error_bound() >= rebuilt.error_bound());
    }

    /// `estimate_batch` is a pure restructuring of the scalar loop.
    #[test]
    fn batch_estimates_equal_scalar_estimates() {
        let mut f = fat(10);
        for key in 0..300u64 {
            f.update(key * 3 + 1, ((key % 97) + 1) as f64 * 1.5);
        }
        let slim = SlimSketch::from_fat(&f);
        let keys: Vec<u64> = (0..300u64).map(|k| k * 3 + 1).collect();
        let mut scratch = SlimScratch::new();
        let mut out = Vec::new();
        slim.estimate_batch(&keys, &mut scratch, &mut out);
        assert_eq!(out.len(), keys.len());
        for (i, &key) in keys.iter().enumerate() {
            let scalar = slim.estimate(key);
            assert_eq!(
                out[i].to_bits(),
                scalar.to_bits(),
                "key {key}: batch {} vs scalar {scalar}",
                out[i]
            );
        }
        // Reusing the scratch (second call) must not change anything.
        let mut again = Vec::new();
        slim.estimate_batch(&keys, &mut scratch, &mut again);
        assert_eq!(out, again);
        // Empty key set clears the output.
        slim.estimate_batch(&[], &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    /// The maintained per-row sums track the fat sketch's row scans.
    #[test]
    fn maintained_sums_match_fat_scan() {
        let mut f = fat(11);
        let mut slim = SlimSketch::from_fat(&f);
        for key in 0..100u64 {
            let v = (key % 10 + 1) as f64;
            f.update(key, v);
            slim.update(key, v);
        }
        assert_eq!(slim.sum(), f.sum());
        slim.sync(&f);
        assert_eq!(slim.sum().to_bits(), f.sum().to_bits());
        assert_eq!(slim.row_sums().len(), slim.h());
        for &rs in slim.row_sums() {
            assert_eq!(rs, f.sum(), "every row total equals the stream total");
        }
        assert_eq!(slim.memory_bytes() * 2, f.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "hash family")]
    fn sync_rejects_foreign_family() {
        let a = fat(1);
        let b = fat(2);
        let mut slim = SlimSketch::from_fat(&a);
        slim.sync(&b);
    }

    /// Slim COMBINE on integer streams equals the fat COMBINE bit for
    /// bit: merging archive epochs in `f32` loses nothing while cells
    /// stay integer-exact.
    #[test]
    fn integer_combine_matches_fat_combine_exactly() {
        let mut fa = fat(21);
        let mut fb = fat(21);
        for key in 0..200u64 {
            fa.update(key, ((key * 7) % 900 + 1) as f64);
            fb.update(key * 2 + 1, ((key * 11) % 400 + 1) as f64);
        }
        let mut slim = SlimSketch::from_fat(&fa);
        slim.add_scaled(&SlimSketch::from_fat(&fb), 1.0).unwrap();
        let mut merged_fat = fa.clone();
        merged_fat.add_scaled(&fb, 1.0).unwrap();
        let est = merged_fat.estimator();
        for key in 0..200u64 {
            assert_eq!(slim.estimate(key).to_bits(), est.estimate(key).to_bits(), "key {key}");
        }
        assert_eq!(slim.estimate_f2().to_bits(), merged_fat.estimate_f2().to_bits());
        assert_eq!(slim.sum(), merged_fat.sum());
    }

    /// The buddy-merge envelope composes: a merged pair's bound is ≥
    /// each constituent's, and fractional merges stay within it against
    /// the fat ground truth.
    #[test]
    fn merged_envelope_dominates_constituents_and_holds() {
        let mut fa = fat(22);
        let mut fb = fat(22);
        for key in 0..300u64 {
            fa.update(key, (key as f64 + 0.3) * 1.000_001_3);
            fb.update(key, (key as f64 * 0.7 + 0.1) * 0.999_998_9);
        }
        let sa = SlimSketch::from_fat(&fa);
        let sb = SlimSketch::from_fat(&fb);
        let mut merged = sa.clone();
        merged.add_scaled(&sb, 1.0).unwrap();
        assert!(merged.error_bound() >= sa.error_bound());
        assert!(merged.error_bound() >= sb.error_bound());
        let mut merged_fat = fa.clone();
        merged_fat.add_scaled(&fb, 1.0).unwrap();
        let bound = merged.error_bound();
        let est = merged_fat.estimator();
        for key in 0..300u64 {
            let err = (merged.estimate(key) - est.estimate(key)).abs();
            assert!(err <= bound, "key {key}: error {err} exceeds composed bound {bound}");
        }
        // scale() also only widens the envelope.
        let before = merged.error_bound();
        merged.scale(1.5);
        assert!(merged.error_bound() >= before);
    }

    /// The linear-trait surface: zero identity, family checks, memory.
    #[test]
    fn linear_trait_surface() {
        let mut f = fat(23);
        for key in 0..50u64 {
            f.update(key, (key + 1) as f64);
        }
        let slim = SlimSketch::from_fat(&f);
        let zero = LinearSketch::zero_like(&slim);
        assert_eq!(zero.sum(), 0.0);
        assert_eq!(zero.error_bound(), 0.0);
        assert_eq!(LinearSketch::identity(&zero), slim.rows().identity());
        let mut merged = zero.clone();
        merged.add_scaled(&slim, 1.0).unwrap();
        for key in 0..50u64 {
            assert_eq!(merged.estimate(key).to_bits(), slim.estimate(key).to_bits());
        }
        let foreign = SlimSketch::from_fat(&fat(99));
        assert!(matches!(
            merged.add_scaled(&foreign, 1.0),
            Err(SketchError::IncompatibleSketches { .. })
        ));
        assert_eq!(LinearSketch::memory_bytes(&slim), slim.table().len() * 4);
    }
}
