//! The read-optimized **slim sketch** — the "fat-free" second stage of an
//! SF-sketch pair (Yang et al.).
//!
//! The engine's k-ary sketch is update-optimized: `f64` registers, no
//! derived state, so UPDATE is `H` adds and COMBINE is exact. Point
//! queries against it, however, pay an `O(K)` scan per fresh sketch —
//! `ESTIMATE` needs the stream total `sum(S)`, which the paper computes
//! "once before any ESTIMATE is called" — and drag `8·H·K` bytes through
//! the cache. The slim sketch is the read-side companion:
//!
//! * **`f32` registers** — half the table bytes of the fat sketch, so far
//!   more of it stays cache-resident under a query storm;
//! * **the stream total precomputed** — maintained incrementally, so a
//!   point query touches exactly `H` cells and never rescans a row;
//! * **synced at interval boundaries** — [`SlimSketch::from_fat`] /
//!   [`SlimSketch::sync`] rebuild it from the fat sketch at interval
//!   close (the handoff the serving plane publishes), and
//!   [`SlimSketch::update`] mirrors write-path updates in between for
//!   intra-interval freshness.
//!
//! The price is `f64 → f32` rounding, and the bound is knowable:
//! [`SlimSketch::error_bound`] returns a conservative per-estimate bound
//! derived from the largest magnitude the table has held. For integer
//! cells below 2²⁴ (packet/byte counts in one interval) the rounding is
//! zero and slim estimates equal fat estimates **exactly** — the property
//! tests below assert both regimes.

use scd_hash::HashRows;
use scd_sketch::{median_over_rows, KarySketch};
use std::sync::Arc;

/// Reused buffers for [`SlimSketch::estimate_batch`]; keep one per query
/// thread and the batch path allocates nothing in steady state.
#[derive(Debug, Default)]
pub struct SlimScratch {
    buckets: Vec<usize>,
    values: Vec<f64>,
    per_row: Vec<f64>,
}

impl SlimScratch {
    /// An empty scratch; buffers are sized lazily by the first batch.
    pub fn new() -> Self {
        SlimScratch::default()
    }
}

/// A compact read-optimized projection of a [`KarySketch`]: `f32`
/// registers plus the stream total and magnitude ceiling maintained
/// incrementally. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct SlimSketch {
    rows: Arc<HashRows>,
    /// Row-major `H × K` register table, `f32`.
    table: Vec<f32>,
    /// The stream total `Σ_a v_a`, carried in full `f64` precision — the
    /// quantity the fat sketch recomputes by scanning row 0.
    sum: f64,
    /// Largest `|cell|` the table has held since the last
    /// [`sync`](Self::sync) — the magnitude the rounding bound scales
    /// with.
    max_abs: f64,
    /// `f64 → f32` roundings a cell may have absorbed since the last
    /// sync: 1 for the sync itself plus one per incremental update.
    roundings: u64,
}

impl SlimSketch {
    /// Builds a slim sketch from a fat one (the interval-close path).
    pub fn from_fat(fat: &KarySketch) -> SlimSketch {
        let mut slim = SlimSketch {
            rows: Arc::clone(fat.rows()),
            table: vec![0.0; fat.table().len()],
            sum: 0.0,
            max_abs: 0.0,
            roundings: 1,
        };
        slim.sync(fat);
        slim
    }

    /// Re-projects `fat` into this slim sketch without reallocating —
    /// the steady-state interval-boundary refresh.
    ///
    /// # Panics
    /// Panics if `fat` belongs to a different hash family (the serving
    /// plane always syncs against the one detector family).
    pub fn sync(&mut self, fat: &KarySketch) {
        assert_eq!(
            self.rows.identity(),
            fat.rows().identity(),
            "slim sketch must sync against its own hash family"
        );
        let mut max_abs = 0.0f64;
        for (dst, &src) in self.table.iter_mut().zip(fat.table()) {
            *dst = src as f32;
            max_abs = max_abs.max(src.abs());
        }
        self.sum = fat.sum();
        self.max_abs = max_abs;
        self.roundings = 1;
    }

    /// Number of hash rows `H`.
    pub fn h(&self) -> usize {
        self.rows.h()
    }

    /// Buckets per row `K`.
    pub fn k(&self) -> usize {
        self.rows.k()
    }

    /// The hash family shared with the fat sketch.
    pub fn rows(&self) -> &Arc<HashRows> {
        &self.rows
    }

    /// Heap bytes of the register table — half the fat sketch's.
    pub fn memory_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<f32>()
    }

    /// The maintained stream total (no row scan).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mirrors one write-path `UPDATE` into the slim table — the
    /// intra-interval freshness path when the serving plane tracks
    /// updates between syncs. Arithmetic is performed in `f64` and
    /// rounded once per cell, so integer streams below 2²⁴ stay exact.
    #[inline]
    pub fn update(&mut self, key: u64, value: f64) {
        let k = self.k();
        for row in 0..self.h() {
            let bucket = self.rows.bucket(row, key);
            let cell = &mut self.table[row * k + bucket];
            let next = f64::from(*cell) + value;
            *cell = next as f32;
            self.max_abs = self.max_abs.max(next.abs());
        }
        self.sum += value;
        self.roundings += 1;
    }

    /// **ESTIMATE** against the slim table: the paper's
    /// `median_i (T[i][h_i(key)] − sum/K) / (1 − 1/K)` with the stream
    /// total read from the maintained scalar — `H` cell loads, no row
    /// scan. Per-row arithmetic is `f64`; the only precision lost is the
    /// cells' storage rounding, bounded by
    /// [`error_bound`](Self::error_bound).
    pub fn estimate(&self, key: u64) -> f64 {
        let k = self.k() as f64;
        let kk = self.k();
        median_over_rows(self.h(), |row| {
            let cell = f64::from(self.table[row * kk + self.rows.bucket(row, key)]);
            (cell - self.sum / k) / (1.0 - 1.0 / k)
        })
    }

    /// **ESTIMATE** over a block of keys: appends one estimate per key to
    /// `out`, equal to calling [`estimate`](Self::estimate) per key in
    /// order (the batch-vs-scalar property test asserts exact `==`), but
    /// restructured like the fat sketch's `estimate_batch` — hash phase,
    /// per-row gather phase, then per-key median — so each `4·K`-byte
    /// register row stays hot for the whole block. `out` is cleared
    /// first.
    pub fn estimate_batch(&self, keys: &[u64], scratch: &mut SlimScratch, out: &mut Vec<f64>) {
        out.clear();
        let n = keys.len();
        if n == 0 {
            return;
        }
        let h = self.h();
        let kk = self.k();
        let kf = kk as f64;
        scratch.buckets.clear();
        scratch.buckets.resize(h * n, 0);
        self.rows.buckets_batch(keys, &mut scratch.buckets);
        scratch.values.clear();
        scratch.values.resize(h * n, 0.0);
        for row in 0..h {
            let cells = &self.table[row * kk..(row + 1) * kk];
            let row_buckets = &scratch.buckets[row * n..(row + 1) * n];
            let vals = &mut scratch.values[row * n..(row + 1) * n];
            for (v, &bucket) in vals.iter_mut().zip(row_buckets) {
                *v = f64::from(cells[bucket]);
            }
        }
        scratch.per_row.clear();
        scratch.per_row.resize(h, 0.0);
        out.reserve(n);
        for i in 0..n {
            for (row, per_row) in scratch.per_row.iter_mut().enumerate() {
                let cell = scratch.values[row * n + i];
                *per_row = (cell - self.sum / kf) / (1.0 - 1.0 / kf);
            }
            out.push(scd_sketch::median::median_inplace(&mut scratch.per_row));
        }
    }

    /// A conservative bound on `|slim.estimate(key) − fat.estimate(key)|`
    /// for the fat sketch this slim one mirrors.
    ///
    /// Each cell stores at most `roundings` `f64 → f32`
    /// conversions since the last sync, each off by at most half an ulp
    /// at the table's magnitude ceiling: `max_abs · 2⁻²⁴`. The estimator
    /// divides a cell difference by `(1 − 1/K)`, so per estimate:
    ///
    /// ```text
    /// bound = roundings · max_abs · 2⁻²⁴ / (1 − 1/K)
    /// ```
    ///
    /// The median across rows cannot exceed the worst row, so the bound
    /// survives the reduction. For tables whose cells are integers below
    /// 2²⁴ every conversion is exact and the true error is zero — the
    /// bound is an upper envelope, not an estimate.
    pub fn error_bound(&self) -> f64 {
        let k = self.k() as f64;
        (self.roundings as f64) * self.max_abs * 2f64.powi(-24) / (1.0 - 1.0 / k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_sketch::SketchConfig;

    fn fat(seed: u64) -> KarySketch {
        KarySketch::new(SketchConfig { h: 5, k: 1024, seed })
    }

    /// Integer update streams (counts below 2²⁴) round-trip `f32`
    /// exactly, so slim estimates equal fat estimates bit for bit.
    #[test]
    fn integer_cells_estimate_exactly_equal_to_fat() {
        let mut f = fat(7);
        for key in 0..400u64 {
            f.update(key, ((key * 37) % 5000 + 1) as f64);
        }
        let slim = SlimSketch::from_fat(&f);
        let est = f.estimator();
        for key in 0..400u64 {
            let (a, b) = (slim.estimate(key), est.estimate(key));
            assert_eq!(a.to_bits(), b.to_bits(), "key {key}: slim {a} vs fat {b}");
        }
        assert_eq!(slim.error_bound(), slim.error_bound().abs());
    }

    /// Fractional cells pick up `f32` rounding; the error must stay
    /// within the advertised bound.
    #[test]
    fn fractional_cells_stay_within_error_bound() {
        let mut f = fat(8);
        for key in 0..400u64 {
            f.update(key, (key as f64 + 0.1) * 1.000_000_7);
        }
        let slim = SlimSketch::from_fat(&f);
        let bound = slim.error_bound();
        assert!(bound > 0.0);
        let est = f.estimator();
        for key in 0..400u64 {
            let err = (slim.estimate(key) - est.estimate(key)).abs();
            assert!(err <= bound, "key {key}: error {err} exceeds bound {bound}");
        }
    }

    /// Mirroring updates incrementally lands in the same state as
    /// rebuilding from the fat sketch, for integer streams.
    #[test]
    fn incremental_update_matches_rebuild_on_integer_streams() {
        let mut f = fat(9);
        for key in 0..64u64 {
            f.update(key, (key + 1) as f64);
        }
        let mut incremental = SlimSketch::from_fat(&f);
        for key in 0..64u64 {
            let v = ((key * 13) % 200 + 1) as f64;
            f.update(key, v);
            incremental.update(key, v);
        }
        let rebuilt = SlimSketch::from_fat(&f);
        for key in 0..64u64 {
            let (a, b) = (incremental.estimate(key), rebuilt.estimate(key));
            assert_eq!(a.to_bits(), b.to_bits(), "key {key}: incremental {a} vs rebuilt {b}");
        }
        // The incremental bound is wider (one rounding per update) but
        // still finite and monotone in the update count.
        assert!(incremental.error_bound() >= rebuilt.error_bound());
    }

    /// `estimate_batch` is a pure restructuring of the scalar loop.
    #[test]
    fn batch_estimates_equal_scalar_estimates() {
        let mut f = fat(10);
        for key in 0..300u64 {
            f.update(key * 3 + 1, ((key % 97) + 1) as f64 * 1.5);
        }
        let slim = SlimSketch::from_fat(&f);
        let keys: Vec<u64> = (0..300u64).map(|k| k * 3 + 1).collect();
        let mut scratch = SlimScratch::new();
        let mut out = Vec::new();
        slim.estimate_batch(&keys, &mut scratch, &mut out);
        assert_eq!(out.len(), keys.len());
        for (i, &key) in keys.iter().enumerate() {
            let scalar = slim.estimate(key);
            assert_eq!(
                out[i].to_bits(),
                scalar.to_bits(),
                "key {key}: batch {} vs scalar {scalar}",
                out[i]
            );
        }
        // Reusing the scratch (second call) must not change anything.
        let mut again = Vec::new();
        slim.estimate_batch(&keys, &mut scratch, &mut again);
        assert_eq!(out, again);
        // Empty key set clears the output.
        slim.estimate_batch(&[], &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    /// The maintained sum tracks the fat sketch's row-scan total.
    #[test]
    fn maintained_sum_matches_fat_scan() {
        let mut f = fat(11);
        let mut slim = SlimSketch::from_fat(&f);
        for key in 0..100u64 {
            let v = (key % 10 + 1) as f64;
            f.update(key, v);
            slim.update(key, v);
        }
        assert_eq!(slim.sum(), f.sum());
        slim.sync(&f);
        assert_eq!(slim.sum(), f.sum());
        assert_eq!(slim.memory_bytes() * 2, f.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "hash family")]
    fn sync_rejects_foreign_family() {
        let a = fat(1);
        let b = fat(2);
        let mut slim = SlimSketch::from_fat(&a);
        slim.sync(&b);
    }
}
