//! The snapshot-handoff machinery: an [`IntervalObserver`] that turns
//! every interval close into an immutable, atomically-swapped
//! [`ServingView`] readers can query without ever blocking the writer.
//!
//! # Handoff semantics
//!
//! The engine invokes [`ServingPlane::interval_closed`] synchronously on
//! the detecting thread, *before* the engine's own archive consumes the
//! error sketch. Per closed interval the plane:
//!
//! 1. advances its **replica archive** — a `SketchArchive<`[`SlimEpoch`]`>`
//!    fed the exact push sequence of the engine's archive (zero back-fill
//!    for warm-up and NextInterval-lag gaps, then the interval's sketch
//!    with the same [`notable_keys`] directory entries), except that each
//!    epoch is stored as an `f32` **slim projection**: half the resident
//!    bytes per epoch, so the same budget holds twice the history, and
//!    every historical query (`range_sketch` / `key_history` /
//!    `changed_keys`) answers from `f32` with the composed
//!    [`SlimSketch::error_bound`] envelope — still bit-identical to the
//!    fat archive for integer-count streams;
//! 2. rebuilds the **slim sketch** ([`SlimSketch::from_fat`]) — the same
//!    allocation serves live point queries *and* sits in the archive as
//!    the newest epoch ([`SharedSketch::from_arc`]);
//! 3. publishes a new [`ServingView`] by swapping one `Arc` pointer.
//!
//! # Inline vs background rebuild
//!
//! With [`RebuildMode::Inline`] all three steps run inside the observer
//! hook — deterministic, and fine when the interval budget dwarfs the
//! rebuild cost. With [`RebuildMode::Background`] the hook only copies
//! the error sketch into a recycled buffer (the pipeline engine's
//! double-buffering idiom: a bounded pool of `KarySketch` buffers cycles
//! between the detecting thread and the rebuild thread) and enqueues it;
//! a dedicated `scd-serve-rebuild` thread performs the back-fill, slim
//! projection, and publish. Ingest then pays one table `memcpy` and a
//! channel send per interval instead of the full rebuild. The queue is
//! bounded (capacity [`REBUILD_QUEUE`]), so a slow rebuild back-pressures
//! the observer rather than growing without bound, and published views
//! lag ingest by at most that many intervals —
//! [`ServingPlane::flush`] (also called by `ShardedEngine::drain`)
//! blocks until the view has caught up. Jobs apply FIFO through the same
//! code path as inline mode, so final state is **bit-identical** across
//! modes.
//!
//! Because the replica's element type is copy-on-write
//! ([`SharedSketch`]), publishing a view clones the archive as an `Arc`
//! bump per epoch; register tables are deep-copied only when a later
//! buddy merge mutates an epoch a published view still references.
//! Readers clone the current `Arc<ServingView>` (one brief read lock,
//! never held across a query) and then work entirely on immutable data.

use crate::metrics::ServeMetrics;
use crate::shared::SharedSketch;
use crate::slim::{SlimEpoch, SlimSketch};
use scd_archive::{ArchiveConfig, ArchiveError, SketchArchive};
use scd_core::{notable_keys, IntervalObserver, IntervalReport};
use scd_obs::Stopwatch;
use scd_sketch::KarySketch;
use std::sync::mpsc::{self, SyncSender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

/// Background-rebuild queue depth, in intervals. A full queue blocks the
/// observer (bounded lag, never unbounded memory); published views trail
/// ingest by at most this many intervals plus the one in flight.
pub const REBUILD_QUEUE: usize = 2;

/// Recycled snapshot buffers kept when idle: the queue depth plus the one
/// the rebuild thread holds.
const POOL_CAP: usize = REBUILD_QUEUE + 1;

/// One interval's immutable serving state: everything a query needs,
/// frozen at an interval boundary. Cheap to clone (Arc bumps all the way
/// down).
#[derive(Debug, Clone)]
pub struct ServingView {
    /// Index of the last closed interval this view reflects; `None`
    /// before the first interval closes.
    pub interval: Option<u64>,
    /// The last interval's detection report (alarms, F2 energy,
    /// threshold). `None` before the first interval closes.
    pub report: Option<IntervalReport>,
    /// Read-optimized projection of the latest error sketch — the live
    /// point-estimate path. `None` until the model warms up (no error
    /// sketch exists yet). The newest archive epoch shares this exact
    /// allocation.
    pub slim: Option<Arc<SlimSketch>>,
    /// Snapshot of the error-sketch history replica — the historical
    /// query path (`range_sketch`, `key_history`, `changed_keys`),
    /// served entirely from `f32` slim epochs.
    pub archive: SketchArchive<SlimEpoch>,
}

/// When the fat→slim rebuild runs relative to the ingest path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebuildMode {
    /// Rebuild inside the observer hook, on the detecting thread. Every
    /// published view is current the moment `interval_closed` returns.
    Inline,
    /// Hand the snapshot to a dedicated rebuild thread; ingest pays one
    /// buffer copy. Views lag by at most [`REBUILD_QUEUE`] + 1 intervals;
    /// [`ServingPlane::flush`] waits for them. Final state is
    /// bit-identical to [`Inline`](Self::Inline).
    Background,
}

/// Writer-side state: the replica archive advanced under a mutex held
/// only by whichever thread applies interval closes (the detecting
/// thread inline, the rebuild thread in background mode).
#[derive(Debug)]
struct Replica {
    archive: SketchArchive<SlimEpoch>,
    /// The slim sketch of the newest real epoch, carried forward across
    /// report-only intervals so live estimates keep serving through gaps.
    last_slim: Option<Arc<SlimSketch>>,
}

/// State shared between the plane handle and the rebuild thread.
#[derive(Debug)]
struct PlaneShared {
    replica: Mutex<Replica>,
    current: RwLock<Arc<ServingView>>,
    metrics: Option<Arc<ServeMetrics>>,
}

/// One queued interval close for the rebuild thread.
#[derive(Debug)]
struct Job {
    report: IntervalReport,
    error: Option<(usize, KarySketch)>,
}

/// Submit/complete accounting for [`ServingPlane::flush`].
#[derive(Debug, Default)]
struct Progress {
    submitted: u64,
    processed: u64,
}

/// Rebuild-thread plumbing shared with the observer side.
#[derive(Debug)]
struct RebuildShared {
    /// Recycled snapshot buffers (the double-buffering pool).
    pool: Mutex<Vec<KarySketch>>,
    progress: Mutex<Progress>,
    done: Condvar,
}

#[derive(Debug)]
struct Background {
    tx: Option<SyncSender<Job>>,
    shared: Arc<RebuildShared>,
    join: Option<JoinHandle<()>>,
}

/// The serving plane: owns the replica archive, implements
/// [`IntervalObserver`], and publishes [`ServingView`] snapshots. See the
/// [module docs](self).
#[derive(Debug)]
pub struct ServingPlane {
    shared: Arc<PlaneShared>,
    background: Option<Background>,
}

impl PlaneShared {
    /// Applies one interval close to the replica and publishes the new
    /// view — the single code path both rebuild modes funnel through, so
    /// their final state is bit-identical by construction.
    fn apply(&self, report: &IntervalReport, error: Option<(usize, &KarySketch)>) {
        let sw = Stopwatch::start();
        let mut replica = self.replica.lock().expect("serving replica lock poisoned");
        let mut slim = replica.last_slim.clone();
        if let Some((t, err)) = error {
            // Mirror the engine's `archive_error` push sequence exactly:
            // zero back-fill up to t, then the interval's sketch with the
            // same notable-key directory entries — but store each epoch
            // as its slim f32 projection.
            let zero = SharedSketch::new(SlimSketch::zeroed(err.rows()));
            while replica.archive.next_interval() < t as u64 {
                replica
                    .archive
                    .push(zero.clone(), &[])
                    .expect("replica push cannot fail after back-fill");
            }
            let notable = notable_keys(report);
            let fresh = Arc::new(SlimSketch::from_fat(err));
            replica
                .archive
                .push(SharedSketch::from_arc(Arc::clone(&fresh)), &notable)
                .expect("replica push cannot fail after back-fill");
            slim = Some(fresh);
        }
        replica.last_slim = slim.clone();
        let view = ServingView {
            interval: Some(report.interval as u64),
            report: Some(report.clone()),
            slim,
            archive: replica.archive.clone(),
        };
        if let Some(m) = &self.metrics {
            m.snapshots_total.inc();
            m.view_interval.set(report.interval as f64);
            m.view_epochs.set(view.archive.sketch_count() as f64);
            let slim_bytes = view.slim.as_ref().map_or(0, |s| s.memory_bytes());
            m.view_bytes.set((view.archive.memory_bytes() + slim_bytes) as f64);
            m.snapshot_ns.record(sw.elapsed_ns());
        }
        drop(replica);
        let view = Arc::new(view);
        *self.current.write().expect("serving view lock poisoned") = view;
    }
}

impl ServingPlane {
    /// Creates an inline-rebuild plane whose replica archive uses
    /// `config` — pass the same [`ArchiveConfig`] as the engine's
    /// archive, or served historical answers will diverge from offline
    /// queries.
    ///
    /// # Errors
    /// [`ArchiveError::BadConfig`] for an invalid archive shape.
    pub fn new(config: ArchiveConfig) -> Result<Arc<ServingPlane>, ArchiveError> {
        Self::with_options(config, None, RebuildMode::Inline)
    }

    /// Like [`new`](Self::new), with serving telemetry attached.
    ///
    /// # Errors
    /// [`ArchiveError::BadConfig`] for an invalid archive shape.
    pub fn with_metrics(
        config: ArchiveConfig,
        metrics: Option<Arc<ServeMetrics>>,
    ) -> Result<Arc<ServingPlane>, ArchiveError> {
        Self::with_options(config, metrics, RebuildMode::Inline)
    }

    /// Full-control constructor: archive shape, telemetry, and
    /// [`RebuildMode`]. [`RebuildMode::Background`] spawns the
    /// `scd-serve-rebuild` thread, which lives until the plane drops.
    ///
    /// # Errors
    /// [`ArchiveError::BadConfig`] for an invalid archive shape.
    pub fn with_options(
        config: ArchiveConfig,
        metrics: Option<Arc<ServeMetrics>>,
        mode: RebuildMode,
    ) -> Result<Arc<ServingPlane>, ArchiveError> {
        let archive = SketchArchive::new(config)?;
        let empty =
            ServingView { interval: None, report: None, slim: None, archive: archive.clone() };
        let shared = Arc::new(PlaneShared {
            replica: Mutex::new(Replica { archive, last_slim: None }),
            current: RwLock::new(Arc::new(empty)),
            metrics,
        });
        let background = match mode {
            RebuildMode::Inline => None,
            RebuildMode::Background => Some(Self::spawn_rebuild(&shared)),
        };
        Ok(Arc::new(ServingPlane { shared, background }))
    }

    fn spawn_rebuild(shared: &Arc<PlaneShared>) -> Background {
        let (tx, rx) = mpsc::sync_channel::<Job>(REBUILD_QUEUE);
        let rebuild = Arc::new(RebuildShared {
            pool: Mutex::new(Vec::new()),
            progress: Mutex::new(Progress::default()),
            done: Condvar::new(),
        });
        let plane = Arc::clone(shared);
        let rb = Arc::clone(&rebuild);
        let join = std::thread::Builder::new()
            .name("scd-serve-rebuild".into())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    plane.apply(&job.report, job.error.as_ref().map(|&(t, ref e)| (t, e)));
                    if let Some((_, buf)) = job.error {
                        let mut pool = rb.pool.lock().expect("rebuild pool lock poisoned");
                        if pool.len() < POOL_CAP {
                            pool.push(buf);
                        }
                    }
                    let mut progress = rb.progress.lock().expect("rebuild progress lock poisoned");
                    progress.processed += 1;
                    if let Some(m) = &plane.metrics {
                        m.rebuild_lag.set((progress.submitted - progress.processed) as f64);
                    }
                    rb.done.notify_all();
                }
            })
            .expect("spawn scd-serve-rebuild thread");
        Background { tx: Some(tx), shared: rebuild, join: Some(join) }
    }

    /// The current view: one read lock to clone the `Arc`, then the
    /// caller works lock-free on immutable data. In background mode the
    /// view may trail ingest by up to [`REBUILD_QUEUE`] + 1 intervals;
    /// [`flush`](Self::flush) waits out the lag.
    pub fn view(&self) -> Arc<ServingView> {
        Arc::clone(&self.shared.current.read().expect("serving view lock poisoned"))
    }

    /// How the fat→slim rebuild runs for this plane.
    pub fn rebuild_mode(&self) -> RebuildMode {
        if self.background.is_some() {
            RebuildMode::Background
        } else {
            RebuildMode::Inline
        }
    }
}

impl Drop for ServingPlane {
    fn drop(&mut self) {
        if let Some(bg) = &mut self.background {
            // Closing the channel ends the rebuild loop after it drains
            // every queued interval; join so no view publish races the
            // process teardown.
            drop(bg.tx.take());
            if let Some(join) = bg.join.take() {
                let _ = join.join();
            }
        }
    }
}

impl IntervalObserver for ServingPlane {
    fn interval_closed(&self, report: &IntervalReport, error: Option<(usize, &KarySketch)>) {
        let Some(bg) = &self.background else {
            self.shared.apply(report, error);
            return;
        };
        // Background handoff: copy the error sketch into a recycled
        // buffer (one memcpy — the only table-sized work left on the
        // ingest path) and enqueue. The bounded send back-pressures when
        // the rebuild falls REBUILD_QUEUE intervals behind.
        let error = error.map(|(t, err)| {
            let pooled = bg.shared.pool.lock().expect("rebuild pool lock poisoned").pop();
            let mut buf = pooled.unwrap_or_else(|| err.zero_like());
            buf.assign_from(err).expect("rebuild buffer family matches the engine's");
            (t, buf)
        });
        {
            let mut progress = bg.shared.progress.lock().expect("rebuild progress lock poisoned");
            progress.submitted += 1;
            if let Some(m) = &self.shared.metrics {
                m.rebuild_lag.set((progress.submitted - progress.processed) as f64);
            }
        }
        bg.tx
            .as_ref()
            .expect("rebuild channel open while plane is live")
            .send(Job { report: report.clone(), error })
            .expect("rebuild thread alive while plane is live");
    }

    /// Blocks until every submitted interval is reflected in the
    /// published view (no-op inline). After `flush`, [`view`](Self::view)
    /// is exactly as fresh as an inline plane's would be.
    fn flush(&self) {
        let Some(bg) = &self.background else { return };
        let mut progress = bg.shared.progress.lock().expect("rebuild progress lock poisoned");
        while progress.processed < progress.submitted {
            progress = bg.shared.done.wait(progress).expect("rebuild progress lock poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_sketch::SketchConfig;

    fn archive_cfg() -> ArchiveConfig {
        ArchiveConfig { max_sketches: 8, full_resolution: 4, keys_per_epoch: 16 }
    }

    fn error_sketch(seed_shift: u64) -> KarySketch {
        let mut s = KarySketch::new(SketchConfig { h: 3, k: 256, seed: 11 });
        for key in 0..40u64 {
            s.update(key, (key + 1 + seed_shift) as f64);
        }
        s
    }

    fn report_at(interval: usize) -> IntervalReport {
        IntervalReport {
            interval,
            warmed_up: true,
            errors: vec![(3, 9.0), (1, -4.0)],
            ..IntervalReport::default()
        }
    }

    /// Widened f32 epoch registers for exactness comparisons against the
    /// fat `f64` source (integer streams round-trip losslessly).
    fn widened(epoch: &SlimSketch) -> Vec<f64> {
        epoch.table().iter().map(|&c| f64::from(c)).collect()
    }

    /// Before any interval closes, the view is explicitly empty.
    #[test]
    fn initial_view_is_empty() {
        let plane = ServingPlane::new(archive_cfg()).unwrap();
        let view = plane.view();
        assert!(view.interval.is_none());
        assert!(view.report.is_none());
        assert!(view.slim.is_none());
        assert!(view.archive.coverage().is_none());
        assert_eq!(plane.rebuild_mode(), RebuildMode::Inline);
    }

    /// Warm-up intervals (no error sketch) publish the report but leave
    /// slim sketch and archive untouched.
    #[test]
    fn warmup_interval_publishes_report_only() {
        let plane = ServingPlane::new(archive_cfg()).unwrap();
        plane.interval_closed(&IntervalReport { interval: 0, ..Default::default() }, None);
        let view = plane.view();
        assert_eq!(view.interval, Some(0));
        assert!(view.report.is_some());
        assert!(view.slim.is_none());
        assert!(view.archive.coverage().is_none());
    }

    /// The replica mirrors the engine's push sequence: warm-up gaps are
    /// zero-filled so archive intervals track detector intervals, and
    /// the stored epochs are f32 slim projections — exact for the
    /// integer-count stream here.
    #[test]
    fn replica_backfills_warmup_gap_and_tracks_intervals() {
        let plane = ServingPlane::new(archive_cfg()).unwrap();
        plane.interval_closed(&report_at(0), None);
        let err = error_sketch(0);
        plane.interval_closed(&report_at(1), Some((1, &err)));
        let view = plane.view();
        assert_eq!(view.interval, Some(1));
        assert_eq!(view.archive.coverage(), Some((0, 2)));
        // Epoch 0 is the zero back-fill; epoch 1 holds the error sketch,
        // stored slim: half the bytes, integer-exact registers.
        let range = view.archive.range_sketch(1, 2).unwrap();
        assert_eq!(widened(range.sketch.get()), err.table());
        assert_eq!(range.sketch.get().memory_bytes() * 2, err.memory_bytes());
        let est = err.estimator();
        for key in 0..40u64 {
            assert_eq!(
                range.sketch.get().estimate(key).to_bits(),
                est.estimate(key).to_bits(),
                "key {key}"
            );
        }
        let zero = view.archive.range_sketch(0, 1).unwrap();
        assert!(zero.sketch.get().table().iter().all(|&c| c == 0.0));
        assert_eq!(zero.sketch.get().error_bound(), 0.0);
    }

    /// Published views are immutable: a held snapshot still reads its
    /// interval's state after later closes advance the replica.
    #[test]
    fn held_snapshot_survives_later_intervals() {
        let plane = ServingPlane::new(archive_cfg()).unwrap();
        let err1 = error_sketch(0);
        plane.interval_closed(&report_at(0), Some((0, &err1)));
        let old = plane.view();
        let err2 = error_sketch(100);
        plane.interval_closed(&report_at(1), Some((1, &err2)));
        // The old view's world is frozen at interval 0.
        assert_eq!(old.interval, Some(0));
        assert_eq!(old.archive.coverage(), Some((0, 1)));
        assert_eq!(old.slim.as_ref().unwrap().estimate(5).to_bits(), err1.estimate(5).to_bits());
        // The new view sees both epochs and the fresh slim sketch.
        let new = plane.view();
        assert_eq!(new.archive.coverage(), Some((0, 2)));
        assert_eq!(new.slim.as_ref().unwrap().estimate(5).to_bits(), err2.estimate(5).to_bits());
    }

    /// The slim sketch carries forward across an interval that produced
    /// no error sketch (e.g. a NextInterval lag gap).
    #[test]
    fn slim_carries_forward_through_gap() {
        let plane = ServingPlane::new(archive_cfg()).unwrap();
        let err = error_sketch(7);
        plane.interval_closed(&report_at(0), Some((0, &err)));
        plane.interval_closed(&report_at(1), None);
        let view = plane.view();
        assert_eq!(view.interval, Some(1));
        assert!(view.slim.is_some());
        assert_eq!(view.archive.coverage(), Some((0, 1)));
    }

    /// The live slim sketch and the newest archive epoch share one
    /// allocation — the handoff is an Arc bump, not a second projection.
    #[test]
    fn live_slim_and_newest_epoch_share_storage() {
        let plane = ServingPlane::new(archive_cfg()).unwrap();
        let err = error_sketch(3);
        plane.interval_closed(&report_at(0), Some((0, &err)));
        let view = plane.view();
        let slim = view.slim.as_ref().unwrap();
        let epoch = view.archive.epochs().last().unwrap();
        assert!(std::ptr::eq::<SlimSketch>(slim.as_ref(), epoch.sketch().get()));
    }

    /// The replica's notable-key directory matches `notable_keys` on the
    /// report, so candidate ranking matches the engine archive's.
    #[test]
    fn replica_files_notable_keys() {
        let plane = ServingPlane::new(archive_cfg()).unwrap();
        let report = report_at(0);
        let err = error_sketch(0);
        plane.interval_closed(&report, Some((0, &err)));
        let view = plane.view();
        let candidates = view.archive.candidate_keys(0, 1).unwrap();
        assert_eq!(candidates, vec![3, 1]);
    }

    /// Serving metrics advance with each snapshot.
    #[test]
    fn metrics_track_snapshots() {
        let registry = scd_obs::Registry::new();
        let metrics = ServeMetrics::register(&registry);
        let plane = ServingPlane::with_metrics(archive_cfg(), Some(Arc::clone(&metrics))).unwrap();
        let err = error_sketch(0);
        plane.interval_closed(&report_at(0), Some((0, &err)));
        plane.interval_closed(&report_at(1), Some((1, &err)));
        let mut text = String::new();
        registry.render_prometheus(&mut text);
        assert!(text.contains("scd_serve_snapshots_total 2"));
        assert!(text.contains("scd_serve_view_interval 1"));
    }

    /// Background rebuild lands in the same published state as inline,
    /// bit for bit: same coverage, same epoch registers, same slim
    /// estimates — the jobs replay through the identical apply path.
    #[test]
    fn background_rebuild_matches_inline_bit_for_bit() {
        let inline = ServingPlane::new(archive_cfg()).unwrap();
        let background =
            ServingPlane::with_options(archive_cfg(), None, RebuildMode::Background).unwrap();
        assert_eq!(background.rebuild_mode(), RebuildMode::Background);
        for interval in 0..12usize {
            let report = report_at(interval);
            if interval % 5 == 4 {
                // A report-only gap: no error sketch this interval.
                inline.interval_closed(&report, None);
                background.interval_closed(&report, None);
            } else {
                let err = error_sketch(interval as u64 * 31);
                inline.interval_closed(&report, Some((interval, &err)));
                background.interval_closed(&report, Some((interval, &err)));
            }
        }
        background.flush();
        let (a, b) = (inline.view(), background.view());
        assert_eq!(a.interval, b.interval);
        assert_eq!(a.archive.coverage(), b.archive.coverage());
        let (from, to) = a.archive.coverage().unwrap();
        for t in from..to {
            let (ra, rb) = (
                a.archive.range_sketch(t, t + 1).unwrap(),
                b.archive.range_sketch(t, t + 1).unwrap(),
            );
            assert_eq!(ra.sketch.get().table(), rb.sketch.get().table(), "epoch {t}");
            assert_eq!(
                ra.sketch.get().error_bound().to_bits(),
                rb.sketch.get().error_bound().to_bits(),
                "epoch {t} envelope"
            );
        }
        let (sa, sb) = (a.slim.as_ref().unwrap(), b.slim.as_ref().unwrap());
        for key in 0..40u64 {
            assert_eq!(sa.estimate(key).to_bits(), sb.estimate(key).to_bits(), "key {key}");
        }
    }

    /// `flush` drains the rebuild queue: after it returns, the view is
    /// as fresh as the last submitted interval, and the lag gauge reads
    /// zero.
    #[test]
    fn flush_catches_the_view_up() {
        let registry = scd_obs::Registry::new();
        let metrics = ServeMetrics::register(&registry);
        let plane = ServingPlane::with_options(
            archive_cfg(),
            Some(Arc::clone(&metrics)),
            RebuildMode::Background,
        )
        .unwrap();
        for interval in 0..6usize {
            let err = error_sketch(interval as u64);
            plane.interval_closed(&report_at(interval), Some((interval, &err)));
        }
        plane.flush();
        assert_eq!(plane.view().interval, Some(5));
        assert_eq!(plane.view().archive.coverage(), Some((0, 6)));
        let mut text = String::new();
        registry.render_prometheus(&mut text);
        assert!(text.contains("scd_serve_rebuild_lag 0"));
        // Dropping the plane joins the rebuild thread cleanly.
        drop(plane);
    }
}
