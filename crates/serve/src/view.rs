//! The snapshot-handoff machinery: an [`IntervalObserver`] that turns
//! every interval close into an immutable, atomically-swapped
//! [`ServingView`] readers can query without ever blocking the writer.
//!
//! # Handoff semantics
//!
//! The engine invokes [`ServingPlane::interval_closed`] synchronously on
//! the detecting thread, *before* the engine's own archive consumes the
//! error sketch. The plane then:
//!
//! 1. advances its **replica archive** — a
//!    `SketchArchive<SharedSketch<KarySketch>>` fed the exact push
//!    sequence of the engine's archive (zero back-fill for warm-up and
//!    NextInterval-lag gaps, then the error sketch with the same
//!    [`notable_keys`] directory entries), so historical answers served
//!    from a snapshot are **bit-identical** to offline `scd query`
//!    against the engine's dumped archive;
//! 2. rebuilds the **slim sketch** ([`SlimSketch::from_fat`]) — the
//!    read-optimized SF-style projection live point queries hit;
//! 3. publishes a new [`ServingView`] by swapping one `Arc` pointer.
//!
//! Because the replica's element type is copy-on-write
//! ([`SharedSketch`]), step 3's archive clone is an `Arc` bump per epoch;
//! register tables are deep-copied only when a later buddy merge mutates
//! an epoch a published view still references. Readers clone the current
//! `Arc<ServingView>` (one brief read lock, never held across a query)
//! and then work entirely on immutable data: a reader mid-query keeps
//! its whole interval-consistent world alive while newer views supersede
//! it.

use crate::metrics::ServeMetrics;
use crate::shared::SharedSketch;
use crate::slim::SlimSketch;
use scd_archive::{ArchiveConfig, ArchiveError, SketchArchive};
use scd_core::{notable_keys, IntervalObserver, IntervalReport};
use scd_obs::Stopwatch;
use scd_sketch::KarySketch;
use std::sync::{Arc, Mutex, RwLock};

/// One interval's immutable serving state: everything a query needs,
/// frozen at an interval boundary. Cheap to clone (Arc bumps all the way
/// down).
#[derive(Debug, Clone)]
pub struct ServingView {
    /// Index of the last closed interval this view reflects; `None`
    /// before the first interval closes.
    pub interval: Option<u64>,
    /// The last interval's detection report (alarms, F2 energy,
    /// threshold). `None` before the first interval closes.
    pub report: Option<IntervalReport>,
    /// Read-optimized projection of the latest error sketch — the live
    /// point-estimate path. `None` until the model warms up (no error
    /// sketch exists yet).
    pub slim: Option<Arc<SlimSketch>>,
    /// Snapshot of the error-sketch history replica — the historical
    /// query path (`range_sketch`, `key_history`, `changed_keys`).
    pub archive: SketchArchive<SharedSketch<KarySketch>>,
}

/// Writer-side state: the replica archive the observer advances under a
/// mutex held only on the detecting thread.
#[derive(Debug)]
struct Replica {
    archive: SketchArchive<SharedSketch<KarySketch>>,
}

/// The serving plane: owns the replica archive, implements
/// [`IntervalObserver`], and publishes [`ServingView`] snapshots. See the
/// [module docs](self).
#[derive(Debug)]
pub struct ServingPlane {
    replica: Mutex<Replica>,
    current: RwLock<Arc<ServingView>>,
    metrics: Option<Arc<ServeMetrics>>,
}

impl ServingPlane {
    /// Creates a plane whose replica archive uses `config` — pass the
    /// same [`ArchiveConfig`] as the engine's archive, or served
    /// historical answers will diverge from offline queries.
    ///
    /// # Errors
    /// [`ArchiveError::BadConfig`] for an invalid archive shape.
    pub fn new(config: ArchiveConfig) -> Result<Arc<ServingPlane>, ArchiveError> {
        Self::with_metrics(config, None)
    }

    /// Like [`new`](Self::new), with serving telemetry attached.
    ///
    /// # Errors
    /// [`ArchiveError::BadConfig`] for an invalid archive shape.
    pub fn with_metrics(
        config: ArchiveConfig,
        metrics: Option<Arc<ServeMetrics>>,
    ) -> Result<Arc<ServingPlane>, ArchiveError> {
        let archive = SketchArchive::new(config)?;
        let empty =
            ServingView { interval: None, report: None, slim: None, archive: archive.clone() };
        Ok(Arc::new(ServingPlane {
            replica: Mutex::new(Replica { archive }),
            current: RwLock::new(Arc::new(empty)),
            metrics,
        }))
    }

    /// The current view: one read lock to clone the `Arc`, then the
    /// caller works lock-free on immutable data.
    pub fn view(&self) -> Arc<ServingView> {
        Arc::clone(&self.current.read().expect("serving view lock poisoned"))
    }

    fn publish(&self, view: ServingView) {
        let view = Arc::new(view);
        *self.current.write().expect("serving view lock poisoned") = view;
    }
}

impl IntervalObserver for ServingPlane {
    fn interval_closed(&self, report: &IntervalReport, error: Option<(usize, &KarySketch)>) {
        let sw = Stopwatch::start();
        let mut replica = self.replica.lock().expect("serving replica lock poisoned");
        let mut slim = self.view().slim.clone();
        if let Some((t, err)) = error {
            // Mirror the engine's `archive_error` push sequence exactly:
            // zero back-fill up to t, then the error sketch with the same
            // notable-key directory entries.
            let zero = SharedSketch::new(err.zero_like());
            while replica.archive.next_interval() < t as u64 {
                replica
                    .archive
                    .push(zero.clone(), &[])
                    .expect("replica push cannot fail after back-fill");
            }
            let notable = notable_keys(report);
            replica
                .archive
                .push(SharedSketch::new(err.clone()), &notable)
                .expect("replica push cannot fail after back-fill");
            slim = Some(Arc::new(SlimSketch::from_fat(err)));
        }
        let view = ServingView {
            interval: Some(report.interval as u64),
            report: Some(report.clone()),
            slim,
            archive: replica.archive.clone(),
        };
        if let Some(m) = &self.metrics {
            m.snapshots_total.inc();
            m.view_interval.set(report.interval as f64);
            m.view_epochs.set(view.archive.sketch_count() as f64);
            let slim_bytes = view.slim.as_ref().map_or(0, |s| s.memory_bytes());
            m.view_bytes.set((view.archive.memory_bytes() + slim_bytes) as f64);
            m.snapshot_ns.record(sw.elapsed_ns());
        }
        drop(replica);
        self.publish(view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_sketch::SketchConfig;

    fn archive_cfg() -> ArchiveConfig {
        ArchiveConfig { max_sketches: 8, full_resolution: 4, keys_per_epoch: 16 }
    }

    fn error_sketch(seed_shift: u64) -> KarySketch {
        let mut s = KarySketch::new(SketchConfig { h: 3, k: 256, seed: 11 });
        for key in 0..40u64 {
            s.update(key, (key + 1 + seed_shift) as f64);
        }
        s
    }

    fn report_at(interval: usize) -> IntervalReport {
        IntervalReport {
            interval,
            warmed_up: true,
            errors: vec![(3, 9.0), (1, -4.0)],
            ..IntervalReport::default()
        }
    }

    /// Before any interval closes, the view is explicitly empty.
    #[test]
    fn initial_view_is_empty() {
        let plane = ServingPlane::new(archive_cfg()).unwrap();
        let view = plane.view();
        assert!(view.interval.is_none());
        assert!(view.report.is_none());
        assert!(view.slim.is_none());
        assert!(view.archive.coverage().is_none());
    }

    /// Warm-up intervals (no error sketch) publish the report but leave
    /// slim sketch and archive untouched.
    #[test]
    fn warmup_interval_publishes_report_only() {
        let plane = ServingPlane::new(archive_cfg()).unwrap();
        plane.interval_closed(&IntervalReport { interval: 0, ..Default::default() }, None);
        let view = plane.view();
        assert_eq!(view.interval, Some(0));
        assert!(view.report.is_some());
        assert!(view.slim.is_none());
        assert!(view.archive.coverage().is_none());
    }

    /// The replica mirrors the engine's push sequence: warm-up gaps are
    /// zero-filled so archive intervals track detector intervals.
    #[test]
    fn replica_backfills_warmup_gap_and_tracks_intervals() {
        let plane = ServingPlane::new(archive_cfg()).unwrap();
        plane.interval_closed(&report_at(0), None);
        let err = error_sketch(0);
        plane.interval_closed(&report_at(1), Some((1, &err)));
        let view = plane.view();
        assert_eq!(view.interval, Some(1));
        assert_eq!(view.archive.coverage(), Some((0, 2)));
        // Epoch 0 is the zero back-fill; epoch 1 holds the error sketch.
        let range = view.archive.range_sketch(1, 2).unwrap();
        assert_eq!(range.sketch.get().table(), err.table());
        let zero = view.archive.range_sketch(0, 1).unwrap();
        assert!(zero.sketch.get().table().iter().all(|&c| c == 0.0));
    }

    /// Published views are immutable: a held snapshot still reads its
    /// interval's state after later closes advance the replica.
    #[test]
    fn held_snapshot_survives_later_intervals() {
        let plane = ServingPlane::new(archive_cfg()).unwrap();
        let err1 = error_sketch(0);
        plane.interval_closed(&report_at(0), Some((0, &err1)));
        let old = plane.view();
        let err2 = error_sketch(100);
        plane.interval_closed(&report_at(1), Some((1, &err2)));
        // The old view's world is frozen at interval 0.
        assert_eq!(old.interval, Some(0));
        assert_eq!(old.archive.coverage(), Some((0, 1)));
        assert_eq!(old.slim.as_ref().unwrap().estimate(5).to_bits(), err1.estimate(5).to_bits());
        // The new view sees both epochs and the fresh slim sketch.
        let new = plane.view();
        assert_eq!(new.archive.coverage(), Some((0, 2)));
        assert_eq!(new.slim.as_ref().unwrap().estimate(5).to_bits(), err2.estimate(5).to_bits());
    }

    /// The slim sketch carries forward across an interval that produced
    /// no error sketch (e.g. a NextInterval lag gap).
    #[test]
    fn slim_carries_forward_through_gap() {
        let plane = ServingPlane::new(archive_cfg()).unwrap();
        let err = error_sketch(7);
        plane.interval_closed(&report_at(0), Some((0, &err)));
        plane.interval_closed(&report_at(1), None);
        let view = plane.view();
        assert_eq!(view.interval, Some(1));
        assert!(view.slim.is_some());
        assert_eq!(view.archive.coverage(), Some((0, 1)));
    }

    /// The replica's notable-key directory matches `notable_keys` on the
    /// report, so candidate ranking matches the engine archive's.
    #[test]
    fn replica_files_notable_keys() {
        let plane = ServingPlane::new(archive_cfg()).unwrap();
        let report = report_at(0);
        let err = error_sketch(0);
        plane.interval_closed(&report, Some((0, &err)));
        let view = plane.view();
        let candidates = view.archive.candidate_keys(0, 1).unwrap();
        assert_eq!(candidates, vec![3, 1]);
    }

    /// Serving metrics advance with each snapshot.
    #[test]
    fn metrics_track_snapshots() {
        let registry = scd_obs::Registry::new();
        let metrics = ServeMetrics::register(&registry);
        let plane = ServingPlane::with_metrics(archive_cfg(), Some(Arc::clone(&metrics))).unwrap();
        let err = error_sketch(0);
        plane.interval_closed(&report_at(0), Some((0, &err)));
        plane.interval_closed(&report_at(1), Some((1, &err)));
        let mut text = String::new();
        registry.render_prometheus(&mut text);
        assert!(text.contains("scd_serve_snapshots_total 2"));
        assert!(text.contains("scd_serve_view_interval 1"));
    }
}
