//! [`SharedSketch`] — a copy-on-write [`LinearSketch`] adapter.
//!
//! The serving plane keeps its own replica of the detector's error-sketch
//! archive and publishes an immutable snapshot of it at every interval
//! close. Cloning a `SketchArchive<KarySketch>` copies every register
//! table — `O(window · H · K)` bytes per interval, all of it thrown away
//! when the next snapshot supersedes it. Wrapping the element type in
//! `SharedSketch` makes those snapshots cheap: a clone is an `Arc` bump
//! per epoch, and the tables are only deep-copied when the *writer*
//! mutates one it still shares with a published view
//! ([`Arc::make_mut`]) — which happens only on the archive's occasional
//! dyadic buddy merges, not per interval.
//!
//! The adapter is arithmetic-transparent: every operation forwards to the
//! inner sketch's `f64` implementation, so an archive of
//! `SharedSketch<L>` holds bit-identical register state to an archive of
//! `L` fed the same pushes — the property the soak test leans on when it
//! diffs served answers against offline `scd query`.

use scd_sketch::{LinearSketch, PointEstimate, SecondMoment, SketchError};
use std::sync::Arc;

/// A [`LinearSketch`] behind an [`Arc`] with copy-on-write mutation. See
/// the [module docs](self).
#[derive(Debug, Clone)]
pub struct SharedSketch<L>(Arc<L>);

impl<L> SharedSketch<L> {
    /// Wraps a sketch; no copy.
    pub fn new(sketch: L) -> SharedSketch<L> {
        SharedSketch(Arc::new(sketch))
    }

    /// Adopts an existing handle; no copy. Lets the serving plane push
    /// the *same* slim allocation into the archive that the live view
    /// serves point queries from — one table, two readers.
    pub fn from_arc(sketch: Arc<L>) -> SharedSketch<L> {
        SharedSketch(sketch)
    }

    /// Read access to the inner sketch.
    pub fn get(&self) -> &L {
        &self.0
    }

    /// True when this handle still shares its table with another clone
    /// (diagnostics for the snapshot tests).
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.0) > 1
    }
}

impl<L: PointEstimate> PointEstimate for SharedSketch<L> {
    fn estimate(&self, key: u64) -> f64 {
        self.0.estimate(key)
    }
}

impl<L: SecondMoment> SecondMoment for SharedSketch<L> {
    fn estimate_f2(&self) -> f64 {
        self.0.estimate_f2()
    }
}

impl<L: LinearSketch> LinearSketch for SharedSketch<L> {
    fn zero_like(&self) -> Self {
        SharedSketch::new(self.0.zero_like())
    }

    fn add_scaled(&mut self, other: &Self, c: f64) -> Result<(), SketchError> {
        Arc::make_mut(&mut self.0).add_scaled(&other.0, c)
    }

    fn scale(&mut self, c: f64) {
        Arc::make_mut(&mut self.0).scale(c);
    }

    fn identity(&self) -> (usize, usize, u64) {
        self.0.identity()
    }

    fn memory_bytes(&self) -> usize {
        self.0.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_sketch::{KarySketch, SketchConfig};

    fn sketch(shift: u64) -> KarySketch {
        let mut s = KarySketch::new(SketchConfig { h: 3, k: 256, seed: 42 });
        for key in 0..50u64 {
            s.update(key, (key + 1 + shift) as f64);
        }
        s
    }

    /// Clones share storage until a write; writes never disturb clones.
    #[test]
    fn clone_is_shallow_and_write_detaches() {
        let mut a = SharedSketch::new(sketch(3));
        let snapshot = a.clone();
        assert!(a.is_shared());
        let before = snapshot.estimate(7);
        let delta = SharedSketch::new(sketch(3));
        a.add_scaled(&delta, 1.0).unwrap();
        // The writer detached; the snapshot still reads the old state.
        assert!(!snapshot.is_shared() || !a.is_shared());
        assert_eq!(snapshot.estimate(7).to_bits(), before.to_bits());
        assert_eq!(a.estimate(7).to_bits(), (2.0 * before).to_bits());
    }

    /// The adapter is arithmetic-transparent: the same combination on
    /// wrapped and bare sketches yields bit-identical registers.
    #[test]
    fn combination_matches_bare_sketch_exactly() {
        let (a, b) = (sketch(4), sketch(5));
        let bare = <KarySketch as LinearSketch>::combine(&[(1.0, &a), (-0.5, &b)]).unwrap();
        let wrapped =
            SharedSketch::combine(&[(1.0, &SharedSketch::new(a)), (-0.5, &SharedSketch::new(b))])
                .unwrap();
        assert_eq!(wrapped.get().table(), bare.table());
        assert_eq!(wrapped.estimate_f2().to_bits(), bare.estimate_f2().to_bits());
        assert_eq!(wrapped.identity(), bare.identity());
        assert_eq!(wrapped.memory_bytes(), bare.memory_bytes());
    }

    /// `scale` through `Arc::make_mut` leaves earlier snapshots intact.
    #[test]
    fn scale_preserves_snapshots() {
        let mut a = SharedSketch::new(sketch(6));
        let snapshot = a.clone();
        a.scale(0.5);
        assert_eq!(snapshot.estimate(3).to_bits(), (2.0 * a.estimate(3)).to_bits());
    }
}
