//! The query listener: a multi-client TCP front end over the
//! [`ServingPlane`]'s snapshots, plus the pure [`answer`] function it
//! (and the tests) evaluate queries with.
//!
//! Connection handling follows the `scd-obs` metrics listener:
//! non-blocking accept polled against a stop flag, then blocking
//! per-connection I/O under read/write deadlines so one stalled client
//! can neither hang shutdown nor wedge its handler thread forever. Each
//! connection pins the *current* view per request — a client issuing
//! many queries sees the pipeline advance between them, but every single
//! answer is interval-consistent (one atomic view, one `as_of`).
//!
//! # Answer cache and request coalescing
//!
//! Historical answers are pure functions of `(view, request)`, and a
//! view is immutable until the next interval swaps the `Arc`. The server
//! exploits that with a per-view answer cache: the first request for a
//! given `(as_of, query)` computes and memoizes; identical requests —
//! concurrent or later, from any connection — wait on the in-flight slot
//! (coalescing) or read the memo, so a `changed_keys` storm costs one
//! epoch scan per interval instead of one per request. Correctness is
//! structural: the cache key includes the view's `as_of`, and a newer
//! `as_of` clears the map, so a cached answer can never outlive the view
//! it was computed against. Live estimates (`from == to`) are never
//! cached — they are `H` cell reads, cheaper than the cache lookup is
//! worth. [`ServerOptions::cache`] turns the whole layer off.

use crate::metrics::ServeMetrics;
use crate::proto::{ProtoError, Request, Response};
use crate::view::{ServingPlane, ServingView};
use scd_archive::ArchiveError;
use scd_obs::{LocalHistogram, Stopwatch};
use scd_sketch::{PointEstimate, SecondMoment};
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Per-connection socket read timeout: an idle-but-open client is fine
/// (the read just times out and retries until `stop`), a mid-frame stall
/// longer than this tears the connection down.
const READ_TIMEOUT: Duration = Duration::from_millis(500);

/// Per-response write budget; a client not draining its socket for this
/// long loses the connection.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Concurrent-connection cap; accepts beyond it are dropped immediately
/// (the client sees a clean close at a frame boundary and may retry).
const MAX_CONNECTIONS: usize = 64;

/// Distinct answers memoized per view; at the cap a new distinct query
/// evicts a *completed* memo (the map is also cleared at every view
/// swap, so this only bounds query diversity against one long-lived
/// view). In-flight `Pending` slots are never evicted — they are what
/// identical concurrent requests coalesce on.
const CACHE_CAP: usize = 1024;

/// Requests between folds of a connection's private latency histogram
/// into the shared [`ServeMetrics::answer_ns`] (plus one final fold when
/// the connection closes) — the `scd-obs` worker-local pattern, so the
/// per-request cost is a plain array add, not contended atomics.
const LOCAL_MERGE_EVERY: u64 = 64;

/// Evaluates one query against one frozen [`ServingView`] — pure, no
/// I/O, shared by the TCP handler, the CLI's offline path, and the
/// tests.
///
/// Archive outcomes map onto responses as: an empty window (`to ≤ from`
/// historically, or any historical query before the archive holds its
/// first epoch) is [`Response::NoData`] — a fact about the data, not a
/// failure; a window outside a *non-empty* archive's coverage, or a
/// sketch-level fault, is [`Response::Error`].
pub fn answer(view: &ServingView, req: &Request) -> Response {
    let Some(as_of) = view.interval else {
        return Response::NoData { as_of: None, reason: "no interval has closed yet".into() };
    };
    match *req {
        Request::Estimate { key, from, to } if from == to => match &view.slim {
            Some(slim) => Response::Estimate {
                as_of,
                live: true,
                value: slim.estimate(key),
                error_bound: slim.error_bound(),
            },
            None => Response::NoData {
                as_of: Some(as_of),
                reason: "model is still warming up: no error sketch yet".into(),
            },
        },
        Request::Estimate { key, from, to } => match view.archive.range_sketch(from, to) {
            Ok(range) => Response::Estimate {
                as_of,
                live: false,
                value: range.sketch.estimate(key),
                error_bound: range.sketch.get().error_bound(),
            },
            Err(e) => archive_miss(as_of, e),
        },
        Request::ChangedKeys { from, to, threshold } => {
            match view.archive.changed_keys(from, to, threshold, &[]) {
                Ok(report) => Response::ChangedKeys {
                    as_of,
                    requested: report.requested,
                    covered: report.covered,
                    epochs_used: report.epochs_used as u64,
                    error_f2: report.error_f2,
                    alarm_threshold: report.alarm_threshold,
                    changes: report.changes.into_iter().map(|c| (c.key, c.magnitude)).collect(),
                },
                Err(e) => archive_miss(as_of, e),
            }
        }
        Request::KeyHistory { key, from, to } => match view.archive.key_history(key, from, to) {
            Ok(points) => Response::KeyHistory {
                as_of,
                covered: points
                    .first()
                    .zip(points.last())
                    .map_or((0, 0), |(a, b)| (a.start, b.start + b.len)),
                points: points.into_iter().map(|p| (p.start, p.len, p.total, p.mean)).collect(),
            },
            Err(e) => archive_miss(as_of, e),
        },
        Request::RangeSketch { from, to } => match view.archive.range_sketch(from, to) {
            Ok(range) => Response::RangeSketch {
                as_of,
                covered: range.covered,
                epochs_used: range.epochs_used as u64,
                sum: range.sketch.get().sum(),
                error_f2: range.sketch.estimate_f2(),
            },
            Err(e) => archive_miss(as_of, e),
        },
    }
}

/// Maps an archive query failure onto the wire: "nothing there" answers
/// become [`Response::NoData`], real faults become [`Response::Error`].
fn archive_miss(as_of: u64, e: ArchiveError) -> Response {
    let as_of = Some(as_of);
    match e {
        ArchiveError::EmptyRange { .. } => Response::NoData { as_of, reason: e.to_string() },
        ArchiveError::OutOfRange { coverage: None, .. } => Response::NoData {
            as_of,
            reason: "archive holds no epochs yet (model warming up)".into(),
        },
        other => Response::Error { as_of, message: other.to_string() },
    }
}

/// A request's identity for memoization. Live estimates map to `None`
/// (never cached); float thresholds key by their exact bit pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CacheKey {
    Estimate { key: u64, from: u64, to: u64 },
    ChangedKeys { from: u64, to: u64, threshold_bits: u64 },
    KeyHistory { key: u64, from: u64, to: u64 },
    RangeSketch { from: u64, to: u64 },
}

fn cache_key(req: &Request) -> Option<CacheKey> {
    match *req {
        Request::Estimate { from, to, .. } if from == to => None,
        Request::Estimate { key, from, to } => Some(CacheKey::Estimate { key, from, to }),
        Request::ChangedKeys { from, to, threshold } => {
            Some(CacheKey::ChangedKeys { from, to, threshold_bits: threshold.to_bits() })
        }
        Request::KeyHistory { key, from, to } => Some(CacheKey::KeyHistory { key, from, to }),
        Request::RangeSketch { from, to } => Some(CacheKey::RangeSketch { from, to }),
    }
}

/// One memo slot: `Pending` while the first requester computes (later
/// identical requests block on the condvar — that's the coalescing),
/// then `Ready` with the answer every waiter clones.
#[derive(Debug)]
struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

#[derive(Debug)]
enum SlotState {
    Pending,
    Ready(Response),
}

#[derive(Debug, Default)]
struct CacheInner {
    /// The view interval the map's entries were computed against.
    as_of: u64,
    map: HashMap<CacheKey, Arc<Slot>>,
}

/// The per-view answer cache. See the [module docs](self) for the
/// invalidation argument.
#[derive(Debug)]
pub(crate) struct AnswerCache {
    /// Memo-count ceiling ([`CACHE_CAP`] in production; tests shrink it
    /// to exercise cap pressure).
    cap: usize,
    inner: Mutex<CacheInner>,
}

impl Default for AnswerCache {
    fn default() -> Self {
        AnswerCache::with_capacity(CACHE_CAP)
    }
}

impl AnswerCache {
    fn with_capacity(cap: usize) -> Self {
        AnswerCache { cap, inner: Mutex::default() }
    }
}

/// What the cache decided for one request.
enum Claim {
    /// First requester: compute, publish into the slot, notify waiters.
    Compute(Arc<Slot>),
    /// Identical request already computed or in flight: wait and clone.
    Hit(Arc<Slot>),
    /// Not cacheable (a straggler connection's superseded view): compute
    /// uncached.
    Bypass,
}

/// [`answer`] through the memo layer — same responses, byte for byte
/// (the first requester's `answer` output is what everyone receives).
pub(crate) fn answer_cached(
    cache: &AnswerCache,
    view: &ServingView,
    req: &Request,
    metrics: Option<&ServeMetrics>,
) -> Response {
    let (Some(as_of), Some(key)) = (view.interval, cache_key(req)) else {
        return answer(view, req);
    };
    let claim = {
        let mut inner = cache.inner.lock().expect("answer cache lock poisoned");
        if as_of < inner.as_of {
            // A connection still holding a superseded view: its answers
            // must come from *that* view, and the map now belongs to a
            // newer one. Compute directly.
            Claim::Bypass
        } else {
            if as_of > inner.as_of {
                // The Arc swap happened: every memo below is for a dead
                // view. Invalidate wholesale.
                inner.as_of = as_of;
                inner.map.clear();
            }
            if let Some(slot) = inner.map.get(&key) {
                Claim::Hit(Arc::clone(slot))
            } else {
                let mut full = inner.map.len() >= cache.cap;
                if full {
                    // Full: evict a *completed* memo rather than bypass —
                    // a long-lived view (idle ingest) must not lock the
                    // cache into whatever happened to fill it first.
                    // Pending slots are exempt: evicting one would let
                    // the next identical request miss the map and start
                    // a second scan while the first is still in flight,
                    // breaking one-scan-per-distinct-query coalescing.
                    // (Existing waiters would survive — they hold their
                    // own `Arc` — but new arrivals would not coalesce.)
                    // `try_lock` cannot deadlock here: slot locks are
                    // never held across a grab of the cache lock, and a
                    // contended slot just stays resident this round.
                    let victim =
                        inner.map.iter().find_map(|(k, slot)| match slot.state.try_lock() {
                            Ok(state) if matches!(*state, SlotState::Ready(_)) => Some(k.clone()),
                            _ => None,
                        });
                    if let Some(victim) = victim {
                        inner.map.remove(&victim);
                        full = false;
                    }
                }
                if full {
                    // Every resident slot is an in-flight computation:
                    // answer this query uncached instead of displacing
                    // one of them or growing past the cap.
                    Claim::Bypass
                } else {
                    let slot = Arc::new(Slot {
                        state: Mutex::new(SlotState::Pending),
                        ready: Condvar::new(),
                    });
                    inner.map.insert(key, Arc::clone(&slot));
                    Claim::Compute(slot)
                }
            }
        }
    };
    match claim {
        Claim::Bypass => answer(view, req),
        Claim::Compute(slot) => {
            if let Some(m) = metrics {
                m.cache_misses.inc();
            }
            let resp = answer(view, req);
            *slot.state.lock().expect("cache slot lock poisoned") = SlotState::Ready(resp.clone());
            slot.ready.notify_all();
            resp
        }
        Claim::Hit(slot) => {
            let mut coalesced = false;
            let mut state = slot.state.lock().expect("cache slot lock poisoned");
            while matches!(*state, SlotState::Pending) {
                coalesced = true;
                state = slot.ready.wait(state).expect("cache slot lock poisoned");
            }
            let SlotState::Ready(resp) = &*state else { unreachable!("loop exits on Ready") };
            let resp = resp.clone();
            drop(state);
            if let Some(m) = metrics {
                m.cache_hits.inc();
                if coalesced {
                    m.coalesced_total.inc();
                }
            }
            resp
        }
    }
}

/// Read-path knobs for [`QueryServer::bind_with`].
#[derive(Debug, Clone, Copy)]
pub struct ServerOptions {
    /// Memoize and coalesce historical answers per view (default on).
    pub cache: bool,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions { cache: true }
    }
}

/// A TCP query server bound to a local address, answering [`Request`]s
/// against the [`ServingPlane`]'s current view until stopped or dropped.
#[derive(Debug)]
pub struct QueryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl QueryServer {
    /// Binds `addr` (use port 0 for an ephemeral port — see
    /// [`addr`](Self::addr)) and starts the accept loop, with the answer
    /// cache on ([`ServerOptions::default`]).
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(
        addr: &str,
        plane: Arc<ServingPlane>,
        metrics: Option<Arc<ServeMetrics>>,
    ) -> std::io::Result<QueryServer> {
        Self::bind_with(addr, plane, metrics, ServerOptions::default())
    }

    /// [`bind`](Self::bind) with explicit [`ServerOptions`].
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind_with(
        addr: &str,
        plane: Arc<ServingPlane>,
        metrics: Option<Arc<ServeMetrics>>,
        options: ServerOptions,
    ) -> std::io::Result<QueryServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let cache = options.cache.then(|| Arc::new(AnswerCache::default()));
        let accept_thread = std::thread::Builder::new()
            .name("scd-serve-accept".into())
            .spawn(move || accept_loop(listener, plane, cache, metrics, accept_stop))
            .expect("spawn accept thread");
        Ok(QueryServer { addr, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound address (with the real port when bound ephemerally).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the accept loop to stop and waits for it to exit. Open
    /// connections drain on their own threads; their handlers observe
    /// the stop flag at the next read timeout.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    plane: Arc<ServingPlane>,
    cache: Option<Arc<AnswerCache>>,
    metrics: Option<Arc<ServeMetrics>>,
    stop: Arc<AtomicBool>,
) {
    let live = Arc::new(AtomicUsize::new(0));
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if live.load(Ordering::Acquire) >= MAX_CONNECTIONS {
                    if let Some(m) = &metrics {
                        m.connections_refused.inc();
                    }
                    drop(stream);
                    continue;
                }
                if let Some(m) = &metrics {
                    m.connections_total.inc();
                }
                live.fetch_add(1, Ordering::AcqRel);
                let plane = Arc::clone(&plane);
                let cache = cache.clone();
                let metrics = metrics.clone();
                let stop = Arc::clone(&stop);
                let conn_live = Arc::clone(&live);
                let spawned =
                    std::thread::Builder::new().name("scd-serve-conn".into()).spawn(move || {
                        let _ = serve_connection(
                            stream,
                            &plane,
                            cache.as_deref(),
                            metrics.as_deref(),
                            &stop,
                        );
                        conn_live.fetch_sub(1, Ordering::AcqRel);
                    });
                if spawned.is_err() {
                    live.fetch_sub(1, Ordering::AcqRel);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// One connection's request/response loop. Returns on clean close, any
/// protocol error (the connection is torn down — queries are idempotent
/// and the client reconnects), or server stop.
fn serve_connection(
    stream: TcpStream,
    plane: &ServingPlane,
    cache: Option<&AnswerCache>,
    metrics: Option<&ServeMetrics>,
    stop: &AtomicBool,
) -> Result<(), ProtoError> {
    // Latency samples accumulate in a connection-private histogram (plain
    // adds) and fold into the shared one every LOCAL_MERGE_EVERY requests
    // and once at teardown, whatever path exits the loop.
    let mut local_answer = LocalHistogram::new();
    let result = serve_requests(stream, plane, cache, metrics, stop, &mut local_answer);
    if let Some(m) = metrics {
        m.answer_ns.merge_local(&local_answer);
    }
    result
}

fn serve_requests(
    stream: TcpStream,
    plane: &ServingPlane,
    cache: Option<&AnswerCache>,
    metrics: Option<&ServeMetrics>,
    stop: &AtomicBool,
    local_answer: &mut LocalHistogram,
) -> Result<(), ProtoError> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        let req = match Request::read_from(&mut reader) {
            Ok(req) => req,
            Err(ProtoError::Closed) => return Ok(()),
            // An idle client between requests: the read timed out at a
            // frame boundary. Check the stop flag and wait again.
            Err(ProtoError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        let sw = Stopwatch::start();
        let view = plane.view();
        let resp = match cache {
            Some(cache) => answer_cached(cache, &view, &req, metrics),
            None => answer(&view, &req),
        };
        if let Some(m) = metrics {
            m.queries_total.inc();
            match resp {
                Response::Error { .. } => m.query_errors.inc(),
                Response::NoData { .. } => m.query_nodata.inc(),
                _ => {}
            }
            local_answer.record(sw.elapsed_ns());
            if local_answer.count() >= LOCAL_MERGE_EVERY {
                m.answer_ns.merge_local(local_answer);
                local_answer.clear();
            }
        }
        writer.write_all(&resp.encode())?;
        writer.flush()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slim::SlimSketch;
    use scd_archive::ArchiveConfig;
    use scd_core::{IntervalObserver, IntervalReport};
    use scd_sketch::{KarySketch, SketchConfig};

    fn plane_with_two_intervals() -> Arc<ServingPlane> {
        let plane = ServingPlane::new(ArchiveConfig {
            max_sketches: 8,
            full_resolution: 4,
            keys_per_epoch: 16,
        })
        .unwrap();
        for t in 0..2usize {
            let mut err = KarySketch::new(SketchConfig { h: 3, k: 256, seed: 5 });
            for key in 0..30u64 {
                err.update(key, ((key + 1) * (t as u64 + 1)) as f64);
            }
            let report = IntervalReport {
                interval: t,
                warmed_up: true,
                errors: vec![(2, 5.0)],
                ..Default::default()
            };
            plane.interval_closed(&report, Some((t, &err)));
        }
        plane
    }

    /// Pre-first-interval views answer every query kind with NoData.
    #[test]
    fn empty_view_answers_nodata_everywhere() {
        let plane = ServingPlane::new(ArchiveConfig {
            max_sketches: 8,
            full_resolution: 4,
            keys_per_epoch: 16,
        })
        .unwrap();
        let view = plane.view();
        let reqs = [
            Request::Estimate { key: 1, from: 0, to: 0 },
            Request::Estimate { key: 1, from: 0, to: 4 },
            Request::ChangedKeys { from: 0, to: 4, threshold: 0.05 },
            Request::KeyHistory { key: 1, from: 0, to: 4 },
            Request::RangeSketch { from: 0, to: 4 },
        ];
        for req in reqs {
            assert!(
                matches!(answer(&view, &req), Response::NoData { .. }),
                "expected NoData for {req:?}"
            );
        }
    }

    /// A warmed-up view answers live estimates from the slim sketch and
    /// historical estimates from the archive, both tagged with as_of.
    #[test]
    fn live_and_historical_estimates() {
        let plane = plane_with_two_intervals();
        let view = plane.view();
        let slim = view.slim.as_ref().unwrap();
        match answer(&view, &Request::Estimate { key: 7, from: 0, to: 0 }) {
            Response::Estimate { as_of, live, value, error_bound } => {
                assert_eq!(as_of, 1);
                assert!(live);
                assert_eq!(value.to_bits(), slim.estimate(7).to_bits());
                assert!(error_bound >= 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        match answer(&view, &Request::Estimate { key: 7, from: 0, to: 2 }) {
            Response::Estimate { as_of, live, value, error_bound } => {
                assert_eq!(as_of, 1);
                assert!(!live);
                let range = view.archive.range_sketch(0, 2).unwrap();
                assert_eq!(value.to_bits(), range.sketch.estimate(7).to_bits());
                // Historical answers now carry the composed slim rounding
                // envelope of the combined range.
                assert_eq!(error_bound.to_bits(), range.sketch.get().error_bound().to_bits());
                assert!(error_bound > 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Empty windows and not-yet-covered windows answer NoData; windows
    /// outside a non-empty archive answer Error.
    #[test]
    fn window_misses_map_to_nodata_or_error() {
        let plane = plane_with_two_intervals();
        let view = plane.view();
        assert!(matches!(
            answer(&view, &Request::RangeSketch { from: 4, to: 2 }),
            Response::NoData { .. }
        ));
        assert!(matches!(
            answer(&view, &Request::RangeSketch { from: 10, to: 20 }),
            Response::Error { .. }
        ));
    }

    /// End-to-end over a real socket: bind, connect, ask all four kinds,
    /// answers equal the pure `answer` on the same view.
    #[test]
    fn serves_all_query_kinds_over_tcp() {
        let plane = plane_with_two_intervals();
        let mut server = QueryServer::bind("127.0.0.1:0", Arc::clone(&plane), None).unwrap();
        let view = plane.view();
        let mut client = crate::client::QueryClient::connect(&server.addr().to_string()).unwrap();
        let reqs = [
            Request::Estimate { key: 3, from: 0, to: 0 },
            Request::Estimate { key: 3, from: 0, to: 2 },
            Request::ChangedKeys { from: 0, to: 2, threshold: 0.05 },
            Request::KeyHistory { key: 3, from: 0, to: 2 },
            Request::RangeSketch { from: 0, to: 2 },
        ];
        for req in reqs {
            let served = client.ask(&req).unwrap();
            assert_eq!(served, answer(&view, &req), "mismatch for {req:?}");
        }
        server.shutdown();
    }

    /// Protocol corruption tears down only the offending connection; the
    /// server keeps serving new ones.
    #[test]
    fn corrupt_frame_drops_connection_but_not_server() {
        let plane = plane_with_two_intervals();
        let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&plane), None).unwrap();
        let addr = server.addr().to_string();
        {
            let mut bad = TcpStream::connect(&addr).unwrap();
            bad.write_all(b"GARBAGE NOT A FRAME").unwrap();
            bad.flush().unwrap();
            // The server rejects at the magic check and closes; reading
            // eventually observes EOF.
            let mut buf = [0u8; 16];
            use std::io::Read;
            bad.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            loop {
                match bad.read(&mut buf) {
                    Ok(0) => break,
                    Ok(_) => {}
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        panic!("server did not close corrupted connection")
                    }
                    Err(_) => break,
                }
            }
        }
        let mut client = crate::client::QueryClient::connect(&addr).unwrap();
        let resp = client.ask(&Request::RangeSketch { from: 0, to: 2 }).unwrap();
        assert!(matches!(resp, Response::RangeSketch { .. }));
    }

    /// Multiple concurrent clients each get consistent answers.
    #[test]
    fn concurrent_clients_get_consistent_answers() {
        let plane = plane_with_two_intervals();
        let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&plane), None).unwrap();
        let addr = server.addr().to_string();
        let view = plane.view();
        let expect = answer(&view, &Request::Estimate { key: 9, from: 0, to: 0 });
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                let expect = expect.clone();
                std::thread::spawn(move || {
                    let mut client = crate::client::QueryClient::connect(&addr).unwrap();
                    for _ in 0..25 {
                        let got =
                            client.ask(&Request::Estimate { key: 9, from: 0, to: 0 }).unwrap();
                        assert_eq!(got, expect);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    /// The memo layer returns the same bytes as the uncached path for
    /// every query kind, hits on repeats, and coalesces concurrent
    /// identical requests onto one computation.
    #[test]
    fn cache_answers_match_uncached_and_count_hits() {
        let registry = scd_obs::Registry::new();
        let metrics = ServeMetrics::register(&registry);
        let plane = plane_with_two_intervals();
        let view = plane.view();
        let cache = AnswerCache::default();
        let reqs = [
            Request::Estimate { key: 3, from: 0, to: 2 },
            Request::ChangedKeys { from: 0, to: 2, threshold: 0.05 },
            Request::KeyHistory { key: 3, from: 0, to: 2 },
            Request::RangeSketch { from: 0, to: 2 },
        ];
        for req in &reqs {
            let direct = answer(&view, req);
            let first = answer_cached(&cache, &view, req, Some(&metrics));
            let second = answer_cached(&cache, &view, req, Some(&metrics));
            assert_eq!(first.encode(), direct.encode(), "first answer for {req:?}");
            assert_eq!(second.encode(), direct.encode(), "cached answer for {req:?}");
        }
        assert_eq!(metrics.cache_misses.get(), reqs.len() as u64);
        assert_eq!(metrics.cache_hits.get(), reqs.len() as u64);
        // Live estimates bypass the cache entirely.
        let live = Request::Estimate { key: 3, from: 0, to: 0 };
        let direct = answer(&view, &live);
        assert_eq!(answer_cached(&cache, &view, &live, Some(&metrics)).encode(), direct.encode());
        assert_eq!(metrics.cache_misses.get(), reqs.len() as u64);
    }

    /// A waiter blocked on a Pending slot receives exactly the response
    /// the computing side publishes, and counts as coalesced.
    #[test]
    fn pending_slot_coalesces_waiters() {
        let registry = scd_obs::Registry::new();
        let metrics = ServeMetrics::register(&registry);
        let plane = plane_with_two_intervals();
        let view = plane.view();
        let cache = Arc::new(AnswerCache::default());
        let req = Request::ChangedKeys { from: 0, to: 2, threshold: 0.05 };
        // Plant a Pending slot by hand, as if another connection were
        // mid-computation.
        let slot = Arc::new(Slot { state: Mutex::new(SlotState::Pending), ready: Condvar::new() });
        {
            let mut inner = cache.inner.lock().unwrap();
            inner.as_of = view.interval.unwrap();
            inner.map.insert(cache_key(&req).unwrap(), Arc::clone(&slot));
        }
        let waiter = {
            let (cache, view, req, metrics) =
                (Arc::clone(&cache), Arc::clone(&view), req.clone(), Arc::clone(&metrics));
            std::thread::spawn(move || answer_cached(&cache, &view, &req, Some(&metrics)))
        };
        std::thread::sleep(Duration::from_millis(30));
        let expect = answer(&view, &req);
        *slot.state.lock().unwrap() = SlotState::Ready(expect.clone());
        slot.ready.notify_all();
        assert_eq!(waiter.join().unwrap().encode(), expect.encode());
        assert_eq!(metrics.coalesced_total.get(), 1);
        assert_eq!(metrics.cache_hits.get(), 1);
    }

    /// Under cap pressure, eviction never displaces an in-flight Pending
    /// slot: new distinct queries bypass the cache instead, and identical
    /// requests keep coalescing onto the one scan already running.
    #[test]
    fn cap_pressure_never_evicts_in_flight_slots() {
        let registry = scd_obs::Registry::new();
        let metrics = ServeMetrics::register(&registry);
        let plane = plane_with_two_intervals();
        let view = plane.view();
        let cache = Arc::new(AnswerCache::with_capacity(2));
        let in_flight = [
            Request::ChangedKeys { from: 0, to: 2, threshold: 0.05 },
            Request::KeyHistory { key: 3, from: 0, to: 2 },
        ];
        // Two hand-planted Pending slots fill the cache, as if two
        // scans were mid-flight on other connections.
        let slots: Vec<Arc<Slot>> = in_flight
            .iter()
            .map(|req| {
                let slot =
                    Arc::new(Slot { state: Mutex::new(SlotState::Pending), ready: Condvar::new() });
                let mut inner = cache.inner.lock().unwrap();
                inner.as_of = view.interval.unwrap();
                inner.map.insert(cache_key(req).unwrap(), Arc::clone(&slot));
                slot
            })
            .collect();
        // A third distinct query against the full, all-Pending cache
        // must not evict either scan: it computes uncached and leaves
        // the map untouched.
        let extra = Request::RangeSketch { from: 0, to: 2 };
        let got = answer_cached(&cache, &view, &extra, Some(&metrics));
        assert_eq!(got.encode(), answer(&view, &extra).encode());
        assert_eq!(metrics.cache_misses.get(), 0, "bypass must not claim a slot");
        {
            let inner = cache.inner.lock().unwrap();
            assert_eq!(inner.map.len(), 2);
            for req in &in_flight {
                assert!(
                    inner.map.contains_key(&cache_key(req).unwrap()),
                    "in-flight slot evicted under cap pressure"
                );
            }
        }
        // Identical requests issued during the squeeze still coalesce
        // onto the original scans — one scan per distinct in-flight
        // query, never a second Compute.
        let waiters: Vec<_> = in_flight
            .iter()
            .map(|req| {
                let (cache, view, req, metrics) =
                    (Arc::clone(&cache), Arc::clone(&view), req.clone(), Arc::clone(&metrics));
                std::thread::spawn(move || answer_cached(&cache, &view, &req, Some(&metrics)))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(metrics.cache_misses.get(), 0, "an in-flight query was recomputed");
        for (req, slot) in in_flight.iter().zip(&slots) {
            *slot.state.lock().unwrap() = SlotState::Ready(answer(&view, req));
            slot.ready.notify_all();
        }
        for (w, req) in waiters.into_iter().zip(&in_flight) {
            assert_eq!(w.join().unwrap().encode(), answer(&view, req).encode());
        }
        assert_eq!(metrics.coalesced_total.get(), 2);
        // Once the scans publish, cap pressure evicts again: a new
        // distinct query displaces a Ready memo and claims a real slot.
        let after = Request::Estimate { key: 3, from: 0, to: 2 };
        let got = answer_cached(&cache, &view, &after, Some(&metrics));
        assert_eq!(got.encode(), answer(&view, &after).encode());
        assert_eq!(metrics.cache_misses.get(), 1, "Ready memos are evictable again");
        assert_eq!(cache.inner.lock().unwrap().map.len(), 2);
    }

    /// A connection still serving a superseded view bypasses the cache:
    /// its answers come from its own view, never a newer one's memo.
    #[test]
    fn stale_view_bypasses_newer_cache() {
        let plane = plane_with_two_intervals();
        let old = plane.view();
        // Advance the plane one more interval; the cache follows.
        let mut err = KarySketch::new(SketchConfig { h: 3, k: 256, seed: 5 });
        for key in 0..30u64 {
            err.update(key, (key + 9) as f64);
        }
        let report = IntervalReport { interval: 2, warmed_up: true, ..Default::default() };
        plane.interval_closed(&report, Some((2, &err)));
        let new = plane.view();
        let cache = AnswerCache::default();
        let req = Request::RangeSketch { from: 0, to: 3 };
        let from_new = answer_cached(&cache, &new, &req, None);
        let from_old = answer_cached(&cache, &old, &req, None);
        assert_eq!(from_new.encode(), answer(&new, &req).encode());
        assert_eq!(from_old.encode(), answer(&old, &req).encode());
        assert_ne!(from_old.encode(), from_new.encode(), "stale view must not see newer memo");
    }

    /// Over TCP with the cache on, repeated identical requests from
    /// different connections are byte-identical and the hit counter
    /// advances.
    #[test]
    fn cached_tcp_answers_are_byte_identical() {
        let registry = scd_obs::Registry::new();
        let metrics = ServeMetrics::register(&registry);
        let plane = plane_with_two_intervals();
        let server = QueryServer::bind_with(
            "127.0.0.1:0",
            Arc::clone(&plane),
            Some(Arc::clone(&metrics)),
            ServerOptions { cache: true },
        )
        .unwrap();
        let addr = server.addr().to_string();
        let req = Request::ChangedKeys { from: 0, to: 2, threshold: 0.05 };
        let mut responses = Vec::new();
        for _ in 0..3 {
            let mut client = crate::client::QueryClient::connect(&addr).unwrap();
            responses.push(client.ask(&req).unwrap().encode());
        }
        assert!(responses.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(metrics.cache_misses.get(), 1);
        assert_eq!(metrics.cache_hits.get(), 2);
    }

    /// The slim sketch the server answers from matches a fresh projection
    /// of the last error sketch (guards the handoff wiring end to end).
    #[test]
    fn served_live_estimates_match_fresh_projection() {
        let plane = plane_with_two_intervals();
        let view = plane.view();
        let mut err = KarySketch::new(SketchConfig { h: 3, k: 256, seed: 5 });
        for key in 0..30u64 {
            err.update(key, ((key + 1) * 2) as f64);
        }
        let fresh = SlimSketch::from_fat(&err);
        for key in 0..30u64 {
            assert_eq!(
                view.slim.as_ref().unwrap().estimate(key).to_bits(),
                fresh.estimate(key).to_bits()
            );
        }
    }
}
