//! The query listener: a multi-client TCP front end over the
//! [`ServingPlane`]'s snapshots, plus the pure [`answer`] function it
//! (and the tests) evaluate queries with.
//!
//! Connection handling follows the `scd-obs` metrics listener:
//! non-blocking accept polled against a stop flag, then blocking
//! per-connection I/O under read/write deadlines so one stalled client
//! can neither hang shutdown nor wedge its handler thread forever. Each
//! connection pins the *current* view per request — a client issuing
//! many queries sees the pipeline advance between them, but every single
//! answer is interval-consistent (one atomic view, one `as_of`).

use crate::metrics::ServeMetrics;
use crate::proto::{ProtoError, Request, Response};
use crate::view::{ServingPlane, ServingView};
use scd_archive::ArchiveError;
use scd_obs::Stopwatch;
use scd_sketch::{PointEstimate, SecondMoment};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Per-connection socket read timeout: an idle-but-open client is fine
/// (the read just times out and retries until `stop`), a mid-frame stall
/// longer than this tears the connection down.
const READ_TIMEOUT: Duration = Duration::from_millis(500);

/// Per-response write budget; a client not draining its socket for this
/// long loses the connection.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Concurrent-connection cap; accepts beyond it are dropped immediately
/// (the client sees a clean close at a frame boundary and may retry).
const MAX_CONNECTIONS: usize = 64;

/// Evaluates one query against one frozen [`ServingView`] — pure, no
/// I/O, shared by the TCP handler, the CLI's offline path, and the
/// tests.
///
/// Archive outcomes map onto responses as: an empty window (`to ≤ from`
/// historically, or any historical query before the archive holds its
/// first epoch) is [`Response::NoData`] — a fact about the data, not a
/// failure; a window outside a *non-empty* archive's coverage, or a
/// sketch-level fault, is [`Response::Error`].
pub fn answer(view: &ServingView, req: &Request) -> Response {
    let Some(as_of) = view.interval else {
        return Response::NoData { reason: "no interval has closed yet".into() };
    };
    match *req {
        Request::Estimate { key, from, to } if from == to => match &view.slim {
            Some(slim) => Response::Estimate {
                as_of,
                live: true,
                value: slim.estimate(key),
                error_bound: slim.error_bound(),
            },
            None => {
                Response::NoData { reason: "model is still warming up: no error sketch yet".into() }
            }
        },
        Request::Estimate { key, from, to } => match view.archive.range_sketch(from, to) {
            Ok(range) => Response::Estimate {
                as_of,
                live: false,
                value: range.sketch.estimate(key),
                error_bound: 0.0,
            },
            Err(e) => archive_miss(e),
        },
        Request::ChangedKeys { from, to, threshold } => {
            match view.archive.changed_keys(from, to, threshold, &[]) {
                Ok(report) => Response::ChangedKeys {
                    as_of,
                    requested: report.requested,
                    covered: report.covered,
                    epochs_used: report.epochs_used as u64,
                    error_f2: report.error_f2,
                    alarm_threshold: report.alarm_threshold,
                    changes: report.changes.into_iter().map(|c| (c.key, c.magnitude)).collect(),
                },
                Err(e) => archive_miss(e),
            }
        }
        Request::KeyHistory { key, from, to } => match view.archive.key_history(key, from, to) {
            Ok(points) => Response::KeyHistory {
                as_of,
                covered: points
                    .first()
                    .zip(points.last())
                    .map_or((0, 0), |(a, b)| (a.start, b.start + b.len)),
                points: points.into_iter().map(|p| (p.start, p.len, p.total, p.mean)).collect(),
            },
            Err(e) => archive_miss(e),
        },
        Request::RangeSketch { from, to } => match view.archive.range_sketch(from, to) {
            Ok(range) => Response::RangeSketch {
                as_of,
                covered: range.covered,
                epochs_used: range.epochs_used as u64,
                sum: range.sketch.get().sum(),
                error_f2: range.sketch.estimate_f2(),
            },
            Err(e) => archive_miss(e),
        },
    }
}

/// Maps an archive query failure onto the wire: "nothing there" answers
/// become [`Response::NoData`], real faults become [`Response::Error`].
fn archive_miss(e: ArchiveError) -> Response {
    match e {
        ArchiveError::EmptyRange { .. } => Response::NoData { reason: e.to_string() },
        ArchiveError::OutOfRange { coverage: None, .. } => {
            Response::NoData { reason: "archive holds no epochs yet (model warming up)".into() }
        }
        other => Response::Error { message: other.to_string() },
    }
}

/// A TCP query server bound to a local address, answering [`Request`]s
/// against the [`ServingPlane`]'s current view until stopped or dropped.
#[derive(Debug)]
pub struct QueryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl QueryServer {
    /// Binds `addr` (use port 0 for an ephemeral port — see
    /// [`addr`](Self::addr)) and starts the accept loop.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(
        addr: &str,
        plane: Arc<ServingPlane>,
        metrics: Option<Arc<ServeMetrics>>,
    ) -> std::io::Result<QueryServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("scd-serve-accept".into())
            .spawn(move || accept_loop(listener, plane, metrics, accept_stop))
            .expect("spawn accept thread");
        Ok(QueryServer { addr, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound address (with the real port when bound ephemerally).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the accept loop to stop and waits for it to exit. Open
    /// connections drain on their own threads; their handlers observe
    /// the stop flag at the next read timeout.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    plane: Arc<ServingPlane>,
    metrics: Option<Arc<ServeMetrics>>,
    stop: Arc<AtomicBool>,
) {
    let live = Arc::new(AtomicUsize::new(0));
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if live.load(Ordering::Acquire) >= MAX_CONNECTIONS {
                    if let Some(m) = &metrics {
                        m.connections_refused.inc();
                    }
                    drop(stream);
                    continue;
                }
                if let Some(m) = &metrics {
                    m.connections_total.inc();
                }
                live.fetch_add(1, Ordering::AcqRel);
                let plane = Arc::clone(&plane);
                let metrics = metrics.clone();
                let stop = Arc::clone(&stop);
                let conn_live = Arc::clone(&live);
                let spawned =
                    std::thread::Builder::new().name("scd-serve-conn".into()).spawn(move || {
                        let _ = serve_connection(stream, &plane, metrics.as_deref(), &stop);
                        conn_live.fetch_sub(1, Ordering::AcqRel);
                    });
                if spawned.is_err() {
                    live.fetch_sub(1, Ordering::AcqRel);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// One connection's request/response loop. Returns on clean close, any
/// protocol error (the connection is torn down — queries are idempotent
/// and the client reconnects), or server stop.
fn serve_connection(
    stream: TcpStream,
    plane: &ServingPlane,
    metrics: Option<&ServeMetrics>,
    stop: &AtomicBool,
) -> Result<(), ProtoError> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        let req = match Request::read_from(&mut reader) {
            Ok(req) => req,
            Err(ProtoError::Closed) => return Ok(()),
            // An idle client between requests: the read timed out at a
            // frame boundary. Check the stop flag and wait again.
            Err(ProtoError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        let sw = Stopwatch::start();
        let view = plane.view();
        let resp = answer(&view, &req);
        if let Some(m) = metrics {
            m.queries_total.inc();
            match resp {
                Response::Error { .. } => m.query_errors.inc(),
                Response::NoData { .. } => m.query_nodata.inc(),
                _ => {}
            }
            m.answer_ns.record(sw.elapsed_ns());
        }
        writer.write_all(&resp.encode())?;
        writer.flush()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slim::SlimSketch;
    use scd_archive::ArchiveConfig;
    use scd_core::{IntervalObserver, IntervalReport};
    use scd_sketch::{KarySketch, SketchConfig};

    fn plane_with_two_intervals() -> Arc<ServingPlane> {
        let plane = ServingPlane::new(ArchiveConfig {
            max_sketches: 8,
            full_resolution: 4,
            keys_per_epoch: 16,
        })
        .unwrap();
        for t in 0..2usize {
            let mut err = KarySketch::new(SketchConfig { h: 3, k: 256, seed: 5 });
            for key in 0..30u64 {
                err.update(key, ((key + 1) * (t as u64 + 1)) as f64);
            }
            let report = IntervalReport {
                interval: t,
                warmed_up: true,
                errors: vec![(2, 5.0)],
                ..Default::default()
            };
            plane.interval_closed(&report, Some((t, &err)));
        }
        plane
    }

    /// Pre-first-interval views answer every query kind with NoData.
    #[test]
    fn empty_view_answers_nodata_everywhere() {
        let plane = ServingPlane::new(ArchiveConfig {
            max_sketches: 8,
            full_resolution: 4,
            keys_per_epoch: 16,
        })
        .unwrap();
        let view = plane.view();
        let reqs = [
            Request::Estimate { key: 1, from: 0, to: 0 },
            Request::Estimate { key: 1, from: 0, to: 4 },
            Request::ChangedKeys { from: 0, to: 4, threshold: 0.05 },
            Request::KeyHistory { key: 1, from: 0, to: 4 },
            Request::RangeSketch { from: 0, to: 4 },
        ];
        for req in reqs {
            assert!(
                matches!(answer(&view, &req), Response::NoData { .. }),
                "expected NoData for {req:?}"
            );
        }
    }

    /// A warmed-up view answers live estimates from the slim sketch and
    /// historical estimates from the archive, both tagged with as_of.
    #[test]
    fn live_and_historical_estimates() {
        let plane = plane_with_two_intervals();
        let view = plane.view();
        let slim = view.slim.as_ref().unwrap();
        match answer(&view, &Request::Estimate { key: 7, from: 0, to: 0 }) {
            Response::Estimate { as_of, live, value, error_bound } => {
                assert_eq!(as_of, 1);
                assert!(live);
                assert_eq!(value.to_bits(), slim.estimate(7).to_bits());
                assert!(error_bound >= 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        match answer(&view, &Request::Estimate { key: 7, from: 0, to: 2 }) {
            Response::Estimate { as_of, live, value, error_bound } => {
                assert_eq!(as_of, 1);
                assert!(!live);
                let expect = view.archive.range_sketch(0, 2).unwrap().sketch.estimate(7);
                assert_eq!(value.to_bits(), expect.to_bits());
                assert_eq!(error_bound, 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Empty windows and not-yet-covered windows answer NoData; windows
    /// outside a non-empty archive answer Error.
    #[test]
    fn window_misses_map_to_nodata_or_error() {
        let plane = plane_with_two_intervals();
        let view = plane.view();
        assert!(matches!(
            answer(&view, &Request::RangeSketch { from: 4, to: 2 }),
            Response::NoData { .. }
        ));
        assert!(matches!(
            answer(&view, &Request::RangeSketch { from: 10, to: 20 }),
            Response::Error { .. }
        ));
    }

    /// End-to-end over a real socket: bind, connect, ask all four kinds,
    /// answers equal the pure `answer` on the same view.
    #[test]
    fn serves_all_query_kinds_over_tcp() {
        let plane = plane_with_two_intervals();
        let mut server = QueryServer::bind("127.0.0.1:0", Arc::clone(&plane), None).unwrap();
        let view = plane.view();
        let mut client = crate::client::QueryClient::connect(&server.addr().to_string()).unwrap();
        let reqs = [
            Request::Estimate { key: 3, from: 0, to: 0 },
            Request::Estimate { key: 3, from: 0, to: 2 },
            Request::ChangedKeys { from: 0, to: 2, threshold: 0.05 },
            Request::KeyHistory { key: 3, from: 0, to: 2 },
            Request::RangeSketch { from: 0, to: 2 },
        ];
        for req in reqs {
            let served = client.ask(&req).unwrap();
            assert_eq!(served, answer(&view, &req), "mismatch for {req:?}");
        }
        server.shutdown();
    }

    /// Protocol corruption tears down only the offending connection; the
    /// server keeps serving new ones.
    #[test]
    fn corrupt_frame_drops_connection_but_not_server() {
        let plane = plane_with_two_intervals();
        let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&plane), None).unwrap();
        let addr = server.addr().to_string();
        {
            let mut bad = TcpStream::connect(&addr).unwrap();
            bad.write_all(b"GARBAGE NOT A FRAME").unwrap();
            bad.flush().unwrap();
            // The server rejects at the magic check and closes; reading
            // eventually observes EOF.
            let mut buf = [0u8; 16];
            use std::io::Read;
            bad.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            loop {
                match bad.read(&mut buf) {
                    Ok(0) => break,
                    Ok(_) => {}
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        panic!("server did not close corrupted connection")
                    }
                    Err(_) => break,
                }
            }
        }
        let mut client = crate::client::QueryClient::connect(&addr).unwrap();
        let resp = client.ask(&Request::RangeSketch { from: 0, to: 2 }).unwrap();
        assert!(matches!(resp, Response::RangeSketch { .. }));
    }

    /// Multiple concurrent clients each get consistent answers.
    #[test]
    fn concurrent_clients_get_consistent_answers() {
        let plane = plane_with_two_intervals();
        let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&plane), None).unwrap();
        let addr = server.addr().to_string();
        let view = plane.view();
        let expect = answer(&view, &Request::Estimate { key: 9, from: 0, to: 0 });
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                let expect = expect.clone();
                std::thread::spawn(move || {
                    let mut client = crate::client::QueryClient::connect(&addr).unwrap();
                    for _ in 0..25 {
                        let got =
                            client.ask(&Request::Estimate { key: 9, from: 0, to: 0 }).unwrap();
                        assert_eq!(got, expect);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    /// The slim sketch the server answers from matches a fresh projection
    /// of the last error sketch (guards the handoff wiring end to end).
    #[test]
    fn served_live_estimates_match_fresh_projection() {
        let plane = plane_with_two_intervals();
        let view = plane.view();
        let mut err = KarySketch::new(SketchConfig { h: 3, k: 256, seed: 5 });
        for key in 0..30u64 {
            err.update(key, ((key + 1) * 2) as f64);
        }
        let fresh = SlimSketch::from_fat(&err);
        for key in 0..30u64 {
            assert_eq!(
                view.slim.as_ref().unwrap().estimate(key).to_bits(),
                fresh.estimate(key).to_bits()
            );
        }
    }
}
