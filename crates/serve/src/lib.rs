//! Read-optimized serving plane for the change-detection pipeline: query
//! the detector's state — live and historical — while it ingests, without
//! ever blocking the write path.
//!
//! The paper's pipeline is write-optimized end to end: the k-ary sketch
//! takes `H` adds per UPDATE, and everything read-shaped (the stream
//! total, per-key estimates, change queries) is recomputed at interval
//! turnover. That is the right trade for ingest, and the wrong one for a
//! query front end, where many concurrent readers hit the *same* frozen
//! state between turnovers. This crate adds the read side as a separate
//! plane, in the spirit of SF-sketches (a write-optimized "fat" stage
//! paired with a read-optimized "slim" stage, synced at boundaries):
//!
//! * [`SlimSketch`] — a compact `f32` projection of the latest error
//!   sketch with the stream total precomputed: point queries touch `H`
//!   cells instead of rescanning a `K`-wide row, at a rounding cost
//!   bounded by [`SlimSketch::error_bound`] (zero for integer-count
//!   streams).
//! * [`ServingPlane`] — an [`IntervalObserver`](scd_core::IntervalObserver)
//!   that converts every interval close into an immutable [`ServingView`]
//!   (slim sketch + interval report + a copy-on-write replica of the
//!   error-sketch archive), published by swapping one `Arc`: readers
//!   never block the detecting thread, and a reader mid-query keeps its
//!   interval-consistent world alive for as long as it needs it.
//! * [`QueryServer`] / [`QueryClient`] — a multi-client TCP query
//!   service speaking [`proto`]'s `SCDQ` frames (length-prefixed,
//!   CRC-guarded, hostile-input-safe), answering live estimates,
//!   historical range estimates, heavy-change queries, and per-key
//!   histories; [`answer`] is the pure per-query core the CLI shares.
//! * [`ServeMetrics`] — serving telemetry registered into the same
//!   `scd-obs` registry as the pipeline's own metrics.
//!
//! Historical answers are **bit-identical** to offline `scd query`
//! against the engine's dumped archive: the plane's replica archive is
//! fed the exact push sequence of the engine's (same zero back-fill,
//! same notable-key directory), and [`SharedSketch`] forwards every
//! combine to the same `f64` arithmetic — it only makes the snapshots
//! cheap, never different.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod shared;
pub mod slim;
pub mod view;

pub use client::QueryClient;
pub use metrics::ServeMetrics;
pub use proto::{ProtoError, Request, Response};
pub use server::{answer, QueryServer, ServerOptions};
pub use shared::SharedSketch;
pub use slim::{SlimEpoch, SlimScratch, SlimSketch};
pub use view::{RebuildMode, ServingPlane, ServingView};
