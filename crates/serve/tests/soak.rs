//! Mixed ingest + query soak: the serving plane must be a pure
//! *observer* — attaching it changes no detection output — and every
//! answer it serves, live or historical, must match what offline
//! analysis of the same interval's state computes.
//!
//! Three layers of proof:
//!
//! 1. **Observer transparency** — for all six forecast models, in both
//!    sequential and pipelined engine modes, the [`IntervalReport`]
//!    stream with the serving plane attached is `==` (and the f64 fields
//!    bit-identical, via `PartialEq` on exact values) to the stream
//!    without it.
//! 2. **Replica fidelity** — after a full run, the final published
//!    view's replica archive answers `range_sketch` / `key_history` /
//!    `changed_keys` bit-identically to the engine's own archive.
//! 3. **Interval consistency under concurrency** — query threads hammer
//!    a live [`QueryServer`] over TCP *while* the main thread ingests;
//!    every answer is keyed by its `as_of` interval and re-derived from
//!    that interval's reference snapshot: a reader must see exactly one
//!    interval's world, never a torn mix.

use scd_archive::ArchiveConfig;
use scd_core::{
    DetectorConfig, EngineConfig, IntervalObserver, IntervalReport, KeyStrategy, ShardedEngine,
};
use scd_forecast::ModelSpec;
use scd_serve::{
    answer, QueryClient, QueryServer, RebuildMode, Request, Response, ServerOptions, ServingPlane,
    ServingView,
};
use scd_sketch::{KarySketch, SketchConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const INTERVALS: u64 = 24;
const KEYS: u64 = 40;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic synthetic traffic: steady integer volumes per key, with
/// a burst on key 7 over intervals 12..14 so `changed_keys` has
/// something to find. Integer values keep every sketch register exact.
fn updates(t: u64) -> Vec<(u64, f64)> {
    let mut out = Vec::with_capacity(KEYS as usize);
    for key in 0..KEYS {
        let mut v = (splitmix64(key.wrapping_mul(0x51D) ^ t) % 500 + 100) as f64;
        if key == 7 && (12..14).contains(&t) {
            v += 50_000.0;
        }
        out.push((key, v));
    }
    out
}

fn detector(model: ModelSpec) -> DetectorConfig {
    DetectorConfig {
        sketch: SketchConfig { h: 3, k: 512, seed: 0x5CD },
        model,
        threshold: 0.2,
        key_strategy: KeyStrategy::TwoPass,
    }
}

fn archive_cfg() -> ArchiveConfig {
    ArchiveConfig { max_sketches: 12, full_resolution: 4, keys_per_epoch: 16 }
}

/// Replays the synthetic trace; returns the full report stream.
fn run_engine(
    model: ModelSpec,
    pipelined: bool,
    observer: Option<Arc<dyn IntervalObserver>>,
) -> (Vec<IntervalReport>, ShardedEngine) {
    let mut config = EngineConfig::new(detector(model), 2).with_archive(archive_cfg());
    if pipelined {
        config = config.with_pipeline();
    }
    if let Some(obs) = observer {
        config = config.with_observer(obs);
    }
    let mut engine = ShardedEngine::new(config).expect("engine");
    let mut reports = Vec::new();
    for t in 0..INTERVALS {
        engine.push_slice(&updates(t)).expect("push");
        if pipelined {
            if let Some(r) = engine.end_interval_overlapped().expect("cut") {
                reports.push(r);
            }
        } else {
            reports.push(engine.end_interval().expect("cut"));
        }
    }
    if pipelined {
        if let Some(r) = engine.drain().expect("drain") {
            reports.push(r);
        }
    }
    (reports, engine)
}

const MODELS: [&str; 6] =
    ["ma:4", "sma:4", "ewma:0.5", "nshw:0.6:0.2", "shw:0.5:0.2:0.1:6", "arima0:0.7,-0.1/0.3"];

/// Layer 1: the serving plane is observation-only. For every model, in
/// both engine modes, report streams with and without the plane attached
/// are equal — `IntervalReport` compares its f64 fields exactly, so this
/// is bit-identity of the detection output. The pipelined runs attach a
/// [`RebuildMode::Background`] plane so the off-thread rebuild handoff
/// is covered too.
#[test]
fn reports_bit_identical_with_serving_on_and_off() {
    for spec in MODELS {
        let model = ModelSpec::parse(spec).expect("model spec");
        for pipelined in [false, true] {
            let (bare, _) = run_engine(model.clone(), pipelined, None);
            let mode = if pipelined { RebuildMode::Background } else { RebuildMode::Inline };
            let plane = ServingPlane::with_options(archive_cfg(), None, mode).expect("plane");
            let observer: Arc<dyn IntervalObserver> = Arc::clone(&plane) as _;
            let (observed, _) = run_engine(model.clone(), pipelined, Some(observer));
            assert_eq!(
                bare, observed,
                "report stream diverged with serving attached ({spec}, pipelined={pipelined})"
            );
            assert_eq!(bare.len(), INTERVALS as usize, "lost reports ({spec})");
        }
    }
}

/// Widens a slim f32 table so it can be compared against the fat f64 one.
fn widened(table: &[f32]) -> Vec<f64> {
    table.iter().map(|&c| f64::from(c)).collect()
}

/// Layer 2: the final view's replica archive answers historical queries
/// bit-identically to the engine's own archive — the property that lets
/// CI diff `scd ask` against offline `scd query`. `ma:1` (last-value
/// forecast) keeps every forecast error an integer far below 2^24, so
/// the slim f32 cells widen back to exactly the fat f64 registers and
/// every downstream number is computed by identical f64 arithmetic.
#[test]
fn final_view_matches_engine_archive_bit_for_bit() {
    let model = ModelSpec::parse("ma:1").unwrap();
    let plane = ServingPlane::new(archive_cfg()).expect("plane");
    let observer: Arc<dyn IntervalObserver> = Arc::clone(&plane) as _;
    let (_, mut engine) = run_engine(model, true, Some(observer));
    let offline = engine.take_archive().expect("engine archive");
    let view = plane.view();

    assert_eq!(view.archive.coverage(), offline.coverage());
    assert_eq!(view.archive.sketch_count(), offline.sketch_count());
    let (lo, hi) = offline.coverage().expect("covered");

    // Whole-window and sub-window range sketches: identical registers
    // (after widening), identical maintained totals, and an envelope
    // that certifies the exactness the register equality shows.
    for (from, to) in [(lo, hi), (lo + 1, hi - 1), (10, 16)] {
        let served = view.archive.range_sketch(from, to).expect("served range");
        let direct = offline.range_sketch(from, to).expect("offline range");
        assert_eq!(served.covered, direct.covered);
        assert_eq!(served.epochs_used, direct.epochs_used);
        let slim = served.sketch.get();
        assert_eq!(widened(slim.table()), direct.sketch.table());
        assert_eq!(slim.sum().to_bits(), direct.sketch.sum().to_bits());
        assert!(slim.error_bound() >= 0.0);
    }

    // Change ranking over the burst window: same keys, same magnitudes.
    let served = view.archive.changed_keys(10, 16, 0.2, &[]).expect("served changes");
    let direct = offline.changed_keys(10, 16, 0.2, &[]).expect("offline changes");
    assert_eq!(served.error_f2.to_bits(), direct.error_f2.to_bits());
    assert_eq!(served.changes.len(), direct.changes.len());
    assert!(served.changes.iter().any(|c| c.key == 7), "burst key missing");
    for (s, d) in served.changes.iter().zip(&direct.changes) {
        assert_eq!(s.key, d.key);
        assert_eq!(s.magnitude.to_bits(), d.magnitude.to_bits());
    }

    // Per-key history of the burst victim: identical points.
    let served = view.archive.key_history(7, lo, hi).expect("served history");
    let direct = offline.key_history(7, lo, hi).expect("offline history");
    assert_eq!(served.len(), direct.len());
    for (s, d) in served.iter().zip(&direct) {
        assert_eq!((s.start, s.len), (d.start, d.len));
        assert_eq!(s.total.to_bits(), d.total.to_bits());
        assert_eq!(s.mean.to_bits(), d.mean.to_bits());
    }
}

/// Layer 2, fractional regime: `ewma:0.5` error sketches hold dyadic
/// values whose low bits fall off the f32 mantissa, so slim answers are
/// *not* bit-identical — but every divergence must stay inside the
/// [`error_bound`](scd_serve::SlimSketch::error_bound) envelope the slim
/// sketch composed across its buddy merges.
#[test]
fn fractional_model_answers_stay_within_slim_error_bound() {
    let model = ModelSpec::parse("ewma:0.5").unwrap();
    let plane = ServingPlane::new(archive_cfg()).expect("plane");
    let observer: Arc<dyn IntervalObserver> = Arc::clone(&plane) as _;
    let (_, mut engine) = run_engine(model, true, Some(observer));
    let offline = engine.take_archive().expect("engine archive");
    let view = plane.view();
    let (lo, hi) = offline.coverage().expect("covered");

    for (from, to) in [(lo, hi), (10, 16)] {
        let served = view.archive.range_sketch(from, to).expect("served range");
        let direct = offline.range_sketch(from, to).expect("offline range");
        let slim = served.sketch.get();
        let bound = slim.error_bound();
        // The envelope is meaningful: positive (rounding really happens)
        // yet far below the burst magnitude it must not drown out.
        assert!(bound > 0.0, "fractional cells must carry a nonzero envelope");
        assert!(bound < 100.0, "envelope uselessly loose: {bound}");
        // Maintained totals never pass through f32 — still bit-exact.
        assert_eq!(slim.sum().to_bits(), direct.sketch.sum().to_bits());
        for key in 0..KEYS {
            let s = slim.estimate(key);
            let d = direct.sketch.estimate(key);
            assert!(
                (s - d).abs() <= bound,
                "estimate[{key}] over [{from}, {to}): slim {s} vs fat {d} exceeds bound {bound}"
            );
        }
    }

    // Change ranking: the burst key must survive the f32 projection, and
    // shared keys' magnitudes must agree within the window's envelope.
    let served = view.archive.changed_keys(10, 16, 0.2, &[]).expect("served changes");
    let direct = offline.changed_keys(10, 16, 0.2, &[]).expect("offline changes");
    let bound = view.archive.range_sketch(10, 16).expect("range").sketch.get().error_bound();
    assert!(served.changes.iter().any(|c| c.key == 7), "burst key missing from slim answer");
    assert!(direct.changes.iter().any(|c| c.key == 7), "burst key missing from fat answer");
    let direct_by_key: std::collections::HashMap<u64, f64> =
        direct.changes.iter().map(|c| (c.key, c.magnitude)).collect();
    for s in &served.changes {
        if let Some(&d) = direct_by_key.get(&s.key) {
            assert!(
                (s.magnitude - d).abs() <= bound,
                "changed key {}: slim {} vs fat {d} exceeds bound {bound}",
                s.key,
                s.magnitude
            );
        }
    }
    let f2_rel = (served.error_f2 - direct.error_f2).abs() / direct.error_f2.max(1.0);
    assert!(f2_rel < 1e-4, "F2 diverged beyond rounding: {f2_rel}");

    // Per-key history: each point's total within its own range envelope.
    let served = view.archive.key_history(7, lo, hi).expect("served history");
    let direct = offline.key_history(7, lo, hi).expect("offline history");
    assert_eq!(served.len(), direct.len());
    for (s, d) in served.iter().zip(&direct) {
        assert_eq!((s.start, s.len), (d.start, d.len));
        let span = view.archive.range_sketch(s.start, s.start + s.len).expect("point range");
        let bound = span.sketch.get().error_bound();
        assert!(
            (s.total - d.total).abs() <= bound,
            "history [{}, {}): slim {} vs fat {} exceeds bound {bound}",
            s.start,
            s.start + s.len,
            s.total,
            d.total
        );
        assert!((s.mean - d.mean).abs() <= bound, "history mean diverged beyond bound");
    }
}

/// Off-thread rebuild is a latency optimization, not a semantic one:
/// after the engine drains (which flushes the observer), a background
/// plane's final view answers bit-identically to an inline plane's over
/// the same pipelined run — fractional model included, since both
/// planes run the *same* fat→slim projection in the same order.
#[test]
fn background_rebuild_final_view_matches_inline() {
    let model = ModelSpec::parse("ewma:0.5").unwrap();
    let inline_plane =
        ServingPlane::with_options(archive_cfg(), None, RebuildMode::Inline).expect("plane");
    let observer: Arc<dyn IntervalObserver> = Arc::clone(&inline_plane) as _;
    run_engine(model.clone(), true, Some(observer));
    let bg_plane =
        ServingPlane::with_options(archive_cfg(), None, RebuildMode::Background).expect("plane");
    let observer: Arc<dyn IntervalObserver> = Arc::clone(&bg_plane) as _;
    run_engine(model, true, Some(observer));

    let (a, b) = (inline_plane.view(), bg_plane.view());
    assert_eq!(a.interval, b.interval, "background view lags after drain");
    assert_eq!(a.archive.coverage(), b.archive.coverage());
    let (lo, hi) = a.archive.coverage().expect("covered");
    for (from, to) in [(lo, hi), (10, 16)] {
        let ra = a.archive.range_sketch(from, to).expect("inline range");
        let rb = b.archive.range_sketch(from, to).expect("background range");
        assert_eq!(ra.sketch.get().table(), rb.sketch.get().table());
        assert_eq!(ra.sketch.get().sum().to_bits(), rb.sketch.get().sum().to_bits());
        assert_eq!(
            ra.sketch.get().error_bound().to_bits(),
            rb.sketch.get().error_bound().to_bits(),
            "envelopes composed differently across rebuild modes"
        );
    }
    let (sa, sb) = (a.slim.as_ref().expect("warm"), b.slim.as_ref().expect("warm"));
    assert_eq!(sa.table(), sb.table(), "live slim sketches diverged");
    for key in 0..KEYS {
        assert_eq!(sa.estimate(key).to_bits(), sb.estimate(key).to_bits());
    }
}

/// The answer cache and request coalescing are invisible to clients: the
/// same four query shapes against the same plane come back identical
/// from a cache-on server and a cache-off server, and repeat asks (cache
/// hits) reproduce the first answer exactly.
#[test]
fn cached_and_uncached_servers_agree() {
    let model = ModelSpec::parse("ma:4").unwrap();
    let plane = ServingPlane::new(archive_cfg()).expect("plane");
    let observer: Arc<dyn IntervalObserver> = Arc::clone(&plane) as _;
    run_engine(model, true, Some(observer));

    let mut cached = QueryServer::bind_with(
        "127.0.0.1:0",
        Arc::clone(&plane),
        None,
        ServerOptions { cache: true },
    )
    .expect("bind cached");
    let mut uncached = QueryServer::bind_with(
        "127.0.0.1:0",
        Arc::clone(&plane),
        None,
        ServerOptions { cache: false },
    )
    .expect("bind uncached");
    let mut with_cache = QueryClient::connect(&cached.addr().to_string()).expect("connect");
    let mut without = QueryClient::connect(&uncached.addr().to_string()).expect("connect");

    for req in [
        Request::Estimate { key: 7, from: 0, to: 0 },
        Request::Estimate { key: 7, from: 10, to: 16 },
        Request::ChangedKeys { from: 8, to: 16, threshold: 0.2 },
        Request::KeyHistory { key: 7, from: 0, to: INTERVALS },
        Request::RangeSketch { from: 0, to: INTERVALS },
    ] {
        let first = with_cache.ask(&req).expect("cached ask");
        let again = with_cache.ask(&req).expect("cached ask (hit)");
        let bare = without.ask(&req).expect("uncached ask");
        assert_eq!(first, again, "cache hit diverged from its own miss: {req:?}");
        assert_eq!(first, bare, "cached answer diverged from uncached: {req:?}");
    }
    cached.shutdown();
    uncached.shutdown();
}

/// Delegating observer that also records the view published for each
/// interval close — the reference against which concurrently-served
/// answers are re-derived.
#[derive(Debug)]
struct Recording {
    plane: Arc<ServingPlane>,
    views: Mutex<Vec<Arc<ServingView>>>,
}

impl IntervalObserver for Recording {
    fn interval_closed(&self, report: &IntervalReport, error: Option<(usize, &KarySketch)>) {
        self.plane.interval_closed(report, error);
        // The plane under test rebuilds off-thread; flush before
        // snapshotting so the recorded reference is this interval's view
        // (clients still race the server concurrently the whole time).
        self.plane.flush();
        self.views.lock().unwrap().push(self.plane.view());
    }

    fn flush(&self) {
        self.plane.flush();
    }
}

/// Layer 3: concurrent clients query over TCP while the engine ingests.
/// Every answer carries the `as_of` interval of the view that produced
/// it; re-deriving the answer from that interval's recorded reference
/// view must reproduce it exactly — no torn reads, no stale mixes.
#[test]
fn concurrent_queries_during_ingest_are_interval_consistent() {
    let model = ModelSpec::parse("ewma:0.5").unwrap();
    let plane =
        ServingPlane::with_options(archive_cfg(), None, RebuildMode::Background).expect("plane");
    let recording =
        Arc::new(Recording { plane: Arc::clone(&plane), views: Mutex::new(Vec::new()) });
    let mut server = QueryServer::bind("127.0.0.1:0", Arc::clone(&plane), None).expect("bind");
    let addr = server.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let mut clients = Vec::new();
    for worker in 0..3u64 {
        let stop = Arc::clone(&stop);
        clients.push(std::thread::spawn(move || {
            let mut client = QueryClient::connect(&addr.to_string()).expect("connect");
            let mut log: Vec<(Request, Response)> = Vec::new();
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let key = splitmix64((worker << 32) | i) % KEYS;
                for req in [
                    Request::Estimate { key, from: 0, to: 0 },
                    Request::ChangedKeys { from: 8, to: 16, threshold: 0.2 },
                    Request::KeyHistory { key: 7, from: 0, to: INTERVALS },
                    Request::RangeSketch { from: 0, to: INTERVALS },
                ] {
                    let resp = client.ask(&req).expect("query failed mid-soak");
                    log.push((req, resp));
                }
                i += 1;
            }
            log
        }));
    }

    let observer: Arc<dyn IntervalObserver> = Arc::clone(&recording) as _;
    let mut config =
        EngineConfig::new(detector(model), 2).with_archive(archive_cfg()).with_observer(observer);
    config = config.with_pipeline();
    let mut engine = ShardedEngine::new(config).expect("engine");
    for t in 0..INTERVALS {
        engine.push_slice(&updates(t)).expect("push");
        engine.end_interval_overlapped().expect("cut");
        // Leave the clients a window inside each interval.
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    engine.drain().expect("drain");
    // Let clients observe the final view too, then stop them.
    std::thread::sleep(std::time::Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    let logs: Vec<_> = clients.into_iter().map(|c| c.join().expect("client thread")).collect();
    server.shutdown();

    // Index reference views by as_of interval.
    let views = recording.views.lock().unwrap();
    let mut by_interval = std::collections::HashMap::new();
    for v in views.iter() {
        by_interval.insert(v.interval.expect("published view has interval"), Arc::clone(v));
    }

    let mut verified = 0usize;
    for (req, resp) in logs.iter().flatten() {
        let as_of = match resp {
            Response::Estimate { as_of, .. }
            | Response::ChangedKeys { as_of, .. }
            | Response::KeyHistory { as_of, .. }
            | Response::RangeSketch { as_of, .. } => *as_of,
            // Pre-warm-up answers carry no interval; nothing to check.
            Response::NoData { .. } => continue,
            // Fixed query windows start out entirely ahead of coverage —
            // a loud out-of-range answer is correct there, mirroring
            // offline `scd query`. Anything else is a server bug.
            Response::Error { message, .. } if message.contains("outside archived range") => {
                continue
            }
            Response::Error { message, .. } => panic!("server answered error: {message}"),
        };
        let reference = by_interval
            .get(&as_of)
            .unwrap_or_else(|| panic!("answer cites unknown interval {as_of}"));
        assert_eq!(
            resp,
            &answer(reference, req),
            "served answer diverged from its interval's reference (as_of {as_of})"
        );
        verified += 1;
    }
    assert!(
        verified >= 100,
        "soak too thin: only {verified} answers verified against reference views"
    );

    // And the last recorded view serves the live estimate the final error
    // sketch implies for the burst key.
    let last = views.last().expect("views recorded");
    let slim = last.slim.as_ref().expect("warmed up");
    let est = slim.estimate(7);
    assert!(est.is_finite());
}
