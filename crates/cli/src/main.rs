//! `scd` — sketch-based change detection from the command line.
//!
//! ```text
//! scd generate --profile small --hours 1 --interval 60 --out trace.bin
//!              [--scale X] [--seed N] [--dos RANK:START:DUR:MULT[,...]]
//! scd info     --trace trace.bin
//! scd tune     --trace trace.bin --interval 300 --model ewma [--paper]
//! scd detect   --trace trace.bin --interval 300 --model ewma:0.5
//!              [--h 5] [--k 32768] [--threshold 0.05] [--sketch-seed N]
//!              [--strategy twopass|next|sampled:R|reversible] [--top N]
//!              [--shards N] [--pipeline] [--source-threads N]
//!              [--glr SLOTS] [--glr-threshold 16.0] [--glr-window 8]
//!              [--stagger LANES]
//!              [--metrics FILE] [--metrics-listen ADDR] [--report-out FILE]
//! scd sketch   --trace trace.bin --interval 60 --at 7 --out s.sketch
//!              [--h 5] [--k 32768] [--sketch-seed N]
//! scd combine  --out sum.sketch A.sketch B.sketch ... [--query IP]
//! scd stream   --trace trace.bin --interval 60 --model ewma:0.5
//!              [--policy block|drop|sample:R] [--capacity N] [--chunked]
//!              [--checkpoint FILE] [--every N] [--h 5] [--k 32768]
//!              [--metrics FILE] [--metrics-listen ADDR]
//! scd metrics  --from metrics.jsonl | --addr HOST:PORT
//! scd ingest-node --trace trace.bin --interval 60 --node 0 --nodes 3
//!              --connect HOST:PORT [--h 5] [--k 32768] [--sketch-seed N]
//!              [--shards 2] [--spool DIR] [--fault SPEC] [--retries N]
//!              [--finish-timeout-secs 60]
//! scd aggregate --listen ADDR --nodes 3 --model ewma:0.5
//!              [--h 5] [--k 32768] [--threshold 0.05] [--sketch-seed N]
//!              [--report-out FILE] [--checkpoint FILE] [--every N]
//!              [--grace-ms 500] [--node-timeout-ms 2000] [--timeout-secs 60]
//!              [--top N] [--metrics FILE] [--metrics-listen ADDR]
//! scd archive  --trace trace.bin --interval 60 --model ewma:0.5 --out hist.scda
//!              [--shards 4] [--budget 64] [--full-res 8] [--keys 64]
//!              [--h 5] [--k 32768] [--threshold 0.05] [--sketch-seed N]
//! scd query    --archive hist.scda --from T1 --to T2
//!              [--threshold 0.05] [--key IP] [--estimate IP] [--top N]
//! scd serve    --trace trace.bin --interval 60 --model ewma:0.5 --listen ADDR
//!              [--shards N] [--pipeline] [--budget 64] [--full-res 8] [--keys 64]
//!              [--h 5] [--k 32768] [--threshold 0.05] [--sketch-seed N]
//!              [--pace-ms N] [--linger-secs N] [--out hist.scda]
//!              [--sync-rebuild] [--no-cache]
//!              [--metrics FILE] [--metrics-listen ADDR]
//! scd ask      --addr HOST:PORT (--estimate IP [--from T1 --to T2]
//!              | --changed --from T1 --to T2 [--threshold 0.05]
//!              | --history IP --from T1 --to T2
//!              | --range --from T1 --to T2) [--top N] [--wait-secs N]
//! ```
//!
//! Traces are the binary/CSV formats of `scd-traffic::io` (format chosen by
//! file extension). `detect` prints one line per alarm; `tune` prints a
//! spec string that `--model` accepts, so the two compose:
//!
//! ```text
//! scd detect --trace t.bin --interval 300 --model "$(scd tune --trace t.bin --interval 300 --model ewma --quiet)"
//! ```

mod flags;

/// Like `println!` but exits quietly when stdout closes (e.g. piped into
/// `head`) instead of panicking on the broken pipe.
macro_rules! outln {
    ($($arg:tt)*) => {{
        use std::io::Write;
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        if writeln!(lock, $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}

use flags::{FlagError, Flags};
use scd_archive::ArchiveConfig;
use scd_core::gridsearch::{search_model, GridSearchConfig};
use scd_core::{
    segment_records, spawn_supervised, CheckpointPolicy, DetectorConfig, EngineConfig, GlrConfig,
    GlrEvent, KeyStrategy, LifecycleEvent, OverloadPolicy, RestartPolicy, ReversibleChangeDetector,
    ReversibleConfig, ShardedEngine, SketchChangeDetector, StaggeredDetector, StreamSegmenter,
    StreamingConfig, SupervisorConfig,
};
use scd_core::{IntervalReport, PipelineMetrics};
use scd_forecast::{ModelKind, ModelSpec};
use scd_obs::{MetricsListener, Registry};
use scd_sketch::{DeltoidConfig, SketchConfig};
use scd_traffic::record::format_ipv4;
use scd_traffic::{
    io, AnomalyEvent, AnomalyInjector, AnomalyKind, ChunkedTraceReader, FlowRecord, KeySpec,
    RouterProfile, TrafficGenerator, ValueSpec,
};
use std::fs::File;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage: scd <generate|info|tune|detect> [flags]\n\n\
         generate  --profile large|medium|small --out FILE [--hours H] [--interval S]\n\
         \u{20}          [--scale X] [--seed N] [--dos RANK:START:DUR:MULT[,...]]\n\
         info      --trace FILE\n\
         tune      --trace FILE --interval S --model ma|sma|ewma|nshw|arima0|arima1\n\
         \u{20}          [--paper] [--quiet]\n\
         detect    --trace FILE --interval S --model SPEC [--h 5] [--k 32768]\n\
         \u{20}          [--threshold 0.05] [--sketch-seed N] [--top N]\n\
         \u{20}          [--strategy twopass|next|sampled:R|reversible] [--shards N]\n\
         \u{20}          [--pipeline] [--source-threads N] [--metrics FILE]\n\
         \u{20}          [--glr SLOTS] [--glr-threshold 16.0] [--glr-window 8]\n\
         \u{20}          [--stagger LANES]\n\
         \u{20}          [--metrics-listen ADDR] [--report-out FILE]\n\
         sketch    --trace FILE --interval S --at T --out FILE [--h 5] [--k 32768]\n\
         combine   --out FILE A.sketch B.sketch ... [--query IP]\n\
         stream    --trace FILE --interval S --model SPEC [--policy block|drop|sample:R]\n\
         \u{20}          [--capacity N] [--chunked] [--checkpoint FILE] [--every N]\n\
         \u{20}          [--h 5] [--k 32768] [--metrics FILE] [--metrics-listen ADDR]\n\
         metrics   --from metrics.jsonl | --addr HOST:PORT\n\
         ingest-node --trace FILE --interval S --node I --nodes N --connect ADDR\n\
         \u{20}          [--h 5] [--k 32768] [--sketch-seed N] [--shards 2] [--spool DIR]\n\
         \u{20}          [--fault drop:3,dup:5,corrupt:7,trunc:9,delay:2:50] [--retries N]\n\
         \u{20}          [--finish-timeout-secs 60]\n\
         aggregate --listen ADDR --nodes N --model SPEC [--h 5] [--k 32768]\n\
         \u{20}          [--threshold 0.05] [--sketch-seed N] [--report-out FILE]\n\
         \u{20}          [--checkpoint FILE] [--every N] [--grace-ms 500]\n\
         \u{20}          [--node-timeout-ms 2000] [--timeout-secs 60] [--top N]\n\
         archive   --trace FILE --interval S --model SPEC --out FILE [--shards 4]\n\
         \u{20}          [--budget 64] [--full-res 8] [--keys 64] [--h 5] [--k 32768]\n\
         \u{20}          [--threshold 0.05] [--sketch-seed N]\n\
         query     --archive FILE --from T1 --to T2 [--threshold 0.05]\n\
         \u{20}          [--key IP] [--estimate IP] [--top N]\n\
         serve     --trace FILE --interval S --model SPEC --listen ADDR [--shards N]\n\
         \u{20}          [--pipeline] [--budget 64] [--full-res 8] [--keys 64] [--h 5]\n\
         \u{20}          [--k 32768] [--threshold 0.05] [--sketch-seed N] [--pace-ms N]\n\
         \u{20}          [--linger-secs N] [--out FILE] [--sync-rebuild] [--no-cache]\n\
         \u{20}          [--metrics FILE] [--metrics-listen ADDR]\n\
         ask       --addr HOST:PORT (--estimate IP [--from T1 --to T2] |\n\
         \u{20}          --changed --from T1 --to T2 [--threshold 0.05] |\n\
         \u{20}          --history IP --from T1 --to T2 | --range --from T1 --to T2)\n\
         \u{20}          [--top N] [--wait-secs N]\n\n\
         model SPEC syntax: ma:5 | ewma:0.5 | nshw:0.6:0.2 | arima0:0.7,-0.1/0.3 | shw:a:b:g:m"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    let flags = Flags::parse(args);
    let result = match cmd.as_str() {
        "generate" => generate(&flags),
        "info" => info(&flags),
        "tune" => tune(&flags),
        "detect" => detect(&flags),
        "sketch" => sketch(&flags),
        "combine" => combine(&flags),
        "stream" => stream(&flags),
        "archive" => archive(&flags),
        "query" => query(&flags),
        "serve" => serve(&flags),
        "ask" => ask(&flags),
        "metrics" => metrics(&flags),
        "ingest-node" => ingest_node(&flags),
        "aggregate" => aggregate(&flags),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("scd {cmd}: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn read_trace(path: &str) -> Result<Vec<FlowRecord>, Box<dyn std::error::Error>> {
    let file = File::open(path)?;
    let records = if path.ends_with(".csv") { io::read_csv(file)? } else { io::read_binary(file)? };
    Ok(records)
}

/// Records decoded per `ChunkedTraceReader::next_chunk` call on the CLI's
/// streaming paths — large enough to amortize the CRC/decode loop, small
/// enough to keep the resident chunk buffer in cache.
const READ_CHUNK_RECORDS: usize = 8192;

/// One `(key, value)` update stream per interval, in trace order.
type Intervals = Vec<Vec<(u64, f64)>>;

/// Segments a trace into `(key, value)` intervals. Binary `SCDTRC` traces
/// stream through `ChunkedTraceReader` + `StreamSegmenter` — fixed-size
/// chunks straight into interval bins, no flat record vector — which is
/// bit-identical to the materializing path (proven in
/// `scd-core/tests/parallel_source.rs`). CSV traces fall back to the
/// materializing reader.
fn read_intervals(
    path: &str,
    interval: u32,
    key: KeySpec,
    value: ValueSpec,
) -> Result<Intervals, Box<dyn std::error::Error>> {
    if path.ends_with(".csv") {
        let records = read_trace(path)?;
        return Ok(segment_records(&records, interval, key, value));
    }
    let mut reader = ChunkedTraceReader::new(File::open(path)?)?;
    let mut segmenter = StreamSegmenter::new(interval, key, value);
    let mut chunk = Vec::with_capacity(READ_CHUNK_RECORDS);
    loop {
        chunk.clear();
        if reader.next_chunk(READ_CHUNK_RECORDS, &mut chunk)? == 0 {
            break;
        }
        segmenter.push(&chunk);
    }
    Ok(segmenter.finish())
}

/// Live telemetry for a `detect`/`stream` run: one registry feeding an
/// optional JSON-lines snapshot file (`--metrics FILE`, one line per
/// closed interval) and an optional Prometheus scrape endpoint
/// (`--metrics-listen ADDR`).
struct Telemetry {
    registry: Arc<Registry>,
    pipeline: Arc<PipelineMetrics>,
    snapshots: Option<std::io::BufWriter<File>>,
    line: String,
    listener: Option<MetricsListener>,
}

impl Telemetry {
    /// Builds from the `--metrics` / `--metrics-listen` flags; `None`
    /// when neither is present.
    fn from_flags(flags: &Flags) -> Result<Option<Telemetry>, Box<dyn std::error::Error>> {
        let path = flags.raw("metrics");
        let listen = flags.raw("metrics-listen");
        if path.is_none() && listen.is_none() {
            return Ok(None);
        }
        let registry = Arc::new(Registry::new());
        let pipeline = PipelineMetrics::register(&registry);
        let snapshots = match path {
            Some(p) => Some(std::io::BufWriter::new(File::create(p)?)),
            None => None,
        };
        let listener = match listen {
            Some(addr) => {
                let l = MetricsListener::bind(addr, Arc::clone(&registry))?;
                eprintln!("serving metrics on http://{}/metrics", l.local_addr());
                Some(l)
            }
            None => None,
        };
        Ok(Some(Telemetry { registry, pipeline, snapshots, line: String::new(), listener }))
    }

    /// Appends one snapshot line stamped with `interval`.
    fn snapshot(&mut self, interval: u64) -> std::io::Result<()> {
        if let Some(w) = &mut self.snapshots {
            use std::io::Write as _;
            self.line.clear();
            self.registry.render_jsonl(interval, &mut self.line);
            self.line.push('\n');
            w.write_all(self.line.as_bytes())?;
        }
        Ok(())
    }

    /// Flushes the snapshot file and stops the scrape endpoint.
    fn finish(mut self) -> std::io::Result<()> {
        use std::io::Write as _;
        if let Some(mut w) = self.snapshots.take() {
            w.flush()?;
        }
        if let Some(l) = self.listener.take() {
            l.stop();
        }
        Ok(())
    }
}

/// Optional canonical-report file (`--report-out FILE`): one
/// [`IntervalReport::canonical_line`] per emitted interval. Two runs that
/// produce bit-identical reports produce byte-identical files, which is
/// what the distributed smoke test diffs against a single-box run.
struct ReportSink(std::io::BufWriter<File>);

impl ReportSink {
    fn from_flags(flags: &Flags) -> Result<Option<ReportSink>, Box<dyn std::error::Error>> {
        Ok(match flags.raw("report-out") {
            Some(p) => Some(ReportSink(std::io::BufWriter::new(File::create(p)?))),
            None => None,
        })
    }

    fn write(&mut self, report: &IntervalReport) -> std::io::Result<()> {
        use std::io::Write as _;
        writeln!(self.0, "{}", report.canonical_line())
    }

    fn finish(mut self) -> std::io::Result<()> {
        use std::io::Write as _;
        self.0.flush()
    }
}

/// Prints one report's alarms and, when telemetry is on, stamps a
/// snapshot line for the interval it closes.
fn emit_report(
    report: &IntervalReport,
    top: usize,
    telemetry: &mut Option<Telemetry>,
    sink: &mut Option<ReportSink>,
) -> CliResult {
    print_alarms(report.interval, report.alarms.iter().map(|a| (a.key, a.estimated_error)), top);
    if let Some(t) = telemetry.as_mut() {
        t.snapshot(report.interval as u64)?;
    }
    if let Some(s) = sink.as_mut() {
        s.write(report)?;
    }
    Ok(())
}

fn generate(flags: &Flags) -> CliResult {
    let profile = match flags.require::<String>("profile")?.as_str() {
        "large" => RouterProfile::Large,
        "medium" => RouterProfile::Medium,
        "small" => RouterProfile::Small,
        other => return Err(FlagError(format!("unknown profile '{other}'")).into()),
    };
    let out: String = flags.require("out")?;
    let hours: f64 = flags.get("hours", 1.0)?;
    let interval: u32 = flags.get("interval", 300)?;
    let scale: f64 = flags.get("scale", 1.0)?;
    let seed: u64 = flags.get("seed", 2003)?;

    let mut cfg = profile.config(seed).scaled(scale);
    cfg.interval_secs = interval;
    let mut generator = TrafficGenerator::new(cfg);
    let n_intervals = ((hours * 3600.0) / interval as f64).round().max(1.0) as usize;

    // Optional DoS schedule: RANK:START:DUR:MULT, comma separated.
    let mut events = Vec::new();
    if let Some(spec) = flags.raw("dos") {
        for part in spec.split(',') {
            let fields: Vec<&str> = part.split(':').collect();
            if fields.len() != 4 {
                return Err(
                    FlagError(format!("--dos expects RANK:START:DUR:MULT, got '{part}'")).into()
                );
            }
            let rank: usize = fields[0].parse().map_err(|_| FlagError(part.into()))?;
            let start: usize = fields[1].parse().map_err(|_| FlagError(part.into()))?;
            let duration: usize = fields[2].parse().map_err(|_| FlagError(part.into()))?;
            let mult: f64 = fields[3].parse().map_err(|_| FlagError(part.into()))?;
            let baseline = generator.expected_rank_bytes(rank, start).max(10_000.0);
            events.push(AnomalyEvent {
                kind: AnomalyKind::DosAttack { byte_rate: baseline * mult, flows: 50 },
                victim_rank: rank,
                start_interval: start,
                duration,
            });
        }
    }
    let injector = AnomalyInjector::new(events.clone(), seed ^ 0xA770);
    let (trace, truth) = injector.labeled_trace(&mut generator, n_intervals);
    let flat: Vec<FlowRecord> = trace.into_iter().flatten().collect();

    let file = File::create(&out)?;
    if out.ends_with(".csv") {
        io::write_csv(file, &flat)?;
    } else {
        io::write_binary(file, &flat)?;
    }
    outln!(
        "wrote {} records over {} x {}s intervals to {}",
        flat.len(),
        n_intervals,
        interval,
        out
    );
    for ev in &events {
        outln!(
            "  injected dos: victim {} (rank {}), intervals {}..{}",
            format_ipv4(generator.dst_ip_of_rank(ev.victim_rank)),
            ev.victim_rank,
            ev.start_interval,
            ev.start_interval + ev.duration - 1
        );
    }
    let _ = truth;
    Ok(())
}

fn info(flags: &Flags) -> CliResult {
    let path: String = flags.require("trace")?;
    let records = read_trace(&path)?;
    if records.is_empty() {
        outln!("{path}: empty trace");
        return Ok(());
    }
    let first = records.iter().map(|r| r.timestamp_ms).min().expect("nonempty");
    let last = records.iter().map(|r| r.timestamp_ms).max().expect("nonempty");
    let bytes: u64 = records.iter().map(|r| r.bytes).sum();
    let mut per_dst: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for r in &records {
        *per_dst.entry(r.dst_ip).or_default() += r.bytes;
    }
    let mut top: Vec<(u32, u64)> = per_dst.iter().map(|(&k, &v)| (k, v)).collect();
    top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    outln!("{path}:");
    outln!("  records:      {}", records.len());
    outln!("  span:         {:.1} minutes", (last - first) as f64 / 60_000.0);
    outln!("  total bytes:  {bytes}");
    outln!("  distinct dst: {}", per_dst.len());
    outln!("  top talkers:");
    for (ip, vol) in top.iter().take(10) {
        outln!("    {:<16} {:>14} bytes", format_ipv4(*ip), vol);
    }
    Ok(())
}

fn tune(flags: &Flags) -> CliResult {
    let path: String = flags.require("trace")?;
    let interval: u32 = flags.require("interval")?;
    let kind: ModelKind = flags.require::<String>("model")?.parse()?;
    let quiet = flags.has("quiet");

    let records = read_trace(&path)?;
    let intervals = segment_records(&records, interval, KeySpec::DstIp, ValueSpec::Bytes);
    if intervals.is_empty() {
        return Err(FlagError("trace produced no intervals".into()).into());
    }
    let mut cfg = GridSearchConfig::paper_default(interval);
    if !flags.has("paper") {
        cfg.arima_subdivisions = 5; // fast default; --paper restores 7
    }
    // Don't demand a full hour of warm-up from short traces.
    cfg.warm_up_intervals = cfg.warm_up_intervals.min(intervals.len() / 4);
    let result = search_model(kind, &cfg, &intervals);
    if quiet {
        outln!("{}", result.spec.compact());
    } else {
        outln!("best {kind} parameters: {}", result.spec.describe());
        outln!("  spec string:     {}", result.spec.compact());
        outln!("  estimated energy: {:.3e}", result.energy);
        outln!("  candidates tried: {}", result.evaluated);
    }
    Ok(())
}

fn detect(flags: &Flags) -> CliResult {
    let path: String = flags.require("trace")?;
    let interval: u32 = flags.require("interval")?;
    let model = ModelSpec::parse(&flags.require::<String>("model")?)?;
    let h: usize = flags.get("h", 5)?;
    let k: usize = flags.get("k", 32_768)?;
    let threshold: f64 = flags.get("threshold", 0.05)?;
    let sketch_seed: u64 = flags.get("sketch-seed", 0x5CD)?;
    let top: usize = flags.get("top", 10)?;
    let shards: usize = flags.get("shards", 1)?;
    let source_threads: usize = flags.get("source-threads", 1)?;
    let pipeline = flags.has("pipeline");
    let strategy = flags.raw("strategy").unwrap_or("twopass");

    let intervals = read_intervals(&path, interval, KeySpec::DstIp, ValueSpec::Bytes)?;
    outln!(
        "detecting over {} intervals of {interval}s (model {}, H={h}, K={k}, T={threshold})",
        intervals.len(),
        model.describe()
    );

    let mut telemetry = Telemetry::from_flags(flags)?;
    let mut sink = ReportSink::from_flags(flags)?;
    if strategy == "reversible" {
        if telemetry.is_some() || sink.is_some() {
            return Err(FlagError(
                "--metrics / --metrics-listen / --report-out are not supported \
                 with --strategy reversible"
                    .into(),
            )
            .into());
        }
        let mut det = ReversibleChangeDetector::new(ReversibleConfig {
            deltoid: DeltoidConfig { h, k, key_bits: 32, seed: sketch_seed },
            model,
            threshold,
        });
        for items in &intervals {
            let report = det.process_interval(items);
            print_alarms(
                report.interval,
                report.alarms.iter().map(|a| (a.key, a.estimated_error)),
                top,
            );
        }
        return Ok(());
    }

    let key_strategy = match strategy {
        "twopass" => KeyStrategy::TwoPass,
        "next" => KeyStrategy::NextInterval,
        s if s.starts_with("sampled:") => {
            let rate: f64 = s["sampled:".len()..]
                .parse()
                .map_err(|_| FlagError(format!("bad sampled rate in '{s}'")))?;
            KeyStrategy::Sampled { rate, seed: sketch_seed ^ 1 }
        }
        other => return Err(FlagError(format!("unknown strategy '{other}'")).into()),
    };
    let detector = DetectorConfig {
        sketch: SketchConfig { h, k, seed: sketch_seed },
        model,
        threshold,
        key_strategy,
    };

    let glr_slots: usize = flags.get("glr", 0)?;
    let stagger: usize = flags.get("stagger", 0)?;
    if glr_slots > 0 && stagger > 0 {
        return Err(FlagError("--glr and --stagger are mutually exclusive".into()).into());
    }

    if stagger > 0 {
        // Phase-shifted interval lanes (§6 "staggered intervals"): one
        // detector per phase offset, sharing slot sketches via linearity.
        if stagger < 2 {
            return Err(FlagError("--stagger needs at least 2 lanes".into()).into());
        }
        if interval % stagger as u32 != 0 {
            return Err(FlagError(format!(
                "--interval {interval} is not divisible by --stagger {stagger}"
            ))
            .into());
        }
        if !matches!(key_strategy, KeyStrategy::TwoPass) {
            return Err(FlagError("--stagger requires --strategy twopass".into()).into());
        }
        if shards > 1 || pipeline {
            return Err(FlagError(
                "--stagger runs single-threaded; drop --shards/--pipeline".into(),
            )
            .into());
        }
        if telemetry.is_some() || sink.is_some() {
            return Err(FlagError(
                "--metrics / --metrics-listen / --report-out are not supported with --stagger"
                    .into(),
            )
            .into());
        }
        let slot_bins =
            read_intervals(&path, interval / stagger as u32, KeySpec::DstIp, ValueSpec::Bytes)?;
        let mut det = StaggeredDetector::new(detector, stagger);
        for (s, items) in slot_bins.iter().enumerate() {
            for a in det.process_slot(items) {
                outln!(
                    "slot {s}: lane {} ALARM {:<16} error {:+.0} bytes",
                    a.lane,
                    format_ipv4(a.key as u32),
                    a.alarm.estimated_error
                );
            }
        }
        return Ok(());
    }

    if glr_slots > 0 {
        // Sub-interval GLR sequential detection: base slots of
        // interval/slots seconds feed per-slot ±1 projections; provisional
        // alarms print as they fire and are confirmed or retracted by the
        // interval-close reports (which stay bit-identical to a no-GLR
        // run).
        if glr_slots < 2 {
            return Err(FlagError("--glr needs at least 2 slots per interval".into()).into());
        }
        if interval % glr_slots as u32 != 0 {
            return Err(FlagError(format!(
                "--interval {interval} is not divisible by --glr {glr_slots}"
            ))
            .into());
        }
        if matches!(key_strategy, KeyStrategy::Sampled { .. }) {
            // The sampler draws once per key in first-seen order, so its
            // reports depend on intra-interval feed order; slot-granular
            // ingest would silently change them.
            return Err(FlagError(
                "--glr supports --strategy twopass|next (sampled is feed-order sensitive)".into(),
            )
            .into());
        }
        let glr_threshold: f64 = flags.get("glr-threshold", 16.0)?;
        let glr_window: usize = flags.get("glr-window", 8)?;
        let glr_cfg =
            GlrConfig { max_window: glr_window, ..GlrConfig::new(glr_threshold, sketch_seed) };
        let slot_bins =
            read_intervals(&path, interval / glr_slots as u32, KeySpec::DstIp, ValueSpec::Bytes)?;
        let n_intervals = slot_bins.len().div_ceil(glr_slots);
        let mut config = EngineConfig::new(detector, shards).with_glr(glr_cfg);
        if pipeline {
            config = config.with_pipeline();
        }
        if let Some(t) = &telemetry {
            config = config.with_metrics(Arc::clone(&t.pipeline));
        }
        let mut engine = ShardedEngine::new(config)?;
        let empty: Vec<(u64, f64)> = Vec::new();
        for t in 0..n_intervals {
            for s in 0..glr_slots {
                let items = slot_bins.get(t * glr_slots + s).unwrap_or(&empty);
                engine.push_slice_parallel(items, source_threads)?;
                engine.end_glr_slot();
                for e in engine.take_glr_events() {
                    print_glr_event(&e);
                }
            }
            if let Some(report) = engine.end_interval_overlapped()? {
                emit_report(&report, top, &mut telemetry, &mut sink)?;
            }
            for e in engine.take_glr_events() {
                print_glr_event(&e);
            }
        }
        if let Some(report) = engine.drain()? {
            emit_report(&report, top, &mut telemetry, &mut sink)?;
        }
        for e in engine.take_glr_events() {
            print_glr_event(&e);
        }
        if let Some(t) = telemetry {
            t.finish()?;
        }
        if let Some(s) = sink {
            s.finish()?;
        }
        return Ok(());
    }

    if shards > 1 || pipeline {
        // Sharded ingest through the bulk path; linearity makes the
        // reports bit-identical to the single-threaded detector below.
        // With --pipeline, detection runs on its own thread, overlapped
        // with the next interval's ingest — same reports, same bits.
        // With --source-threads N > 1, routing fans out over N producer
        // threads (push_slice_parallel), still bit-identical.
        let mut config = EngineConfig::new(detector, shards);
        if pipeline {
            config = config.with_pipeline();
        }
        if let Some(t) = &telemetry {
            config = config.with_metrics(Arc::clone(&t.pipeline));
        }
        let mut engine = ShardedEngine::new(config)?;
        for items in &intervals {
            engine.push_slice_parallel(items, source_threads)?;
            if let Some(report) = engine.end_interval_overlapped()? {
                emit_report(&report, top, &mut telemetry, &mut sink)?;
            }
        }
        if let Some(report) = engine.drain()? {
            emit_report(&report, top, &mut telemetry, &mut sink)?;
        }
        if let Some(t) = telemetry {
            t.finish()?;
        }
        if let Some(s) = sink {
            s.finish()?;
        }
        return Ok(());
    }
    let mut det = SketchChangeDetector::new(detector);
    if let Some(t) = &telemetry {
        // Single-threaded run: no engine stages to time, but the detector
        // counters/gauges (and the JSONL/scrape surfaces) still work.
        det.set_metrics(Arc::clone(&t.pipeline.detector));
    }
    for items in &intervals {
        let report = det.process_interval(items);
        emit_report(&report, top, &mut telemetry, &mut sink)?;
    }
    if let Some(t) = telemetry {
        t.finish()?;
    }
    if let Some(s) = sink {
        s.finish()?;
    }
    Ok(())
}

fn print_glr_event(e: &GlrEvent) {
    let hint = |a: &scd_core::ProvisionalAlarm| {
        a.key_hint.map_or_else(|| "?".to_string(), |k| format_ipv4(k as u32))
    };
    match e {
        GlrEvent::Provisional { interval, alarm } => outln!(
            "GLR provisional [interval {interval}] slot {} (onset {}, w={}) key {} stat {:.1}",
            alarm.raised_slot,
            alarm.onset_slot,
            alarm.window,
            hint(alarm),
            alarm.statistic
        ),
        GlrEvent::Confirmed { interval, lead_slots, alarm } => outln!(
            "GLR confirmed   [interval {interval}] key {} — {lead_slots} slot(s) before close",
            hint(alarm)
        ),
        GlrEvent::Retracted { interval, alarm } => {
            outln!("GLR retracted   [interval {interval}] key {}", hint(alarm))
        }
    }
}

fn print_alarms(interval: usize, alarms: impl Iterator<Item = (u64, f64)>, top: usize) {
    for (i, (key, err)) in alarms.take(top).enumerate() {
        if i == 0 {
            outln!("interval {interval}:");
        }
        outln!("  ALARM {:<16} error {:+.0} bytes", format_ipv4(key as u32), err);
    }
}

/// Builds the k-ary sketch of one interval of a trace and writes it in the
/// wire format — the per-router half of the distributed COMBINE workflow.
fn sketch(flags: &Flags) -> CliResult {
    let path: String = flags.require("trace")?;
    let interval: u32 = flags.require("interval")?;
    let at: usize = flags.require("at")?;
    let out: String = flags.require("out")?;
    let h: usize = flags.get("h", 5)?;
    let k: usize = flags.get("k", 32_768)?;
    let sketch_seed: u64 = flags.get("sketch-seed", 0x5CD)?;

    let records = read_trace(&path)?;
    let intervals = segment_records(&records, interval, KeySpec::DstIp, ValueSpec::Bytes);
    let items = intervals.get(at).ok_or_else(|| {
        FlagError(format!("interval {at} beyond trace ({} intervals)", intervals.len()))
    })?;
    let mut s = scd_sketch::KarySketch::new(SketchConfig { h, k, seed: sketch_seed });
    for &(key, value) in items {
        s.update(key, value);
    }
    std::fs::write(&out, scd_sketch::to_bytes(&s))?;
    outln!(
        "wrote sketch of interval {at} ({} updates, total {:.0} bytes of traffic) to {out}",
        items.len(),
        s.sum()
    );
    Ok(())
}

/// Sums sketch files (same hash family required) — the collector half of
/// the distributed workflow. Optionally answers a point query on the sum.
fn combine(flags: &Flags) -> CliResult {
    let out: String = flags.require("out")?;
    if flags.positional.is_empty() {
        return Err(FlagError("combine needs at least one sketch file".into()).into());
    }
    let mut sum: Option<scd_sketch::KarySketch> = None;
    for path in &flags.positional {
        let data = std::fs::read(path)?;
        let s = scd_sketch::from_bytes(&data)?;
        match &mut sum {
            None => sum = Some(s),
            Some(acc) => acc.add_scaled(&s, 1.0)?,
        }
    }
    let sum = sum.expect("at least one input");
    std::fs::write(&out, scd_sketch::to_bytes(&sum))?;
    outln!(
        "combined {} sketch(es); total traffic {:.0} bytes -> {out}",
        flags.positional.len(),
        sum.sum()
    );
    if let Some(q) = flags.raw("query") {
        let key: u64 = parse_ip_or_key(q)?;
        outln!("estimate[{q}] = {:.0}", sum.estimate(key));
    }
    Ok(())
}

/// Replays a trace through the supervised streaming detector: records are
/// pushed through the bounded channel under the chosen overload policy,
/// intervals are cut by event time, and (optionally) the detector state is
/// checkpointed every N intervals so a crashed run resumes where it left
/// off. Lifecycle events and drop counters are reported at the end.
fn stream(flags: &Flags) -> CliResult {
    let path: String = flags.require("trace")?;
    let interval: u32 = flags.require("interval")?;
    let model = ModelSpec::parse(&flags.require::<String>("model")?)?;
    let h: usize = flags.get("h", 5)?;
    let k: usize = flags.get("k", 32_768)?;
    let threshold: f64 = flags.get("threshold", 0.05)?;
    let sketch_seed: u64 = flags.get("sketch-seed", 0x5CD)?;
    let top: usize = flags.get("top", 10)?;
    let capacity: usize = flags.get("capacity", 4096)?;

    let overload = match flags.raw("policy").unwrap_or("block") {
        "block" => OverloadPolicy::Block,
        "drop" => OverloadPolicy::DropNewest,
        s if s.starts_with("sample:") => {
            let rate: f64 = s["sample:".len()..]
                .parse()
                .map_err(|_| FlagError(format!("bad sample rate in '{s}'")))?;
            if !(rate > 0.0 && rate <= 1.0) {
                return Err(FlagError(format!("sample rate {rate} not in (0, 1]")).into());
            }
            OverloadPolicy::Sample { rate, seed: sketch_seed ^ 0xFA11 }
        }
        other => return Err(FlagError(format!("unknown policy '{other}'")).into()),
    };
    let checkpoint = flags.raw("checkpoint").map(|file| CheckpointPolicy {
        path: file.into(),
        every_intervals: flags.get("every", 10).unwrap_or(10),
    });

    // --chunked streams the binary trace through ChunkedTraceReader in
    // fixed-size chunks (constant memory, no global sort). Generated
    // traces are interval-ordered, which is all the streaming detector
    // needs to close intervals correctly; arbitrary traces should use the
    // default materialize-and-sort path.
    let chunked = flags.has("chunked");
    if chunked && path.ends_with(".csv") {
        return Err(FlagError("--chunked requires a binary trace".into()).into());
    }
    let records = if chunked {
        Vec::new()
    } else {
        let mut r = read_trace(&path)?;
        r.sort_by_key(|r| r.timestamp_ms);
        r
    };

    let mut telemetry = Telemetry::from_flags(flags)?;
    let handle = spawn_supervised(SupervisorConfig {
        stream: StreamingConfig {
            detector: DetectorConfig {
                sketch: SketchConfig { h, k, seed: sketch_seed },
                model,
                threshold,
                key_strategy: KeyStrategy::TwoPass,
            },
            interval_ms: u64::from(interval) * 1000,
            key: KeySpec::DstIp,
            value: ValueSpec::Bytes,
            channel_capacity: capacity,
            overload,
            checkpoint,
            metrics: telemetry.as_ref().map(|t| Arc::clone(&t.pipeline)),
        },
        restart: RestartPolicy::default(),
        fault: None,
    });
    let mut reports = Vec::new();
    let mut events = Vec::new();
    let mut n_records = 0usize;
    {
        // Drain as we go: the report channel is bounded, so collecting
        // only at shutdown would deadlock once it fills while the record
        // channel is also full (the detector blocks sending a report, the
        // producer blocks sending a record, and neither can proceed).
        let mut feed = |record: FlowRecord| -> Result<bool, Box<dyn std::error::Error>> {
            n_records += 1;
            if !handle.send(record) {
                return Ok(false); // detector gave up; shutdown() reports why
            }
            while let Some(report) = handle.reports().try_recv() {
                if let Some(t) = telemetry.as_mut() {
                    t.snapshot(report.interval as u64)?;
                }
                reports.push(report);
            }
            while let Some(event) = handle.events().try_recv() {
                events.push(event);
            }
            Ok(true)
        };
        if chunked {
            let mut reader = ChunkedTraceReader::new(File::open(&path)?)?;
            let mut chunk = Vec::with_capacity(READ_CHUNK_RECORDS);
            'trace: loop {
                chunk.clear();
                if reader.next_chunk(READ_CHUNK_RECORDS, &mut chunk)? == 0 {
                    break;
                }
                for &record in &chunk {
                    if !feed(record)? {
                        break 'trace;
                    }
                }
            }
        } else {
            for record in records {
                if !feed(record)? {
                    break;
                }
            }
        }
    }
    let (tail_reports, tail_events, processed) =
        handle.shutdown().map_err(|e| FlagError(format!("stream failed: {e}")))?;
    if let Some(t) = telemetry.as_mut() {
        for report in &tail_reports {
            t.snapshot(report.interval as u64)?;
        }
    }
    reports.extend(tail_reports);
    events.extend(tail_events);

    outln!("streamed {n_records} records; detector processed {processed}");
    for report in &reports {
        print_alarms(
            report.interval,
            report.alarms.iter().map(|a| (a.key, a.estimated_error)),
            top,
        );
        let drops = report.drops;
        if drops.lost() > 0 || drops.sampled_in > 0 {
            outln!(
                "  interval {}: dropped {} shed {} sampled-in {}",
                report.interval,
                drops.dropped,
                drops.shed,
                drops.sampled_in
            );
        }
    }
    for event in &events {
        match event {
            LifecycleEvent::Started => {}
            LifecycleEvent::CheckpointWritten { intervals } => {
                outln!("checkpoint written at interval {intervals}");
            }
            other => outln!("lifecycle: {other:?}"),
        }
    }
    if let Some(t) = telemetry {
        t.finish()?;
    }
    Ok(())
}

/// Dumps metrics in the Prometheus text exposition format: live from a
/// running `--metrics-listen` responder (`--addr`), or converted from
/// the last snapshot line of a `--metrics` JSON-lines file (`--from`).
/// Either way the output is validated before it is printed, so a
/// rendering bug fails loudly instead of feeding a scraper garbage.
fn metrics(flags: &Flags) -> CliResult {
    if let Some(addr) = flags.raw("addr") {
        let body = scd_obs::fetch(addr)?;
        scd_obs::validate_exposition(&body).map_err(FlagError)?;
        outln!("{}", body.trim_end_matches('\n'));
        return Ok(());
    }
    let path: String = flags.require("from")?;
    let text = std::fs::read_to_string(&path)?;
    let last = text
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .ok_or_else(|| FlagError(format!("{path}: no snapshot lines")))?;
    let fields = scd_obs::parse_flat_json(last).map_err(|e| FlagError(format!("{path}: {e}")))?;
    // The flat snapshot has already collapsed histograms to summary
    // fields, so every sample re-exports as `untyped` — the exposition
    // type for values whose original type is unknown at dump time.
    let mut out = String::new();
    for (name, value) in &fields {
        use std::fmt::Write as _;
        let _ = writeln!(out, "# TYPE {name} untyped");
        if value.is_nan() {
            let _ = writeln!(out, "{name} NaN");
        } else {
            let _ = writeln!(out, "{name} {value}");
        }
    }
    scd_obs::validate_exposition(&out).map_err(FlagError)?;
    outln!("{}", out.trim_end_matches('\n'));
    Ok(())
}

/// One vantage point of the distributed plane: replays a trace through an
/// [`scd_net::IngestNode`], which ingests this node's key shard (plus its
/// ring buddy's, for parity), ships one CRC-guarded sketch frame per
/// interval to the aggregator, and spools unacknowledged frames to disk
/// so a flaky link never loses an interval. Every node replays the same
/// trace; the shard routing inside the node keeps contributions disjoint.
fn ingest_node(flags: &Flags) -> CliResult {
    let path: String = flags.require("trace")?;
    let interval: u32 = flags.require("interval")?;
    let node: u32 = flags.require("node")?;
    let nodes: u32 = flags.require("nodes")?;
    let addr: String = flags.require("connect")?;
    let h: usize = flags.get("h", 5)?;
    let k: usize = flags.get("k", 32_768)?;
    let sketch_seed: u64 = flags.get("sketch-seed", 0x5CD)?;
    let shards: usize = flags.get("shards", 2)?;
    let retries: u32 = flags.get("retries", 8)?;
    let finish_timeout: u64 = flags.get("finish-timeout-secs", 60)?;
    let spool_dir = match flags.raw("spool") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::temp_dir().join("scd-spool"),
    };
    let fault = match flags.raw("fault") {
        Some(spec) => Some(scd_traffic::NetFaultPlan::parse(spec).map_err(FlagError)?),
        None => None,
    };

    let telemetry = Telemetry::from_flags(flags)?;
    let metrics = telemetry.as_ref().map(|t| scd_net::NetMetrics::register(&t.registry));
    let records = read_trace(&path)?;
    let intervals = segment_records(&records, interval, KeySpec::DstIp, ValueSpec::Bytes);
    let mut ingest = scd_net::IngestNode::new(scd_net::NodeConfig {
        node,
        nodes,
        sketch: SketchConfig { h, k, seed: sketch_seed },
        shards,
        addr,
        spool_dir,
        retry: RestartPolicy { max_restarts: retries, ..RestartPolicy::default() },
        fault,
        metrics,
    })?;
    for items in &intervals {
        ingest.push_slice(items)?;
        ingest.end_interval()?;
    }
    let summary = ingest.finish(std::time::Duration::from_secs(finish_timeout))?;
    outln!(
        "node {node}/{nodes}: shipped {} intervals, {} unacknowledged",
        summary.intervals_total,
        summary.unacked.len()
    );
    if let Some(t) = telemetry {
        t.finish()?;
    }
    if !summary.unacked.is_empty() {
        return Err(FlagError(format!(
            "intervals never acknowledged by the aggregator: {:?}",
            summary.unacked
        ))
        .into());
    }
    Ok(())
}

/// The combine-and-detect point of the distributed plane: accepts frames
/// from `--nodes` ingest nodes, COMBINEs each interval's sketches by
/// linearity, and runs the one global detector over the merged stream —
/// recovering a lost node's contribution from ring parity, or flagging
/// the interval as partial when even parity cannot cover the loss.
fn aggregate(flags: &Flags) -> CliResult {
    let listen: String = flags.require("listen")?;
    let nodes: u32 = flags.require("nodes")?;
    let model = ModelSpec::parse(&flags.require::<String>("model")?)?;
    let h: usize = flags.get("h", 5)?;
    let k: usize = flags.get("k", 32_768)?;
    let threshold: f64 = flags.get("threshold", 0.05)?;
    let sketch_seed: u64 = flags.get("sketch-seed", 0x5CD)?;
    let top: usize = flags.get("top", 10)?;
    let grace_ms: u64 = flags.get("grace-ms", 500)?;
    let node_timeout_ms: u64 = flags.get("node-timeout-ms", 2000)?;
    let timeout_secs: u64 = flags.get("timeout-secs", 60)?;
    let checkpoint = flags.raw("checkpoint").map(|file| scd_net::CheckpointEvery {
        path: file.into(),
        every: flags.get("every", 10).unwrap_or(10),
    });

    let mut telemetry = Telemetry::from_flags(flags)?;
    let mut sink = ReportSink::from_flags(flags)?;
    let metrics = telemetry.as_ref().map(|t| scd_net::NetMetrics::register(&t.registry));
    let config = scd_net::AggregatorConfig {
        grace: std::time::Duration::from_millis(grace_ms),
        node_deadline: std::time::Duration::from_millis(node_timeout_ms),
        run_timeout: std::time::Duration::from_secs(timeout_secs),
        checkpoint,
        metrics,
        ..scd_net::AggregatorConfig::new(
            DetectorConfig {
                sketch: SketchConfig { h, k, seed: sketch_seed },
                model,
                threshold,
                key_strategy: KeyStrategy::TwoPass,
            },
            nodes,
        )
    };
    let aggregator = scd_net::Aggregator::bind(config, &listen)?;
    eprintln!("aggregating {nodes} nodes on {}", aggregator.local_addr()?);
    let summary = aggregator.run()?;
    for emitted in &summary.intervals {
        print_alarms(
            emitted.report.interval,
            emitted.report.alarms.iter().map(|a| (a.key, a.estimated_error)),
            top,
        );
        if !emitted.missing.is_empty() || !emitted.recovered.is_empty() {
            outln!(
                "  interval {}: PARTIAL missing nodes {:?}, recovered from parity {:?}",
                emitted.interval,
                emitted.missing,
                emitted.recovered
            );
        }
        if let Some(t) = telemetry.as_mut() {
            t.snapshot(emitted.interval)?;
        }
        if let Some(s) = sink.as_mut() {
            s.write(&emitted.report)?;
        }
    }
    outln!(
        "emitted {} intervals ({} resumed from checkpoint, {} detector restarts)",
        summary.intervals.len(),
        summary.resumed_from,
        summary.detector_restarts
    );
    if let Some(t) = telemetry {
        t.finish()?;
    }
    if let Some(s) = sink {
        s.finish()?;
    }
    if summary.timed_out {
        return Err(FlagError("run timed out before every node finished".into()).into());
    }
    Ok(())
}

/// Replays a trace through the sharded ingest engine with an attached
/// multi-resolution archive, then writes the archive to disk for later
/// `scd query` runs. By linearity the N-shard COMBINE reproduces the
/// single-threaded sketches bit for bit, so shard count affects only
/// throughput, never output.
fn archive(flags: &Flags) -> CliResult {
    let path: String = flags.require("trace")?;
    let interval: u32 = flags.require("interval")?;
    let model = ModelSpec::parse(&flags.require::<String>("model")?)?;
    let out: String = flags.require("out")?;
    let shards: usize = flags.get("shards", 4)?;
    let h: usize = flags.get("h", 5)?;
    let k: usize = flags.get("k", 32_768)?;
    let threshold: f64 = flags.get("threshold", 0.05)?;
    let sketch_seed: u64 = flags.get("sketch-seed", 0x5CD)?;
    let budget: usize = flags.get("budget", 64)?;
    let full_resolution: usize = flags.get("full-res", 8)?;
    let keys_per_epoch: usize = flags.get("keys", 64)?;
    let top: usize = flags.get("top", 10)?;

    let records = read_trace(&path)?;
    let intervals = segment_records(&records, interval, KeySpec::DstIp, ValueSpec::Bytes);
    let mut engine = ShardedEngine::new(
        EngineConfig::new(
            DetectorConfig {
                sketch: SketchConfig { h, k, seed: sketch_seed },
                model,
                threshold,
                key_strategy: KeyStrategy::TwoPass,
            },
            shards,
        )
        .with_archive(ArchiveConfig {
            max_sketches: budget,
            full_resolution,
            keys_per_epoch,
        }),
    )?;
    outln!(
        "archiving {} intervals of {interval}s across {shards} shards (budget {budget} sketches)",
        intervals.len()
    );
    for items in &intervals {
        // Bulk-route the whole interval, then cut it: the hot path stays
        // inside push_slice (batched hashing, recycled buffers).
        engine.push_slice(items)?;
        let report = engine.end_interval()?;
        print_alarms(
            report.interval,
            report.alarms.iter().map(|a| (a.key, a.estimated_error)),
            top,
        );
    }
    let archive = engine.take_archive().expect("engine built with an archive");
    let (from, to) = archive.coverage().unwrap_or((0, 0));
    outln!(
        "archive: intervals [{from}, {to}) in {} epochs, {:.1} KiB -> {out}",
        archive.sketch_count(),
        archive.memory_bytes() as f64 / 1024.0
    );
    scd_archive::wire::write_atomic(&archive, std::path::Path::new(&out))?;
    Ok(())
}

/// One key-history line, shared verbatim between offline `scd query` and
/// online `scd ask` so the two outputs diff cleanly.
fn print_history_point(start: u64, len: u64, total: f64, mean: f64) {
    outln!(
        "  intervals [{:>5}, {:>5})  width {:>4}  total {:+14.0}  mean {:+12.0}/interval",
        start,
        start + len,
        len,
        total,
        mean
    );
}

/// One changed-key line, shared verbatim between `scd query` and
/// `scd ask`.
fn print_change(key: u64, magnitude: f64) {
    outln!("  CHANGE {:<16} net error {:+.0} bytes", format_ipv4(key as u32), magnitude);
}

/// Answers historical questions from an archive written by `scd archive`:
/// top changed keys over a past window, one key's forecast-error history
/// at the archive's decayed resolution (`--key`), or a point estimate of
/// one key's accumulated error over the window (`--estimate`).
fn query(flags: &Flags) -> CliResult {
    let path: String = flags.require("archive")?;
    let from: u64 = flags.require("from")?;
    let to: u64 = flags.require("to")?;
    let threshold: f64 = flags.get("threshold", 0.05)?;
    let top: usize = flags.get("top", 10)?;

    let archive = scd_archive::wire::load(std::path::Path::new(&path))?;
    // An archive with no epochs (the detector never warmed up before the
    // dump) has nothing to answer from; that's a fact about the data, not
    // an error.
    let Some((lo, hi)) = archive.coverage() else {
        outln!("no data: archive holds no epochs (model never warmed up)");
        return Ok(());
    };
    if let Some(q) = flags.raw("estimate") {
        let key = parse_ip_or_key(q)?;
        let range = archive.range_sketch(from, to)?;
        outln!(
            "estimate over [{}, {}) (asked [{from}, {to}); {} epochs):",
            range.covered.0,
            range.covered.1,
            range.epochs_used
        );
        outln!("  ESTIMATE {q} = {}", range.sketch.estimate(key));
        return Ok(());
    }
    if let Some(q) = flags.raw("key") {
        let key = parse_ip_or_key(q)?;
        let history = archive.key_history(key, from, to)?;
        outln!("history of {q} over [{from}, {to}) (archive covers [{lo}, {hi})):");
        for p in &history {
            print_history_point(p.start, p.len, p.total, p.mean);
        }
        return Ok(());
    }
    let report = archive.changed_keys(from, to, threshold, &[])?;
    outln!(
        "changed keys in [{}, {}) (asked [{from}, {to}); {} epochs, T_A = {:.0}):",
        report.covered.0,
        report.covered.1,
        report.epochs_used,
        report.alarm_threshold
    );
    if report.changes.is_empty() {
        outln!("  none above threshold");
    }
    for c in report.changes.iter().take(top) {
        print_change(c.key, c.magnitude);
    }
    Ok(())
}

/// Replays a trace through the sharded engine with the serving plane
/// attached: every interval close publishes a snapshot (slim sketch +
/// replica archive) that a [`scd_serve::QueryServer`] answers live and
/// historical queries from, concurrently with ingest. `--pace-ms` slows
/// replay to leave a query window per interval; `--linger-secs` keeps
/// serving after the trace ends; `--out` additionally dumps the engine's
/// own archive so offline `scd query` can cross-check served answers.
fn serve(flags: &Flags) -> CliResult {
    let path: String = flags.require("trace")?;
    let interval: u32 = flags.require("interval")?;
    let model = ModelSpec::parse(&flags.require::<String>("model")?)?;
    let listen: String = flags.require("listen")?;
    let shards: usize = flags.get("shards", 1)?;
    let pipeline = flags.has("pipeline");
    let h: usize = flags.get("h", 5)?;
    let k: usize = flags.get("k", 32_768)?;
    let threshold: f64 = flags.get("threshold", 0.05)?;
    let sketch_seed: u64 = flags.get("sketch-seed", 0x5CD)?;
    let budget: usize = flags.get("budget", 64)?;
    let full_resolution: usize = flags.get("full-res", 8)?;
    let keys_per_epoch: usize = flags.get("keys", 64)?;
    let top: usize = flags.get("top", 10)?;
    let pace_ms: u64 = flags.get("pace-ms", 0)?;
    let linger_secs: u64 = flags.get("linger-secs", 0)?;
    let out = flags.raw("out");
    // Read-path knobs: background rebuild and the answer cache default
    // on; --sync-rebuild / --no-cache turn them off (used by the soak
    // and CI equivalence checks, and available for debugging).
    let rebuild_mode = if flags.has("sync-rebuild") {
        scd_serve::RebuildMode::Inline
    } else {
        scd_serve::RebuildMode::Background
    };
    let server_options = scd_serve::ServerOptions { cache: !flags.has("no-cache") };

    let records = read_trace(&path)?;
    let intervals = segment_records(&records, interval, KeySpec::DstIp, ValueSpec::Bytes);
    let archive_cfg = ArchiveConfig { max_sketches: budget, full_resolution, keys_per_epoch };

    let mut telemetry = Telemetry::from_flags(flags)?;
    let serve_metrics = telemetry.as_ref().map(|t| scd_serve::ServeMetrics::register(&t.registry));
    let plane =
        scd_serve::ServingPlane::with_options(archive_cfg, serve_metrics.clone(), rebuild_mode)?;

    let mut config = EngineConfig::new(
        DetectorConfig {
            sketch: SketchConfig { h, k, seed: sketch_seed },
            model,
            threshold,
            key_strategy: KeyStrategy::TwoPass,
        },
        shards,
    )
    .with_observer(Arc::clone(&plane) as Arc<dyn scd_core::IntervalObserver>);
    if out.is_some() {
        config = config.with_archive(archive_cfg);
    }
    if pipeline {
        config = config.with_pipeline();
    }
    if let Some(t) = &telemetry {
        config = config.with_metrics(Arc::clone(&t.pipeline));
    }
    let mut engine = ShardedEngine::new(config)?;

    let server = scd_serve::QueryServer::bind_with(
        &listen,
        Arc::clone(&plane),
        serve_metrics,
        server_options,
    )?;
    eprintln!("serving queries on {}", server.addr());
    outln!(
        "serving {} intervals of {interval}s on {} ({} shards{})",
        intervals.len(),
        server.addr(),
        shards,
        if pipeline { ", pipelined" } else { "" }
    );

    for items in &intervals {
        engine.push_slice(items)?;
        if let Some(report) = engine.end_interval_overlapped()? {
            emit_report(&report, top, &mut telemetry, &mut None)?;
        }
        if pace_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(pace_ms));
        }
    }
    if let Some(report) = engine.drain()? {
        emit_report(&report, top, &mut telemetry, &mut None)?;
    }
    if linger_secs > 0 {
        eprintln!("replay done; serving for {linger_secs}s more");
        std::thread::sleep(std::time::Duration::from_secs(linger_secs));
    }
    if let Some(out) = out {
        let archive = engine.take_archive().expect("engine built with an archive");
        scd_archive::wire::write_atomic(&archive, std::path::Path::new(out))?;
        outln!("archive dumped to {out}");
    }
    drop(server);
    if let Some(t) = telemetry {
        t.finish()?;
    }
    Ok(())
}

/// Asks a running `scd serve` one question over the `SCDQ` protocol and
/// prints the answer in the same body-line formats as offline
/// `scd query`, so the two can be diffed.
fn ask(flags: &Flags) -> CliResult {
    use scd_serve::{QueryClient, Request, Response};
    let addr: String = flags.require("addr")?;
    let top: usize = flags.get("top", 10)?;
    let wait_secs: u64 = flags.get("wait-secs", 0)?;

    let request = if let Some(q) = flags.raw("estimate") {
        let key = parse_ip_or_key(q)?;
        let from: u64 = flags.get("from", 0)?;
        let to: u64 = flags.get("to", 0)?;
        Request::Estimate { key, from, to }
    } else if flags.has("changed") {
        Request::ChangedKeys {
            from: flags.require("from")?,
            to: flags.require("to")?,
            threshold: flags.get("threshold", 0.05)?,
        }
    } else if let Some(q) = flags.raw("history") {
        Request::KeyHistory {
            key: parse_ip_or_key(q)?,
            from: flags.require("from")?,
            to: flags.require("to")?,
        }
    } else if flags.has("range") {
        Request::RangeSketch { from: flags.require("from")?, to: flags.require("to")? }
    } else {
        return Err(FlagError(
            "ask needs one of --estimate KEY | --changed | --history KEY | --range".into(),
        )
        .into());
    };

    // Optionally wait for the server to come up (the CI smoke job starts
    // `scd serve` in the background and races it).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(wait_secs);
    let mut client = loop {
        match QueryClient::connect(&addr) {
            Ok(c) => break c,
            Err(e) if std::time::Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            Err(e) => return Err(e.into()),
        }
    };
    match client.ask(&request)? {
        Response::NoData { as_of, reason } => match as_of {
            Some(as_of) => outln!("no data as of interval {as_of}: {reason}"),
            None => outln!("no data: {reason}"),
        },
        Response::Error { as_of, message } => {
            let at = as_of.map_or(String::new(), |t| format!(" (as of interval {t})"));
            return Err(FlagError(format!("server answered{at}: {message}")).into());
        }
        Response::Estimate { as_of, live, value, error_bound } => {
            let q = flags.raw("estimate").expect("estimate request came from --estimate");
            if live {
                outln!(
                    "live estimate as of interval {as_of} (slim-sketch bound {error_bound:.3e}):"
                );
            } else {
                outln!("estimate as of interval {as_of}:");
            }
            outln!("  ESTIMATE {q} = {value}");
        }
        Response::ChangedKeys {
            as_of,
            requested,
            covered,
            epochs_used,
            alarm_threshold,
            changes,
            ..
        } => {
            outln!(
                "changed keys in [{}, {}) (asked [{}, {}); {} epochs, T_A = {:.0}; as of interval {as_of}):",
                covered.0,
                covered.1,
                requested.0,
                requested.1,
                epochs_used,
                alarm_threshold
            );
            if changes.is_empty() {
                outln!("  none above threshold");
            }
            for &(key, magnitude) in changes.iter().take(top) {
                print_change(key, magnitude);
            }
        }
        Response::KeyHistory { as_of, covered, points } => {
            outln!("history over [{}, {}) as of interval {as_of}:", covered.0, covered.1);
            for &(start, len, total, mean) in &points {
                print_history_point(start, len, total, mean);
            }
        }
        Response::RangeSketch { as_of, covered, epochs_used, sum, error_f2 } => {
            outln!(
                "range [{}, {}) as of interval {as_of}: {} epochs, sum {sum:.0}, F2 {error_f2:.3e}",
                covered.0,
                covered.1,
                epochs_used
            );
        }
    }
    Ok(())
}

/// Accepts dotted-quad IPv4 or a raw integer key.
fn parse_ip_or_key(text: &str) -> Result<u64, FlagError> {
    if let Ok(n) = text.parse::<u64>() {
        return Ok(n);
    }
    let octets: Vec<&str> = text.split('.').collect();
    if octets.len() == 4 {
        let mut v: u64 = 0;
        for o in octets {
            let b: u64 = o.parse().map_err(|_| FlagError(format!("bad IP/key '{text}'")))?;
            if b > 255 {
                return Err(FlagError(format!("bad IP/key '{text}'")));
            }
            v = (v << 8) | b;
        }
        return Ok(v);
    }
    Err(FlagError(format!("bad IP/key '{text}'")))
}
