//! Tiny flag parser for the `scd` binary (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: subcommand plus `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    map: HashMap<String, String>,
}

/// A flag error with a user-facing message.
#[derive(Debug)]
pub struct FlagError(pub String);

impl std::fmt::Display for FlagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for FlagError {}

impl Flags {
    /// Parses an argument iterator (after the subcommand).
    pub fn parse(items: impl IntoIterator<Item = String>) -> Self {
        let mut out = Flags::default();
        let mut it = items.into_iter().peekable();
        while let Some(item) = it.next() {
            if let Some(name) = item.strip_prefix("--") {
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next().expect("peeked"),
                    _ => "true".into(),
                };
                out.map.insert(name.to_string(), value);
            } else {
                out.positional.push(item);
            }
        }
        out
    }

    /// Required flag, parsed as `T`.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, FlagError> {
        let raw = self
            .map
            .get(name)
            .ok_or_else(|| FlagError(format!("missing required flag --{name}")))?;
        raw.parse().map_err(|_| FlagError(format!("--{name}: cannot parse '{raw}'")))
    }

    /// Optional flag with default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, FlagError> {
        match self.map.get(name) {
            None => Ok(default),
            Some(raw) => {
                raw.parse().map_err(|_| FlagError(format!("--{name}: cannot parse '{raw}'")))
            }
        }
    }

    /// Raw string value, if present.
    pub fn raw(&self, name: &str) -> Option<&str> {
        self.map.get(name).map(String::as_str)
    }

    /// Boolean presence.
    pub fn has(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Flags {
        Flags::parse(s.split_whitespace().map(str::to_string))
    }

    #[test]
    fn required_and_optional() {
        let f = parse("--trace t.bin --interval 300 --verbose");
        assert_eq!(f.require::<String>("trace").unwrap(), "t.bin");
        assert_eq!(f.get("interval", 60u32).unwrap(), 300);
        assert_eq!(f.get("missing", 7u32).unwrap(), 7);
        assert!(f.has("verbose"));
    }

    #[test]
    fn missing_required_is_error() {
        let f = parse("");
        assert!(f.require::<String>("trace").is_err());
    }

    #[test]
    fn unparseable_reports_flag_name() {
        let f = parse("--interval banana");
        let err = f.require::<u32>("interval").unwrap_err();
        assert!(err.to_string().contains("--interval"));
    }
}
