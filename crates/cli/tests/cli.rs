//! End-to-end tests of the `scd` binary: generate → info → tune → detect,
//! exercising the composed pipeline exactly as a user would.

use std::path::PathBuf;
use std::process::Command;

fn scd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scd"))
}

fn temp_trace(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("scd-cli-test-{name}-{}.bin", std::process::id()));
    p
}

fn run(cmd: &mut Command) -> (String, String, bool) {
    let out = cmd.output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn generate_info_detect_pipeline() {
    let trace = temp_trace("pipeline");
    let trace_s = trace.to_str().unwrap();

    // Generate half an hour with a strong DoS at interval 12.
    let (stdout, stderr, ok) = run(scd()
        .args(["generate", "--profile", "small", "--hours", "0.5", "--interval", "60"])
        .args(["--out", trace_s, "--dos", "10:12:2:30", "--seed", "7"]));
    assert!(ok, "generate failed: {stderr}");
    assert!(stdout.contains("wrote"), "{stdout}");
    // The victim IP is announced; remember it.
    let victim = stdout
        .lines()
        .find(|l| l.contains("injected dos"))
        .and_then(|l| l.split_whitespace().nth(3))
        .expect("victim ip printed")
        .to_string();

    // Info reports plausible stats.
    let (stdout, stderr, ok) = run(scd().args(["info", "--trace", trace_s]));
    assert!(ok, "info failed: {stderr}");
    assert!(stdout.contains("records:"), "{stdout}");
    assert!(stdout.contains("top talkers"), "{stdout}");

    // Detect flags the victim at interval 12.
    let (stdout, stderr, ok) = run(scd()
        .args(["detect", "--trace", trace_s, "--interval", "60"])
        .args(["--model", "ewma:0.5", "--threshold", "0.4", "--k", "8192"]));
    assert!(ok, "detect failed: {stderr}");
    let after_12 = stdout.split("interval 12:").nth(1).expect("interval 12 in output");
    let block_12 = after_12.split("interval").next().expect("block");
    assert!(block_12.contains(&victim), "victim {victim} not alarmed at interval 12:\n{stdout}");

    // The reversible strategy finds it too — with no key replay.
    let (stdout, stderr, ok) = run(scd()
        .args(["detect", "--trace", trace_s, "--interval", "60"])
        .args(["--model", "ewma:0.5", "--threshold", "0.4", "--k", "4096"])
        .args(["--strategy", "reversible"]));
    assert!(ok, "reversible detect failed: {stderr}");
    assert!(stdout.contains(&victim), "reversible missed {victim}:\n{stdout}");

    std::fs::remove_file(&trace).ok();
}

#[test]
fn tune_emits_spec_that_detect_accepts() {
    let trace = temp_trace("tune");
    let trace_s = trace.to_str().unwrap();
    let (_, stderr, ok) = run(scd()
        .args(["generate", "--profile", "small", "--hours", "0.25", "--interval", "60"])
        .args(["--out", trace_s, "--seed", "3"]));
    assert!(ok, "generate failed: {stderr}");

    let (stdout, stderr, ok) = run(scd().args([
        "tune",
        "--trace",
        trace_s,
        "--interval",
        "60",
        "--model",
        "ewma",
        "--quiet",
    ]));
    assert!(ok, "tune failed: {stderr}");
    let spec = stdout.trim().to_string();
    assert!(spec.starts_with("ewma:"), "unexpected spec '{spec}'");

    let (_, stderr, ok) =
        run(scd().args(["detect", "--trace", trace_s, "--interval", "60", "--model", &spec]));
    assert!(ok, "detect with tuned spec failed: {stderr}");

    std::fs::remove_file(&trace).ok();
}

#[test]
fn helpful_errors() {
    // No subcommand → usage on stderr, exit code 2.
    let out = scd().output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    // Missing required flag names the flag.
    let (_, stderr, ok) = run(scd().args(["info"]));
    assert!(!ok);
    assert!(stderr.contains("--trace"), "{stderr}");

    // Bad model spec names the offender.
    let (_, stderr, ok) = run(scd().args([
        "detect",
        "--trace",
        "/nonexistent",
        "--interval",
        "60",
        "--model",
        "bogus:1",
    ]));
    assert!(!ok);
    assert!(stderr.contains("bogus"), "{stderr}");

    // CSV round trip: generate csv, info reads it.
    let trace = temp_trace("csvgen");
    let csv = trace.with_extension("csv");
    let csv_s = csv.to_str().unwrap();
    let (_, stderr, ok) = run(scd()
        .args(["generate", "--profile", "small", "--hours", "0.1", "--interval", "60"])
        .args(["--out", csv_s]));
    assert!(ok, "csv generate failed: {stderr}");
    let (stdout, _, ok) = run(scd().args(["info", "--trace", csv_s]));
    assert!(ok && stdout.contains("records:"));
    std::fs::remove_file(&csv).ok();
}

#[test]
fn sketch_combine_workflow() {
    let trace = temp_trace("sketchwf");
    let trace_s = trace.to_str().unwrap();
    let (_, stderr, ok) = run(scd()
        .args(["generate", "--profile", "small", "--hours", "0.2", "--interval", "60"])
        .args(["--out", trace_s, "--seed", "5"]));
    assert!(ok, "generate failed: {stderr}");

    let a = trace.with_extension("a.sketch");
    let b = trace.with_extension("b.sketch");
    let sum = trace.with_extension("sum.sketch");
    for (at, path) in [("3", &a), ("4", &b)] {
        let (_, stderr, ok) = run(scd()
            .args(["sketch", "--trace", trace_s, "--interval", "60", "--at", at])
            .args(["--out", path.to_str().unwrap(), "--k", "4096"]));
        assert!(ok, "sketch failed: {stderr}");
    }
    let (stdout, stderr, ok) = run(scd()
        .args(["combine", "--out", sum.to_str().unwrap()])
        .args([a.to_str().unwrap(), b.to_str().unwrap()])
        .args(["--query", "10.0.0.1"]));
    assert!(ok, "combine failed: {stderr}");
    assert!(stdout.contains("combined 2 sketch(es)"), "{stdout}");
    assert!(stdout.contains("estimate[10.0.0.1]"), "{stdout}");

    // Mixing hash families must be rejected, not silently wrong.
    let c = trace.with_extension("c.sketch");
    let (_, _, ok) = run(scd()
        .args(["sketch", "--trace", trace_s, "--interval", "60", "--at", "3"])
        .args(["--out", c.to_str().unwrap(), "--k", "4096", "--sketch-seed", "999"]));
    assert!(ok);
    let (_, stderr, ok) = run(scd()
        .args(["combine", "--out", sum.to_str().unwrap()])
        .args([a.to_str().unwrap(), c.to_str().unwrap()]));
    assert!(!ok, "incompatible combine must fail");
    assert!(stderr.contains("hash famil"), "{stderr}");

    for p in [&trace, &a, &b, &c, &sum] {
        std::fs::remove_file(p).ok();
    }
}

/// The historical workflow: generate a trace with an injected DoS, replay
/// it through the 4-shard archiving engine, then query the archive for
/// the attack window — the victim must come back as a changed key, and
/// its per-key history must carry the burst.
#[test]
fn archive_query_workflow() {
    let trace = temp_trace("archive");
    let trace_s = trace.to_str().unwrap();
    let (stdout, stderr, ok) = run(scd()
        .args(["generate", "--profile", "small", "--hours", "0.5", "--interval", "60"])
        .args(["--out", trace_s, "--dos", "10:12:2:30", "--seed", "7"]));
    assert!(ok, "generate failed: {stderr}");
    let victim = stdout
        .lines()
        .find(|l| l.contains("injected dos"))
        .and_then(|l| l.split_whitespace().nth(3))
        .expect("victim ip printed")
        .to_string();

    let hist = trace.with_extension("scda");
    let hist_s = hist.to_str().unwrap();
    let (stdout, stderr, ok) = run(scd()
        .args(["archive", "--trace", trace_s, "--interval", "60", "--model", "ewma:0.5"])
        .args(["--out", hist_s, "--shards", "4", "--k", "8192"])
        .args(["--budget", "16", "--full-res", "4", "--threshold", "0.4"]));
    assert!(ok, "archive failed: {stderr}");
    assert!(stdout.contains("archive: intervals [0, 30)"), "{stdout}");

    // The attack ran over intervals 12..=13; ask for the dyadic-decayed
    // window around it.
    let (stdout, stderr, ok) = run(scd()
        .args(["query", "--archive", hist_s, "--from", "8", "--to", "16"])
        .args(["--threshold", "0.4"]));
    assert!(ok, "query failed: {stderr}");
    assert!(stdout.contains(&victim), "victim {victim} not in change report:\n{stdout}");

    // Per-key history localizes the burst inside the window.
    let (stdout, stderr, ok) = run(scd()
        .args(["query", "--archive", hist_s, "--from", "0", "--to", "30"])
        .args(["--key", &victim]));
    assert!(ok, "history query failed: {stderr}");
    assert!(stdout.contains("history of"), "{stdout}");

    // Out-of-range windows fail loudly instead of answering nonsense.
    let (_, stderr, ok) =
        run(scd().args(["query", "--archive", hist_s, "--from", "50", "--to", "60"]));
    assert!(!ok, "out-of-range query must fail");
    assert!(stderr.contains("out"), "{stderr}");

    std::fs::remove_file(&trace).ok();
    std::fs::remove_file(&hist).ok();
}

/// `scd stream` over a trace with more event-time intervals than the
/// bounded report channel holds (64). The CLI must drain reports while it
/// is still sending records; collecting them only at shutdown deadlocks —
/// detector blocked sending a report, producer blocked sending a record.
#[test]
fn stream_with_many_intervals_does_not_deadlock() {
    let trace = temp_trace("stream-many");
    let trace_s = trace.to_str().unwrap();
    // 1.5 hours at 60s intervals = 90 intervals > 64.
    let (_, stderr, ok) = run(scd()
        .args(["generate", "--profile", "small", "--hours", "1.5", "--interval", "60"])
        .args(["--out", trace_s, "--seed", "11"]));
    assert!(ok, "generate failed: {stderr}");

    // Stdout goes to a file so a full pipe can never masquerade as the
    // deadlock this test is hunting.
    let out_path = trace.with_extension("out");
    let out_file = std::fs::File::create(&out_path).expect("stdout file");
    let mut child = scd()
        .args(["stream", "--trace", trace_s, "--interval", "60", "--model", "ewma:0.5"])
        .stdout(out_file)
        .spawn()
        .expect("spawn scd stream");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    let status = loop {
        match child.try_wait().expect("poll scd stream") {
            Some(status) => break status,
            None if std::time::Instant::now() > deadline => {
                child.kill().ok();
                panic!("scd stream made no progress within 120s: deadlocked");
            }
            None => std::thread::sleep(std::time::Duration::from_millis(50)),
        }
    };
    assert!(status.success(), "stream exited with failure");
    let stdout = std::fs::read_to_string(&out_path).expect("read stream output");
    assert!(stdout.contains("streamed"), "{stdout}");
    std::fs::remove_file(&trace).ok();
    std::fs::remove_file(&out_path).ok();
}

/// Live serving must agree with the offline archive byte for byte: run
/// `scd serve` over an integer-valued trace (ma:1 keeps forecast errors
/// integral, so the slim f32 read path is exact), `scd ask` every query
/// shape while the server lingers, then diff the body lines against
/// offline `scd query` over the archive the same run dumped. Every ask
/// response — data, live, and error alike — must announce the `as_of`
/// interval it was answered at.
#[test]
fn ask_matches_offline_query_and_prints_as_of() {
    let trace = temp_trace("serve-ask");
    let trace_s = trace.to_str().unwrap();
    let (stdout, stderr, ok) = run(scd()
        .args(["generate", "--profile", "small", "--hours", "0.5", "--interval", "60"])
        .args(["--out", trace_s, "--dos", "10:12:2:30", "--seed", "7"]));
    assert!(ok, "generate failed: {stderr}");
    let victim = stdout
        .lines()
        .find(|l| l.contains("injected dos"))
        .and_then(|l| l.split_whitespace().nth(3))
        .expect("victim ip printed")
        .to_string();

    let dump = trace.with_extension("scda");
    let dump_s = dump.to_str().unwrap();
    let addr = format!("127.0.0.1:{}", 21000 + (std::process::id() % 10_000) as u16);
    // Replay finishes in well under a second; the linger window is where
    // the asks land. Stdout/stderr go to files so a full pipe can never
    // stall the server, and so the test can watch for "replay done".
    let out_path = trace.with_extension("serve-out");
    let err_path = trace.with_extension("serve-err");
    let mut child = scd()
        .args(["serve", "--trace", trace_s, "--interval", "60", "--model", "ma:1"])
        .args(["--listen", &addr, "--k", "8192", "--threshold", "0.4", "--shards", "2"])
        .args(["--budget", "16", "--full-res", "4", "--out", dump_s])
        .args(["--linger-secs", "15"])
        .stdout(std::fs::File::create(&out_path).expect("stdout file"))
        .stderr(std::fs::File::create(&err_path).expect("stderr file"))
        .spawn()
        .expect("spawn scd serve");

    // Ask only once replay is done, so every answer reflects the final view.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let log = std::fs::read_to_string(&err_path).unwrap_or_default();
        if log.contains("replay done") {
            break;
        }
        if let Some(status) = child.try_wait().expect("poll scd serve") {
            panic!("scd serve exited early ({status}): {log}");
        }
        if std::time::Instant::now() > deadline {
            child.kill().ok();
            panic!("scd serve never finished replay: {log}");
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    let ask = |extra: &[&str]| -> String {
        let (stdout, stderr, ok) = run(scd().args(["ask", "--addr", &addr]).args(extra));
        assert!(ok, "ask {extra:?} failed: {stderr}");
        assert!(stdout.contains("as of interval"), "ask {extra:?} lost as_of:\n{stdout}");
        stdout
    };
    let changed = ask(&["--changed", "--from", "8", "--to", "16", "--threshold", "0.4"]);
    let history = ask(&["--history", &victim, "--from", "0", "--to", "30"]);
    let estimate = ask(&["--estimate", &victim, "--from", "8", "--to", "16"]);
    let live = ask(&["--estimate", &victim]);
    assert!(live.contains("live estimate as of interval"), "{live}");
    assert!(live.contains("slim-sketch bound"), "{live}");
    let range = ask(&["--range", "--from", "8", "--to", "16"]);
    assert!(range.contains("epochs, sum"), "{range}");
    // The error variant carries as_of too: a window past coverage fails
    // loudly but still says which interval the server was at.
    let (_, stderr, ok) =
        run(scd().args(["ask", "--addr", &addr, "--changed", "--from", "50", "--to", "60"]));
    assert!(!ok, "out-of-range ask must fail");
    assert!(stderr.contains("as of interval"), "error answer lost as_of: {stderr}");

    // Let the linger window expire so the server dumps its archive.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    let status = loop {
        match child.try_wait().expect("poll scd serve") {
            Some(status) => break status,
            None if std::time::Instant::now() > deadline => {
                child.kill().ok();
                panic!("scd serve did not exit after linger window");
            }
            None => std::thread::sleep(std::time::Duration::from_millis(100)),
        }
    };
    assert!(status.success(), "serve exited with failure");

    // Offline answers over the dumped archive: body lines (the indented
    // CHANGE / intervals / ESTIMATE records) must match the served ones
    // exactly — only the `as of interval` headers may differ.
    let body = |s: &str| -> Vec<String> {
        s.lines().filter(|l| l.starts_with("  ")).map(str::to_string).collect()
    };
    let offline = |extra: &[&str]| -> String {
        let (stdout, stderr, ok) = run(scd().args(["query", "--archive", dump_s]).args(extra));
        assert!(ok, "offline query {extra:?} failed: {stderr}");
        stdout
    };
    let q_changed = offline(&["--from", "8", "--to", "16", "--threshold", "0.4"]);
    assert_eq!(body(&changed), body(&q_changed), "served vs offline changed keys");
    assert!(!body(&changed).is_empty(), "changed-keys diff was vacuous:\n{q_changed}");
    let q_history = offline(&["--from", "0", "--to", "30", "--key", &victim]);
    assert_eq!(body(&history), body(&q_history), "served vs offline history");
    let q_estimate = offline(&["--from", "8", "--to", "16", "--estimate", &victim]);
    assert_eq!(body(&estimate), body(&q_estimate), "served vs offline estimate");

    for p in [&trace, &dump, &out_path, &err_path] {
        std::fs::remove_file(p).ok();
    }
}

/// An archive dumped before the model ever warmed up holds zero epochs.
/// Querying it must produce a clean "no data" answer (exit 0), not an
/// out-of-range error: nothing about the request was wrong, the archive
/// just has nothing to say.
#[test]
fn query_on_empty_archive_says_no_data() {
    let trace = temp_trace("empty-archive");
    let trace_s = trace.to_str().unwrap();
    // Segment the whole trace into ONE detection interval: every model
    // spends it warming up, no error sketch is ever produced, and the
    // archive is dumped with zero epochs.
    let (_, stderr, ok) = run(scd()
        .args(["generate", "--profile", "small", "--hours", "0.1", "--interval", "60"])
        .args(["--out", trace_s, "--seed", "3"]));
    assert!(ok, "generate failed: {stderr}");

    let hist = trace.with_extension("scda");
    let hist_s = hist.to_str().unwrap();
    let (stdout, stderr, ok) = run(scd()
        .args(["archive", "--trace", trace_s, "--interval", "3600", "--model", "ewma:0.5"])
        .args(["--out", hist_s, "--shards", "2", "--k", "1024"]));
    assert!(ok, "archive failed: {stderr}");
    assert!(stdout.contains("0 epochs"), "expected empty archive: {stdout}");

    // All three query shapes answer "no data" with a success exit.
    for extra in [&["--threshold", "0.4"][..], &["--key", "9"][..], &["--estimate", "9"][..]] {
        let (stdout, stderr, ok) =
            run(scd().args(["query", "--archive", hist_s, "--from", "0", "--to", "6"]).args(extra));
        assert!(ok, "query {extra:?} errored on empty archive: {stderr}");
        assert!(stdout.contains("no data"), "query {extra:?}: {stdout}");
    }

    std::fs::remove_file(&trace).ok();
    std::fs::remove_file(&hist).ok();
}
