//! End-to-end properties of the multi-resolution archive: queries answer
//! exactly what direct ingest of the covered span would, changes injected
//! into the past stay findable after resolution decay, and the archive is
//! genuinely generic over linear summaries.

use scd_archive::{ArchiveConfig, ArchiveError, SketchArchive};
use scd_hash::SplitMix64;
use scd_sketch::{CountSketch, KarySketch, SketchConfig};

fn proto() -> KarySketch {
    KarySketch::new(SketchConfig { h: 5, k: 1024, seed: 77 })
}

/// Per-interval synthetic traffic: 32 steady keys with integer volumes
/// (so all sums are exact in f64), deterministic per interval.
fn interval_updates(t: u64) -> Vec<(u64, f64)> {
    let mut rng = SplitMix64::new(0x7AFF1C ^ t);
    (0..32u64).map(|k| (k, (rng.next_below(100) + 1) as f64)).collect()
}

fn build_archive(
    config: ArchiveConfig,
    intervals: u64,
    inject: impl Fn(u64) -> Option<(u64, f64)>,
) -> SketchArchive<KarySketch> {
    let proto = proto();
    let mut archive = SketchArchive::new(config).unwrap();
    for t in 0..intervals {
        let mut s = proto.zero_like();
        let mut notable: Vec<(u64, f64)> = Vec::new();
        for (key, v) in interval_updates(t) {
            s.update(key, v);
            notable.push((key, v));
        }
        if let Some((key, v)) = inject(t) {
            s.update(key, v);
            notable.push((key, v));
        }
        archive.push(s, &notable).unwrap();
    }
    archive
}

#[test]
fn range_sketch_is_bit_identical_to_direct_ingest() {
    let config = ArchiveConfig { max_sketches: 10, full_resolution: 3, keys_per_epoch: 8 };
    let archive = build_archive(config, 128, |_| None);
    // Query a window; replay the *covered* span directly into one sketch.
    let range = archive.range_sketch(40, 90).unwrap();
    let (lo, hi) = range.covered;
    assert!(lo <= 40 && hi >= 90, "covered {lo}..{hi} does not contain 40..90");
    let mut direct = proto().zero_like();
    for t in lo..hi {
        for (key, v) in interval_updates(t) {
            direct.update(key, v);
        }
    }
    // Integer volumes ⇒ every cell is an exact sum ⇒ decay (COMBINE)
    // cannot perturb a single bit relative to direct ingest.
    assert_eq!(range.sketch.table(), direct.table());
    assert_eq!(range.sketch.estimate_f2(), direct.estimate_f2());
}

#[test]
fn injected_past_change_survives_resolution_decay() {
    let config = ArchiveConfig { max_sketches: 8, full_resolution: 2, keys_per_epoch: 16 };
    let burst_key = 0xBAD_u64;
    // A burst at interval 50, long since decayed into a coarse epoch by
    // interval 400.
    let archive = build_archive(config, 400, |t| (t == 50).then_some((burst_key, 250_000.0)));
    let report = archive.changed_keys(32, 64, 0.2, &[]).unwrap();
    assert!(!report.changes.is_empty(), "no changes surfaced");
    assert_eq!(report.changes[0].key, burst_key, "burst key not ranked first: {report:?}");
    assert!(report.changes[0].magnitude > 200_000.0);
    assert!(report.alarm_threshold > 0.0);
    // A quiet window that *doesn't* snap onto the burst epoch (the recent
    // full-resolution region) does not implicate the key.
    let quiet = archive.changed_keys(396, 400, 0.2, &[burst_key]).unwrap();
    assert!(quiet.covered.0 > 64, "window snapped over the burst: {:?}", quiet.covered);
    assert!(
        quiet.changes.iter().all(|c| c.key != burst_key),
        "burst key alarmed in a quiet window: {quiet:?}"
    );
}

#[test]
fn key_history_localizes_the_burst() {
    let config = ArchiveConfig { max_sketches: 12, full_resolution: 4, keys_per_epoch: 8 };
    let burst_key = 7_u64; // also a steady key: history = baseline + burst
    let archive = build_archive(config, 256, |t| (t == 100).then_some((burst_key, 500_000.0)));
    let history = archive.key_history(burst_key, 0, 256).unwrap();
    assert_eq!(history.len(), archive.sketch_count());
    // Exactly the epoch containing interval 100 carries the burst mass.
    for point in &history {
        let has_burst = point.start <= 100 && 100 < point.start + point.len;
        if has_burst {
            assert!(point.total > 400_000.0, "burst epoch {point:?} missing mass");
        } else {
            // Steady traffic: ≤ 100 per interval per key plus sketch noise.
            assert!(point.mean < 5_000.0, "quiet epoch {point:?} shows burst mass");
        }
    }
    // Points tile the covered range in order.
    let mut expect = history[0].start;
    for point in &history {
        assert_eq!(point.start, expect);
        expect = point.start + point.len;
    }
    assert_eq!(expect, 256);
}

#[test]
fn directory_feeds_queries_even_without_explicit_candidates() {
    let config = ArchiveConfig { max_sketches: 8, full_resolution: 2, keys_per_epoch: 4 };
    let archive = build_archive(config, 96, |t| (t == 30).then_some((999, 1_000_000.0)));
    // The burst key was never passed to the query: the per-epoch
    // directory alone must remember it across merges.
    let candidates = archive.candidate_keys(16, 48).unwrap();
    assert!(candidates.contains(&999), "directory forgot the burst key: {candidates:?}");
    let report = archive.changed_keys(16, 48, 0.2, &[]).unwrap();
    assert_eq!(report.changes[0].key, 999);
}

#[test]
fn archive_is_generic_over_count_sketch() {
    let config = ArchiveConfig { max_sketches: 8, full_resolution: 2, keys_per_epoch: 8 };
    let proto = CountSketch::new(5, 1024, 3);
    let mut archive = SketchArchive::new(config).unwrap();
    for t in 0..64u64 {
        let mut s = proto.zero_like();
        for (key, v) in interval_updates(t) {
            s.update(key, v);
        }
        if t == 20 {
            s.update(4242, 100_000.0);
        }
        archive.push(s, &[(4242, if t == 20 { 100_000.0 } else { 0.0 })]).unwrap();
    }
    assert!(archive.sketch_count() <= 8);
    let report = archive.changed_keys(16, 32, 0.2, &[]).unwrap();
    assert_eq!(report.changes[0].key, 4242);
}

#[test]
fn queries_reject_bad_windows_with_typed_errors() {
    let config = ArchiveConfig { max_sketches: 8, full_resolution: 2, keys_per_epoch: 4 };
    let archive = build_archive(config, 32, |_| None);
    assert!(matches!(
        archive.changed_keys(10, 10, 0.05, &[]),
        Err(ArchiveError::EmptyRange { .. })
    ));
    assert!(matches!(
        archive.key_history(1, 40, 50),
        Err(ArchiveError::OutOfRange { coverage: Some((0, 32)), .. })
    ));
}

/// Pushes intervals one at a time until the archive performs its next
/// buddy merge, returning the interval count at which it happened.
fn push_until_next_merge(archive: &mut SketchArchive<KarySketch>, mut t: u64) -> u64 {
    let before = archive.merges_total();
    loop {
        let mut s = proto().zero_like();
        let mut notable: Vec<(u64, f64)> = Vec::new();
        for (key, v) in interval_updates(t) {
            s.update(key, v);
            notable.push((key, v));
        }
        archive.push(s, &notable).unwrap();
        t += 1;
        if archive.merges_total() > before {
            return t;
        }
    }
}

/// A range query that straddles a *just-merged* buddy pair answers
/// exactly what direct ingest of the snapped-outward window would: the
/// merge coarsens coverage granularity but never perturbs a register
/// bit (integer volumes make every cell an exact sum).
#[test]
fn range_straddling_a_just_merged_pair_is_exact() {
    let config = ArchiveConfig { max_sketches: 8, full_resolution: 3, keys_per_epoch: 8 };
    let mut archive = SketchArchive::new(config).unwrap();
    let mut pushed = push_until_next_merge(&mut archive, 0);
    // Do it twice more so merged epochs sit in the middle of coverage,
    // not at its very edge.
    pushed = push_until_next_merge(&mut archive, pushed);
    pushed = push_until_next_merge(&mut archive, pushed);
    // Find a merged epoch (len ≥ 2) with a neighbor on each side.
    let merged = archive
        .epochs()
        .find(|e| e.len() >= 2)
        .map(|e| (e.start(), e.end()))
        .expect("a merge just happened, so a wide epoch exists");
    let (mstart, mend) = merged;
    // Ask for a window that splits the merged pair down the middle: it
    // must snap outward to whole epochs on both sides.
    let mid = mstart + 1;
    let range = archive.range_sketch(mid, mend + 1).unwrap();
    let (lo, hi) = range.covered;
    assert!(lo <= mstart && hi >= mend, "covered [{lo}, {hi}) does not swallow the merged pair");
    assert!(lo >= archive.coverage().unwrap().0);
    let mut direct = proto().zero_like();
    for t in lo..hi {
        for (key, v) in interval_updates(t) {
            direct.update(key, v);
        }
    }
    assert_eq!(range.sketch.table(), direct.table(), "merged-boundary range diverged");
    let _ = pushed;
}

/// `key_history` across a just-merged pair reports the pair as ONE point
/// whose width, total and mean reflect the merged epoch — and the total
/// equals the estimate from direct ingest of those intervals bit for
/// bit.
#[test]
fn key_history_across_a_just_merged_pair_collapses_to_one_point() {
    let config = ArchiveConfig { max_sketches: 8, full_resolution: 3, keys_per_epoch: 8 };
    let mut archive = SketchArchive::new(config).unwrap();
    let mut t = push_until_next_merge(&mut archive, 0);
    t = push_until_next_merge(&mut archive, t);
    let (mstart, mend, mlen) = archive
        .epochs()
        .find(|e| e.len() >= 2)
        .map(|e| (e.start(), e.end(), e.len()))
        .expect("merged epoch exists");
    let key = 7u64; // one of the 32 steady keys
                    // Straddle the pair: one interval inside it, extending past its end.
    let history = archive.key_history(key, mstart + 1, mend + 1).unwrap();
    let first = &history[0];
    assert_eq!(first.start, mstart, "first point must snap to the merged epoch start");
    assert_eq!(first.len, mlen, "merged pair must surface as one point of its full width");
    // Every later point starts at the previous point's end: merge
    // boundaries leave no gaps and no overlaps.
    for pair in history.windows(2) {
        assert_eq!(pair[0].start + pair[0].len, pair[1].start);
    }
    // The merged point's total is the estimate of the summed sketch,
    // which (integer volumes) equals direct ingest of the pair exactly.
    let mut direct = proto().zero_like();
    for i in mstart..mend {
        for (k, v) in interval_updates(i) {
            direct.update(k, v);
        }
    }
    assert_eq!(first.total.to_bits(), direct.estimate(key).to_bits());
    assert_eq!(first.mean.to_bits(), (first.total / mlen as f64).to_bits());
    let _ = t;
}

/// The merge that evicts resolution keeps the notable-key directory:
/// candidates pooled over a window straddling the merged pair still
/// surface the keys filed before the merge.
#[test]
fn directory_survives_buddy_merges() {
    let config = ArchiveConfig { max_sketches: 8, full_resolution: 3, keys_per_epoch: 64 };
    let mut archive = SketchArchive::new(config).unwrap();
    let t = push_until_next_merge(&mut archive, 0);
    let (mstart, mend) = archive
        .epochs()
        .find(|e| e.len() >= 2)
        .map(|e| (e.start(), e.end()))
        .expect("merged epoch exists");
    let candidates = archive.candidate_keys(mstart, mend).unwrap();
    for key in 0..32u64 {
        assert!(candidates.contains(&key), "steady key {key} lost from merged directory");
    }
    let _ = t;
}
