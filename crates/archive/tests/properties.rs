//! End-to-end properties of the multi-resolution archive: queries answer
//! exactly what direct ingest of the covered span would, changes injected
//! into the past stay findable after resolution decay, and the archive is
//! genuinely generic over linear summaries.

use scd_archive::{ArchiveConfig, ArchiveError, SketchArchive};
use scd_hash::SplitMix64;
use scd_sketch::{CountSketch, KarySketch, SketchConfig};

fn proto() -> KarySketch {
    KarySketch::new(SketchConfig { h: 5, k: 1024, seed: 77 })
}

/// Per-interval synthetic traffic: 32 steady keys with integer volumes
/// (so all sums are exact in f64), deterministic per interval.
fn interval_updates(t: u64) -> Vec<(u64, f64)> {
    let mut rng = SplitMix64::new(0x7AFF1C ^ t);
    (0..32u64).map(|k| (k, (rng.next_below(100) + 1) as f64)).collect()
}

fn build_archive(
    config: ArchiveConfig,
    intervals: u64,
    inject: impl Fn(u64) -> Option<(u64, f64)>,
) -> SketchArchive<KarySketch> {
    let proto = proto();
    let mut archive = SketchArchive::new(config).unwrap();
    for t in 0..intervals {
        let mut s = proto.zero_like();
        let mut notable: Vec<(u64, f64)> = Vec::new();
        for (key, v) in interval_updates(t) {
            s.update(key, v);
            notable.push((key, v));
        }
        if let Some((key, v)) = inject(t) {
            s.update(key, v);
            notable.push((key, v));
        }
        archive.push(s, &notable).unwrap();
    }
    archive
}

#[test]
fn range_sketch_is_bit_identical_to_direct_ingest() {
    let config = ArchiveConfig { max_sketches: 10, full_resolution: 3, keys_per_epoch: 8 };
    let archive = build_archive(config, 128, |_| None);
    // Query a window; replay the *covered* span directly into one sketch.
    let range = archive.range_sketch(40, 90).unwrap();
    let (lo, hi) = range.covered;
    assert!(lo <= 40 && hi >= 90, "covered {lo}..{hi} does not contain 40..90");
    let mut direct = proto().zero_like();
    for t in lo..hi {
        for (key, v) in interval_updates(t) {
            direct.update(key, v);
        }
    }
    // Integer volumes ⇒ every cell is an exact sum ⇒ decay (COMBINE)
    // cannot perturb a single bit relative to direct ingest.
    assert_eq!(range.sketch.table(), direct.table());
    assert_eq!(range.sketch.estimate_f2(), direct.estimate_f2());
}

#[test]
fn injected_past_change_survives_resolution_decay() {
    let config = ArchiveConfig { max_sketches: 8, full_resolution: 2, keys_per_epoch: 16 };
    let burst_key = 0xBAD_u64;
    // A burst at interval 50, long since decayed into a coarse epoch by
    // interval 400.
    let archive = build_archive(config, 400, |t| (t == 50).then_some((burst_key, 250_000.0)));
    let report = archive.changed_keys(32, 64, 0.2, &[]).unwrap();
    assert!(!report.changes.is_empty(), "no changes surfaced");
    assert_eq!(report.changes[0].key, burst_key, "burst key not ranked first: {report:?}");
    assert!(report.changes[0].magnitude > 200_000.0);
    assert!(report.alarm_threshold > 0.0);
    // A quiet window that *doesn't* snap onto the burst epoch (the recent
    // full-resolution region) does not implicate the key.
    let quiet = archive.changed_keys(396, 400, 0.2, &[burst_key]).unwrap();
    assert!(quiet.covered.0 > 64, "window snapped over the burst: {:?}", quiet.covered);
    assert!(
        quiet.changes.iter().all(|c| c.key != burst_key),
        "burst key alarmed in a quiet window: {quiet:?}"
    );
}

#[test]
fn key_history_localizes_the_burst() {
    let config = ArchiveConfig { max_sketches: 12, full_resolution: 4, keys_per_epoch: 8 };
    let burst_key = 7_u64; // also a steady key: history = baseline + burst
    let archive = build_archive(config, 256, |t| (t == 100).then_some((burst_key, 500_000.0)));
    let history = archive.key_history(burst_key, 0, 256).unwrap();
    assert_eq!(history.len(), archive.sketch_count());
    // Exactly the epoch containing interval 100 carries the burst mass.
    for point in &history {
        let has_burst = point.start <= 100 && 100 < point.start + point.len;
        if has_burst {
            assert!(point.total > 400_000.0, "burst epoch {point:?} missing mass");
        } else {
            // Steady traffic: ≤ 100 per interval per key plus sketch noise.
            assert!(point.mean < 5_000.0, "quiet epoch {point:?} shows burst mass");
        }
    }
    // Points tile the covered range in order.
    let mut expect = history[0].start;
    for point in &history {
        assert_eq!(point.start, expect);
        expect = point.start + point.len;
    }
    assert_eq!(expect, 256);
}

#[test]
fn directory_feeds_queries_even_without_explicit_candidates() {
    let config = ArchiveConfig { max_sketches: 8, full_resolution: 2, keys_per_epoch: 4 };
    let archive = build_archive(config, 96, |t| (t == 30).then_some((999, 1_000_000.0)));
    // The burst key was never passed to the query: the per-epoch
    // directory alone must remember it across merges.
    let candidates = archive.candidate_keys(16, 48).unwrap();
    assert!(candidates.contains(&999), "directory forgot the burst key: {candidates:?}");
    let report = archive.changed_keys(16, 48, 0.2, &[]).unwrap();
    assert_eq!(report.changes[0].key, 999);
}

#[test]
fn archive_is_generic_over_count_sketch() {
    let config = ArchiveConfig { max_sketches: 8, full_resolution: 2, keys_per_epoch: 8 };
    let proto = CountSketch::new(5, 1024, 3);
    let mut archive = SketchArchive::new(config).unwrap();
    for t in 0..64u64 {
        let mut s = proto.zero_like();
        for (key, v) in interval_updates(t) {
            s.update(key, v);
        }
        if t == 20 {
            s.update(4242, 100_000.0);
        }
        archive.push(s, &[(4242, if t == 20 { 100_000.0 } else { 0.0 })]).unwrap();
    }
    assert!(archive.sketch_count() <= 8);
    let report = archive.changed_keys(16, 32, 0.2, &[]).unwrap();
    assert_eq!(report.changes[0].key, 4242);
}

#[test]
fn queries_reject_bad_windows_with_typed_errors() {
    let config = ArchiveConfig { max_sketches: 8, full_resolution: 2, keys_per_epoch: 4 };
    let archive = build_archive(config, 32, |_| None);
    assert!(matches!(
        archive.changed_keys(10, 10, 0.05, &[]),
        Err(ArchiveError::EmptyRange { .. })
    ));
    assert!(matches!(
        archive.key_history(1, 40, 50),
        Err(ArchiveError::OutOfRange { coverage: Some((0, 32)), .. })
    ));
}
