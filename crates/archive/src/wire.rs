//! On-disk format for k-ary sketch archives.
//!
//! Same durability posture as `scd-core`'s checkpoints: one
//! self-describing blob, CRC-32 footer over every preceding byte, atomic
//! tmp-file + rename + parent-directory fsync on write. An archive file
//! and a PR-1 detector checkpoint side by side capture a node's full
//! state: the checkpoint resumes the live pipeline, the archive resumes
//! history.
//!
//! Layout (little-endian):
//!
//! ```text
//! "SCDARCH1"                       magic, 8 bytes
//! max_sketches: u32, full_resolution: u32, keys_per_epoch: u32
//! next_interval: u64
//! n_epochs: u32
//! per epoch:
//!   start: u64, len: u64
//!   n_notable: u32, then (key: u64, weight: f64) pairs
//!   sketch blob: u64 length + scd-sketch wire bytes (self-checksummed)
//! crc32: u32                       over every preceding byte
//! ```
//!
//! Decoding trusts nothing: CRC first, then per-field validation, then
//! [`SketchArchive`] re-validates the structural invariants (contiguous
//! epochs, one hash family) before any query can run. Hash tables are
//! derived once from the first epoch's header and shared across the
//! remaining blobs.

use crate::archive::{ArchiveConfig, ArchiveError, Epoch, SketchArchive};
use scd_hash::byteio::{self, Cursor};
use scd_hash::crc32;
use scd_sketch::{wire as sketch_wire, KarySketch};
use std::path::Path;
use std::sync::Arc;

/// File magic for archive version 1.
pub const MAGIC: &[u8; 8] = b"SCDARCH1";

/// Errors from reading or writing archive files.
#[derive(Debug)]
pub enum ArchiveWireError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file ends before its structure does.
    Truncated,
    /// The CRC-32 footer does not match the payload.
    BadChecksum {
        /// Checksum computed over the payload as read.
        computed: u32,
        /// Checksum stored in the footer.
        stored: u32,
    },
    /// A structurally invalid field.
    Malformed(String),
    /// An embedded sketch blob failed to decode.
    Sketch(sketch_wire::WireError),
    /// The decoded structure was rejected by the archive's invariants.
    Archive(ArchiveError),
}

impl std::fmt::Display for ArchiveWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveWireError::Io(e) => write!(f, "archive i/o: {e}"),
            ArchiveWireError::BadMagic => write!(f, "not an archive file (bad magic)"),
            ArchiveWireError::Truncated => write!(f, "archive file truncated"),
            ArchiveWireError::BadChecksum { computed, stored } => {
                write!(f, "archive corrupt: crc32 {computed:#010x} != stored {stored:#010x}")
            }
            ArchiveWireError::Malformed(what) => write!(f, "malformed archive: {what}"),
            ArchiveWireError::Sketch(e) => write!(f, "embedded sketch: {e}"),
            ArchiveWireError::Archive(e) => write!(f, "archive rejected: {e}"),
        }
    }
}

impl std::error::Error for ArchiveWireError {}

impl From<std::io::Error> for ArchiveWireError {
    fn from(e: std::io::Error) -> Self {
        ArchiveWireError::Io(e)
    }
}

impl From<byteio::ShortInput> for ArchiveWireError {
    fn from(_: byteio::ShortInput) -> Self {
        ArchiveWireError::Truncated
    }
}

impl From<sketch_wire::WireError> for ArchiveWireError {
    fn from(e: sketch_wire::WireError) -> Self {
        ArchiveWireError::Sketch(e)
    }
}

impl From<ArchiveError> for ArchiveWireError {
    fn from(e: ArchiveError) -> Self {
        ArchiveWireError::Archive(e)
    }
}

/// Serializes the archive, CRC-32 footer included.
pub fn to_bytes(archive: &SketchArchive<KarySketch>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    let cfg = archive.config();
    byteio::put_u32(&mut out, cfg.max_sketches as u32);
    byteio::put_u32(&mut out, cfg.full_resolution as u32);
    byteio::put_u32(&mut out, cfg.keys_per_epoch as u32);
    byteio::put_u64(&mut out, archive.next_interval());
    byteio::put_u32(&mut out, archive.sketch_count() as u32);
    for epoch in archive.epochs() {
        byteio::put_u64(&mut out, epoch.start());
        byteio::put_u64(&mut out, epoch.len());
        byteio::put_u32(&mut out, epoch.notable().len() as u32);
        for &(key, weight) in epoch.notable() {
            byteio::put_u64(&mut out, key);
            byteio::put_f64(&mut out, weight);
        }
        let blob = sketch_wire::to_bytes(epoch.sketch());
        byteio::put_u64(&mut out, blob.len() as u64);
        out.extend_from_slice(&blob);
    }
    let crc = crc32(&out);
    byteio::put_u32(&mut out, crc);
    out
}

/// Parses an archive, verifying the CRC before trusting any field and
/// re-validating every archive invariant before returning.
pub fn from_bytes(data: &[u8]) -> Result<SketchArchive<KarySketch>, ArchiveWireError> {
    if data.len() < MAGIC.len() + 4 {
        return Err(ArchiveWireError::Truncated);
    }
    if &data[..MAGIC.len()] != MAGIC {
        return Err(ArchiveWireError::BadMagic);
    }
    let (payload, footer) = data.split_at(data.len() - 4);
    let stored = u32::from_le_bytes(footer.try_into().expect("4-byte footer"));
    let computed = crc32(payload);
    if computed != stored {
        return Err(ArchiveWireError::BadChecksum { computed, stored });
    }
    let mut cur = Cursor::new(&payload[MAGIC.len()..]);
    let config = ArchiveConfig {
        max_sketches: cur.u32()? as usize,
        full_resolution: cur.u32()? as usize,
        keys_per_epoch: cur.u32()? as usize,
    };
    let next_interval = cur.u64()?;
    let n_epochs = cur.u32()? as usize;
    if n_epochs > config.max_sketches {
        return Err(ArchiveWireError::Malformed(format!(
            "{n_epochs} epochs exceed the declared budget of {}",
            config.max_sketches
        )));
    }
    // `max_sketches` is itself a file-supplied field, so bound the count
    // against the bytes actually present before sizing any allocation: an
    // epoch cannot be smaller than start + len + n_notable + blob_len.
    const MIN_EPOCH_BYTES: usize = 8 + 8 + 4 + 8;
    if n_epochs > cur.remaining() / MIN_EPOCH_BYTES {
        return Err(ArchiveWireError::Malformed(format!(
            "{n_epochs} epochs cannot fit in {} remaining bytes",
            cur.remaining()
        )));
    }
    let mut rows = None;
    let mut epochs = Vec::with_capacity(n_epochs);
    for _ in 0..n_epochs {
        let start = cur.u64()?;
        let len = cur.u64()?;
        let n_notable = cur.u32()? as usize;
        if n_notable > config.keys_per_epoch {
            return Err(ArchiveWireError::Malformed(format!(
                "{n_notable} directory keys exceed keys_per_epoch {}",
                config.keys_per_epoch
            )));
        }
        // Same defense as the epoch count: `keys_per_epoch` came off the
        // wire too, so cap the allocation by the 16 bytes each entry needs.
        if n_notable > cur.remaining() / 16 {
            return Err(ArchiveWireError::Malformed(format!(
                "{n_notable} directory keys cannot fit in {} remaining bytes",
                cur.remaining()
            )));
        }
        let mut notable = Vec::with_capacity(n_notable);
        for _ in 0..n_notable {
            let key = cur.u64()?;
            let weight = cur.f64()?;
            if !weight.is_finite() || weight < 0.0 {
                return Err(ArchiveWireError::Malformed(format!(
                    "directory weight {weight} for key {key} is not a finite nonnegative number"
                )));
            }
            notable.push((key, weight));
        }
        let blob_len = cur.u64()? as usize;
        let blob = cur.take(blob_len)?;
        // First epoch derives the hash family; the rest must share it
        // (enforced by `from_bytes_with_rows`, then re-checked by
        // `from_parts`).
        let sketch = match &rows {
            None => {
                let s = sketch_wire::from_bytes(blob)?;
                rows = Some(Arc::clone(s.rows()));
                s
            }
            Some(rows) => sketch_wire::from_bytes_with_rows(blob, rows)?,
        };
        epochs.push(Epoch { start, len, sketch, notable });
    }
    if cur.remaining() != 0 {
        return Err(ArchiveWireError::Malformed(format!("{} trailing bytes", cur.remaining())));
    }
    Ok(SketchArchive::from_parts(config, next_interval, epochs)?)
}

/// Writes the archive atomically: serialize to `<path>.tmp`, fsync,
/// rename over `path`, fsync the parent directory — a crash leaves
/// either the old file or the new one, never a torn hybrid.
pub fn write_atomic(
    archive: &SketchArchive<KarySketch>,
    path: &Path,
) -> Result<(), ArchiveWireError> {
    let bytes = to_bytes(archive);
    let file_name = path.file_name().ok_or_else(|| {
        ArchiveWireError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("archive path has no file name: {}", path.display()),
        ))
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    std::fs::File::open(parent)?.sync_all()?;
    Ok(())
}

/// Reads and verifies an archive from disk.
pub fn load(path: &Path) -> Result<SketchArchive<KarySketch>, ArchiveWireError> {
    let bytes = std::fs::read(path)?;
    from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_sketch::SketchConfig;

    fn sample() -> SketchArchive<KarySketch> {
        let cfg = ArchiveConfig { max_sketches: 8, full_resolution: 2, keys_per_epoch: 4 };
        let mut archive = SketchArchive::new(cfg).unwrap();
        let proto = KarySketch::new(SketchConfig { h: 3, k: 256, seed: 21 });
        for t in 0..40u64 {
            let mut s = proto.zero_like();
            s.update(t % 10, (t + 1) as f64);
            archive.push(s, &[(t % 10, (t + 1) as f64)]).unwrap();
        }
        archive
    }

    #[test]
    fn round_trip_preserves_structure_and_answers() {
        let original = sample();
        let back = from_bytes(&to_bytes(&original)).expect("decode");
        assert_eq!(back.config(), original.config());
        assert_eq!(back.next_interval(), original.next_interval());
        assert_eq!(back.sketch_count(), original.sketch_count());
        for (a, b) in original.epochs().zip(back.epochs()) {
            assert_eq!(a.start(), b.start());
            assert_eq!(a.len(), b.len());
            assert_eq!(a.notable(), b.notable());
            assert_eq!(a.sketch().table(), b.sketch().table());
        }
        // Queries agree bit for bit.
        let qa = original.changed_keys(8, 24, 0.05, &[]).unwrap();
        let qb = back.changed_keys(8, 24, 0.05, &[]).unwrap();
        assert_eq!(qa, qb);
    }

    #[test]
    fn empty_archive_round_trips() {
        let cfg = ArchiveConfig { max_sketches: 8, full_resolution: 2, keys_per_epoch: 4 };
        let empty = SketchArchive::<KarySketch>::new(cfg).unwrap();
        let back = from_bytes(&to_bytes(&empty)).expect("decode");
        assert_eq!(back.sketch_count(), 0);
        assert_eq!(back.coverage(), None);
    }

    #[test]
    fn any_single_byte_flip_is_detected() {
        let bytes = to_bytes(&sample());
        let step = (bytes.len() / 97).max(1);
        for pos in (0..bytes.len()).step_by(step) {
            for bit in [0x01u8, 0x80] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= bit;
                assert!(
                    from_bytes(&corrupt).is_err(),
                    "flip at byte {pos} (mask {bit:#04x}) went undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = to_bytes(&sample());
        let step = (bytes.len() / 61).max(1);
        for len in (0..bytes.len()).step_by(step) {
            assert!(from_bytes(&bytes[..len]).is_err(), "truncation to {len} went undetected");
        }
    }

    #[test]
    fn corruption_injection_round_trip() {
        // Same corruption model the network fault plans use: each seeded
        // single-bit flip must be rejected with a typed error, and the
        // pristine bytes must still decode afterwards.
        let original = sample();
        let clean = to_bytes(&original);
        for seed in 0..200u64 {
            let mut corruptor = scd_traffic::Corruptor::new(seed);
            let mut bad = clean.clone();
            let (pos, mask) = corruptor.flip_one_byte(&mut bad);
            assert!(
                from_bytes(&bad).is_err(),
                "seed {seed}: flip at byte {pos} (mask {mask:#04x}) decoded successfully"
            );
        }
        let back = from_bytes(&clean).expect("pristine bytes still decode");
        assert_eq!(back.sketch_count(), original.sketch_count());
    }

    /// A syntactically framed archive (magic + valid CRC footer) whose
    /// header fields are attacker-chosen.
    fn framed(fields: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(fields);
        let crc = crc32(&buf);
        byteio::put_u32(&mut buf, crc);
        buf
    }

    #[test]
    fn hostile_epoch_count_is_bounded_by_remaining_bytes() {
        // The file declares a huge budget AND a huge epoch count: both
        // self-consistent, so only the remaining-bytes bound stands
        // between the decoder and a multi-gigabyte allocation.
        let mut fields = Vec::new();
        byteio::put_u32(&mut fields, u32::MAX); // max_sketches
        byteio::put_u32(&mut fields, 1); // full_resolution
        byteio::put_u32(&mut fields, 4); // keys_per_epoch
        byteio::put_u64(&mut fields, 0); // next_interval
        byteio::put_u32(&mut fields, u32::MAX); // n_epochs, but no epoch bytes
        assert!(matches!(
            from_bytes(&framed(&fields)),
            Err(ArchiveWireError::Malformed(msg)) if msg.contains("cannot fit")
        ));
    }

    #[test]
    fn hostile_notable_count_is_bounded_by_remaining_bytes() {
        // One plausible epoch whose directory claims u32::MAX entries
        // against a file-declared budget that happily allows it.
        let mut fields = Vec::new();
        byteio::put_u32(&mut fields, 1); // max_sketches
        byteio::put_u32(&mut fields, 1); // full_resolution
        byteio::put_u32(&mut fields, u32::MAX); // keys_per_epoch
        byteio::put_u64(&mut fields, 0); // next_interval
        byteio::put_u32(&mut fields, 1); // n_epochs
        byteio::put_u64(&mut fields, 0); // epoch start
        byteio::put_u64(&mut fields, 1); // epoch len
        byteio::put_u32(&mut fields, u32::MAX); // n_notable, no entries
        byteio::put_u64(&mut fields, 0); // blob_len (padding past the epoch floor)
        assert!(matches!(
            from_bytes(&framed(&fields)),
            Err(ArchiveWireError::Malformed(msg)) if msg.contains("directory keys cannot fit")
        ));
    }

    #[test]
    fn wrong_magic_is_typed() {
        let mut bytes = to_bytes(&sample());
        bytes[..8].copy_from_slice(b"SCDCKPT1");
        assert!(matches!(from_bytes(&bytes), Err(ArchiveWireError::BadMagic)));
    }

    #[test]
    fn atomic_write_and_load() {
        let dir = std::env::temp_dir().join("scd-archive-wire-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("node.arch");
        let archive = sample();
        write_atomic(&archive, &path).expect("write");
        // Overwrite must replace atomically.
        write_atomic(&archive, &path).expect("overwrite");
        let back = load(&path).expect("load");
        assert_eq!(back.sketch_count(), archive.sketch_count());
        std::fs::remove_file(&path).ok();
    }
}
