//! Multi-resolution sketch archive with historical change queries.
//!
//! The paper's detector answers "what changed *now*?" and then discards
//! the interval it just explained. This crate keeps those intervals
//! around: every per-interval sketch the engine produces is [`push`]ed
//! into a [`SketchArchive`], which retains history under a **fixed
//! sketch-count budget** by decaying resolution with age — the item
//! aggregation of Matusevych, Smola & Ahmed's *Hokusai* (UAI 2012)
//! adapted to the paper's linear sketches.
//!
//! The mechanism is the sketches' linearity (paper §3.1): COMBINE of two
//! adjacent intervals' sketches *is* the sketch of their union, exactly,
//! so halving resolution is a per-cell addition and never re-reads the
//! stream. The archive keeps the most recent `full_resolution` intervals
//! at width 1 and, whenever the budget is exceeded, merges the oldest
//! adjacent *buddy* pair (equal widths `w` at a `2w`-aligned start) —
//! the classic binary-counter layout: after `T` pushes the tail holds
//! epochs of width 1, 2, 4, 8, …, so `O(log T)` sketches cover the whole
//! history and any query window is answered from `O(log T)` COMBINEs.
//!
//! Queries:
//!
//! * [`SketchArchive::range_sketch`] — the (exact, by linearity) sketch
//!   of any past window `[from, to)`, snapped to epoch boundaries.
//! * [`SketchArchive::changed_keys`] — top changed keys over a past
//!   window, using the same `TA = T·√F2` alarm rule as the live
//!   detector. Candidate keys come from the archive's per-epoch *key
//!   directory*: each epoch remembers its most salient keys (bounded by
//!   [`ArchiveConfig::keys_per_epoch`]), merged as epochs merge.
//! * [`SketchArchive::key_history`] — a key's accumulated value per
//!   epoch across a window: forecast-error history at the archive's
//!   decayed resolution.
//!
//! The archive is generic over any [`LinearSketch`](scd_sketch::LinearSketch) (k-ary, count,
//! count-min, deltoid); change queries additionally need
//! [`SecondMoment`](scd_sketch::SecondMoment) for the threshold. The
//! [`wire`] module gives k-ary archives a checksummed on-disk format
//! with atomic writes, mirroring `scd-core`'s checkpoints.
//!
//! [`push`]: SketchArchive::push
//!
//! # Example
//!
//! ```
//! use scd_archive::{ArchiveConfig, SketchArchive};
//! use scd_sketch::{KarySketch, SketchConfig};
//!
//! let cfg = ArchiveConfig { max_sketches: 8, full_resolution: 2, keys_per_epoch: 16 };
//! let mut archive = SketchArchive::new(cfg).unwrap();
//! let proto = KarySketch::new(SketchConfig { h: 3, k: 256, seed: 1 });
//! for t in 0..32u64 {
//!     let mut s = proto.zero_like();
//!     s.update(7, 100.0);
//!     if t == 20 {
//!         s.update(99, 5_000.0); // the change we'll query for later
//!     }
//!     archive.push(s, &[(7, 100.0), (99, if t == 20 { 5_000.0 } else { 0.0 })]).unwrap();
//! }
//! assert!(archive.sketch_count() <= 8);
//! let report = archive.changed_keys(16, 24, 0.05, &[]).unwrap();
//! assert_eq!(report.changes[0].key, 99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod wire;

pub use archive::{
    ArchiveConfig, ArchiveError, ChangeQueryReport, Epoch, HistoryPoint, KeyChange, RangeSketch,
    SketchArchive,
};
pub use wire::ArchiveWireError;
