//! The archive proper: dyadic epochs, budget-driven compaction, queries.

use scd_sketch::{LinearSketch, SecondMoment, SketchError};
use std::collections::{BTreeMap, VecDeque};

/// Retention policy for a [`SketchArchive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveConfig {
    /// Hard budget on retained sketches. Memory is `max_sketches` times
    /// one sketch (plus the key directory), forever, regardless of how
    /// many intervals have been pushed.
    pub max_sketches: usize,
    /// The most recent `full_resolution` intervals are never merged: the
    /// detector's recent past stays queryable at native resolution.
    pub full_resolution: usize,
    /// Per-epoch cap on remembered salient keys (the candidate set for
    /// [`SketchArchive::changed_keys`]). `0` disables the directory;
    /// queries then need explicit candidates.
    pub keys_per_epoch: usize,
}

impl ArchiveConfig {
    /// Checks the arithmetic that compaction relies on.
    ///
    /// `max_sketches ≥ full_resolution + 2` guarantees that whenever the
    /// budget is exceeded, at least two *unprotected* adjacent epochs
    /// exist (the protected suffix spans `full_resolution` intervals and
    /// epochs are disjoint, so it holds at most `full_resolution`
    /// epochs), hence compaction always makes progress.
    ///
    /// # Errors
    /// [`ArchiveError::BadConfig`] when the inequality fails or
    /// `full_resolution` is zero.
    pub fn validate(&self) -> Result<(), ArchiveError> {
        if self.full_resolution == 0 {
            return Err(ArchiveError::BadConfig("full_resolution must be at least 1".into()));
        }
        if self.max_sketches < self.full_resolution + 2 {
            return Err(ArchiveError::BadConfig(format!(
                "max_sketches ({}) must be at least full_resolution + 2 ({})",
                self.max_sketches,
                self.full_resolution + 2
            )));
        }
        Ok(())
    }
}

/// Errors from archive operations.
#[derive(Debug)]
pub enum ArchiveError {
    /// The configuration cannot sustain compaction.
    BadConfig(String),
    /// A query window with `to ≤ from`.
    EmptyRange {
        /// Requested start (inclusive).
        from: u64,
        /// Requested end (exclusive).
        to: u64,
    },
    /// The query window does not intersect any retained epoch.
    OutOfRange {
        /// Requested start (inclusive).
        from: u64,
        /// Requested end (exclusive).
        to: u64,
        /// What the archive currently covers, if anything.
        coverage: Option<(u64, u64)>,
    },
    /// A sketch-level failure (incompatible hash families).
    Sketch(SketchError),
}

impl std::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveError::BadConfig(why) => write!(f, "invalid archive config: {why}"),
            ArchiveError::EmptyRange { from, to } => {
                write!(f, "empty query window [{from}, {to})")
            }
            ArchiveError::OutOfRange { from, to, coverage: Some((lo, hi)) } => {
                write!(f, "window [{from}, {to}) outside archived range [{lo}, {hi})")
            }
            ArchiveError::OutOfRange { from, to, coverage: None } => {
                write!(f, "window [{from}, {to}) queried against an empty archive")
            }
            ArchiveError::Sketch(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

impl From<SketchError> for ArchiveError {
    fn from(e: SketchError) -> Self {
        ArchiveError::Sketch(e)
    }
}

/// One retained span of history: the COMBINE of `len` consecutive
/// interval sketches starting at interval `start`.
#[derive(Debug, Clone)]
pub struct Epoch<L> {
    pub(crate) start: u64,
    pub(crate) len: u64,
    pub(crate) sketch: L,
    /// Directory of this epoch's most salient keys, `(key, weight)` with
    /// nonnegative weights, sorted by weight descending then key
    /// ascending, at most `keys_per_epoch` entries.
    pub(crate) notable: Vec<(u64, f64)>,
}

impl<L> Epoch<L> {
    /// First interval covered (inclusive).
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Number of consecutive intervals summarized.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Always false: an epoch covers at least one interval.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// One past the last covered interval.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// The summed sketch for the covered span.
    pub fn sketch(&self) -> &L {
        &self.sketch
    }

    /// The epoch's key directory (weight-ranked).
    pub fn notable(&self) -> &[(u64, f64)] {
        &self.notable
    }
}

/// Sums `|weight|` per key, ranks by weight descending (ties: key
/// ascending), and truncates to `cap`. The single ranking rule used both
/// at push time and when epochs merge.
fn rank_notable(entries: impl IntoIterator<Item = (u64, f64)>, cap: usize) -> Vec<(u64, f64)> {
    if cap == 0 {
        return Vec::new();
    }
    let mut by_key: BTreeMap<u64, f64> = BTreeMap::new();
    for (key, weight) in entries {
        *by_key.entry(key).or_insert(0.0) += weight.abs();
    }
    let mut ranked: Vec<(u64, f64)> = by_key.into_iter().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked.truncate(cap);
    ranked
}

/// A fixed-budget, multi-resolution store of per-interval sketches.
///
/// Intervals are pushed in order (`0, 1, 2, …`); the archive keeps them
/// as a deque of contiguous [`Epoch`]s, oldest first, and compacts by
/// COMBINE when the deque outgrows [`ArchiveConfig::max_sketches`].
#[derive(Debug, Clone)]
pub struct SketchArchive<L> {
    config: ArchiveConfig,
    epochs: VecDeque<Epoch<L>>,
    next_interval: u64,
    /// Epoch merges performed since construction (compaction work done —
    /// the telemetry layer reads this once per interval).
    merges: u64,
}

impl<L: LinearSketch> SketchArchive<L> {
    /// Creates an empty archive.
    ///
    /// # Errors
    /// [`ArchiveError::BadConfig`] if `config` cannot sustain compaction.
    pub fn new(config: ArchiveConfig) -> Result<Self, ArchiveError> {
        config.validate()?;
        Ok(SketchArchive { config, epochs: VecDeque::new(), next_interval: 0, merges: 0 })
    }

    /// Rebuilds an archive from decoded parts, re-validating every
    /// structural invariant (used by the wire format; corrupt inputs
    /// must not produce an archive that later panics).
    pub(crate) fn from_parts(
        config: ArchiveConfig,
        next_interval: u64,
        epochs: Vec<Epoch<L>>,
    ) -> Result<Self, ArchiveError> {
        config.validate()?;
        let mut expected_start = None;
        for epoch in &epochs {
            if epoch.len == 0 {
                return Err(ArchiveError::BadConfig("zero-length epoch".into()));
            }
            if let Some(expected) = expected_start {
                if epoch.start != expected {
                    return Err(ArchiveError::BadConfig(format!(
                        "epochs not contiguous: expected start {expected}, found {}",
                        epoch.start
                    )));
                }
            }
            expected_start = Some(epoch.end());
            if let Some(first) = epochs.first() {
                if first.sketch.identity() != epoch.sketch.identity() {
                    return Err(SketchError::IncompatibleSketches {
                        left: first.sketch.identity(),
                        right: epoch.sketch.identity(),
                    }
                    .into());
                }
            }
        }
        if let Some(end) = expected_start {
            if end > next_interval {
                return Err(ArchiveError::BadConfig(format!(
                    "epochs end at {end} but next_interval is {next_interval}"
                )));
            }
        }
        let mut archive = SketchArchive { config, epochs: epochs.into(), next_interval, merges: 0 };
        archive.compact();
        Ok(archive)
    }

    /// The retention policy.
    pub fn config(&self) -> &ArchiveConfig {
        &self.config
    }

    /// The interval index the *next* push will be assigned.
    pub fn next_interval(&self) -> u64 {
        self.next_interval
    }

    /// Number of retained epochs (≤ `max_sketches` after every push).
    pub fn sketch_count(&self) -> usize {
        self.epochs.len()
    }

    /// Total epoch merges performed by compaction since this archive was
    /// constructed (resets to 0 on a wire-format reload — it counts work
    /// done by *this* instance, not the archive's lifetime).
    pub fn merges_total(&self) -> u64 {
        self.merges
    }

    /// `[first, one-past-last)` interval range covered, or `None` while
    /// empty.
    pub fn coverage(&self) -> Option<(u64, u64)> {
        match (self.epochs.front(), self.epochs.back()) {
            (Some(first), Some(last)) => Some((first.start, last.end())),
            _ => None,
        }
    }

    /// Retained epochs, oldest first.
    pub fn epochs(&self) -> impl Iterator<Item = &Epoch<L>> {
        self.epochs.iter()
    }

    /// Heap bytes held: every epoch's sketch table plus the key
    /// directory. Bounded by `max_sketches · sketch_size + max_sketches ·
    /// keys_per_epoch · 16` regardless of stream length.
    pub fn memory_bytes(&self) -> usize {
        self.epochs
            .iter()
            .map(|e| e.sketch.memory_bytes() + e.notable.len() * std::mem::size_of::<(u64, f64)>())
            .sum()
    }

    /// Appends the sketch for the next interval, with an optional list of
    /// that interval's salient keys and weights (typically the detector's
    /// per-key |forecast error|; weights are folded in as absolute
    /// values). Returns the interval index assigned, then compacts if
    /// over budget.
    ///
    /// # Errors
    /// [`ArchiveError::Sketch`] if `sketch` belongs to a different hash
    /// family than the epochs already archived.
    pub fn push(&mut self, sketch: L, notable: &[(u64, f64)]) -> Result<u64, ArchiveError> {
        if let Some(back) = self.epochs.back() {
            if back.sketch.identity() != sketch.identity() {
                return Err(SketchError::IncompatibleSketches {
                    left: back.sketch.identity(),
                    right: sketch.identity(),
                }
                .into());
            }
        }
        let t = self.next_interval;
        let notable = rank_notable(notable.iter().copied(), self.config.keys_per_epoch);
        self.epochs.push_back(Epoch { start: t, len: 1, sketch, notable });
        self.next_interval = t + 1;
        self.compact();
        Ok(t)
    }

    fn compact(&mut self) {
        while self.epochs.len() > self.config.max_sketches {
            if !self.merge_once() {
                // Unreachable under a validated config (see
                // `ArchiveConfig::validate`); kept as a safety valve so a
                // pathological state degrades to over-budget rather than
                // looping forever.
                break;
            }
        }
    }

    /// Merges one adjacent pair of unprotected epochs, preferring the
    /// oldest *buddy* pair — equal widths `w` with the left epoch
    /// starting at a multiple of `2w`, the binary-counter rule that
    /// yields power-of-two epoch widths — and falling back to the oldest
    /// adjacent pair when no buddies exist (e.g. after loading an
    /// archive whose alignment was disturbed).
    fn merge_once(&mut self) -> bool {
        let protected_from = self.next_interval.saturating_sub(self.config.full_resolution as u64);
        let mut unprotected = 0;
        while unprotected < self.epochs.len() && self.epochs[unprotected].end() <= protected_from {
            unprotected += 1;
        }
        if unprotected < 2 {
            return false;
        }
        let mut pick = 0;
        for i in 0..unprotected - 1 {
            let (left, right) = (&self.epochs[i], &self.epochs[i + 1]);
            if left.len == right.len && left.start % (2 * left.len) == 0 {
                pick = i;
                break;
            }
        }
        let right = self.epochs.remove(pick + 1).expect("pick+1 < unprotected ≤ len");
        let left = &mut self.epochs[pick];
        left.sketch.add_scaled(&right.sketch, 1.0).expect("identities checked at push");
        left.len += right.len;
        left.notable = rank_notable(
            left.notable.iter().chain(right.notable.iter()).copied(),
            self.config.keys_per_epoch,
        );
        self.merges += 1;
        true
    }

    /// Indices `[lo, hi)` of the epochs overlapping `[from, to)`.
    fn select(&self, from: u64, to: u64) -> Result<(usize, usize), ArchiveError> {
        if to <= from {
            return Err(ArchiveError::EmptyRange { from, to });
        }
        let lo = self.epochs.iter().position(|e| e.end() > from);
        let lo = match lo {
            Some(i) if self.epochs[i].start < to => i,
            _ => return Err(ArchiveError::OutOfRange { from, to, coverage: self.coverage() }),
        };
        let mut hi = lo + 1;
        while hi < self.epochs.len() && self.epochs[hi].start < to {
            hi += 1;
        }
        Ok((lo, hi))
    }

    /// COMBINEs every epoch overlapping `[from, to)` into one sketch —
    /// exactly the sketch that direct ingest of the covered span would
    /// have produced, by linearity. The covered span is *snapped
    /// outward* to epoch boundaries; `covered` reports what was actually
    /// summed, which can be wider than requested once resolution has
    /// decayed.
    ///
    /// # Errors
    /// [`ArchiveError::EmptyRange`] / [`ArchiveError::OutOfRange`] on a
    /// degenerate or non-intersecting window.
    pub fn range_sketch(&self, from: u64, to: u64) -> Result<RangeSketch<L>, ArchiveError> {
        let (lo, hi) = self.select(from, to)?;
        let terms: Vec<(f64, &L)> = self.epochs.range(lo..hi).map(|e| (1.0, &e.sketch)).collect();
        let sketch = L::combine(&terms)?;
        Ok(RangeSketch {
            sketch,
            covered: (self.epochs[lo].start, self.epochs[hi - 1].end()),
            epochs_used: hi - lo,
        })
    }

    /// The directory's candidate keys for `[from, to)`: the union of the
    /// overlapping epochs' notable keys, weight-ranked. (Unbounded by
    /// `keys_per_epoch` only in the trivial sense of spanning several
    /// epochs; at most `epochs_used · keys_per_epoch` keys.)
    ///
    /// # Errors
    /// As [`range_sketch`](Self::range_sketch).
    pub fn candidate_keys(&self, from: u64, to: u64) -> Result<Vec<u64>, ArchiveError> {
        let (lo, hi) = self.select(from, to)?;
        let pooled = self.epochs.range(lo..hi).flat_map(|e| e.notable.iter().copied());
        Ok(rank_notable(pooled, usize::MAX).into_iter().map(|(key, _)| key).collect())
    }

    /// A key's accumulated value per retained epoch across `[from, to)`
    /// — the archive-resolution history of (say) a flow's forecast
    /// error. `mean` divides by the epoch width, making points of
    /// different resolutions comparable.
    ///
    /// # Errors
    /// As [`range_sketch`](Self::range_sketch).
    pub fn key_history(
        &self,
        key: u64,
        from: u64,
        to: u64,
    ) -> Result<Vec<HistoryPoint>, ArchiveError> {
        let (lo, hi) = self.select(from, to)?;
        Ok(self
            .epochs
            .range(lo..hi)
            .map(|e| {
                let total = e.sketch.estimate(key);
                HistoryPoint { start: e.start, len: e.len, total, mean: total / e.len as f64 }
            })
            .collect())
    }
}

impl<L: LinearSketch + SecondMoment> SketchArchive<L> {
    /// Top changed keys over a past window, by the live detector's alarm
    /// rule applied to the range sketch: `TA = threshold · √max(F2, 0)`,
    /// keys with `|estimate| ≥ TA` (and nonzero) reported in decreasing
    /// magnitude. Candidates are the window's directory keys plus
    /// `extra_candidates` (sketches cannot enumerate keys, so the scan
    /// set must come from somewhere — same as the paper's §3.2 key
    /// strategies, but offline).
    ///
    /// # Errors
    /// As [`range_sketch`](Self::range_sketch).
    pub fn changed_keys(
        &self,
        from: u64,
        to: u64,
        threshold: f64,
        extra_candidates: &[u64],
    ) -> Result<ChangeQueryReport, ArchiveError> {
        let range = self.range_sketch(from, to)?;
        let f2 = range.sketch.estimate_f2();
        let alarm_threshold = threshold * f2.max(0.0).sqrt();
        let mut candidates = self.candidate_keys(from, to)?;
        candidates.extend_from_slice(extra_candidates);
        let mut seen = std::collections::HashSet::new();
        let mut changes: Vec<KeyChange> = candidates
            .into_iter()
            .filter(|k| seen.insert(*k))
            .map(|key| KeyChange { key, magnitude: range.sketch.estimate(key) })
            .filter(|c| c.magnitude.abs() >= alarm_threshold && c.magnitude.abs() > 0.0)
            .collect();
        changes.sort_by(|a, b| {
            b.magnitude.abs().total_cmp(&a.magnitude.abs()).then_with(|| a.key.cmp(&b.key))
        });
        Ok(ChangeQueryReport {
            requested: (from, to),
            covered: range.covered,
            epochs_used: range.epochs_used,
            error_f2: f2,
            alarm_threshold,
            changes,
        })
    }
}

/// Result of [`SketchArchive::range_sketch`].
#[derive(Debug, Clone)]
pub struct RangeSketch<L> {
    /// COMBINE of every overlapping epoch.
    pub sketch: L,
    /// `[start, end)` actually covered after snapping to epoch bounds.
    pub covered: (u64, u64),
    /// How many retained epochs were summed.
    pub epochs_used: usize,
}

/// One epoch's contribution to a key's history.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryPoint {
    /// First interval of the epoch.
    pub start: u64,
    /// Epoch width in intervals.
    pub len: u64,
    /// Estimated value accumulated for the key across the epoch.
    pub total: f64,
    /// `total / len`: per-interval rate, comparable across resolutions.
    pub mean: f64,
}

/// One key surfaced by [`SketchArchive::changed_keys`].
#[derive(Debug, Clone, PartialEq)]
pub struct KeyChange {
    /// The key.
    pub key: u64,
    /// Its estimated accumulated value over the covered window.
    pub magnitude: f64,
}

/// Result of [`SketchArchive::changed_keys`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeQueryReport {
    /// The window as asked.
    pub requested: (u64, u64),
    /// The window as answered (snapped outward to epoch bounds).
    pub covered: (u64, u64),
    /// Epochs summed to answer.
    pub epochs_used: usize,
    /// `ESTIMATEF2` of the range sketch.
    pub error_f2: f64,
    /// `threshold · √max(F2, 0)` — the alarm bar applied.
    pub alarm_threshold: f64,
    /// Keys whose `|estimate| ≥` the bar, decreasing magnitude.
    pub changes: Vec<KeyChange>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use scd_sketch::{KarySketch, SketchConfig};

    fn cfg(max: usize, full: usize) -> ArchiveConfig {
        ArchiveConfig { max_sketches: max, full_resolution: full, keys_per_epoch: 8 }
    }

    fn proto() -> KarySketch {
        KarySketch::new(SketchConfig { h: 3, k: 256, seed: 5 })
    }

    fn push_n(archive: &mut SketchArchive<KarySketch>, n: u64) {
        let proto = proto();
        for t in 0..n {
            let mut s = proto.zero_like();
            s.update(t % 16, 1.0);
            archive.push(s, &[(t % 16, 1.0)]).unwrap();
        }
    }

    #[test]
    fn config_validation() {
        assert!(cfg(10, 4).validate().is_ok());
        assert!(cfg(5, 4).validate().is_err());
        assert!(ArchiveConfig { max_sketches: 8, full_resolution: 0, keys_per_epoch: 1 }
            .validate()
            .is_err());
        assert!(SketchArchive::<KarySketch>::new(cfg(3, 4)).is_err());
    }

    #[test]
    fn budget_and_coverage_invariants_hold_at_every_length() {
        let mut archive = SketchArchive::new(cfg(12, 4)).unwrap();
        let proto = proto();
        for t in 0..300u64 {
            let mut s = proto.zero_like();
            s.update(t, 1.0);
            archive.push(s, &[]).unwrap();
            assert!(archive.sketch_count() <= 12, "t={t}: {} epochs", archive.sketch_count());
            assert_eq!(archive.coverage(), Some((0, t + 1)), "t={t}: coverage gap");
            // Contiguity, oldest first.
            let mut expect = 0;
            for e in archive.epochs() {
                assert_eq!(e.start(), expect, "t={t}");
                expect = e.end();
            }
            // The protected window stays at width 1.
            let protected_from = (t + 1).saturating_sub(4);
            for e in archive.epochs().filter(|e| e.start() >= protected_from) {
                assert_eq!(e.len(), 1, "t={t}: protected epoch at {} was merged", e.start());
            }
        }
    }

    #[test]
    fn ample_budget_produces_power_of_two_epochs() {
        // 16 sketches comfortably hold 500 intervals in binary-counter
        // form, so only aligned buddy merges ever fire and every epoch
        // stays a power of two at an aligned start.
        let mut archive = SketchArchive::new(cfg(16, 3)).unwrap();
        push_n(&mut archive, 500);
        for e in archive.epochs() {
            assert!(e.len().is_power_of_two(), "epoch at {} has width {}", e.start(), e.len());
            assert_eq!(e.start() % e.len(), 0, "epoch at {} misaligned", e.start());
        }
        assert!(archive.sketch_count() <= 16);
        assert_eq!(archive.coverage(), Some((0, 500)));
    }

    #[test]
    fn tight_budget_falls_back_but_never_loses_coverage() {
        // 10 sketches cannot hold 500 intervals in pure dyadic form; the
        // oldest epochs absorb fallback merges. Coverage and budget must
        // still hold, and the decay must be monotone: older epochs are
        // never finer than the newest non-protected ones would allow.
        let mut archive = SketchArchive::new(cfg(10, 3)).unwrap();
        push_n(&mut archive, 500);
        assert!(archive.sketch_count() <= 10);
        assert_eq!(archive.coverage(), Some((0, 500)));
        // All the non-power-of-two widths (if any) sit at the old end.
        let widths: Vec<u64> = archive.epochs().map(|e| e.len()).collect();
        let first_pow2_suffix = widths
            .iter()
            .position(|w| w.is_power_of_two())
            .expect("the protected width-1 epochs are powers of two");
        assert!(
            widths[first_pow2_suffix..].iter().all(|w| w.is_power_of_two()),
            "irregular widths not confined to the old end: {widths:?}"
        );
    }

    #[test]
    fn directory_stays_bounded_and_ranked() {
        let mut archive = SketchArchive::new(ArchiveConfig {
            max_sketches: 6,
            full_resolution: 2,
            keys_per_epoch: 3,
        })
        .unwrap();
        let proto = proto();
        for t in 0..64u64 {
            let mut s = proto.zero_like();
            s.update(t % 8, 1.0);
            let notable: Vec<(u64, f64)> = (0..8u64).map(|k| (k, (k + 1) as f64)).collect();
            archive.push(s, &notable).unwrap();
        }
        for e in archive.epochs() {
            assert!(e.notable().len() <= 3);
            // Highest-weight keys survive the merges: weights accumulate,
            // so keys 7, 6, 5 dominate everywhere.
            let keys: Vec<u64> = e.notable().iter().map(|&(k, _)| k).collect();
            assert_eq!(keys, vec![7, 6, 5], "epoch at {}", e.start());
        }
    }

    #[test]
    fn push_rejects_foreign_family() {
        let mut archive = SketchArchive::new(cfg(8, 2)).unwrap();
        archive.push(proto(), &[]).unwrap();
        let foreign = KarySketch::new(SketchConfig { h: 3, k: 256, seed: 6 });
        assert!(matches!(archive.push(foreign, &[]), Err(ArchiveError::Sketch(_))));
    }

    #[test]
    fn select_edge_cases() {
        let mut archive = SketchArchive::new(cfg(8, 2)).unwrap();
        push_n(&mut archive, 10);
        assert!(matches!(
            archive.range_sketch(5, 5),
            Err(ArchiveError::EmptyRange { from: 5, to: 5 })
        ));
        assert!(matches!(archive.range_sketch(7, 3), Err(ArchiveError::EmptyRange { .. })));
        assert!(matches!(
            archive.range_sketch(10, 20),
            Err(ArchiveError::OutOfRange { coverage: Some((0, 10)), .. })
        ));
        let empty = SketchArchive::<KarySketch>::new(cfg(8, 2)).unwrap();
        assert!(matches!(
            empty.range_sketch(0, 1),
            Err(ArchiveError::OutOfRange { coverage: None, .. })
        ));
        // Partial overlap snaps outward.
        let r = archive.range_sketch(9, 20).unwrap();
        assert_eq!(r.covered.1, 10);
    }

    #[test]
    fn memory_is_bounded_by_budget() {
        let mut archive = SketchArchive::new(cfg(8, 2)).unwrap();
        push_n(&mut archive, 200);
        let per_sketch = proto().memory_bytes();
        let bound = 8 * (per_sketch + 8 * 16);
        assert!(archive.memory_bytes() <= bound, "{} > {bound}", archive.memory_bytes());
    }
}
