//! Statistical tests of 4-wise independence for both hash constructions.
//!
//! These are distributional checks over many seeds, complementing the
//! in-module determinism/uniformity unit tests: pairwise independence
//! (chi-square over bucket pairs), 4-key joint-bit unbiasedness, and
//! avalanche behaviour.

use scd_hash::{Hasher4, Poly4, Tab4};

/// Chi-square test that pairs of bucketed values for two fixed distinct
/// keys are uniform over the 2-D grid — a consequence of (even just)
/// pairwise independence, which 4-universality implies.
fn pairwise_chi_square(hash: impl Fn(u64, u64) -> (usize, usize), cells: usize) {
    let trials = 4000u64;
    let mut counts = vec![0u32; cells * cells];
    for seed in 0..trials {
        let (a, b) = hash(seed, 0xDEAD_BEEF);
        counts[a * cells + b] += 1;
    }
    let expect = trials as f64 / (cells * cells) as f64;
    let chi2: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expect;
            d * d / expect
        })
        .sum();
    // dof = cells² − 1 = 63 at cells = 8; mean 63, sd ~11.2. Accept < 63 +
    // 5 sd ≈ 120 (false-failure probability ≪ 1e-6).
    let dof = (cells * cells - 1) as f64;
    let limit = dof + 5.0 * (2.0 * dof).sqrt();
    assert!(chi2 < limit, "chi2 = {chi2:.1}, limit {limit:.1}");
}

#[test]
fn tabulation_pairs_uniform_across_seeds() {
    pairwise_chi_square(
        |seed, key| {
            let t = Tab4::new(seed);
            (t.bucket32(key as u32, 8), t.bucket32(key.wrapping_add(1) as u32, 8))
        },
        8,
    );
}

#[test]
fn polynomial_pairs_uniform_across_seeds() {
    pairwise_chi_square(
        |seed, key| {
            let p = Poly4::new(seed);
            (p.bucket(key, 8), p.bucket(key.wrapping_add(1), 8))
        },
        8,
    );
}

/// 4-wise check: for four distinct keys, the AND of a fixed output bit
/// should hit with probability 1/16 — the statistic that separates 4-wise
/// independent families from merely 3-wise ones.
fn four_key_and_probability(bit_of: impl Fn(u64, u64) -> u64) {
    let keys = [3u64, 1_000_003, 77_777_777, 4_294_967_295];
    let trials = 8000u64;
    let mut hits = 0u64;
    for seed in 0..trials {
        let all_ones = keys.iter().all(|&k| bit_of(seed, k) == 1);
        hits += all_ones as u64;
    }
    let p = hits as f64 / trials as f64;
    // Expect 1/16 = 0.0625, sd = sqrt(p(1-p)/n) ≈ 0.0027; allow 5 sd.
    assert!((p - 0.0625).abs() < 0.014, "P(all four bits set) = {p}, expected 0.0625");
}

#[test]
fn tabulation_four_key_joint_bit() {
    four_key_and_probability(|seed, key| Tab4::new(seed).hash32(key as u32) & 1);
}

#[test]
fn polynomial_four_key_joint_bit() {
    four_key_and_probability(|seed, key| Poly4::new(seed).hash64(key) & 1);
}

/// Output bits should each be close to fair over a key sweep (bit balance)
/// for a single fixed function.
#[test]
fn bit_balance_over_keys() {
    let h = Hasher4::new(1234);
    let n = 50_000u64;
    let mut ones = [0u32; 32];
    for key in 0..n {
        let v = h.hash64(key);
        for (b, slot) in ones.iter_mut().enumerate() {
            *slot += ((v >> b) & 1) as u32;
        }
    }
    for (b, &c) in ones.iter().enumerate() {
        let p = c as f64 / n as f64;
        assert!((p - 0.5).abs() < 0.02, "output bit {b} biased: P(1) = {p}");
    }
}

/// Flipping one input bit should flip roughly half the output bits on
/// average (avalanche) — not implied by 4-universality but expected from
/// these constructions and relied on when masking buckets from low bits.
#[test]
fn avalanche_on_single_bit_flips() {
    let h = Hasher4::new(777);
    let n = 2_000u64;
    let mut total_flips = 0u64;
    let mut cases = 0u64;
    for key in 0..n {
        let base = h.hash64(key);
        for bit in 0..32 {
            let flipped = h.hash64(key ^ (1 << bit));
            total_flips += (base ^ flipped).count_ones() as u64;
            cases += 1;
        }
    }
    let avg = total_flips as f64 / cases as f64;
    assert!((avg - 32.0).abs() < 2.0, "average flipped output bits {avg}, expected ~32");
}

/// Bucket masks of each row in a family must look independent: the
/// empirical joint distribution over (row0, row1) buckets is uniform.
#[test]
fn family_rows_jointly_uniform() {
    use scd_hash::HashRows;
    let rows = HashRows::new(2, 16, 99);
    let n = 64_000u64;
    let mut counts = vec![0u32; 256];
    for key in 0..n {
        let a = rows.bucket(0, key);
        let b = rows.bucket(1, key);
        counts[a * 16 + b] += 1;
    }
    let expect = n as f64 / 256.0;
    let chi2: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expect;
            d * d / expect
        })
        .sum();
    let dof = 255.0f64;
    let limit = dof + 5.0 * (2.0 * dof).sqrt();
    assert!(chi2 < limit, "chi2 = {chi2:.1} over limit {limit:.1}");
}
