//! Exact `==` identity of the AVX2 batch-bucketing kernel against the
//! scalar reference, with both variants forced directly (so the test is
//! meaningful regardless of what `SCD_SIMD` or detection resolved for the
//! process). On hosts without AVX2 the forced-AVX2 call falls back to
//! scalar, and the test degrades to scalar == scalar.

use scd_hash::{Hasher4, SplitMix64, Variant};

/// Keys mixing the tabulation domain (<= u32::MAX) and the Poly4 domain,
/// so the kernel's 4-key groups hit pure-tabulation, mixed, and
/// pure-polynomial shapes.
fn mixed_keys(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let r = rng.next_u64();
            match r % 4 {
                0 => r | (1 << 40),   // Poly4 domain
                1 => r & 0xFFFF,      // small c0-only keys
                _ => r & 0xFFFF_FFFF, // full tabulation domain
            }
        })
        .collect()
}

#[test]
fn avx2_bucket_batch_matches_scalar_exactly() {
    for seed in [1u64, 77, 0xDEAD] {
        let hasher = Hasher4::new(seed);
        // Odd/unaligned lengths around the 4-lane group size, plus bulk.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 31, 100, 1023] {
            let keys = mixed_keys(seed ^ n as u64, n);
            for k in [2usize, 1024, 65536] {
                let mut scalar = vec![0usize; n];
                let mut simd = vec![usize::MAX; n];
                hasher.bucket_batch_with(Variant::Scalar, &keys, k, &mut scalar);
                hasher.bucket_batch_with(Variant::Avx2, &keys, k, &mut simd);
                assert_eq!(simd, scalar, "seed={seed} n={n} k={k}");
                // And the default dispatch agrees with both.
                let mut dispatched = vec![0usize; n];
                hasher.bucket_batch(&keys, k, &mut dispatched);
                assert_eq!(dispatched, scalar, "dispatch seed={seed} n={n} k={k}");
            }
        }
    }
}

#[test]
fn boundary_keys_agree_across_variants() {
    let hasher = Hasher4::new(3);
    // Extremes of both domains: largest derived character (c0 = c1 =
    // 0xFFFF), zero, and the domain boundary itself.
    let keys = [
        0u64,
        1,
        0xFFFF,
        0x1_0000,
        u32::MAX as u64,     // tabulation's last key
        u32::MAX as u64 + 1, // Poly4's first key
        u64::MAX,
        0xFFFF_FFFF,
        42,
    ];
    for k in [2usize, 4096] {
        let mut scalar = vec![0usize; keys.len()];
        let mut simd = vec![0usize; keys.len()];
        hasher.bucket_batch_with(Variant::Scalar, &keys, k, &mut scalar);
        hasher.bucket_batch_with(Variant::Avx2, &keys, k, &mut simd);
        assert_eq!(simd, scalar, "k={k}");
        for (i, &key) in keys.iter().enumerate() {
            assert_eq!(scalar[i], hasher.bucket(key, k), "per-key path k={k}");
        }
    }
}
