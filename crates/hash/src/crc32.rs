//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the integrity
//! footer shared by every on-disk format in this workspace.
//!
//! The sketch wire format (`SCDSKT02`), the binary trace format
//! (`SCDTRC02`), and the detector checkpoint format (`SCDCKPT1`) all close
//! with a 4-byte CRC so truncation and bit-rot are *detected* instead of
//! silently decoding garbage. The checksum lives in this crate because it
//! is the one crate every other crate already depends on.
//!
//! This is the same CRC as zlib/PNG/Ethernet; `crc32(b"123456789")` is the
//! classic check value `0xCBF43926`.

/// Lookup table for one byte of reflected CRC-32, built at compile time.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Computes the CRC-32 of `data` in one call.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(data);
    crc.finalize()
}

/// Incremental CRC-32 state, for writers that stream bytes out.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds more bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state;
        for &b in data {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The checksum of everything fed so far.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The universal CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"sketch-based change detection";
        let mut inc = Crc32::new();
        inc.update(&data[..7]);
        inc.update(&data[7..]);
        assert_eq!(inc.finalize(), crc32(data));
    }

    #[test]
    fn detects_any_single_byte_flip() {
        let data: Vec<u8> = (0..64u8).collect();
        let clean = crc32(&data);
        for pos in 0..data.len() {
            let mut corrupt = data.clone();
            corrupt[pos] ^= 0x01;
            assert_ne!(crc32(&corrupt), clean, "flip at {pos} undetected");
        }
    }
}
