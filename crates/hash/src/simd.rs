//! Runtime SIMD dispatch for the workspace's hot kernels.
//!
//! The workspace stays std-only, so SIMD is explicit `core::arch` x86_64
//! intrinsics behind runtime feature detection — no nightly `std::simd`,
//! no new dependencies. One [`Variant`] is resolved per process (detected
//! once, cached): AVX2 when the CPU reports it, scalar otherwise. The
//! `SCD_SIMD` environment variable overrides detection (`SCD_SIMD=scalar`
//! forces the fallback — this is how CI exercises the scalar paths on
//! AVX2 runners; `SCD_SIMD=avx2` is honored only when the CPU can
//! actually run it).
//!
//! **Exactness contract.** Every SIMD kernel in this workspace is
//! *bit-identical* to its scalar reference: integer kernels (tabulation
//! gathers, XORs, masks) are pure data movement; floating-point kernels
//! perform exactly the scalar operation sequence per element — separate
//! multiply and add instructions (never FMA, which Rust also never
//! contracts to), same operand order, divisions kept as divisions.
//! Reductions whose reassociation would change results (row sums, squared
//! sums) stay scalar. Identity is enforced by exact `==` property tests
//! in each crate, run against both variants.

// The workspace otherwise denies unsafe code; intrinsics require it. All
// unsafe in this module is behind runtime feature detection.
#![allow(unsafe_code)]

use std::sync::OnceLock;

/// Which kernel implementation the process dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Portable reference implementation.
    Scalar,
    /// 256-bit AVX2 intrinsics (x86_64 only).
    Avx2,
}

impl Variant {
    /// Stable lowercase name, logged into bench JSON for machine context.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Scalar => "scalar",
            Variant::Avx2 => "avx2",
        }
    }
}

/// Whether this host can execute the AVX2 kernels.
pub fn avx2_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

static ACTIVE: OnceLock<Variant> = OnceLock::new();

/// The variant this process dispatches to (detected once, then cached —
/// consult `SCD_SIMD` before first use if you need to force a path).
pub fn active() -> Variant {
    *ACTIVE.get_or_init(|| match std::env::var("SCD_SIMD") {
        Ok(v) if v.eq_ignore_ascii_case("scalar") => Variant::Scalar,
        Ok(v) if v.eq_ignore_ascii_case("avx2") && avx2_supported() => Variant::Avx2,
        Ok(_) => {
            if avx2_supported() {
                Variant::Avx2
            } else {
                Variant::Scalar
            }
        }
        Err(_) => {
            if avx2_supported() {
                Variant::Avx2
            } else {
                Variant::Scalar
            }
        }
    })
}

/// AVX2 batch bucketing for [`crate::Hasher4`]: the hash phase of
/// `update_batch`/`estimate_batch`. Groups of four tabulation-domain keys
/// are hashed with three `vpgatherdq` table gathers + two XORs + one mask;
/// any group containing a `Poly4`-domain key (> `u32::MAX`) falls back to
/// the scalar path for that group. Bit-identical to the scalar loop —
/// everything here is integer data movement.
#[cfg(target_arch = "x86_64")]
pub(crate) mod hash_avx2 {
    use crate::Hasher4;
    #[allow(clippy::wildcard_imports)]
    use core::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn bucket_batch(hasher: &Hasher4, keys: &[u64], k: usize, out: &mut [usize]) {
        let (t0, t1, t2) = hasher.tab.tables();
        let char_mask = _mm_set1_epi32(0xFFFF);
        let k_mask = _mm256_set1_epi64x(k as i64 - 1);
        let mut i = 0;
        while i + 4 <= keys.len() {
            let g = [keys[i], keys[i + 1], keys[i + 2], keys[i + 3]];
            if (g[0] | g[1] | g[2] | g[3]) > u32::MAX as u64 {
                // Mixed-domain group: at least one Poly4 key.
                for (slot, &key) in out[i..i + 4].iter_mut().zip(&g) {
                    *slot = hasher.bucket(key, k);
                }
                i += 4;
                continue;
            }
            let k32 = _mm_set_epi32(g[3] as i32, g[2] as i32, g[1] as i32, g[0] as i32);
            let c0 = _mm_and_si128(k32, char_mask);
            let c1 = _mm_srli_epi32::<16>(k32);
            let d = _mm_add_epi32(c0, c1);
            // Indices are in range by construction: c0, c1 < 2^16 and
            // d <= 2*(2^16 - 1) < DERIVED_LEN.
            let v0 = _mm256_i32gather_epi64::<8>(t0.as_ptr() as *const i64, c0);
            let v1 = _mm256_i32gather_epi64::<8>(t1.as_ptr() as *const i64, c1);
            let v2 = _mm256_i32gather_epi64::<8>(t2.as_ptr() as *const i64, d);
            let hash = _mm256_xor_si256(_mm256_xor_si256(v0, v1), v2);
            let bucket = _mm256_and_si256(hash, k_mask);
            let mut lanes = [0u64; 4];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, bucket);
            for (slot, &b) in out[i..i + 4].iter_mut().zip(&lanes) {
                *slot = b as usize;
            }
            i += 4;
        }
        for (slot, &key) in out[i..].iter_mut().zip(&keys[i..]) {
            *slot = hasher.bucket(key, k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_names_are_stable() {
        assert_eq!(Variant::Scalar.name(), "scalar");
        assert_eq!(Variant::Avx2.name(), "avx2");
    }

    #[test]
    fn active_is_consistent() {
        // Whatever was resolved, it must be stable across calls and
        // runnable on this host.
        let v = active();
        assert_eq!(v, active());
        if v == Variant::Avx2 {
            assert!(avx2_supported());
        }
    }
}
