//! Carter–Wegman polynomial hashing over the Mersenne prime `p = 2^61 - 1`.
//!
//! A degree-3 polynomial with coefficients drawn uniformly from `GF(p)`,
//! evaluated at the key, is **exactly 4-wise independent** over keys in
//! `[0, p)`: for any four distinct keys the four values are determined by a
//! bijection (the 4×4 Vandermonde system) from the four uniform
//! coefficients. This is the textbook construction the paper's references
//! [10, 39] (Carter & Wegman) establish.
//!
//! `u64` keys do not fit below `p`, so [`Poly4::hash64`] uses the
//! Thorup–Zhang *derived character* composition: split the key into two
//! 32-bit characters `c0, c1`, and combine three **independent** 4-universal
//! functions as
//!
//! ```text
//! h(c0, c1) = P0(c0) + P1(c1) + P2(c0 + c1)   (mod p)
//! ```
//!
//! Among any four distinct `(c0, c1)` pairs, one of the three coordinates
//! `c0`, `c1`, `c0 + c1` takes a value at exactly one of the four keys
//! (Thorup–Zhang's isolation lemma), so the corresponding independent
//! component hash makes that key's value uniform and independent of the
//! other three — yielding 4-wise independence over the whole `u64` domain.
//!
//! Arithmetic uses the standard Mersenne trick: `x mod (2^61-1)` is
//! `(x & p) + (x >> 61)` followed by one conditional subtraction, and the
//! 128-bit product of two sub-61-bit values reduces with two shifts.

use crate::splitmix::SplitMix64;

/// The Mersenne prime `2^61 - 1`.
pub const MERSENNE_P: u64 = (1 << 61) - 1;

/// Reduces a 128-bit value modulo `2^61 - 1`.
#[inline]
fn mod_p128(x: u128) -> u64 {
    // x = hi * 2^61 + lo  =>  x ≡ hi + lo (mod 2^61 - 1). The high part can
    // reach 2^67, so reduce it once more in 128-bit space before narrowing.
    let lo = (x as u64) & MERSENNE_P;
    let hi = x >> 61; // < 2^67: reduce again before it fits in u64
    let hi = ((hi as u64) & MERSENNE_P) + (hi >> 61) as u64;
    let mut r = lo + (hi & MERSENNE_P) + (hi >> 61);
    if r >= MERSENNE_P {
        r -= MERSENNE_P;
    }
    if r >= MERSENNE_P {
        r -= MERSENNE_P;
    }
    r
}

/// Multiplies two field elements modulo `2^61 - 1`.
#[inline]
fn mul_mod(a: u64, b: u64) -> u64 {
    mod_p128(a as u128 * b as u128)
}

/// Adds two field elements modulo `2^61 - 1`.
#[inline]
fn add_mod(a: u64, b: u64) -> u64 {
    let s = a + b; // both < 2^61, no overflow in u64
    if s >= MERSENNE_P {
        s - MERSENNE_P
    } else {
        s
    }
}

/// One degree-3 polynomial over `GF(2^61 - 1)`: 4-universal for keys `< p`.
#[derive(Debug, Clone, Copy)]
struct CubicPoly {
    /// Coefficients `a0..a3`, each uniform in `[0, p)`.
    coef: [u64; 4],
}

impl CubicPoly {
    fn new(rng: &mut SplitMix64) -> Self {
        let mut coef = [0u64; 4];
        for c in &mut coef {
            *c = rng.next_below(MERSENNE_P);
        }
        CubicPoly { coef }
    }

    /// Evaluates the polynomial by Horner's rule. `x` must be `< p`.
    #[inline]
    fn eval(&self, x: u64) -> u64 {
        debug_assert!(x < MERSENNE_P);
        let mut acc = self.coef[3];
        acc = add_mod(mul_mod(acc, x), self.coef[2]);
        acc = add_mod(mul_mod(acc, x), self.coef[1]);
        add_mod(mul_mod(acc, x), self.coef[0])
    }
}

/// A 4-universal hash function over the full `u64` key space, built from
/// three independent degree-3 polynomials over `GF(2^61 - 1)`.
///
/// Output values lie in `[0, 2^61 - 1)`; because the modulus is within
/// `2^-43` of a power of two, the low 16 (or 32) bits are uniform to within
/// a bias that is negligible against the sketch's own `O(1/√K)` estimation
/// error, so masking to a power-of-two bucket count is sound in practice.
#[derive(Debug, Clone)]
pub struct Poly4 {
    p0: CubicPoly,
    p1: CubicPoly,
    p2: CubicPoly,
}

impl Poly4 {
    /// Builds the function from a seed; equal seeds give equal functions.
    pub fn new(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        Poly4 {
            p0: CubicPoly::new(&mut rng),
            p1: CubicPoly::new(&mut rng),
            p2: CubicPoly::new(&mut rng),
        }
    }

    /// Hashes a full 64-bit key (derived-character composition).
    #[inline]
    pub fn hash64(&self, key: u64) -> u64 {
        let c0 = key & 0xFFFF_FFFF;
        let c1 = key >> 32;
        let d = c0 + c1; // < 2^33 < p
        add_mod(add_mod(self.p0.eval(c0), self.p1.eval(c1)), self.p2.eval(d))
    }

    /// Hashes a key already known to be below `2^61 - 1` through a single
    /// polynomial — slightly cheaper, used by the tabulation table filler.
    #[inline]
    pub fn hash_field(&self, key: u64) -> u64 {
        self.p0.eval(key % MERSENNE_P)
    }

    /// Maps `key` into `[0, k)` for power-of-two `k`.
    #[inline]
    pub fn bucket(&self, key: u64, k: usize) -> usize {
        debug_assert!(k.is_power_of_two());
        (self.hash64(key) & (k as u64 - 1)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_arithmetic_identities() {
        assert_eq!(add_mod(MERSENNE_P - 1, 1), 0);
        assert_eq!(add_mod(0, 0), 0);
        assert_eq!(mul_mod(0, 12345), 0);
        assert_eq!(mul_mod(1, MERSENNE_P - 1), MERSENNE_P - 1);
        // (p-1)^2 mod p = 1 since p-1 ≡ -1.
        assert_eq!(mul_mod(MERSENNE_P - 1, MERSENNE_P - 1), 1);
    }

    #[test]
    fn mod_p128_matches_naive() {
        let cases: [u128; 6] =
            [0, 1, MERSENNE_P as u128, (MERSENNE_P as u128) * 2 + 5, u64::MAX as u128, u128::MAX];
        for &x in &cases {
            assert_eq!(mod_p128(x) as u128, x % MERSENNE_P as u128, "x = {x}");
        }
    }

    #[test]
    fn horner_matches_direct_evaluation() {
        let mut rng = SplitMix64::new(11);
        let p = CubicPoly::new(&mut rng);
        for x in [0u64, 1, 2, 1_000_003, MERSENNE_P - 1] {
            // direct: a0 + a1 x + a2 x^2 + a3 x^3
            let x2 = mul_mod(x, x);
            let x3 = mul_mod(x2, x);
            let direct = add_mod(
                add_mod(p.coef[0], mul_mod(p.coef[1], x)),
                add_mod(mul_mod(p.coef[2], x2), mul_mod(p.coef[3], x3)),
            );
            assert_eq!(p.eval(x), direct);
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = Poly4::new(5);
        let b = Poly4::new(5);
        let c = Poly4::new(6);
        assert_eq!(a.hash64(123), b.hash64(123));
        assert_ne!(a.hash64(123), c.hash64(123)); // astronomically unlikely to collide
    }

    #[test]
    fn pairwise_collision_rate_close_to_uniform() {
        // Empirical sanity check of universality: collision probability of
        // bucketed values over K buckets should be ~1/K.
        let h = Poly4::new(2024);
        let k = 256usize;
        let n = 2000u64;
        let buckets: Vec<usize> = (0..n).map(|key| h.bucket(key * 2654435761, k)).collect();
        let mut collisions = 0u64;
        let mut pairs = 0u64;
        for i in 0..buckets.len() {
            for j in (i + 1)..buckets.len() {
                pairs += 1;
                if buckets[i] == buckets[j] {
                    collisions += 1;
                }
            }
        }
        let rate = collisions as f64 / pairs as f64;
        let expected = 1.0 / k as f64;
        assert!(
            (rate - expected).abs() < expected * 0.25,
            "collision rate {rate} too far from {expected}"
        );
    }

    #[test]
    fn output_below_modulus() {
        let h = Poly4::new(77);
        for key in [0u64, 1, u32::MAX as u64, u64::MAX] {
            assert!(h.hash64(key) < MERSENNE_P);
        }
    }
}
