//! Minimal little-endian byte encoding helpers shared by the workspace's
//! wire formats (sketch wire, binary traces, detector checkpoints).
//!
//! Every decoder in this workspace must treat its input as hostile: a
//! truncated or bit-flipped file must produce a typed error, never a panic
//! or an out-of-bounds slice. [`Cursor`] packages the bounds checks once so
//! each format's decoder reads fields with `?` and cannot forget a check.
//! This lives in `scd-hash` because it is the root crate of the workspace
//! dependency graph.

/// Appends a `u8`.
#[inline]
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a `u16` little-endian.
#[inline]
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` little-endian.
#[inline]
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
#[inline]
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its little-endian IEEE-754 bit pattern (exact:
/// encode/decode round-trips every value bit-for-bit, including NaNs).
#[inline]
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Error returned when a [`Cursor`] runs out of bytes mid-field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShortInput;

impl std::fmt::Display for ShortInput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "input truncated mid-field")
    }
}

impl std::error::Error for ShortInput {}

/// A bounds-checked forward reader over a byte slice.
#[derive(Debug, Clone, Copy)]
pub struct Cursor<'a> {
    data: &'a [u8],
}

impl<'a> Cursor<'a> {
    /// Wraps a slice for reading.
    pub fn new(data: &'a [u8]) -> Self {
        Cursor { data }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.data.len()
    }

    /// Consumes and returns the next `n` bytes.
    #[inline]
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ShortInput> {
        if self.data.len() < n {
            return Err(ShortInput);
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    /// Reads a `u8`.
    #[inline]
    pub fn u8(&mut self) -> Result<u8, ShortInput> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    #[inline]
    pub fn u16(&mut self) -> Result<u16, ShortInput> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("length checked")))
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn u32(&mut self) -> Result<u32, ShortInput> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn u64(&mut self) -> Result<u64, ShortInput> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("length checked")))
    }

    /// Reads a little-endian `f64` bit pattern.
    #[inline]
    pub fn f64(&mut self) -> Result<f64, ShortInput> {
        Ok(f64::from_bits(self.u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_width() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, 0x0123_4567_89AB_CDEF);
        put_f64(&mut buf, -1234.5678);
        let mut c = Cursor::new(&buf);
        assert_eq!(c.u8().unwrap(), 0xAB);
        assert_eq!(c.u16().unwrap(), 0xBEEF);
        assert_eq!(c.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(c.f64().unwrap(), -1234.5678);
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        for v in [0.0, -0.0, f64::INFINITY, f64::NAN, 1e-308, f64::MAX] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            let got = Cursor::new(&buf).f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn short_reads_error_instead_of_panicking() {
        let buf = [1u8, 2, 3];
        let mut c = Cursor::new(&buf);
        assert!(c.u16().is_ok());
        assert_eq!(c.u64(), Err(ShortInput));
        // The failed read consumes nothing; the last byte is still there.
        assert_eq!(c.u8().unwrap(), 3);
        assert_eq!(c.u8(), Err(ShortInput));
    }
}
