//! Tabulation-based 4-universal hashing (Thorup–Zhang), the fast scheme the
//! paper benchmarks in Table 1.
//!
//! A 32-bit key is split into two 16-bit characters `c0, c1` plus one
//! *derived* character `c0 + c1` (a 17-bit integer sum, **not** XOR — the
//! sum is what makes the isolation argument work). The hash is
//!
//! ```text
//! h(key) = T0[c0] ^ T1[c1] ^ T2[c0 + c1]
//! ```
//!
//! with three tables of uniformly random 64-bit entries. Thorup & Zhang
//! prove this family is 4-universal: among any four distinct keys, at least
//! one of the three coordinates `(c0, c1, c0+c1)` takes some value at
//! exactly one key, so that key's table entry is uniform and independent of
//! the other three hash values; peeling repeats the argument.
//!
//! Memory: `2·2^16 + (2^17 - 1)` entries of 8 bytes ≈ 2 MiB per function —
//! the "constant, small amount of memory" regime the paper targets. Each
//! hash costs three L1/L2 loads and two XORs; the 64 output bits provide
//! four independent 16-bit values per evaluation, mirroring the paper's
//! "each hash computation produces 8 independent 16-bit hash values"
//! batching trick (§5.3).
//!
//! Table entries are filled from [`SplitMix64`]; we rely on the entries
//! being i.i.d. uniform (the information-theoretic form of the
//! Thorup–Zhang theorem) rather than on their space-efficient
//! pseudo-random filling, since 2 MiB of true tables is cheap on modern
//! hosts and keeps the proof obligations minimal.

use crate::splitmix::SplitMix64;

const CHAR_BITS: u32 = 16;
const CHAR_MASK: u32 = (1 << CHAR_BITS) - 1;
const TABLE_LEN: usize = 1 << CHAR_BITS; // 65536
const DERIVED_LEN: usize = (1 << (CHAR_BITS + 1)) - 1; // c0 + c1 <= 2*(2^16 - 1)

/// Tabulation-based 4-universal hash function for 32-bit keys.
#[derive(Clone)]
pub struct Tab4 {
    t0: Box<[u64]>,
    t1: Box<[u64]>,
    t2: Box<[u64]>,
}

impl Tab4 {
    /// Builds the three tables from a seed (deterministic; ≈2 MiB).
    pub fn new(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut fill = |len: usize| -> Box<[u64]> { (0..len).map(|_| rng.next_u64()).collect() };
        Tab4 { t0: fill(TABLE_LEN), t1: fill(TABLE_LEN), t2: fill(DERIVED_LEN) }
    }

    /// Hashes a 32-bit key to 64 uniform bits.
    #[inline]
    pub fn hash32(&self, key: u32) -> u64 {
        let c0 = key & CHAR_MASK;
        let c1 = key >> CHAR_BITS;
        let d = c0 + c1;
        // Indices are in range by construction; use plain indexing (bounds
        // checks are branch-predicted away and we forbid unsafe code).
        self.t0[c0 as usize] ^ self.t1[c1 as usize] ^ self.t2[d as usize]
    }

    /// Maps a 32-bit key into `[0, k)` for power-of-two `k`.
    #[inline]
    pub fn bucket32(&self, key: u32, k: usize) -> usize {
        debug_assert!(k.is_power_of_two());
        (self.hash32(key) & (k as u64 - 1)) as usize
    }

    /// The three lookup tables `(T0, T1, T2)`, for the crate's SIMD batch
    /// kernel (which gathers from them directly).
    pub(crate) fn tables(&self) -> (&[u64], &[u64], &[u64]) {
        (&self.t0, &self.t1, &self.t2)
    }

    /// Approximate heap footprint in bytes (for capacity planning).
    pub fn memory_bytes(&self) -> usize {
        (self.t0.len() + self.t1.len() + self.t2.len()) * std::mem::size_of::<u64>()
    }
}

impl std::fmt::Debug for Tab4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tab4").field("memory_bytes", &self.memory_bytes()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = Tab4::new(31337);
        let b = Tab4::new(31337);
        for key in [0u32, 1, 65535, 65536, u32::MAX] {
            assert_eq!(a.hash32(key), b.hash32(key));
        }
    }

    #[test]
    fn seed_sensitive() {
        let a = Tab4::new(1);
        let b = Tab4::new(2);
        let same = (0..1000u32).filter(|&k| a.hash32(k) == b.hash32(k)).count();
        assert_eq!(same, 0, "64-bit outputs from independent seeds should not collide");
    }

    #[test]
    fn derived_index_never_out_of_bounds() {
        let t = Tab4::new(5);
        // The extreme characters exercise the largest derived index.
        let _ = t.hash32(u32::MAX); // c0 = c1 = 0xFFFF, d = 0x1FFFE = DERIVED_LEN - 1
        let _ = t.hash32(0);
    }

    #[test]
    fn bucket_distribution_uniform() {
        let t = Tab4::new(99);
        let k = 64usize;
        let n = 64_000u32;
        let mut counts = vec![0u32; k];
        for key in 0..n {
            counts[t.bucket32(key.wrapping_mul(2654435761), k)] += 1;
        }
        let expect = (n as usize / k) as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < expect * 0.2,
                "bucket {i} count {c} vs expected {expect}"
            );
        }
    }

    #[test]
    fn memory_is_about_two_mib() {
        let t = Tab4::new(0);
        let mb = t.memory_bytes();
        assert!(mb > 2_000_000 && mb < 2_200_000, "memory {mb}");
    }

    /// Statistical check of 4-wise independence on one bit: for four fixed
    /// distinct keys, the XOR of a fixed output bit across random seeds
    /// should be unbiased. A 3-universal-only family constructed the same
    /// way *without* the derived table would fail the analogous parity test
    /// on keys forming a 2x2 combinatorial rectangle.
    #[test]
    fn four_key_parity_unbiased() {
        // Keys forming a rectangle in (c0, c1): the adversarial pattern for
        // plain 2-table tabulation.
        let keys = [0x0001_0002u32, 0x0001_0003, 0x0004_0002, 0x0004_0003];
        let trials = 2000;
        let mut ones = 0u32;
        for seed in 0..trials {
            let t = Tab4::new(seed as u64 * 7919 + 1);
            let parity = keys.iter().fold(0u64, |acc, &k| acc ^ t.hash32(k)) & 1;
            ones += parity as u32;
        }
        // Without the derived table, parity would be 0 for every seed.
        // With 4-universality it is a fair coin: expect ~1000, sd ~22.
        assert!(
            (880..=1120).contains(&ones),
            "parity ones = {ones} out of {trials}, expected near {}",
            trials / 2
        );
    }

    /// The same rectangle test but *demonstrating* why the derived table is
    /// needed: dropping T2 yields constant-zero parity.
    #[test]
    fn two_table_scheme_fails_rectangle_parity() {
        let keys = [0x0001_0002u32, 0x0001_0003, 0x0004_0002, 0x0004_0003];
        for seed in 0..50u64 {
            let t = Tab4::new(seed);
            let two_table = |key: u32| {
                let c0 = (key & CHAR_MASK) as usize;
                let c1 = (key >> CHAR_BITS) as usize;
                t.t0[c0] ^ t.t1[c1]
            };
            let parity = keys.iter().fold(0u64, |acc, &k| acc ^ two_table(k));
            assert_eq!(parity, 0, "rectangle XOR must cancel without derived char");
        }
    }
}
