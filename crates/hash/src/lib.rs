//! 4-universal hash functions for sketch data structures.
//!
//! The k-ary sketch of *Sketch-based Change Detection* (IMC 2003) requires
//! its per-row hash functions `h_i : [u] -> [K]` to be **4-universal**
//! (4-wise independent): for any four distinct keys, the tuple of their hash
//! values is uniformly distributed over `[K]^4`. 4-universality is what
//! drives the variance bounds of the sketch's `ESTIMATE` and `ESTIMATEF2`
//! operations (Appendix A and B of the paper): each row estimator is
//! unbiased with variance at most `F2 / (K - 1)`.
//!
//! Two constructions are provided:
//!
//! * [`Poly4`] — the classic Carter–Wegman degree-3 polynomial over the
//!   Mersenne prime field `GF(2^61 - 1)`. Exactly 4-wise independent for
//!   keys below the prime; extended to the full `u64` key space with the
//!   Thorup–Zhang derived-character composition (three independent
//!   polynomials over the two 32-bit halves and their integer sum). This is
//!   the *reference* implementation: slower, but trivially auditable.
//! * [`Tab4`] — tabulation-based hashing after Thorup & Zhang,
//!   *Tabulation based 4-universal hashing with applications to second
//!   moment estimation* (the paper's reference \[33\]): for a 32-bit key
//!   split into 16-bit characters `c0, c1`, the hash is
//!   `T0[c0] ^ T1[c1] ^ T2[c0 + c1]` with three precomputed tables of
//!   64-bit entries. Three cache-friendly lookups per key; this is the
//!   construction the paper's Table 1 benchmarks. Keys wider than 32 bits
//!   fall back to [`Poly4`] transparently via [`Hasher4`].
//!
//! All constructions are deterministic functions of a seed
//! ([`splitmix::SplitMix64`] expands the seed), so sketches built with the
//! same seed are *combinable*: they agree on every `h_i` and therefore on
//! every cell, which is what makes the sketch linear across machines and
//! across time intervals.
//!
//! # Example
//!
//! ```
//! use scd_hash::{Hasher4, HashRows};
//!
//! // One 4-universal function, bucketed into K = 1024 cells.
//! let h = Hasher4::new(0xC0FFEE);
//! let b = h.bucket(192_168_0_1, 1024);
//! assert!(b < 1024);
//! assert_eq!(b, Hasher4::new(0xC0FFEE).bucket(192_168_0_1, 1024));
//!
//! // H = 5 independent rows, as a k-ary sketch uses.
//! let rows = HashRows::new(5, 1024, 42);
//! let mut buckets = [0usize; 5];
//! rows.buckets(10_0_0_7, &mut buckets);
//! assert!(buckets.iter().all(|&b| b < 1024));
//! ```

#![deny(unsafe_code)] // relaxed from `forbid` only for the vetted `simd` module
#![warn(missing_docs)]

pub mod byteio;
pub mod crc32;
pub mod poly;
pub mod rows;
pub mod simd;
pub mod splitmix;
pub mod tabulation;

pub use crc32::{crc32, Crc32};
pub use poly::Poly4;
pub use rows::HashRows;
pub use simd::Variant;
pub use splitmix::{mix64, range_reduce, MixBuildHasher, SplitMix64};
pub use tabulation::Tab4;

/// A seeded 4-universal hash function over `u64` keys.
///
/// Dispatches to [`Tab4`] (three table lookups) when the key fits in 32
/// bits and to [`Poly4`] otherwise, so the common case — destination IPv4
/// addresses, the key the paper's experiments use — takes the fast path
/// while the API stays honest for the full `u64` key space (§2.1 of the
/// paper allows keys built from any packet-header fields).
#[derive(Clone)]
pub struct Hasher4 {
    tab: Tab4,
    poly: Poly4,
}

impl Hasher4 {
    /// Builds the hasher from a seed. Equal seeds yield identical functions.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let tab_seed = sm.next_u64();
        let poly_seed = sm.next_u64();
        Hasher4 { tab: Tab4::new(tab_seed), poly: Poly4::new(poly_seed) }
    }

    /// Returns 64 output bits. Keys `< 2^32` use tabulation; larger keys use
    /// the polynomial scheme. Within each sub-domain the family is 4-wise
    /// independent; across the two sub-domains values are independent because
    /// the two schemes are seeded independently.
    #[inline]
    pub fn hash64(&self, key: u64) -> u64 {
        if key <= u32::MAX as u64 {
            self.tab.hash32(key as u32)
        } else {
            self.poly.hash64(key)
        }
    }

    /// Maps `key` into `[0, k)`. `k` must be a power of two (the paper uses
    /// `K ∈ {1024, …, 65536}`); this lets bucketing be a mask instead of a
    /// division on the per-record hot path.
    #[inline]
    pub fn bucket(&self, key: u64, k: usize) -> usize {
        debug_assert!(k.is_power_of_two(), "K must be a power of two, got {k}");
        (self.hash64(key) & (k as u64 - 1)) as usize
    }

    /// Buckets a whole block of keys in one pass: `out[i] = bucket(keys[i],
    /// k)`. One tight loop over this function's tabulation tables — the
    /// tables stay resident in cache across the block instead of being
    /// re-fetched per sketch row per key, which is what makes batched
    /// sketch updates fast.
    ///
    /// Dispatches to the AVX2 kernel when the process resolved
    /// [`simd::active`] to [`Variant::Avx2`]; the result is bit-identical
    /// to [`bucket_batch_scalar`](Self::bucket_batch_scalar) either way.
    ///
    /// # Panics
    /// Panics if `out.len() != keys.len()`.
    #[inline]
    pub fn bucket_batch(&self, keys: &[u64], k: usize, out: &mut [usize]) {
        self.bucket_batch_with(simd::active(), keys, k, out);
    }

    /// [`bucket_batch`](Self::bucket_batch) with an explicit kernel choice —
    /// the hook the SIMD/scalar identity tests use to force both paths in
    /// one process. [`Variant::Avx2`] silently falls back to scalar on hosts
    /// without AVX2.
    ///
    /// # Panics
    /// Panics if `out.len() != keys.len()`.
    pub fn bucket_batch_with(&self, variant: Variant, keys: &[u64], k: usize, out: &mut [usize]) {
        assert_eq!(out.len(), keys.len(), "output slice must match key count");
        #[cfg(target_arch = "x86_64")]
        if variant == Variant::Avx2 && simd::avx2_supported() {
            // SAFETY: AVX2 support was just verified at runtime.
            #[allow(unsafe_code)]
            unsafe {
                simd::hash_avx2::bucket_batch(self, keys, k, out)
            };
            return;
        }
        let _ = variant;
        self.bucket_batch_scalar(keys, k, out);
    }

    /// The scalar reference implementation of [`bucket_batch`](Self::bucket_batch).
    ///
    /// # Panics
    /// Panics if `out.len() != keys.len()`.
    #[inline]
    pub fn bucket_batch_scalar(&self, keys: &[u64], k: usize, out: &mut [usize]) {
        assert_eq!(out.len(), keys.len(), "output slice must match key count");
        for (slot, &key) in out.iter_mut().zip(keys) {
            *slot = self.bucket(key, k);
        }
    }
}

impl std::fmt::Debug for Hasher4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hasher4").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = Hasher4::new(7);
        let b = Hasher4::new(7);
        for key in [0u64, 1, 0xFFFF_FFFF, 0x1_0000_0000, u64::MAX] {
            assert_eq!(a.hash64(key), b.hash64(key));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Hasher4::new(1);
        let b = Hasher4::new(2);
        let same = (0..1000u64).filter(|&k| a.hash64(k) == b.hash64(k)).count();
        assert!(same < 5, "independent seeds should almost never collide, got {same}");
    }

    #[test]
    fn bucket_in_range() {
        let h = Hasher4::new(99);
        for k in [2usize, 64, 1024, 65536] {
            for key in 0..256u64 {
                assert!(h.bucket(key, k) < k);
            }
        }
    }

    #[test]
    fn covers_both_key_subdomains() {
        let h = Hasher4::new(3);
        // 32-bit path and 64-bit path must both produce stable output.
        let small = h.hash64(0xDEAD_BEEF);
        let large = h.hash64(0xDEAD_BEEF_0000_0001);
        assert_eq!(small, h.hash64(0xDEAD_BEEF));
        assert_eq!(large, h.hash64(0xDEAD_BEEF_0000_0001));
    }
}
