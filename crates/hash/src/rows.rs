//! `H` independent hash rows, the per-sketch bundle the k-ary sketch uses.
//!
//! A k-ary sketch is "an array of hash tables" (paper §3.1): `H` rows, each
//! with its own independent 4-universal function into `[K]`. The paper
//! constructs the rows "using independent seeds"; [`HashRows`] does exactly
//! that, deriving one sub-seed per row from the family seed through
//! SplitMix64 so that the whole bundle is reproducible from `(h, k, seed)`.
//!
//! Two sketches can only be combined (added, subtracted, scaled — the
//! linearity that the forecasting layer depends on) if they share the same
//! rows. `HashRows` therefore exposes an [`identity`](HashRows::identity)
//! fingerprint that the sketch layer checks before combining.

use crate::splitmix::SplitMix64;
use crate::Hasher4;

/// A family of `H` independent 4-universal hash functions into `[0, K)`.
#[derive(Clone)]
pub struct HashRows {
    hashers: Vec<Hasher4>,
    k: usize,
    identity: (usize, usize, u64),
}

impl HashRows {
    /// Builds `h` rows bucketing into `[0, k)`. `k` must be a power of two;
    /// `h` must be at least 1.
    ///
    /// # Panics
    /// Panics if `h == 0` or `k` is not a power of two.
    pub fn new(h: usize, k: usize, seed: u64) -> Self {
        assert!(h >= 1, "need at least one hash row");
        assert!(k.is_power_of_two(), "K must be a power of two, got {k}");
        let mut sm = SplitMix64::new(seed ^ 0x5EED_0F5E_ED00);
        let hashers = (0..h).map(|_| Hasher4::new(sm.next_u64())).collect();
        HashRows { hashers, k, identity: (h, k, seed) }
    }

    /// Number of rows `H`.
    #[inline]
    pub fn h(&self) -> usize {
        self.hashers.len()
    }

    /// Number of buckets per row `K`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Fingerprint `(H, K, seed)`: two `HashRows` with equal identities
    /// compute identical bucket mappings, so sketches built on them are
    /// combinable.
    #[inline]
    pub fn identity(&self) -> (usize, usize, u64) {
        self.identity
    }

    /// Bucket of `key` in row `row`.
    #[inline]
    pub fn bucket(&self, row: usize, key: u64) -> usize {
        self.hashers[row].bucket(key, self.k)
    }

    /// Fills `out[row]` with the bucket of `key` in each row.
    ///
    /// # Panics
    /// Panics if `out.len() != self.h()`.
    #[inline]
    pub fn buckets(&self, key: u64, out: &mut [usize]) {
        assert_eq!(out.len(), self.h(), "output slice must have H entries");
        for (slot, hasher) in out.iter_mut().zip(&self.hashers) {
            *slot = hasher.bucket(key, self.k);
        }
    }
}

impl std::fmt::Debug for HashRows {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HashRows")
            .field("h", &self.h())
            .field("k", &self.k)
            .field("seed", &self.identity.2)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_mutually_independent() {
        let rows = HashRows::new(5, 1024, 9);
        // Two rows agreeing on many keys would indicate shared seeds.
        for a in 0..5 {
            for b in (a + 1)..5 {
                let agree =
                    (0..2000u64).filter(|&key| rows.bucket(a, key) == rows.bucket(b, key)).count();
                // Expected agreement = 2000/1024 ≈ 2.
                assert!(agree < 12, "rows {a},{b} agree on {agree} of 2000 keys");
            }
        }
    }

    #[test]
    fn same_identity_same_mapping() {
        let a = HashRows::new(3, 256, 123);
        let b = HashRows::new(3, 256, 123);
        assert_eq!(a.identity(), b.identity());
        for key in 0..500u64 {
            for row in 0..3 {
                assert_eq!(a.bucket(row, key), b.bucket(row, key));
            }
        }
    }

    #[test]
    fn buckets_fills_all_rows() {
        let rows = HashRows::new(7, 64, 1);
        let mut out = [usize::MAX; 7];
        rows.buckets(42, &mut out);
        for (row, &b) in out.iter().enumerate() {
            assert_eq!(b, rows.bucket(row, 42));
            assert!(b < 64);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_k() {
        let _ = HashRows::new(1, 1000, 0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_zero_rows() {
        let _ = HashRows::new(0, 1024, 0);
    }
}
